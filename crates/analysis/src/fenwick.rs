//! A Fenwick (binary indexed) tree over access timestamps — the engine of
//! the O(N log N) reuse-distance algorithm.

/// Fenwick tree of `u32` counters with prefix-sum queries.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    /// A tree over indices `0..n`.
    pub fn new(n: usize) -> Self {
        Fenwick { tree: vec![0; n + 1] }
    }

    /// Number of indexable positions.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// True if the tree has no positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grows the index space to at least `n` positions.
    pub fn grow(&mut self, n: usize) {
        if n + 1 > self.tree.len() {
            // Rebuild: Fenwick trees do not grow in place cheaply, so copy
            // the point values out via prefix differences.
            let mut values = vec![0u32; n];
            for (i, v) in values.iter_mut().enumerate().take(self.len()) {
                *v = self.range(i, i + 1) as u32;
            }
            let mut next = Fenwick::new(n);
            for (i, v) in values.iter().enumerate() {
                if *v != 0 {
                    next.add(i, *v as i64);
                }
            }
            *self = next;
        }
    }

    /// Adds `delta` at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the counter underflows.
    pub fn add(&mut self, i: usize, delta: i64) {
        assert!(i < self.len(), "fenwick index {i} out of range {}", self.len());
        let mut k = i + 1;
        while k < self.tree.len() {
            let v = self.tree[k] as i64 + delta;
            assert!(v >= 0, "fenwick underflow at {k}");
            self.tree[k] = v as u32;
            k += k & k.wrapping_neg();
        }
    }

    /// Sum of positions `0..i` (exclusive).
    pub fn prefix(&self, i: usize) -> u64 {
        let mut k = i.min(self.len());
        let mut s = 0u64;
        while k > 0 {
            s += self.tree[k] as u64;
            k -= k & k.wrapping_neg();
        }
        s
    }

    /// Sum over `lo..hi`.
    pub fn range(&self, lo: usize, hi: usize) -> u64 {
        if hi <= lo {
            0
        } else {
            self.prefix(hi) - self.prefix(lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_updates_and_prefix_sums() {
        let mut f = Fenwick::new(10);
        f.add(0, 1);
        f.add(4, 2);
        f.add(9, 3);
        assert_eq!(f.prefix(0), 0);
        assert_eq!(f.prefix(1), 1);
        assert_eq!(f.prefix(5), 3);
        assert_eq!(f.prefix(10), 6);
        assert_eq!(f.range(1, 5), 2);
        assert_eq!(f.range(5, 10), 3);
    }

    #[test]
    fn negative_deltas() {
        let mut f = Fenwick::new(4);
        f.add(2, 5);
        f.add(2, -3);
        assert_eq!(f.range(2, 3), 2);
    }

    #[test]
    fn grow_preserves_contents() {
        let mut f = Fenwick::new(4);
        f.add(1, 7);
        f.add(3, 2);
        f.grow(16);
        assert_eq!(f.len(), 16);
        assert_eq!(f.range(1, 2), 7);
        assert_eq!(f.range(3, 4), 2);
        f.add(15, 1);
        assert_eq!(f.prefix(16), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut f = Fenwick::new(4);
        f.add(4, 1);
    }

    #[test]
    fn matches_naive_model() {
        let mut f = Fenwick::new(64);
        let mut naive = vec![0i64; 64];
        let mut state = 12345u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (state >> 33) as usize % 64;
            f.add(i, 1);
            naive[i] += 1;
            let q = (state >> 13) as usize % 65;
            let expect: i64 = naive[..q].iter().sum();
            assert_eq!(f.prefix(q), expect as u64);
        }
    }
}
