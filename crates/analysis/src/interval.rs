//! SimPoint-style interval selection for sampled simulation.
//!
//! Detailed simulation of a huge trace is replaced by detailed simulation of
//! a few *representative* intervals: the trace is cut into fixed-size
//! intervals, each interval is fingerprinted during a cheap functional pass,
//! the fingerprints are clustered, and one medoid per cluster is simulated
//! in detail with a weight proportional to the work its cluster covers
//! (Sherwood et al., "Automatically Characterizing Large Scale Program
//! Behavior"). This module is the selection half; the checkpointed warmup
//! and weighted reconstruction live in `selcache-core`.
//!
//! The fingerprint is deliberately cheap to maintain at streaming speed: a
//! working-set signature (the same hashed bitvector the phase detector in
//! [`crate::phase`] uses) plus a per-PC-bucket op histogram standing in for
//! a basic-block vector — the interpreter assigns stable PCs per static
//! site, so bucketed PC counts capture "which code is running" exactly as a
//! BBV would.

use selcache_ir::Addr;

/// Configuration of the interval profiler and selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalConfig {
    /// Ops per interval (the sampling unit).
    pub interval_ops: u64,
    /// Maximum number of representatives (clusters) to select.
    pub max_intervals: usize,
    /// Working-set signature bits (power of two).
    pub signature_bits: usize,
    /// PC-histogram buckets (power of two) for the code fingerprint.
    pub pc_buckets: usize,
}

impl Default for IntervalConfig {
    fn default() -> Self {
        IntervalConfig {
            interval_ops: 1 << 20,
            max_intervals: 8,
            signature_bits: 4096,
            pc_buckets: 64,
        }
    }
}

/// Fingerprint of one fixed-size interval of the dynamic trace.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalFingerprint {
    /// Hashed working-set signature over data blocks.
    signature: Vec<u64>,
    /// Op counts per PC bucket — the basic-block-vector stand-in.
    mix: Vec<u32>,
    /// Ops in this interval (equal to `interval_ops` except for the tail).
    pub ops: u64,
}

impl IntervalFingerprint {
    /// Distance in `[0, 1]`: the mean of Jaccard distance between the
    /// working-set signatures and normalized Manhattan distance between the
    /// PC histograms. Two intervals running the same code over the same data
    /// score near 0; disjoint code and data score near 1.
    pub fn distance(&self, other: &IntervalFingerprint) -> f64 {
        let mut inter = 0u32;
        let mut union = 0u32;
        for (&x, &y) in self.signature.iter().zip(&other.signature) {
            inter += (x & y).count_ones();
            union += (x | y).count_ones();
        }
        let sig_dist = if union == 0 { 0.0 } else { 1.0 - f64::from(inter) / f64::from(union) };
        let (sa, sb) = (self.ops.max(1) as f64, other.ops.max(1) as f64);
        let mut manhattan = 0.0;
        for (&a, &b) in self.mix.iter().zip(&other.mix) {
            manhattan += (f64::from(a) / sa - f64::from(b) / sb).abs();
        }
        // Normalized histograms differ by at most 2 in L1.
        (sig_dist + manhattan / 2.0) / 2.0
    }
}

/// Streaming fingerprint builder: feed every op of the trace once, in
/// order; intervals close automatically every `interval_ops` ops.
#[derive(Debug, Clone)]
pub struct IntervalProfiler {
    cfg: IntervalConfig,
    signature: Vec<u64>,
    mix: Vec<u32>,
    in_interval: u64,
    intervals: Vec<IntervalFingerprint>,
}

impl IntervalProfiler {
    /// Creates a profiler.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ops` is zero or the signature/bucket sizes are
    /// not powers of two.
    pub fn new(cfg: IntervalConfig) -> Self {
        assert!(cfg.interval_ops > 0, "interval must be positive");
        assert!(cfg.signature_bits.is_power_of_two(), "signature bits must be a power of two");
        assert!(cfg.pc_buckets.is_power_of_two(), "pc buckets must be a power of two");
        IntervalProfiler {
            signature: vec![0; cfg.signature_bits / 64],
            mix: vec![0; cfg.pc_buckets],
            in_interval: 0,
            intervals: Vec::new(),
            cfg,
        }
    }

    /// Records one op: its PC always, its data address when it is a memory
    /// op.
    ///
    /// `#[inline]`: called once per op of a multi-million-op profile pass
    /// from another crate; without cross-crate inlining the call overhead
    /// dominates the few hash instructions of the body.
    #[inline]
    pub fn record(&mut self, pc: u64, addr: Option<Addr>) {
        if let Some(addr) = addr {
            let block = addr.block(32);
            let h = (block.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
                & (self.cfg.signature_bits - 1);
            self.signature[h / 64] |= 1 << (h % 64);
        }
        let b = ((pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize
            & (self.cfg.pc_buckets - 1);
        self.mix[b] += 1;
        self.in_interval += 1;
        if self.in_interval == self.cfg.interval_ops {
            self.close_interval();
        }
    }

    fn close_interval(&mut self) {
        let signature =
            std::mem::replace(&mut self.signature, vec![0; self.cfg.signature_bits / 64]);
        let mix = std::mem::replace(&mut self.mix, vec![0; self.cfg.pc_buckets]);
        self.intervals.push(IntervalFingerprint { signature, mix, ops: self.in_interval });
        self.in_interval = 0;
    }

    /// Finishes the stream and returns the interval fingerprints, including
    /// a short tail interval when the trace length is not a multiple of the
    /// interval size.
    pub fn finish(mut self) -> Vec<IntervalFingerprint> {
        if self.in_interval > 0 {
            self.close_interval();
        }
        self.intervals
    }
}

/// A selected representative interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Representative {
    /// Index of the medoid interval in the fingerprint list.
    pub interval: usize,
    /// Extrapolation weight: total ops of the cluster divided by the ops of
    /// this interval, so `sum(weight_i * stat_i)` reconstructs whole-trace
    /// counts from per-interval measurements.
    pub weight: f64,
    /// Number of intervals in the cluster.
    pub cluster_size: usize,
}

/// Clusters interval fingerprints with k-medoids and returns one weighted
/// representative per cluster, ordered by interval index.
///
/// Seeding is deterministic farthest-first (ties broken toward the lowest
/// index), so the selection — and therefore every sampled simulation built
/// on it — is reproducible across runs and thread counts.
pub fn select(intervals: &[IntervalFingerprint], k: usize) -> Vec<Representative> {
    let n = intervals.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    // Pairwise distances; interval counts are small (ops/interval_ops), so
    // the dense matrix is cheap relative to one streaming pass.
    let dist = |a: usize, b: usize| intervals[a].distance(&intervals[b]);

    // Farthest-first seeding from interval 0.
    let mut medoids = vec![0usize];
    let mut min_d: Vec<f64> = (0..n).map(|i| dist(0, i)).collect();
    while medoids.len() < k {
        let (far, far_d) =
            min_d
                .iter()
                .enumerate()
                .fold((0, -1.0), |acc, (i, &d)| if d > acc.1 { (i, d) } else { acc });
        if far_d <= 0.0 {
            break; // every point coincides with a medoid
        }
        medoids.push(far);
        for (i, d) in min_d.iter_mut().enumerate() {
            *d = d.min(dist(far, i));
        }
    }
    medoids.sort_unstable();

    // Lloyd-style k-medoids refinement.
    let mut assign = vec![0usize; n];
    for _round in 0..20 {
        for (i, a) in assign.iter_mut().enumerate() {
            let mut best = (f64::INFINITY, 0usize);
            for (c, &m) in medoids.iter().enumerate() {
                let d = dist(m, i);
                if d < best.0 {
                    best = (d, c);
                }
            }
            *a = best.1;
        }
        let mut changed = false;
        for (c, m) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assign[i] == c).collect();
            let mut best = (f64::INFINITY, *m);
            for &cand in &members {
                let total: f64 = members.iter().map(|&i| dist(cand, i)).sum();
                if total < best.0 {
                    best = (total, cand);
                }
            }
            if best.1 != *m {
                *m = best.1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Final assignment against the settled medoids.
    for (i, a) in assign.iter_mut().enumerate() {
        let mut best = (f64::INFINITY, 0usize);
        for (c, &m) in medoids.iter().enumerate() {
            let d = dist(m, i);
            if d < best.0 {
                best = (d, c);
            }
        }
        *a = best.1;
    }

    let mut reps: Vec<Representative> = medoids
        .iter()
        .enumerate()
        .map(|(c, &m)| {
            let members: Vec<usize> = (0..n).filter(|&i| assign[i] == c).collect();
            let cluster_ops: u64 = members.iter().map(|&i| intervals[i].ops).sum();
            Representative {
                interval: m,
                weight: cluster_ops as f64 / intervals[m].ops.max(1) as f64,
                cluster_size: members.len(),
            }
        })
        .filter(|r| r.cluster_size > 0)
        .collect();
    reps.sort_by_key(|r| r.interval);
    reps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(interval_ops: u64) -> IntervalConfig {
        IntervalConfig { interval_ops, max_intervals: 4, signature_bits: 512, pc_buckets: 16 }
    }

    /// Builds fingerprints for a synthetic trace of `phases` back-to-back
    /// segments, each `(len, pc_base, addr_base)`.
    fn profile(interval_ops: u64, phases: &[(u64, u64, u64)]) -> Vec<IntervalFingerprint> {
        let mut p = IntervalProfiler::new(cfg(interval_ops));
        for &(len, pc_base, addr_base) in phases {
            for i in 0..len {
                p.record(pc_base + (i % 16) * 4, Some(Addr(addr_base + (i % 64) * 32)));
            }
        }
        p.finish()
    }

    #[test]
    fn intervals_tile_the_trace() {
        let fps = profile(100, &[(1050, 0x400, 0)]);
        assert_eq!(fps.len(), 11);
        assert!(fps[..10].iter().all(|f| f.ops == 100));
        assert_eq!(fps[10].ops, 50);
        assert_eq!(fps.iter().map(|f| f.ops).sum::<u64>(), 1050);
    }

    #[test]
    fn identical_intervals_have_zero_distance() {
        // 128-op intervals over period-64 access / period-16 pc patterns:
        // every interval sees the exact same fingerprint.
        let fps = profile(128, &[(384, 0x400, 0)]);
        assert!(fps[0].distance(&fps[1]) < 1e-12);
        assert!(fps[0].distance(&fps[0]) < 1e-12);
    }

    #[test]
    fn disjoint_intervals_are_far_apart() {
        // Disjoint data: the signature half of the distance saturates at 1.
        // The 16 PC buckets partially collide across phases, so the overall
        // distance lands above 0.5 but below 1.
        let fps = profile(128, &[(128, 0x400, 0), (128, 0x9000_0400, 0x100_0000)]);
        assert!(fps[0].distance(&fps[1]) > 0.5, "d = {}", fps[0].distance(&fps[1]));
    }

    #[test]
    fn two_phase_trace_selects_one_rep_per_phase() {
        // 5 intervals of phase A then 4 of phase B.
        let fps = profile(128, &[(640, 0x400, 0), (512, 0x9000_0400, 0x100_0000)]);
        let reps = select(&fps, 4);
        // Zero-distance duplicates collapse: exactly two clusters survive.
        assert_eq!(reps.len(), 2, "reps: {reps:?}");
        assert!(reps[0].interval < 5 && reps[1].interval >= 5);
        assert_eq!(reps[0].cluster_size, 5);
        assert_eq!(reps[1].cluster_size, 4);
        assert!((reps[0].weight - 5.0).abs() < 1e-9);
        assert!((reps[1].weight - 4.0).abs() < 1e-9);
    }

    #[test]
    fn weights_reconstruct_total_ops() {
        let fps = profile(128, &[(640, 0x400, 0), (512, 0x9000_0400, 0x100_0000), (200, 0x400, 0)]);
        let total: u64 = fps.iter().map(|f| f.ops).sum();
        for k in 1..=5 {
            let reps = select(&fps, k);
            let rebuilt: f64 = reps.iter().map(|r| r.weight * fps[r.interval].ops as f64).sum();
            assert!((rebuilt - total as f64).abs() < 1e-6, "k={k}: rebuilt {rebuilt} vs {total}");
        }
    }

    #[test]
    fn selection_is_deterministic() {
        let fps = profile(100, &[(730, 0x400, 0), (570, 0x9000_0400, 0x100_0000)]);
        let a = select(&fps, 3);
        let b = select(&fps, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let fps = profile(128, &[(320, 0x400, 0)]);
        let reps = select(&fps, 100);
        assert!(reps.len() <= 3);
        let covered: usize = reps.iter().map(|r| r.cluster_size).sum();
        assert_eq!(covered, 3, "every interval must belong to a cluster");
    }

    #[test]
    fn empty_inputs() {
        assert!(select(&[], 4).is_empty());
        let fps = profile(100, &[(100, 0x400, 0)]);
        assert!(select(&fps, 0).is_empty());
        assert!(IntervalProfiler::new(cfg(100)).finish().is_empty());
    }
}
