//! # selcache-analysis
//!
//! Locality analysis over selcache traces:
//!
//! - [`ReuseProfiler`] — exact LRU reuse distances in O(N log N) and
//!   Mattson miss-ratio curves (one pass, every cache size).
//! - [`ReuseSpectrum`] / [`CacheModel`] — exact distance spectra and the
//!   binomial fully-associative → set-associative projection, evaluating
//!   arbitrary `(sets, assoc)` grids from one profile.
//! - [`PhaseDetector`] — working-set phase detection, quantifying the
//!   "phase-by-phase nature" the paper's selective scheme exploits.
//! - [`TraceProfile`] — per-array traffic, read/write mix, and
//!   sequentiality of a trace.
//!
//! ## Example
//!
//! ```
//! use selcache_analysis::ReuseProfiler;
//! use selcache_ir::{Interp, ProgramBuilder, Subscript};
//!
//! let mut b = ProgramBuilder::new("sweep");
//! let a = b.array("A", &[4096], 8);
//! b.loop_(4096, |b, i| {
//!     b.stmt(|s| { s.read(a, vec![Subscript::var(i)]); });
//! });
//! let p = b.finish()?;
//! let mut prof = ReuseProfiler::new(32);
//! for op in Interp::new(&p) {
//!     if let Some(addr) = op.kind.addr() {
//!         prof.record(addr);
//!     }
//! }
//! // A single streaming pass never reuses a block (beyond intra-block hits).
//! let curve = prof.miss_ratio_curve(&[32 * 1024]);
//! assert!(curve[0].1 > 0.2);
//! # Ok::<(), selcache_ir::ProgramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fenwick;
mod interval;
mod model;
mod phase;
mod profile;
mod reuse;

pub use fenwick::Fenwick;
pub use interval::{select, IntervalConfig, IntervalFingerprint, IntervalProfiler, Representative};
pub use model::{hit_probability, CacheModel, ReuseSpectrum};
pub use phase::{Phase, PhaseConfig, PhaseDetector};
pub use profile::{ArrayProfile, RegionProfiles, TraceProfile};
pub use reuse::{Distance, Histogram, ReuseProfiler};
