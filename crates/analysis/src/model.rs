//! Analytical set-associative cache model over exact reuse-distance
//! spectra.
//!
//! [`ReuseProfiler`](crate::ReuseProfiler) yields the exact LRU reuse
//! distance of every access; a [`ReuseSpectrum`] accumulates those
//! distances *without* the log₂ bucketing of
//! [`Histogram`](crate::Histogram), so a fully-associative miss ratio is
//! exact at every capacity, not just powers of two.
//!
//! On top of the spectrum sits the classic binomial projection from a
//! fully-associative profile to a set-associative cache (Hill & Smith,
//! and the analytical fully-associative model literature): an access with
//! reuse distance `D` hits an `S`-set, `A`-way LRU cache when fewer than
//! `A` of the `D` distinct intervening blocks land in its own set. Under
//! the usual uniform-mapping assumption that count is `Binomial(D, 1/S)`,
//! so
//!
//! ```text
//! P(hit | D) = P[Binomial(D, 1/S) <= A - 1]
//! ```
//!
//! and the expected miss ratio of the whole trace is one minus the
//! spectrum-weighted average of that probability (cold misses always
//! miss). With `S = 1` the binomial degenerates to the exact Mattson
//! condition `D < A`, so the projection is *exact* for fully-associative
//! caches and an approximation — good for irregular streams, weaker for
//! pathologically strided ones — everywhere else.
//!
//! [`CacheModel`] snapshots a spectrum into a form optimized for
//! evaluating many `(sets, assoc)` points: hundreds of grid points cost
//! microseconds each, which is what lets a design-space sweep run from a
//! single trace traversal.

use crate::reuse::Distance;
use std::collections::BTreeMap;

/// Exact reuse-distance spectrum: how many accesses saw each distance,
/// plus the cold (first-touch) count.
///
/// ```
/// use selcache_analysis::{Distance, ReuseProfiler, ReuseSpectrum};
/// use selcache_ir::Addr;
///
/// let mut prof = ReuseProfiler::new(32);
/// let mut spec = ReuseSpectrum::new();
/// for block in [0u64, 1, 2, 0, 1, 2] {
///     spec.record(prof.record(Addr(block * 32)));
/// }
/// // Three cold touches, three reuses at distance 2.
/// assert_eq!(spec.cold(), 3);
/// assert_eq!(spec.total(), 6);
/// // A 4-block fully-associative cache holds the loop: only cold misses.
/// assert!((spec.model().miss_ratio(1, 4) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReuseSpectrum {
    /// Distance → access count, ordered so sums are deterministic.
    counts: BTreeMap<u64, u64>,
    cold: u64,
    total: u64,
}

impl ReuseSpectrum {
    /// An empty spectrum.
    pub fn new() -> Self {
        ReuseSpectrum::default()
    }

    /// Records one access's reuse distance.
    pub fn record(&mut self, d: Distance) {
        self.total += 1;
        match d {
            Distance::Cold => self.cold += 1,
            Distance::Finite(n) => *self.counts.entry(n).or_insert(0) += 1,
        }
    }

    /// Total recorded accesses.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cold (first-touch) accesses.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Exact fully-associative LRU miss ratio at a capacity of `blocks`
    /// lines (Mattson: an access hits iff its distance is `< blocks`).
    pub fn fa_miss_ratio(&self, blocks: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = self.counts.range(..blocks).map(|(_, c)| c).sum();
        1.0 - hits as f64 / self.total as f64
    }

    /// Snapshots the spectrum into a [`CacheModel`] for repeated
    /// `(sets, assoc)` queries.
    pub fn model(&self) -> CacheModel {
        // Exact distances up to EXACT_LIMIT; log-linear bins above, each
        // carrying its weighted-mean distance so the binomial projection
        // sees a faithful representative.
        const EXACT_LIMIT: u64 = 1024;
        const BINS_PER_OCTAVE: u64 = 32;
        let mut exact: Vec<(u64, u64)> = Vec::new();
        let mut bins: BTreeMap<(u32, u64), (f64, u64)> = BTreeMap::new();
        for (&d, &c) in &self.counts {
            if d < EXACT_LIMIT {
                exact.push((d, c));
            } else {
                let octave = 63 - d.leading_zeros();
                let step = (1u64 << octave) / BINS_PER_OCTAVE;
                let sub = (d - (1u64 << octave)) / step.max(1);
                let e = bins.entry((octave, sub)).or_insert((0.0, 0));
                e.0 += d as f64 * c as f64;
                e.1 += c;
            }
        }
        let mut entries: Vec<(f64, u64)> = exact.iter().map(|&(d, c)| (d as f64, c)).collect();
        entries.extend(bins.values().map(|&(sum, c)| (sum / c as f64, c)));
        CacheModel { entries, exact, cold: self.cold, total: self.total }
    }
}

/// Probability that an access with reuse distance `distance` hits an
/// `sets`-set, `assoc`-way LRU cache, under the binomial uniform-mapping
/// model. Exact when `sets == 1`.
///
/// `distance` is fractional to admit binned spectra; the binomial
/// coefficient extends continuously.
pub fn hit_probability(distance: f64, sets: u64, assoc: u32) -> f64 {
    debug_assert!(sets >= 1 && assoc >= 1);
    if sets <= 1 {
        return if distance < assoc as f64 { 1.0 } else { 0.0 };
    }
    if distance < 1.0 {
        // No intervening distinct block can conflict.
        return 1.0;
    }
    let d = distance;
    let p = 1.0 / sets as f64;
    let ln_p = p.ln();
    let ln_q = (1.0 - p).ln();
    // Sum Binomial(d, p) mass for k = 0 .. min(assoc, d+1) - 1 in log
    // space: ln C(d, k) accumulates term by term, so the sum is stable
    // even when (1-p)^d underflows a direct product.
    let kmax = (assoc as f64 - 1.0).min(d.floor());
    let mut ln_choose = 0.0;
    let mut prob = 0.0;
    let mut k = 0.0;
    while k <= kmax {
        if k > 0.0 {
            ln_choose += ((d - k + 1.0) / k).ln();
        }
        prob += (ln_choose + k * ln_p + (d - k) * ln_q).exp();
        k += 1.0;
    }
    prob.clamp(0.0, 1.0)
}

/// A reuse spectrum frozen for fast evaluation of many cache geometries.
///
/// Built by [`ReuseSpectrum::model`]; the exact sub-spectrum keeps
/// fully-associative queries exact while long distances are binned
/// (32 bins per octave) so a grid point costs `O(entries × assoc)`.
#[derive(Debug, Clone)]
pub struct CacheModel {
    /// `(representative distance, count)`, exact below 1024.
    entries: Vec<(f64, u64)>,
    /// Exact `(distance, count)` pairs below the binning threshold.
    exact: Vec<(u64, u64)>,
    cold: u64,
    total: u64,
}

impl CacheModel {
    /// Expected miss ratio of an `sets`-set, `assoc`-way LRU cache over
    /// the profiled trace. Exact for `sets == 1` (fully associative);
    /// the binomial uniform-mapping projection otherwise.
    pub fn miss_ratio(&self, sets: u64, assoc: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let capacity = sets.saturating_mul(assoc as u64);
        if sets <= 1 {
            // Exact Mattson path: distances below the binning threshold
            // are exact, and binned entries are far above any
            // single-set capacity that matters — compare against the
            // representative either way.
            let mut hits = 0u64;
            for &(d, c) in &self.exact {
                if d < capacity {
                    hits += c;
                }
            }
            for &(d, c) in &self.entries[self.exact.len()..] {
                if d < capacity as f64 {
                    hits += c;
                }
            }
            return 1.0 - hits as f64 / self.total as f64;
        }
        let mut expected_hits = 0.0;
        for &(d, c) in &self.entries {
            // Distances at or beyond the cache's block count cannot hit
            // even fully associatively; skip the binomial there.
            if d >= capacity as f64 {
                continue;
            }
            expected_hits += c as f64 * hit_probability(d, sets, assoc);
        }
        1.0 - expected_hits / self.total as f64
    }

    /// Total accesses in the underlying spectrum.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cold accesses in the underlying spectrum (a lower bound on misses
    /// for every geometry).
    pub fn cold(&self) -> u64 {
        self.cold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse::ReuseProfiler;
    use selcache_ir::Addr;

    fn spectrum_of(blocks: &[u64]) -> ReuseSpectrum {
        let mut prof = ReuseProfiler::new(32);
        let mut spec = ReuseSpectrum::new();
        for &b in blocks {
            spec.record(prof.record(Addr(b * 32)));
        }
        spec
    }

    #[test]
    fn fa_ratio_is_exact_at_any_capacity() {
        // Cyclic sweep over 100 blocks, 3 rounds: reuse distance 99.
        let stream: Vec<u64> = (0..3).flat_map(|_| 0..100u64).collect();
        let spec = spectrum_of(&stream);
        // 100-line cache: only the 100 cold misses. 99 lines: all miss.
        assert!((spec.fa_miss_ratio(100) - 100.0 / 300.0).abs() < 1e-12);
        assert!((spec.fa_miss_ratio(99) - 1.0).abs() < 1e-12);
        // The model's sets==1 path agrees exactly.
        let m = spec.model();
        assert!((m.miss_ratio(1, 100) - spec.fa_miss_ratio(100)).abs() < 1e-12);
        assert!((m.miss_ratio(1, 99) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hit_probability_degenerates_to_mattson_for_one_set() {
        assert_eq!(hit_probability(3.0, 1, 4), 1.0);
        assert_eq!(hit_probability(4.0, 1, 4), 0.0);
        assert_eq!(hit_probability(0.0, 64, 1), 1.0);
    }

    #[test]
    fn hit_probability_is_monotone() {
        // More ways or more sets never hurt; longer distances never help.
        for d in [1.0, 7.0, 100.0, 5000.0] {
            for sets in [2u64, 16, 256] {
                for a in 1..8u32 {
                    assert!(hit_probability(d, sets, a + 1) >= hit_probability(d, sets, a) - 1e-12);
                    assert!(hit_probability(d, sets * 2, a) >= hit_probability(d, sets, a) - 1e-12);
                }
            }
        }
        for sets in [2u64, 16] {
            for a in [1u32, 4] {
                let mut last = 1.0;
                for d in 1..200 {
                    let p = hit_probability(d as f64, sets, a);
                    assert!(p <= last + 1e-12, "d={d} sets={sets} a={a}");
                    last = p;
                }
            }
        }
    }

    #[test]
    fn hit_probability_survives_huge_distances() {
        // (1-p)^d underflows a direct product here; the log-space sum
        // must return a clean 0-ish probability, not NaN.
        let p = hit_probability(50_000_000.0, 64, 8);
        assert!(p.is_finite() && (0.0..=1e-6).contains(&p), "{p}");
        // And a huge cache still hits short distances.
        assert!(hit_probability(4.0, 1 << 20, 8) > 0.999_999);
    }

    #[test]
    fn projection_interpolates_between_capacity_bounds() {
        // Random-ish stream: the set-associative estimate must sit
        // between the FA ratio at full capacity (lower bound on misses)
        // and the FA ratio at `assoc` lines (conflict-free upper bound).
        let mut state = 12345u64;
        let stream: Vec<u64> = (0..20_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) % 4096
            })
            .collect();
        let spec = spectrum_of(&stream);
        let m = spec.model();
        for (sets, assoc) in [(64u64, 2u32), (128, 4), (256, 8)] {
            let est = m.miss_ratio(sets, assoc);
            let fa_full = spec.fa_miss_ratio(sets * assoc as u64);
            let fa_ways = spec.fa_miss_ratio(assoc as u64);
            assert!(
                est >= fa_full - 1e-9 && est <= fa_ways + 1e-9,
                "sets={sets} assoc={assoc}: est {est:.4} outside [{fa_full:.4}, {fa_ways:.4}]"
            );
        }
    }

    #[test]
    fn model_miss_ratio_monotone_in_geometry() {
        let mut state = 7u64;
        let stream: Vec<u64> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                (state >> 40) % 1500
            })
            .collect();
        let m = spectrum_of(&stream).model();
        for assoc in [1u32, 2, 4, 8] {
            let mut last = 1.0;
            for sets in [16u64, 32, 64, 128, 256, 512] {
                let r = m.miss_ratio(sets, assoc);
                assert!(r <= last + 1e-9, "sets={sets} assoc={assoc}: {r} > {last}");
                last = r;
            }
        }
        for sets in [32u64, 128] {
            let mut last = 1.0;
            for assoc in [1u32, 2, 4, 8, 16] {
                let r = m.miss_ratio(sets, assoc);
                assert!(r <= last + 1e-9, "sets={sets} assoc={assoc}: {r} > {last}");
                last = r;
            }
        }
    }

    #[test]
    fn empty_spectrum_reports_zero() {
        let spec = ReuseSpectrum::new();
        assert_eq!(spec.fa_miss_ratio(64), 0.0);
        assert_eq!(spec.model().miss_ratio(16, 4), 0.0);
        assert_eq!(spec.model().total(), 0);
    }

    #[test]
    fn binned_tail_stays_close_to_exact() {
        // A stream with long distances (beyond the exact limit): binning
        // must not move the FA curve by more than the bin width implies.
        let n = 5000u64;
        let stream: Vec<u64> = (0..3).flat_map(|_| 0..n).collect();
        let spec = spectrum_of(&stream);
        let m = spec.model();
        // All reuses sit at distance 4999; capacities straddling it flip
        // between all-miss and cold-only.
        assert!((m.miss_ratio(1, (n + 1) as u32) - spec.fa_miss_ratio(n + 1)).abs() < 1e-9);
        assert!((m.miss_ratio(1, 4096) - 1.0).abs() < 1e-9);
    }
}
