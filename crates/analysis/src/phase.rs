//! Phase detection over access streams.
//!
//! The paper's central argument for *selective* assist control is that
//! "many programs have a phase-by-phase nature": hardware state trained in
//! one phase misleads the next. This module detects those phases from the
//! address stream by comparing working-set signatures of consecutive
//! windows.

use selcache_ir::Addr;

/// Configuration of the phase detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseConfig {
    /// Accesses per comparison window.
    pub window: usize,
    /// Block granularity of the working-set signature.
    pub block_size: u64,
    /// Signature bits (power of two).
    pub signature_bits: usize,
    /// Jaccard similarity below which a window starts a new phase.
    pub threshold: f64,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig { window: 4096, block_size: 32, signature_bits: 8192, threshold: 0.4 }
    }
}

/// A detected phase: a run of windows with similar working sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// First access index of the phase.
    pub start: usize,
    /// One past the last access index.
    pub end: usize,
}

impl Phase {
    /// Accesses in the phase.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the phase is empty.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Streaming working-set phase detector.
///
/// ```
/// use selcache_analysis::{PhaseConfig, PhaseDetector};
/// use selcache_ir::Addr;
///
/// let cfg = PhaseConfig { window: 64, ..PhaseConfig::default() };
/// let mut d = PhaseDetector::new(cfg);
/// for i in 0..256u64 { d.record(Addr(i * 32)); }          // streaming phase
/// for _ in 0..256u64 { d.record(Addr(0x10_0000)); }       // hot-spot phase
/// let phases = d.finish();
/// assert!(phases.len() >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    cfg: PhaseConfig,
    current: Vec<u64>,
    previous: Option<Vec<u64>>,
    in_window: usize,
    accesses: usize,
    phase_start: usize,
    phases: Vec<Phase>,
}

fn jaccard(a: &[u64], b: &[u64]) -> f64 {
    let mut inter = 0u32;
    let mut union = 0u32;
    for (&x, &y) in a.iter().zip(b) {
        inter += (x & y).count_ones();
        union += (x | y).count_ones();
    }
    if union == 0 {
        1.0
    } else {
        f64::from(inter) / f64::from(union)
    }
}

impl PhaseDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero window, non-power-of-
    /// two signature).
    pub fn new(cfg: PhaseConfig) -> Self {
        assert!(cfg.window > 0, "window must be positive");
        assert!(cfg.signature_bits.is_power_of_two(), "signature bits must be a power of two");
        PhaseDetector {
            current: vec![0; cfg.signature_bits / 64],
            previous: None,
            in_window: 0,
            accesses: 0,
            phase_start: 0,
            phases: Vec::new(),
            cfg,
        }
    }

    /// Records one data access.
    pub fn record(&mut self, addr: Addr) {
        let block = addr.block(self.cfg.block_size);
        // Multiplicative hash into the signature.
        let h = (block.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
            & (self.cfg.signature_bits - 1);
        self.current[h / 64] |= 1 << (h % 64);
        self.in_window += 1;
        self.accesses += 1;
        if self.in_window == self.cfg.window {
            self.close_window();
        }
    }

    fn close_window(&mut self) {
        let sig = std::mem::replace(&mut self.current, vec![0; self.cfg.signature_bits / 64]);
        if let Some(prev) = &self.previous {
            if jaccard(prev, &sig) < self.cfg.threshold {
                // New phase begins at the start of the window just closed.
                let start = self.accesses - self.cfg.window;
                self.phases.push(Phase { start: self.phase_start, end: start });
                self.phase_start = start;
            }
        }
        self.previous = Some(sig);
        self.in_window = 0;
    }

    /// Finishes the stream and returns the detected phases (at least one,
    /// covering the whole stream, when any access was recorded).
    pub fn finish(mut self) -> Vec<Phase> {
        if self.accesses == 0 {
            return Vec::new();
        }
        self.phases.push(Phase { start: self.phase_start, end: self.accesses });
        self.phases.retain(|p| !p.is_empty());
        self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PhaseConfig {
        PhaseConfig { window: 128, block_size: 32, signature_bits: 512, threshold: 0.4 }
    }

    #[test]
    fn uniform_stream_is_one_phase() {
        let mut d = PhaseDetector::new(cfg());
        for i in 0..2048u64 {
            d.record(Addr((i % 64) * 32));
        }
        let phases = d.finish();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0], Phase { start: 0, end: 2048 });
    }

    #[test]
    fn two_disjoint_working_sets_are_two_phases() {
        let mut d = PhaseDetector::new(cfg());
        for i in 0..1024u64 {
            d.record(Addr((i % 64) * 32));
        }
        for i in 0..1024u64 {
            d.record(Addr(0x100_0000 + (i % 64) * 32));
        }
        let phases = d.finish();
        assert_eq!(phases.len(), 2, "phases: {phases:?}");
        assert!(phases[0].end >= 1024 - 128 && phases[0].end <= 1024 + 128);
        // Phases tile the stream.
        assert_eq!(phases[0].start, 0);
        assert_eq!(phases.last().unwrap().end, 2048);
        assert_eq!(phases[0].end, phases[1].start);
    }

    #[test]
    fn alternating_phases_detected() {
        let mut d = PhaseDetector::new(cfg());
        for round in 0..4u64 {
            let base = if round % 2 == 0 { 0u64 } else { 0x100_0000 };
            for i in 0..512u64 {
                d.record(Addr(base + (i % 64) * 32));
            }
        }
        let phases = d.finish();
        assert!(phases.len() >= 4, "expected >= 4 phases, got {phases:?}");
    }

    #[test]
    fn empty_stream_has_no_phases() {
        let d = PhaseDetector::new(cfg());
        assert!(d.finish().is_empty());
    }

    #[test]
    fn short_stream_single_phase() {
        let mut d = PhaseDetector::new(cfg());
        for i in 0..50u64 {
            d.record(Addr(i * 32));
        }
        let phases = d.finish();
        assert_eq!(phases, vec![Phase { start: 0, end: 50 }]);
    }
}
