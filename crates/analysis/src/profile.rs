//! Access profiling: per-array traffic, read/write mix, and stride
//! distribution of a trace — the quantities the paper's compiler reasons
//! about statically, measured dynamically.

use selcache_ir::{Addr, ArrayId, OpKind, Program, RegionMap, TraceOp};
use std::fmt;

/// Per-array dynamic access statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArrayProfile {
    /// Loads to the array.
    pub reads: u64,
    /// Stores to the array.
    pub writes: u64,
    /// Accesses at unit-or-smaller stride relative to the previous access
    /// to the same array (|Δ| ≤ 8 bytes).
    pub sequential: u64,
    /// Accesses that jumped more than 256 bytes.
    pub jumps: u64,
    last_addr: Option<u64>,
}

impl ArrayProfile {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of accesses that were sequential.
    pub fn sequential_share(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.sequential as f64 / self.total() as f64
        }
    }
}

/// A whole-trace access profile for one program.
#[derive(Debug, Clone)]
pub struct TraceProfile {
    names: Vec<String>,
    ranges: Vec<(u64, u64)>,
    per_array: Vec<ArrayProfile>,
    /// Accesses outside any array (scalar segment).
    pub scalar_accesses: u64,
    /// Total memory accesses.
    pub total: u64,
}

impl TraceProfile {
    /// Creates an empty profile for a program's address map.
    pub fn new(program: &Program) -> Self {
        let map = program.address_map();
        let ranges: Vec<(u64, u64)> = program
            .arrays
            .iter()
            .enumerate()
            .map(|(k, a)| {
                let base = map.array_base(ArrayId(k as u32)).0;
                (base, base + a.size_bytes())
            })
            .collect();
        TraceProfile {
            names: program.arrays.iter().map(|a| a.name.clone()).collect(),
            per_array: vec![ArrayProfile::default(); program.arrays.len()],
            ranges,
            scalar_accesses: 0,
            total: 0,
        }
    }

    /// Profiles an entire trace.
    pub fn profile(program: &Program, trace: impl IntoIterator<Item = TraceOp>) -> Self {
        let mut p = Self::new(program);
        for op in trace {
            p.record(&op);
        }
        p
    }

    fn array_of(&self, addr: Addr) -> Option<usize> {
        // Arrays are laid out in ascending order: binary search by base.
        let i = self.ranges.partition_point(|&(base, _)| base <= addr.0);
        if i == 0 {
            return None;
        }
        let (base, end) = self.ranges[i - 1];
        (addr.0 >= base && addr.0 < end).then_some(i - 1)
    }

    /// Records one op (non-memory ops are ignored).
    pub fn record(&mut self, op: &TraceOp) {
        let (addr, write) = match op.kind {
            OpKind::Load(a) => (a, false),
            OpKind::Store(a) => (a, true),
            _ => return,
        };
        self.total += 1;
        let Some(k) = self.array_of(addr) else {
            self.scalar_accesses += 1;
            return;
        };
        let p = &mut self.per_array[k];
        if write {
            p.writes += 1;
        } else {
            p.reads += 1;
        }
        if let Some(last) = p.last_addr {
            let delta = addr.0.abs_diff(last);
            if delta <= 8 {
                p.sequential += 1;
            } else if delta > 256 {
                p.jumps += 1;
            }
        }
        p.last_addr = Some(addr.0);
    }

    /// Profiles per array, with names.
    pub fn arrays(&self) -> impl Iterator<Item = (&str, &ArrayProfile)> {
        self.names.iter().map(|n| n.as_str()).zip(self.per_array.iter())
    }

    /// The profile of the array with the given name, if any.
    pub fn by_name(&self, name: &str) -> Option<&ArrayProfile> {
        self.names.iter().position(|n| n == name).map(|k| &self.per_array[k])
    }
}

/// Access profiles split by a region partition: one [`TraceProfile`] per
/// region, plus a trailing *(outside)* bucket for ops with no region stamp.
///
/// Feed it a trace from [`selcache_ir::Interp::with_regions`] so each op
/// carries the region of its issuing site; the per-region totals then sum
/// exactly to the whole-trace totals.
#[derive(Debug, Clone)]
pub struct RegionProfiles {
    labels: Vec<String>,
    profiles: Vec<TraceProfile>,
}

impl RegionProfiles {
    /// Profiles a trace, splitting ops by their region stamp.
    pub fn profile(
        program: &Program,
        map: &RegionMap,
        trace: impl IntoIterator<Item = TraceOp>,
    ) -> Self {
        let mut labels: Vec<String> = map.labels().to_vec();
        labels.push("(outside)".into());
        let mut profiles = vec![TraceProfile::new(program); labels.len()];
        let outside = labels.len() - 1;
        for op in trace {
            let k = if op.region.is_none() { outside } else { op.region.index().min(outside) };
            profiles[k].record(&op);
        }
        RegionProfiles { labels, profiles }
    }

    /// Per-region profiles, with the partition's labels (the last entry is
    /// the *(outside)* bucket).
    pub fn regions(&self) -> impl Iterator<Item = (&str, &TraceProfile)> {
        self.labels.iter().map(|l| l.as_str()).zip(self.profiles.iter())
    }

    /// The profile of the region with the given label, if any.
    pub fn by_label(&self, label: &str) -> Option<&TraceProfile> {
        self.labels.iter().position(|l| l == label).map(|k| &self.profiles[k])
    }

    /// Total memory accesses across every region — equals the whole-trace
    /// [`TraceProfile::total`].
    pub fn total(&self) -> u64 {
        self.profiles.iter().map(|p| p.total).sum()
    }
}

impl fmt::Display for TraceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>10} {:>10} {:>8} {:>8}",
            "array", "reads", "writes", "seq%", "jump%"
        )?;
        for (name, p) in self.arrays() {
            if p.total() == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<12} {:>10} {:>10} {:>7.1}% {:>7.1}%",
                name,
                p.reads,
                p.writes,
                p.sequential_share() * 100.0,
                p.jumps as f64 / p.total() as f64 * 100.0
            )?;
        }
        writeln!(f, "scalar segment: {} accesses", self.scalar_accesses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{Interp, ProgramBuilder, Subscript};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64], 8);
        let c = b.array("C", &[64, 8], 8);
        let s = b.scalar();
        b.loop_(64, |b, i| {
            b.stmt(|st| {
                st.read(a, vec![Subscript::var(i)])
                    .read(
                        c,
                        vec![
                            Subscript::Affine(selcache_ir::AffineExpr::linear(i, 1, 0)),
                            Subscript::constant(0),
                        ],
                    )
                    .read_scalar(s)
                    .fp(1)
                    .write(a, vec![Subscript::var(i)]);
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn counts_split_per_array() {
        let p = sample();
        let prof = TraceProfile::profile(&p, Interp::new(&p));
        let a = prof.by_name("A").unwrap();
        assert_eq!(a.reads, 64);
        assert_eq!(a.writes, 64);
        let c = prof.by_name("C").unwrap();
        assert_eq!(c.reads, 64);
        assert_eq!(c.writes, 0);
        assert_eq!(prof.scalar_accesses, 64);
        assert_eq!(prof.total, 64 * 4);
    }

    #[test]
    fn sequentiality_detected() {
        let p = sample();
        let prof = TraceProfile::profile(&p, Interp::new(&p));
        // A alternates read/write at the same element then advances 8 bytes:
        // every access is within 8 bytes of the previous.
        assert!(prof.by_name("A").unwrap().sequential_share() > 0.9);
        // C strides 64 bytes per iteration: mostly jumps of 64 <= 256.
        let c = prof.by_name("C").unwrap();
        assert_eq!(c.jumps, 0);
        assert!(c.sequential_share() < 0.1);
    }

    #[test]
    fn region_profiles_sum_to_whole_trace() {
        use selcache_ir::RegionMapBuilder;
        let p = sample();
        let whole = TraceProfile::profile(&p, Interp::new(&p));
        // One region covering every site of the single loop.
        let mut b = RegionMapBuilder::new();
        b.open("L0");
        b.sites(selcache_ir::site_count(&p.items));
        let map = b.finish();
        let by_region = RegionProfiles::profile(&p, &map, Interp::with_regions(&p, &map));
        assert_eq!(by_region.total(), whole.total);
        let l0 = by_region.by_label("L0").unwrap();
        assert_eq!(l0.total, whole.total, "all ops land in the single region");
        assert_eq!(l0.by_name("A").unwrap(), whole.by_name("A").unwrap());
        assert_eq!(by_region.by_label("(outside)").unwrap().total, 0);
    }

    #[test]
    fn sequential_share_zero_on_empty_profile() {
        assert_eq!(ArrayProfile::default().sequential_share(), 0.0);
    }

    #[test]
    fn display_renders() {
        let p = sample();
        let prof = TraceProfile::profile(&p, Interp::new(&p));
        let text = prof.to_string();
        assert!(text.contains("A"));
        assert!(text.contains("scalar segment"));
    }
}
