//! LRU reuse-distance (stack-distance) profiling.
//!
//! The reuse distance of an access is the number of *distinct* blocks
//! touched since the previous access to the same block. By Mattson's
//! inclusion property, a fully-associative LRU cache of `C` blocks hits an
//! access iff its reuse distance is `< C` — so one profile yields the miss
//! ratio of **every** cache size at once.

use crate::fenwick::Fenwick;
use selcache_ir::Addr;
use std::collections::HashMap;

/// Reuse distance of one access: finite for a reuse, `Cold` for a first
/// touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distance {
    /// First access to the block.
    Cold,
    /// Number of distinct blocks since the previous access.
    Finite(u64),
}

/// Streaming reuse-distance profiler over block-grain addresses.
///
/// ```
/// use selcache_analysis::{Distance, ReuseProfiler};
/// use selcache_ir::Addr;
///
/// let mut p = ReuseProfiler::new(32);
/// assert_eq!(p.record(Addr(0)), Distance::Cold);
/// assert_eq!(p.record(Addr(64)), Distance::Cold);
/// // A comes back after one distinct block (B):
/// assert_eq!(p.record(Addr(0)), Distance::Finite(1));
/// ```
#[derive(Debug, Clone)]
pub struct ReuseProfiler {
    block_size: u64,
    /// Last access timestamp per block.
    last: HashMap<u64, usize>,
    /// Marks at the last-access time of every currently-live block.
    marks: Fenwick,
    time: usize,
    histogram: Histogram,
}

/// Log₂-bucketed reuse-distance histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[k]` counts distances in `[2^(k-1), 2^k)` (`buckets[0]` is
    /// distance 0).
    pub buckets: Vec<u64>,
    /// Cold (first-touch) accesses.
    pub cold: u64,
    /// Total recorded accesses.
    pub total: u64,
}

impl Histogram {
    fn record(&mut self, d: Distance) {
        self.total += 1;
        match d {
            Distance::Cold => self.cold += 1,
            Distance::Finite(n) => {
                let bucket = if n == 0 { 0 } else { 64 - n.leading_zeros() as usize };
                if self.buckets.len() <= bucket {
                    self.buckets.resize(bucket + 1, 0);
                }
                self.buckets[bucket] += 1;
            }
        }
    }

    /// The reuse-distance value below which fraction `q` of the *finite*
    /// reuses fall (bucket upper bound; cold misses are excluded). Returns
    /// `None` when there are no finite reuses or `q` is outside `(0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if !(0.0..=1.0).contains(&q) || q == 0.0 {
            return None;
        }
        let finite: u64 = self.buckets.iter().sum();
        if finite == 0 {
            return None;
        }
        let target = (q * finite as f64).ceil() as u64;
        let mut seen = 0u64;
        for (k, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(if k == 0 { 0 } else { (1u64 << k) - 1 });
            }
        }
        Some((1u64 << (self.buckets.len() - 1)) - 1)
    }

    /// Miss ratio of a fully-associative LRU cache of `blocks` lines,
    /// derived from the histogram (bucket-granular, so an upper bound).
    pub fn miss_ratio(&self, blocks: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut hits = 0u64;
        for (k, &count) in self.buckets.iter().enumerate() {
            // Bucket k covers distances < 2^k; count as hits only if the
            // whole bucket fits (upper-bound miss ratio).
            let upper = if k == 0 { 0 } else { (1u64 << k) - 1 };
            if upper < blocks {
                hits += count;
            }
        }
        1.0 - hits as f64 / self.total as f64
    }
}

impl ReuseProfiler {
    /// Creates a profiler at the given block granularity.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        ReuseProfiler {
            block_size,
            last: HashMap::new(),
            marks: Fenwick::new(1024),
            time: 0,
            histogram: Histogram::default(),
        }
    }

    /// Records one access and returns its reuse distance.
    pub fn record(&mut self, addr: Addr) -> Distance {
        let block = addr.block(self.block_size);
        if self.time >= self.marks.len() {
            self.marks.grow(self.marks.len() * 2);
        }
        let d = match self.last.insert(block, self.time) {
            None => Distance::Cold,
            Some(prev) => {
                let distinct = self.marks.range(prev + 1, self.time);
                self.marks.add(prev, -1);
                Distance::Finite(distinct)
            }
        };
        self.marks.add(self.time, 1);
        self.time += 1;
        self.histogram.record(d);
        d
    }

    /// The accumulated histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// Number of distinct blocks seen (the trace footprint).
    pub fn footprint_blocks(&self) -> usize {
        self.last.len()
    }

    /// Convenience: miss ratios at the given cache sizes (in bytes).
    pub fn miss_ratio_curve(&self, sizes: &[u64]) -> Vec<(u64, f64)> {
        sizes.iter().map(|&s| (s, self.histogram.miss_ratio(s / self.block_size))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(p: &mut ReuseProfiler, blocks: &[u64]) -> Vec<Distance> {
        blocks.iter().map(|&b| p.record(Addr(b * 32))).collect()
    }

    #[test]
    fn classic_sequence() {
        let mut p = ReuseProfiler::new(32);
        // a b c a : a's reuse distance is 2 (b, c).
        let d = addrs(&mut p, &[0, 1, 2, 0]);
        assert_eq!(d, vec![Distance::Cold, Distance::Cold, Distance::Cold, Distance::Finite(2)]);
    }

    #[test]
    fn repeated_access_is_distance_zero() {
        let mut p = ReuseProfiler::new(32);
        let d = addrs(&mut p, &[5, 5, 5]);
        assert_eq!(d[1], Distance::Finite(0));
        assert_eq!(d[2], Distance::Finite(0));
    }

    #[test]
    fn duplicates_between_reuses_count_once() {
        let mut p = ReuseProfiler::new(32);
        // a b b b a : distance 1, not 3.
        let d = addrs(&mut p, &[0, 1, 1, 1, 0]);
        assert_eq!(d[4], Distance::Finite(1));
    }

    #[test]
    fn sub_block_accesses_share_a_block() {
        let mut p = ReuseProfiler::new(32);
        assert_eq!(p.record(Addr(0)), Distance::Cold);
        assert_eq!(p.record(Addr(24)), Distance::Finite(0));
        assert_eq!(p.footprint_blocks(), 1);
    }

    #[test]
    fn cyclic_sweep_distances_equal_footprint() {
        let mut p = ReuseProfiler::new(32);
        let n = 100u64;
        for _ in 0..3 {
            for b in 0..n {
                p.record(Addr(b * 32));
            }
        }
        let h = p.histogram();
        assert_eq!(h.cold, n);
        assert_eq!(h.total, 3 * n);
        // All reuses have distance n-1 = 99 -> bucket covering 64..128.
        let bucket = 64 - 99u64.leading_zeros() as usize;
        assert_eq!(h.buckets[bucket], 2 * n);
    }

    #[test]
    fn percentile_tracks_distances() {
        let mut p = ReuseProfiler::new(32);
        // 100 reuses at distance 0, 100 at distance ~99.
        for _ in 0..101 {
            p.record(Addr(0));
        }
        let n = 100u64;
        for _ in 0..2 {
            for b in 1..=n {
                p.record(Addr(b * 32));
            }
        }
        let h = p.histogram();
        // Median splits between the two populations.
        let p50 = h.percentile(0.5).unwrap();
        assert!(p50 <= 127, "median {p50}");
        let p99 = h.percentile(0.99).unwrap();
        assert!(p99 >= 63, "p99 {p99}");
        assert!(h.percentile(0.0).is_none());
        assert!(h.percentile(1.5).is_none());
    }

    #[test]
    fn percentile_none_without_reuses() {
        let mut p = ReuseProfiler::new(32);
        p.record(Addr(0));
        p.record(Addr(32));
        assert!(p.histogram().percentile(0.5).is_none());
    }

    #[test]
    fn miss_ratio_curve_monotone_nonincreasing() {
        let mut p = ReuseProfiler::new(32);
        let mut state = 99u64;
        for _ in 0..5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p.record(Addr((state >> 30) % (1 << 14)));
        }
        let curve = p.miss_ratio_curve(&[1024, 4096, 16384, 65536, 1 << 20]);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12, "curve must be non-increasing: {curve:?}");
        }
    }

    #[test]
    fn matches_naive_lru_stack() {
        // Cross-check against an O(N·M) naive stack implementation.
        let mut p = ReuseProfiler::new(1);
        let mut stack: Vec<u64> = Vec::new();
        let mut state = 7u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let b = (state >> 40) % 50;
            let expected = match stack.iter().position(|&x| x == b) {
                Some(pos) => {
                    stack.remove(pos);
                    Distance::Finite(pos as u64)
                }
                None => Distance::Cold,
            };
            stack.insert(0, b);
            assert_eq!(p.record(Addr(b)), expected);
        }
    }
}
