//! Cross-validation of the analysis crate against the actual cache
//! simulator: Mattson miss-ratio curves must agree with fully-associative
//! LRU cache simulations of each size.

use selcache_analysis::{PhaseConfig, PhaseDetector, ReuseProfiler, ReuseSpectrum};
use selcache_ir::{Addr, Interp};
use selcache_mem::{Cache, CacheConfig, Replacement};
use selcache_workloads::{Benchmark, Scale};

/// Simulate an LRU cache of the given geometry over a block stream and
/// return its miss ratio.
fn lru_miss_ratio(stream: &[u64], sets: u64, assoc: u32) -> f64 {
    let mut cache = Cache::new(CacheConfig {
        size: sets * assoc as u64 * 32,
        assoc,
        block_size: 32,
        replacement: Replacement::Lru,
    });
    let mut misses = 0u64;
    for &a in stream {
        let b = cache.block_of(Addr(a));
        if !cache.access(b, false).is_hit() {
            misses += 1;
            cache.fill(b, false);
        }
    }
    misses as f64 / stream.len() as f64
}

/// Simulate a fully-associative LRU cache of `blocks` lines over a block
/// stream and return its miss ratio.
fn fa_lru_miss_ratio(stream: &[u64], blocks: u64) -> f64 {
    lru_miss_ratio(stream, 1, blocks as u32)
}

#[test]
fn mattson_curve_matches_direct_simulation() {
    // A benchmark trace at block granularity.
    let program = Benchmark::TpcDQ3.build(Scale::Tiny);
    let stream: Vec<u64> =
        Interp::new(&program).filter_map(|o| o.kind.addr().map(|a| a.0)).take(60_000).collect();

    let mut prof = ReuseProfiler::new(32);
    for &a in &stream {
        prof.record(Addr(a));
    }

    for blocks in [64u64, 256, 1024, 4096] {
        let direct = fa_lru_miss_ratio(&stream, blocks);
        // The histogram is log2-bucketed, so its estimate brackets the truth
        // between the exact ratios at the surrounding powers of two.
        let upper = prof.histogram().miss_ratio(blocks);
        assert!(
            upper >= direct - 1e-9,
            "blocks={blocks}: histogram {upper:.4} below direct {direct:.4}"
        );
        let lower = prof.histogram().miss_ratio(blocks * 2);
        assert!(
            lower <= direct + 1e-9,
            "blocks={blocks}: histogram(2x) {lower:.4} above direct {direct:.4}"
        );
    }
}

#[test]
fn exact_power_of_two_sizes_match_exactly() {
    // With distances recorded per power-of-two bucket, cache sizes that are
    // powers of two have exact curves on synthetic cyclic streams.
    let n = 100u64;
    let stream: Vec<u64> = (0..5).flat_map(|_| (0..n).map(|b| b * 32)).collect();
    let mut prof = ReuseProfiler::new(32);
    for &a in &stream {
        prof.record(Addr(a));
    }
    // A 128-block LRU cache holds the whole 100-block loop: only cold misses.
    let direct = fa_lru_miss_ratio(&stream, 128);
    let est = prof.histogram().miss_ratio(128);
    assert!((direct - n as f64 / stream.len() as f64).abs() < 1e-9);
    assert!((est - direct).abs() < 1e-9, "est {est} direct {direct}");
    // A 64-block cache misses everything (cyclic LRU worst case).
    assert!((fa_lru_miss_ratio(&stream, 64) - 1.0).abs() < 1e-9);
    assert!((prof.histogram().miss_ratio(64) - 1.0).abs() < 1e-9);
}

#[test]
fn set_assoc_projection_tracks_direct_simulation() {
    // The binomial projection from the fully-associative spectrum must
    // track a direct set-associative LRU simulation of the same stream
    // across a geometry grid, for regular, irregular, and database
    // benchmarks alike.
    for bm in [Benchmark::TpcDQ3, Benchmark::Li, Benchmark::Chaos] {
        let program = bm.build(Scale::Tiny);
        let stream: Vec<u64> =
            Interp::new(&program).filter_map(|o| o.kind.addr().map(|a| a.0)).take(60_000).collect();
        let mut prof = ReuseProfiler::new(32);
        let mut spec = ReuseSpectrum::new();
        for &a in &stream {
            spec.record(prof.record(Addr(a)));
        }
        let model = spec.model();
        let mut worst = 0.0f64;
        for (sets, assoc) in [(64u64, 2u32), (128, 2), (128, 4), (256, 4), (256, 8), (512, 8)] {
            let est = model.miss_ratio(sets, assoc);
            let direct = lru_miss_ratio(&stream, sets, assoc);
            worst = worst.max((est - direct).abs());
            assert!(
                (est - direct).abs() < 0.10,
                "{bm} sets={sets} assoc={assoc}: model {est:.4} vs direct {direct:.4}"
            );
        }
        // The grid as a whole should be much tighter than the per-point
        // worst-case bound.
        assert!(worst < 0.10, "{bm}: worst-case projection error {worst:.4}");
    }
}

#[test]
fn fully_associative_projection_is_exact() {
    // With one set the projection degenerates to Mattson and must equal
    // a direct fully-associative simulation exactly.
    let program = Benchmark::TpcDQ6.build(Scale::Tiny);
    let stream: Vec<u64> =
        Interp::new(&program).filter_map(|o| o.kind.addr().map(|a| a.0)).take(40_000).collect();
    let mut prof = ReuseProfiler::new(32);
    let mut spec = ReuseSpectrum::new();
    for &a in &stream {
        spec.record(prof.record(Addr(a)));
    }
    let model = spec.model();
    for blocks in [64u32, 256, 1000] {
        let direct = fa_lru_miss_ratio(&stream, blocks as u64);
        let est = model.miss_ratio(1, blocks);
        assert!(
            (est - direct).abs() < 1e-9,
            "blocks={blocks}: model {est:.6} vs direct {direct:.6}"
        );
    }
}

#[test]
fn phase_detector_sees_benchmark_phase_structure() {
    // Chaos alternates edge/node/grid phases every timestep.
    let program = Benchmark::Chaos.build(Scale::Tiny);
    let mut d = PhaseDetector::new(PhaseConfig {
        window: 8192,
        signature_bits: 32 * 1024,
        ..PhaseConfig::default()
    });
    let mut accesses = 0usize;
    for op in Interp::new(&program) {
        if let Some(a) = op.kind.addr() {
            d.record(a);
            accesses += 1;
        }
    }
    let phases = d.finish();
    assert!(phases.len() >= 3, "chaos should show >= 3 phases, got {}", phases.len());
    assert_eq!(phases.first().unwrap().start, 0);
    assert_eq!(phases.last().unwrap().end, accesses);
    // Phases tile the stream without gaps.
    for w in phases.windows(2) {
        assert_eq!(w[0].end, w[1].start);
    }
}
