//! Property tests for the phase detector and the interval selector built on
//! the same working-set signatures: determinism under repeated runs, the
//! signature-collision bound, and boundary placement accuracy on synthetic
//! two-phase streams.

use proptest::prelude::*;
use selcache_analysis::{
    select, IntervalConfig, IntervalProfiler, Phase, PhaseConfig, PhaseDetector,
};
use selcache_ir::Addr;

fn cfg() -> PhaseConfig {
    PhaseConfig { window: 128, block_size: 32, signature_bits: 512, threshold: 0.4 }
}

/// Deterministic pseudo-random block stream.
fn stream(seed: u64, len: usize, footprint: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 24) % footprint.max(1)
        })
        .collect()
}

fn detect(addrs: &[u64]) -> Vec<Phase> {
    let mut d = PhaseDetector::new(cfg());
    for &a in addrs {
        d.record(Addr(a * 32));
    }
    d.finish()
}

proptest! {
    /// The detector is a pure function of the stream: two runs over the same
    /// accesses produce identical phases, and the phases tile the stream.
    #[test]
    fn detection_is_deterministic_and_tiles(
        seed in any::<u64>(),
        len in 1usize..4000,
        footprint in 1u64..10_000,
    ) {
        let addrs = stream(seed, len, footprint);
        let a = detect(&addrs);
        let b = detect(&addrs);
        prop_assert_eq!(&a, &b);
        // Tiling: starts at 0, ends at len, contiguous, non-empty.
        prop_assert_eq!(a[0].start, 0);
        prop_assert_eq!(a.last().unwrap().end, len);
        for w in a.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        prop_assert!(a.iter().all(|p| !p.is_empty()));
    }

    /// Interval selection is deterministic too, and its weights always
    /// reconstruct the exact trace length regardless of the clustering
    /// outcome — the invariant the sampled mode's extrapolation rests on.
    #[test]
    fn selection_weights_reconstruct_ops(
        seed in any::<u64>(),
        len in 1usize..4000,
        footprint in 1u64..10_000,
        k in 1usize..6,
    ) {
        let addrs = stream(seed, len, footprint);
        let icfg = IntervalConfig {
            interval_ops: 256,
            max_intervals: k,
            signature_bits: 512,
            pc_buckets: 16,
        };
        let run = || {
            let mut p = IntervalProfiler::new(icfg);
            for (i, &a) in addrs.iter().enumerate() {
                p.record(0x40_0000 + (i as u64 % 32) * 4, Some(Addr(a * 32)));
            }
            p.finish()
        };
        let fps = run();
        prop_assert_eq!(&fps, &run());
        let reps_a = select(&fps, k);
        let reps_b = select(&fps, k);
        prop_assert_eq!(&reps_a, &reps_b);
        prop_assert!(!reps_a.is_empty() && reps_a.len() <= k);
        let rebuilt: f64 = reps_a.iter().map(|r| r.weight * fps[r.interval].ops as f64).sum();
        prop_assert!((rebuilt - len as f64).abs() < 1e-6, "rebuilt {} vs {}", rebuilt, len);
    }

    /// Signature-collision bound: the signature hashes blocks into a fixed
    /// number of bits, so a larger working set forces collisions — but a
    /// collision only merges bits, never creates spurious differences. Two
    /// windows over the *same* block set (in different orders) always hash
    /// to the same signature and can never split a phase, no matter how far
    /// the set size exceeds the signature size.
    #[test]
    fn collision_bound_keeps_identical_windows_together(
        seed in any::<u64>(),
        distinct in 1u64..2000,
        windows in 2usize..6,
    ) {
        // Window (2048) >= distinct, so each window covers the whole set;
        // signature_bits (512) << distinct in the interesting cases.
        let c = PhaseConfig { window: 2048, block_size: 32, signature_bits: 512, threshold: 0.4 };
        let mut d = PhaseDetector::new(c);
        for w in 0..windows {
            let offset = (seed ^ w as u64) % distinct;
            for i in 0..c.window as u64 {
                d.record(Addr(((i + offset) % distinct) * 32));
            }
        }
        let phases = d.finish();
        prop_assert_eq!(phases.len(), 1, "same working set split into {} phases", phases.len());
    }
}

#[test]
fn two_phase_boundary_within_one_window() {
    // A hard switch from one working set to a disjoint one midway through
    // window 7 (at 7.5 windows). The window containing the switch overlaps
    // both sets, so its Jaccard similarity to either pure neighbor is ~0.5;
    // with a threshold above that, the detector cuts around the mixed
    // window and every reported boundary lands within one window of the
    // true switch point.
    let c = PhaseConfig { window: 128, block_size: 32, signature_bits: 512, threshold: 0.55 };
    let switch = c.window * 7 + c.window / 2;
    let total = c.window * 16;
    let mut d = PhaseDetector::new(c);
    for i in 0..total {
        let base = if i < switch { 0u64 } else { 0x100_0000 };
        d.record(Addr(base + (i as u64 % 64) * 32));
    }
    let phases = d.finish();
    assert!(
        (2..=3).contains(&phases.len()),
        "expected 2-3 phases around the switch, got {phases:?}"
    );
    for w in phases.windows(2) {
        let boundary = w[0].end;
        assert!(
            boundary.abs_diff(switch) <= c.window,
            "boundary {boundary} more than one window from true switch {switch}: {phases:?}"
        );
    }
    assert!(phases[0].start == 0 && phases.last().unwrap().end == total);
}
