//! Wall-clock cost of the design alternatives (the simulated-cycle
//! ablations are printed by `cargo run -p selcache-bench --bin ablations`).

use criterion::{criterion_group, criterion_main, Criterion};
use selcache_compiler::{optimize, selective, OptConfig};
use selcache_workloads::{Benchmark, Scale};

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(20);
    let program = Benchmark::Swim.build(Scale::Tiny);

    g.bench_function("optimize_full", |b| {
        b.iter(|| optimize(&program, &OptConfig::default()));
    });
    g.bench_function("optimize_no_tiling", |b| {
        let cfg = OptConfig { tile: false, ..OptConfig::default() };
        b.iter(|| optimize(&program, &cfg));
    });
    g.bench_function("selective_prepare", |b| {
        b.iter(|| selective(&program, &OptConfig::default()));
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
