//! Throughput of the memory-hierarchy components.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use selcache_ir::Addr;
use selcache_mem::{
    AssistKind, Cache, CacheConfig, HierarchyConfig, LruSet, Mat, MatConfig, MemoryHierarchy,
    VictimCache,
};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(10_000));

    g.bench_function("l1_sweep_access", |b| {
        let mut cache = Cache::new(CacheConfig::kib(32, 4, 32));
        b.iter(|| {
            for i in 0..10_000u64 {
                let blk = (i * 7) % 4096;
                if !cache.access(black_box(blk), false).is_hit() {
                    cache.fill(blk, false);
                }
            }
        });
    });

    g.bench_function("l1_classified_access", |b| {
        let mut cache = Cache::with_classification(CacheConfig::kib(32, 4, 32));
        b.iter(|| {
            for i in 0..10_000u64 {
                let blk = (i * 7) % 4096;
                if !cache.access(black_box(blk), false).is_hit() {
                    cache.fill(blk, false);
                }
            }
        });
    });

    g.bench_function("lru_set_churn", |b| {
        let mut set = LruSet::new(64);
        b.iter(|| {
            for i in 0..10_000u64 {
                set.insert(black_box(i % 128), false);
            }
        });
    });

    g.bench_function("victim_cache_churn", |b| {
        let mut v = VictimCache::new(64);
        b.iter(|| {
            for i in 0..10_000u64 {
                if v.probe_remove(black_box(i % 96)).is_none() {
                    v.insert(i % 96, false);
                }
            }
        });
    });

    g.bench_function("mat_record", |b| {
        let mut m = Mat::new(MatConfig::default());
        b.iter(|| {
            for i in 0..10_000u64 {
                m.record(Addr(black_box(i * 40)));
            }
        });
    });

    g.bench_function("hierarchy_data_access", |b| {
        let mut h = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::Bypass));
        let mut now = 0;
        b.iter(|| {
            for i in 0..10_000u64 {
                now += 2;
                h.data_access(Addr(0x1000_0000 + (i * 72) % (1 << 20)), false, black_box(now));
            }
        });
    });

    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
