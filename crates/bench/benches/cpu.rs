//! Pipeline simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use selcache_cpu::{CpuConfig, CpuModel, Pipeline};
use selcache_ir::{Addr, OpKind, TraceOp};
use selcache_mem::{AssistKind, HierarchyConfig, MemoryHierarchy};

fn alu_trace(n: u64) -> Vec<TraceOp> {
    (0..n).map(|i| TraceOp::new(0x40_0000 + (i % 16) * 4, OpKind::IntAlu)).collect()
}

fn mixed_trace(n: u64) -> Vec<TraceOp> {
    (0..n)
        .map(|i| match i % 4 {
            0 => TraceOp::new(0x40_0000, OpKind::Load(Addr(0x1000_0000 + (i * 8) % (1 << 18)))),
            1 => TraceOp::with_dep(0x40_0004, OpKind::FpAlu, 1),
            2 => TraceOp::with_dep(
                0x40_0008,
                OpKind::Store(Addr(0x1200_0000 + (i * 8) % (1 << 18))),
                1,
            ),
            _ => TraceOp::new(0x40_000C, OpKind::Branch { taken: i % 64 != 0 }),
        })
        .collect()
}

fn bench_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.sample_size(20);

    g.bench_function("ooo_alu_only", |b| {
        let trace = alu_trace(n);
        b.iter(|| {
            let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::None));
            Pipeline::new(CpuConfig::paper_base()).run(trace.iter().copied(), &mut mem)
        });
    });

    g.bench_function("ooo_mixed", |b| {
        let trace = mixed_trace(n);
        b.iter(|| {
            let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::None));
            Pipeline::new(CpuConfig::paper_base()).run(trace.iter().copied(), &mut mem)
        });
    });

    g.bench_function("in_order_mixed", |b| {
        let trace = mixed_trace(n);
        let mut cfg = CpuConfig::paper_base();
        cfg.model = CpuModel::InOrder;
        b.iter(|| {
            let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::None));
            Pipeline::new(cfg).run(trace.iter().copied(), &mut mem)
        });
    });

    g.finish();
}

criterion_group!(benches, bench_cpu);
criterion_main!(benches);
