//! End-to-end experiment throughput: build + compile + simulate one
//! benchmark under each version.

use criterion::{criterion_group, criterion_main, Criterion};
use selcache_core::{AssistKind, Experiment, MachineConfig, Version};
use selcache_workloads::{Benchmark, Scale};

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let exp = Experiment::new(MachineConfig::base(), AssistKind::Bypass);
    for version in [Version::Base, Version::PureSoftware, Version::Selective] {
        g.bench_function(format!("q6_{version}").replace(' ', "_").to_lowercase(), |b| {
            b.iter(|| exp.run(Benchmark::TpcDQ6, Scale::Tiny, version));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
