//! Sampled-simulation hot path: checkpoint restore, fast-forward, and
//! interval fingerprint recording — the per-representative setup cost and
//! the per-op profile-pass cost that bound how much intra-job parallelism
//! can win.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use selcache_analysis::{IntervalConfig, IntervalProfiler};
use selcache_ir::{Interp, Plan};
use selcache_workloads::{Benchmark, Scale};

/// Ops each restore is fast-forwarded by — the same order of magnitude as
/// the sampled mode's default warmup window start offsets.
const ADVANCE_OPS: u64 = 4096;

fn bench_checkpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint");
    g.sample_size(20);
    // The group's throughput setting sticks until overwritten, so run the
    // unit-less restores first, then the throughput-annotated forwards.
    let fixtures: Vec<_> = [Benchmark::Vpenta, Benchmark::Li]
        .into_iter()
        .map(|bm| {
            let program = bm.build(Scale::Tiny);
            let plan = Plan::compile(&program);
            (bm, program, plan)
        })
        .collect();
    for (bm, program, plan) in &fixtures {
        // Checkpoint mid-trace, where the interpreter state is non-trivial.
        let mut source = Interp::with_plan(program, plan);
        let _ = source.advance(ADVANCE_OPS);
        let ckpt = source.checkpoint();
        // Restore alone: what every representative pays before warmup.
        let mut interp = Interp::with_plan(program, plan);
        g.bench_function(format!("{}/restore", bm.name()), |b| {
            b.iter(|| {
                interp.restore(black_box(&ckpt));
            });
        });
    }
    for (bm, program, plan) in &fixtures {
        let ckpt = Interp::with_plan(program, plan).checkpoint();
        let mut interp = Interp::with_plan(program, plan);
        // Restore + fast-forward: reaching a warmup window that starts
        // ADVANCE_OPS past the nearest retained checkpoint.
        g.throughput(Throughput::Elements(ADVANCE_OPS));
        g.bench_function(format!("{}/restore_advance", bm.name()), |b| {
            b.iter(|| {
                interp.restore(&ckpt);
                black_box(interp.advance(ADVANCE_OPS))
            });
        });
    }
    g.finish();
}

fn bench_fingerprint(c: &mut Criterion) {
    let mut g = c.benchmark_group("fingerprint");
    g.sample_size(20);
    for bm in [Benchmark::Vpenta, Benchmark::Li] {
        let program = bm.build(Scale::Tiny);
        let plan = Plan::compile(&program);
        // Pre-collect the trace so iterations time only the profiler.
        let ops: Vec<(u64, _)> =
            Interp::with_plan(&program, &plan).map(|op| (op.pc, op.kind.addr())).collect();
        g.throughput(Throughput::Elements(ops.len() as u64));
        g.bench_function(format!("{}/record", bm.name()), |b| {
            b.iter(|| {
                let mut profiler = IntervalProfiler::new(IntervalConfig {
                    interval_ops: 1 << 17,
                    max_intervals: 6,
                    ..IntervalConfig::default()
                });
                for &(pc, addr) in &ops {
                    profiler.record(pc, addr);
                }
                profiler.finish().len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_checkpoint, bench_fingerprint);
criterion_main!(benches);
