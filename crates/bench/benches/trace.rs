//! IR interpreter (trace generation) throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use selcache_ir::{Interp, Plan};
use selcache_workloads::{Benchmark, Scale};

fn bench_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    g.sample_size(20);
    for bm in [Benchmark::Vpenta, Benchmark::Li, Benchmark::TpcDQ3] {
        let program = bm.build(Scale::Tiny);
        // One compilation feeds both the sizing pass and every iteration.
        let plan = Plan::compile(&program);
        g.throughput(Throughput::Elements(plan.trace_len(&program)));
        g.bench_function(bm.name(), |b| {
            b.iter(|| Interp::with_plan(&program, &plan).count());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
