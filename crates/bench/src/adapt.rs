//! The dynamic-vs-static ablation behind the `adapt` binary.
//!
//! For each benchmark three exact runs are submitted as one deduplicated
//! job set:
//!
//! - **Base** — unmodified code, no assist (the 100% reference),
//! - **Static** — the paper's selective scheme: compiler-optimized code
//!   with the chosen assist toggled by the compiler's per-region ON/OFF
//!   decision,
//! - **Dynamic** — the same code with every region marked ON and the
//!   `selcache-adapt` controller picking {off, bypass, victim} per region
//!   at run time.
//!
//! Improvements are reported against the shared base run; *dynamic wins*
//! when its improvement is within [`TOLERANCE_PTS`] of (or better than)
//! the static scheme's. Everything is deterministic — output is
//! byte-identical for every thread count and any store state.

use crate::json::Json;
use selcache_core::{
    AssistKind, Benchmark, ControllerConfig, EngineStats, JobEngine, MachineConfig, Scale, SimJob,
    Version,
};
use std::fmt::Write as _;

/// Slack (in percentage points of improvement) the dynamic scheme is
/// allowed below the static one while still counting as a win: the
/// controller pays real exploration misses that a static oracle does not.
pub const TOLERANCE_PTS: f64 = 0.5;

/// One benchmark's ablation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Cycles of the shared base run.
    pub base_cycles: u64,
    /// Cycles under the static selective scheme.
    pub static_cycles: u64,
    /// Cycles under the dynamic controller.
    pub dynamic_cycles: u64,
    /// Static improvement over base, percent.
    pub static_improvement_pct: f64,
    /// Dynamic improvement over base, percent.
    pub dynamic_improvement_pct: f64,
    /// Policy switches the controller applied during the dynamic run.
    pub policy_switches: u64,
}

impl AblationRow {
    /// Whether the dynamic scheme matched or beat the static one (within
    /// [`TOLERANCE_PTS`]).
    pub fn dynamic_wins(&self) -> bool {
        self.dynamic_improvement_pct >= self.static_improvement_pct - TOLERANCE_PTS
    }
}

/// The full ablation: per-benchmark rows plus the engine counters of the
/// one job set that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablation {
    /// One row per benchmark, in submission order.
    pub rows: Vec<AblationRow>,
    /// Dedup/store accounting for the job set.
    pub stats: EngineStats,
}

impl Ablation {
    /// Runs the ablation over `benchmarks` on `machine`. `assist` is the
    /// static scheme's hardware assist; the dynamic runs always carry the
    /// controller's own bypass + victim structures and no static assist.
    pub fn run(
        engine: &JobEngine,
        machine: &MachineConfig,
        assist: AssistKind,
        ctl: ControllerConfig,
        scale: Scale,
        benchmarks: &[Benchmark],
    ) -> Ablation {
        let mut jobs = Vec::with_capacity(benchmarks.len() * 3);
        for &bm in benchmarks {
            jobs.push(SimJob::new(bm, scale, machine.clone(), AssistKind::None, Version::Base));
            jobs.push(SimJob::new(bm, scale, machine.clone(), assist, Version::Selective));
            jobs.push(
                SimJob::new(bm, scale, machine.clone(), AssistKind::None, Version::Selective)
                    .with_controller(ctl),
            );
        }
        let (results, stats) = engine.run_with_stats(&jobs);
        let rows = benchmarks
            .iter()
            .enumerate()
            .map(|(i, &benchmark)| {
                let (base, st, dy) = (&results[3 * i], &results[3 * i + 1], &results[3 * i + 2]);
                AblationRow {
                    benchmark,
                    base_cycles: base.cycles,
                    static_cycles: st.cycles,
                    dynamic_cycles: dy.cycles,
                    static_improvement_pct: st.improvement_over(base),
                    dynamic_improvement_pct: dy.improvement_over(base),
                    policy_switches: dy.mem.assist.adapt_switches,
                }
            })
            .collect();
        Ablation { rows, stats }
    }

    /// How many benchmarks the dynamic scheme matched or beat the static
    /// one on.
    pub fn dynamic_wins(&self) -> usize {
        self.rows.iter().filter(|r| r.dynamic_wins()).count()
    }

    /// Renders the ablation as an aligned text table with a summary line.
    pub fn format_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:>12} {:>10} {:>10} {:>9} {:>5}",
            "Benchmark", "Category", "Base cyc", "Static%", "Dynamic%", "Switches", "Win"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<10} {:<10} {:>12} {:>9.2}% {:>9.2}% {:>9} {:>5}",
                r.benchmark.name(),
                r.benchmark.category().to_string(),
                r.base_cycles,
                r.static_improvement_pct,
                r.dynamic_improvement_pct,
                r.policy_switches,
                if r.dynamic_wins() { "yes" } else { "no" },
            );
        }
        let _ = writeln!(
            out,
            "dynamic matches or beats static (within {TOLERANCE_PTS} pts) on {}/{} benchmarks",
            self.dynamic_wins(),
            self.rows.len()
        );
        out
    }

    /// Renders the ablation as a JSON object.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj([
                    ("benchmark", Json::str(r.benchmark.name())),
                    ("category", Json::str(r.benchmark.category().to_string())),
                    ("base_cycles", Json::UInt(r.base_cycles)),
                    ("static_cycles", Json::UInt(r.static_cycles)),
                    ("dynamic_cycles", Json::UInt(r.dynamic_cycles)),
                    ("static_improvement_pct", Json::Num(r.static_improvement_pct)),
                    ("dynamic_improvement_pct", Json::Num(r.dynamic_improvement_pct)),
                    ("policy_switches", Json::UInt(r.policy_switches)),
                    ("dynamic_wins", Json::Bool(r.dynamic_wins())),
                ])
            })
            .collect();
        Json::obj([
            ("tolerance_pts", Json::Num(TOLERANCE_PTS)),
            ("dynamic_wins", Json::UInt(self.dynamic_wins() as u64)),
            ("benchmarks", Json::UInt(self.rows.len() as u64)),
            ("rows", Json::Arr(rows)),
            ("engine", crate::engine_stats_json(&self.stats)),
        ])
    }

    /// Renders the ablation as CSV, one row per benchmark.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "benchmark,category,base_cycles,static_cycles,dynamic_cycles,\
             static_improvement_pct,dynamic_improvement_pct,policy_switches,dynamic_wins\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.4},{:.4},{},{}",
                r.benchmark.name(),
                r.benchmark.category(),
                r.base_cycles,
                r.static_cycles,
                r.dynamic_cycles,
                r.static_improvement_pct,
                r.dynamic_improvement_pct,
                r.policy_switches,
                r.dynamic_wins(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ablation(threads: usize) -> Ablation {
        Ablation::run(
            &JobEngine::new(threads),
            &MachineConfig::base(),
            AssistKind::Bypass,
            ControllerConfig::default(),
            Scale::Tiny,
            &[Benchmark::Li, Benchmark::Adi],
        )
    }

    #[test]
    fn ablation_output_is_thread_count_invariant() {
        // The satellite determinism guarantee: every rendering is
        // byte-identical across thread counts.
        let serial = tiny_ablation(1);
        let parallel = tiny_ablation(4);
        assert_eq!(serial.rows, parallel.rows);
        assert_eq!(serial.format_text(), parallel.format_text());
        assert_eq!(serial.to_csv(), parallel.to_csv());
        // The JSON result payload is byte-identical too; only the engine
        // accounting (which echoes the configured thread count) differs.
        assert_eq!(
            serial.to_json().get("rows").map(ToString::to_string),
            parallel.to_json().get("rows").map(ToString::to_string)
        );
    }

    #[test]
    fn dynamic_matches_static_on_an_irregular_benchmark() {
        let ab = tiny_ablation(0);
        let li = &ab.rows[0];
        assert_eq!(li.benchmark, Benchmark::Li);
        assert!(
            li.dynamic_wins(),
            "dynamic {:.2}% should be within {TOLERANCE_PTS} pts of static {:.2}%",
            li.dynamic_improvement_pct,
            li.static_improvement_pct
        );
        assert!(li.policy_switches > 0, "the controller must actually act on Li");
    }

    #[test]
    fn renderings_carry_every_row_and_the_summary() {
        let ab = tiny_ablation(0);
        let text = ab.format_text();
        assert!(text.contains("Li") && text.contains("Adi"));
        assert!(text.contains("benchmarks"));
        let csv = ab.to_csv();
        assert_eq!(csv.lines().count(), 1 + ab.rows.len());
        let json = ab.to_json().to_string();
        assert!(json.contains("\"dynamic_wins\"") && json.contains("\"engine\""));
    }
}
