//! Ablation studies for the design choices called out in `DESIGN.md`:
//! simulated-cycle impact of the out-of-order model, the region-detection
//! threshold, the MAT geometry, redundant-marker elimination, fine-grained
//! region coalescing, and each compiler pass.
//!
//! Each study submits its whole grid as one job set: the engine runs the
//! cells in parallel and deduplicates shared runs (e.g. the threshold
//! sweep's Base runs, which are threshold-independent).
//!
//! Usage: `cargo run --release -p selcache-bench --bin ablations
//! [-- --scale tiny|small|medium] [--threads N]`

use selcache_bench::Cli;
use selcache_compiler::{detect_and_mark_with, eliminate_redundant_markers, optimize, OptConfig};
use selcache_core::{
    AssistKind, Benchmark, Experiment, JobEngine, MachineConfig, Scale, SimJob, SimResult, Version,
};
use selcache_cpu::CpuModel;
use selcache_ir::{Interp, OpKind};

fn main() {
    let cli = Cli::from_env();
    let engine = cli.engine();
    let scale = cli.scale;
    cpu_model_ablation(&engine, scale);
    threshold_ablation(&engine, scale);
    mat_ablation(&engine, scale);
    marker_elimination_ablation(scale);
    region_granularity_ablation(scale);
    pass_ablation(&engine, scale);
    fusion_distribution_ablation(&engine, scale);
}

/// A `(Base, version)` job pair for one grid cell; run the collected pairs
/// through [`improvements`] to fold them back into one number per cell.
fn pair(
    bm: Benchmark,
    scale: Scale,
    machine: &MachineConfig,
    assist: AssistKind,
    version: Version,
    opt: Option<OptConfig>,
) -> [SimJob; 2] {
    let job = |v| {
        let j = SimJob::new(bm, scale, machine.clone(), assist, v);
        match opt {
            Some(o) => j.with_opt(o),
            None => j,
        }
    };
    [job(Version::Base), job(version)]
}

/// Runs the pairs as one job set and returns each cell's improvement.
fn improvements(engine: &JobEngine, pairs: Vec<[SimJob; 2]>) -> Vec<f64> {
    let jobs: Vec<SimJob> = pairs.into_iter().flatten().collect();
    let results = engine.run(&jobs);
    results.chunks_exact(2).map(|c| c[1].improvement_over(&c[0])).collect()
}

/// Ablation 1 (DESIGN.md): the OOO core's latency hiding. An in-order core
/// exposes more memory latency, so every improvement grows.
fn cpu_model_ablation(engine: &JobEngine, scale: Scale) {
    println!("== Ablation: CPU timing model (selective improvement, bypass assist) ==");
    println!("{:<12} {:>14} {:>14}", "Benchmark", "OutOfOrder", "InOrder");
    let benchmarks = [Benchmark::Vpenta, Benchmark::Perl, Benchmark::TpcDQ3];
    let mut pairs = Vec::new();
    for bm in benchmarks {
        for model in [CpuModel::OutOfOrder, CpuModel::InOrder] {
            let mut machine = MachineConfig::base();
            machine.cpu.model = model;
            pairs.push(pair(bm, scale, &machine, AssistKind::Bypass, Version::Selective, None));
        }
    }
    let cells = improvements(engine, pairs);
    for (bm, row) in benchmarks.iter().zip(cells.chunks_exact(2)) {
        println!("{:<12} {:>13.2}% {:>13.2}%", bm.name(), row[0], row[1]);
    }
    println!();
}

/// Ablation 3 (DESIGN.md): the 0.5 region threshold. The paper reports it
/// is not critical because regions are 90–100 % pure.
fn threshold_ablation(engine: &JobEngine, scale: Scale) {
    println!("== Ablation: region-detection threshold (selective improvement) ==");
    print!("{:<12}", "Benchmark");
    let thresholds = [0.1, 0.3, 0.5, 0.7, 0.9];
    for t in thresholds {
        print!(" {t:>8.1}");
    }
    println!();
    let benchmarks = [Benchmark::Chaos, Benchmark::TpcDQ1, Benchmark::Li];
    let machine = MachineConfig::base();
    let mut pairs = Vec::new();
    for bm in benchmarks {
        for t in thresholds {
            let opt = OptConfig { threshold: t, ..OptConfig::default() };
            pairs.push(pair(
                bm,
                scale,
                &machine,
                AssistKind::Bypass,
                Version::Selective,
                Some(opt),
            ));
        }
    }
    // The five thresholds share each benchmark's Base run (raw code has no
    // threshold); the engine executes it once per benchmark.
    let cells = improvements(engine, pairs);
    for (bm, row) in benchmarks.iter().zip(cells.chunks_exact(thresholds.len())) {
        print!("{:<12}", bm.name());
        for v in row {
            print!(" {v:>7.2}%");
        }
        println!();
    }
    println!();
}

/// Ablation 2 (DESIGN.md): MAT macro-block size (1 KiB in the paper).
fn mat_ablation(engine: &JobEngine, scale: Scale) {
    println!("== Ablation: MAT macro-block size (pure-hardware improvement) ==");
    print!("{:<12}", "Benchmark");
    let sizes = [256u64, 1024, 4096];
    for s in sizes {
        print!(" {:>8}", format!("{}B", s));
    }
    println!();
    let benchmarks = [Benchmark::Perl, Benchmark::Li, Benchmark::Compress];
    let mut pairs = Vec::new();
    for bm in benchmarks {
        for s in sizes {
            let mut machine = MachineConfig::base();
            machine.mem.bypass.mat.macro_block = s;
            machine.mem.bypass.sldt.macro_block = s;
            pairs.push(pair(bm, scale, &machine, AssistKind::Bypass, Version::PureHardware, None));
        }
    }
    let cells = improvements(engine, pairs);
    for (bm, row) in benchmarks.iter().zip(cells.chunks_exact(sizes.len())) {
        print!("{:<12}", bm.name());
        for v in row {
            print!(" {v:>7.2}%");
        }
        println!();
    }
    println!();
}

/// Ablation 4 (DESIGN.md): payoff of redundant ON/OFF elimination, measured
/// as executed toggle instructions.
fn marker_elimination_ablation(scale: Scale) {
    println!("== Ablation: redundant ON/OFF elimination (executed toggles) ==");
    println!("{:<12} {:>10} {:>10}", "Benchmark", "naive", "eliminated");
    let opt = OptConfig::default();
    for bm in [Benchmark::Chaos, Benchmark::TpcC, Benchmark::TpcDQ1] {
        let p = optimize(&bm.build(scale), &opt);
        let naive = detect_and_mark_with(&p, opt.threshold, 256.0);
        let eliminated = eliminate_redundant_markers(&naive);
        let toggles = |p: &selcache_ir::Program| {
            Interp::new(p)
                .filter(|o| matches!(o.kind, OpKind::AssistOn | OpKind::AssistOff))
                .count()
        };
        println!("{:<12} {:>10} {:>10}", bm.name(), toggles(&naive), toggles(&eliminated));
    }
    println!();
}

/// Region-granularity ablation: per-region bracketing vs. coalescing
/// fine-grained mixed loops (executed toggles + selective improvement).
/// Runs hand-marked programs, so it stays on [`Experiment::run_program`].
fn region_granularity_ablation(scale: Scale) {
    println!("== Ablation: fine-grained region coalescing (TPC-C) ==");
    let opt = OptConfig::default();
    let exp = Experiment::new(MachineConfig::base(), AssistKind::Bypass);
    let p = Benchmark::TpcC.build(scale);
    let base = exp.run_program(&p, Version::Base);
    let optimized = optimize(&p, &opt);
    for (name, min_volume) in [("per-region (min=0)", 0.0), ("coalesced (min=256)", 256.0)] {
        let marked = eliminate_redundant_markers(&detect_and_mark_with(
            &optimized,
            opt.threshold,
            min_volume,
        ));
        let r = exp.run_program(&marked, Version::Selective);
        println!(
            "{name:<22} toggles={:<8} improvement={:.2}%",
            r.cpu.assist_toggles,
            r.improvement_over(&base)
        );
    }
    println!();
}

/// Extension passes: loop fusion and distribution (off by default).
fn fusion_distribution_ablation(engine: &JobEngine, scale: Scale) {
    println!("== Ablation: extension passes (pure software improvement) ==");
    println!("{:<12} {:>10} {:>10} {:>12}", "Benchmark", "default", "+fusion", "+distribution");
    let benchmarks = [Benchmark::Swim, Benchmark::Vpenta, Benchmark::TpcDQ1];
    let machine = MachineConfig::base();
    let mut pairs = Vec::new();
    for bm in benchmarks {
        for (fusion, distribute) in [(false, false), (true, false), (false, true)] {
            let cfg = OptConfig { fusion, distribute, ..OptConfig::default() };
            pairs.push(pair(
                bm,
                scale,
                &machine,
                AssistKind::None,
                Version::PureSoftware,
                Some(cfg),
            ));
        }
    }
    let cells = improvements(engine, pairs);
    for (bm, row) in benchmarks.iter().zip(cells.chunks_exact(3)) {
        println!("{:<12} {:>9.2}% {:>9.2}% {:>11.2}%", bm.name(), row[0], row[1], row[2]);
    }
    println!();
}

/// Per-pass contribution to the software improvement on Vpenta.
fn pass_ablation(engine: &JobEngine, scale: Scale) {
    println!("== Ablation: compiler pass contributions (Vpenta, pure software) ==");
    let machine = MachineConfig::base();
    let variants: [(&str, OptConfig); 5] = [
        (
            "none",
            OptConfig {
                pad: false,
                interchange: false,
                layout: false,
                tile: false,
                scalar_replacement: false,
                ..OptConfig::default()
            },
        ),
        (
            "+padding",
            OptConfig {
                interchange: false,
                layout: false,
                tile: false,
                scalar_replacement: false,
                ..OptConfig::default()
            },
        ),
        (
            "+interchange",
            OptConfig {
                layout: false,
                tile: false,
                scalar_replacement: false,
                ..OptConfig::default()
            },
        ),
        ("+layout", OptConfig { tile: false, scalar_replacement: false, ..OptConfig::default() }),
        ("all passes", OptConfig::default()),
    ];
    let mut jobs = vec![SimJob::new(
        Benchmark::Vpenta,
        scale,
        machine.clone(),
        AssistKind::None,
        Version::Base,
    )];
    for (_, cfg) in &variants {
        jobs.push(
            SimJob::new(
                Benchmark::Vpenta,
                scale,
                machine.clone(),
                AssistKind::None,
                Version::PureSoftware,
            )
            .with_opt(*cfg),
        );
    }
    let results = engine.run(&jobs);
    let base: &SimResult = &results[0];
    for ((name, _), r) in variants.iter().zip(&results[1..]) {
        println!(
            "{name:<14} improvement={:.2}%  l1 miss={:.1}%",
            r.improvement_over(base),
            r.l1_miss_pct()
        );
    }
    println!();
}
