//! Ablation studies for the design choices called out in `DESIGN.md`:
//! simulated-cycle impact of the out-of-order model, the region-detection
//! threshold, the MAT geometry, redundant-marker elimination, fine-grained
//! region coalescing, and each compiler pass.
//!
//! Usage: `cargo run --release -p selcache-bench --bin ablations
//! [-- --scale tiny|small|medium]`

use selcache_core::{AssistKind, Benchmark, Experiment, MachineConfig, Scale, Version};
use selcache_compiler::{
    detect_and_mark_with, eliminate_redundant_markers, optimize, OptConfig,
};
use selcache_cpu::CpuModel;
use selcache_ir::{Interp, OpKind};

fn main() {
    let cli = selcache_bench::cli();
    let scale = cli.scale;
    cpu_model_ablation(scale);
    threshold_ablation(scale);
    mat_ablation(scale);
    marker_elimination_ablation(scale);
    region_granularity_ablation(scale);
    pass_ablation(scale);
    fusion_distribution_ablation(scale);
}

fn improvement(exp: &Experiment, bm: Benchmark, scale: Scale, version: Version) -> f64 {
    let p = bm.build(scale);
    let base = exp.run_program(&p, Version::Base);
    let prepared = exp.prepare(&p, version);
    exp.run_program(&prepared, version).improvement_over(&base)
}

/// Ablation 1 (DESIGN.md): the OOO core's latency hiding. An in-order core
/// exposes more memory latency, so every improvement grows.
fn cpu_model_ablation(scale: Scale) {
    println!("== Ablation: CPU timing model (selective improvement, bypass assist) ==");
    println!("{:<12} {:>14} {:>14}", "Benchmark", "OutOfOrder", "InOrder");
    for bm in [Benchmark::Vpenta, Benchmark::Perl, Benchmark::TpcDQ3] {
        let mut row = Vec::new();
        for model in [CpuModel::OutOfOrder, CpuModel::InOrder] {
            let mut machine = MachineConfig::base();
            machine.cpu.model = model;
            let exp = Experiment::new(machine, AssistKind::Bypass);
            row.push(improvement(&exp, bm, scale, Version::Selective));
        }
        println!("{:<12} {:>13.2}% {:>13.2}%", bm.name(), row[0], row[1]);
    }
    println!();
}

/// Ablation 3 (DESIGN.md): the 0.5 region threshold. The paper reports it
/// is not critical because regions are 90–100 % pure.
fn threshold_ablation(scale: Scale) {
    println!("== Ablation: region-detection threshold (selective improvement) ==");
    print!("{:<12}", "Benchmark");
    let thresholds = [0.1, 0.3, 0.5, 0.7, 0.9];
    for t in thresholds {
        print!(" {t:>8.1}");
    }
    println!();
    for bm in [Benchmark::Chaos, Benchmark::TpcDQ1, Benchmark::Li] {
        print!("{:<12}", bm.name());
        for t in thresholds {
            let opt = OptConfig { threshold: t, ..OptConfig::default() };
            let exp = Experiment::with_opt(MachineConfig::base(), AssistKind::Bypass, opt);
            print!(" {:>7.2}%", improvement(&exp, bm, scale, Version::Selective));
        }
        println!();
    }
    println!();
}

/// Ablation 2 (DESIGN.md): MAT macro-block size (1 KiB in the paper).
fn mat_ablation(scale: Scale) {
    println!("== Ablation: MAT macro-block size (pure-hardware improvement) ==");
    print!("{:<12}", "Benchmark");
    let sizes = [256u64, 1024, 4096];
    for s in sizes {
        print!(" {:>8}", format!("{}B", s));
    }
    println!();
    for bm in [Benchmark::Perl, Benchmark::Li, Benchmark::Compress] {
        print!("{:<12}", bm.name());
        for s in sizes {
            let mut machine = MachineConfig::base();
            machine.mem.bypass.mat.macro_block = s;
            machine.mem.bypass.sldt.macro_block = s;
            let exp = Experiment::new(machine, AssistKind::Bypass);
            print!(" {:>7.2}%", improvement(&exp, bm, scale, Version::PureHardware));
        }
        println!();
    }
    println!();
}

/// Ablation 4 (DESIGN.md): payoff of redundant ON/OFF elimination, measured
/// as executed toggle instructions.
fn marker_elimination_ablation(scale: Scale) {
    println!("== Ablation: redundant ON/OFF elimination (executed toggles) ==");
    println!("{:<12} {:>10} {:>10}", "Benchmark", "naive", "eliminated");
    let opt = OptConfig::default();
    for bm in [Benchmark::Chaos, Benchmark::TpcC, Benchmark::TpcDQ1] {
        let p = optimize(&bm.build(scale), &opt);
        let naive = detect_and_mark_with(&p, opt.threshold, 256.0);
        let eliminated = eliminate_redundant_markers(&naive);
        let toggles = |p: &selcache_ir::Program| {
            Interp::new(p)
                .filter(|o| matches!(o.kind, OpKind::AssistOn | OpKind::AssistOff))
                .count()
        };
        println!("{:<12} {:>10} {:>10}", bm.name(), toggles(&naive), toggles(&eliminated));
    }
    println!();
}

/// Region-granularity ablation: per-region bracketing vs. coalescing
/// fine-grained mixed loops (executed toggles + selective improvement).
fn region_granularity_ablation(scale: Scale) {
    println!("== Ablation: fine-grained region coalescing (TPC-C) ==");
    let opt = OptConfig::default();
    let exp = Experiment::new(MachineConfig::base(), AssistKind::Bypass);
    let p = Benchmark::TpcC.build(scale);
    let base = exp.run_program(&p, Version::Base);
    let optimized = optimize(&p, &opt);
    for (name, min_volume) in [("per-region (min=0)", 0.0), ("coalesced (min=256)", 256.0)] {
        let marked = eliminate_redundant_markers(&detect_and_mark_with(
            &optimized,
            opt.threshold,
            min_volume,
        ));
        let r = exp.run_program(&marked, Version::Selective);
        println!(
            "{name:<22} toggles={:<8} improvement={:.2}%",
            r.cpu.assist_toggles,
            r.improvement_over(&base)
        );
    }
    println!();
}

/// Extension passes: loop fusion and distribution (off by default).
fn fusion_distribution_ablation(scale: Scale) {
    println!("== Ablation: extension passes (pure software improvement) ==");
    println!("{:<12} {:>10} {:>10} {:>12}", "Benchmark", "default", "+fusion", "+distribution");
    let exp = Experiment::new(MachineConfig::base(), AssistKind::None);
    for bm in [Benchmark::Swim, Benchmark::Vpenta, Benchmark::TpcDQ1] {
        let p = bm.build(scale);
        let base = exp.run_program(&p, Version::Base);
        let mut row = Vec::new();
        for (fusion, distribute) in [(false, false), (true, false), (false, true)] {
            let cfg = OptConfig { fusion, distribute, ..OptConfig::default() };
            let o = optimize(&p, &cfg);
            let r = exp.run_program(&o, Version::PureSoftware);
            row.push(r.improvement_over(&base));
        }
        println!(
            "{:<12} {:>9.2}% {:>9.2}% {:>11.2}%",
            bm.name(),
            row[0],
            row[1],
            row[2]
        );
    }
    println!();
}

/// Per-pass contribution to the software improvement on Vpenta.
fn pass_ablation(scale: Scale) {
    println!("== Ablation: compiler pass contributions (Vpenta, pure software) ==");
    let p = Benchmark::Vpenta.build(scale);
    let exp = Experiment::new(MachineConfig::base(), AssistKind::None);
    let base = exp.run_program(&p, Version::Base);
    let variants: [(&str, OptConfig); 5] = [
        ("none", OptConfig {
            pad: false,
            interchange: false,
            layout: false,
            tile: false,
            scalar_replacement: false,
            ..OptConfig::default()
        }),
        ("+padding", OptConfig {
            interchange: false,
            layout: false,
            tile: false,
            scalar_replacement: false,
            ..OptConfig::default()
        }),
        ("+interchange", OptConfig {
            layout: false,
            tile: false,
            scalar_replacement: false,
            ..OptConfig::default()
        }),
        ("+layout", OptConfig { tile: false, scalar_replacement: false, ..OptConfig::default() }),
        ("all passes", OptConfig::default()),
    ];
    for (name, cfg) in variants {
        let o = optimize(&p, &cfg);
        let r = exp.run_program(&o, Version::PureSoftware);
        println!("{name:<14} improvement={:.2}%  l1 miss={:.1}%", r.improvement_over(&base), r.l1_miss_pct());
    }
    println!();
}
