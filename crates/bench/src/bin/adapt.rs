//! Dynamic-vs-static ablation of the online assist controller
//! (`selcache-adapt`): per benchmark, a shared base run, the paper's
//! static selective scheme, and the run-time controller picking
//! {off, bypass, victim} per region — reported as improvement over base.
//!
//! Accepts the shared harness flags plus `--min-wins N`: exit with status
//! 1 unless the dynamic scheme matches or beats the static one on at
//! least `N` benchmarks (the CI smoke gate).

use selcache_bench::adapt::Ablation;
use selcache_bench::{Cli, OutputFormat, USAGE};
use selcache_core::{ControllerConfig, MachineConfig};

fn main() {
    // Peel off `--min-wins N` before handing the rest to the shared CLI.
    let mut min_wins: Option<usize> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--min-wins" {
            let v = args.next().unwrap_or_default();
            match v.parse() {
                Ok(n) => min_wins = Some(n),
                Err(_) => {
                    eprintln!("error: invalid --min-wins {v:?}; use a non-negative integer");
                    eprintln!("{USAGE} [--min-wins N]");
                    std::process::exit(2);
                }
            }
        } else {
            rest.push(a);
        }
    }
    let cli = match Cli::parse(rest) {
        Ok(mut cli) => {
            if cli.store.is_none() {
                if let Ok(dir) = std::env::var("SELCACHE_STORE") {
                    if !dir.is_empty() {
                        cli.store = Some(dir.into());
                    }
                }
            }
            cli
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE} [--min-wins N]");
            std::process::exit(2);
        }
    };

    let engine = cli.engine();
    let benchmarks = cli.benchmarks();
    eprintln!(
        "running dynamic-vs-static ablation over {} benchmarks at scale {} \
         ({:?} static assist, {} threads)…",
        benchmarks.len(),
        cli.scale,
        cli.assist,
        engine.threads()
    );
    let ablation = Ablation::run(
        &engine,
        &MachineConfig::base(),
        cli.assist,
        ControllerConfig::default(),
        cli.scale,
        &benchmarks,
    );
    match cli.format {
        OutputFormat::Text => print!("{}", ablation.format_text()),
        OutputFormat::Json => println!("{}", ablation.to_json()),
        OutputFormat::Csv => print!("{}", ablation.to_csv()),
    }
    if let Some(n) = min_wins {
        let wins = ablation.dynamic_wins();
        if wins < n {
            eprintln!("FAIL: dynamic won on {wins} benchmarks, required {n}");
            std::process::exit(1);
        }
        eprintln!("ok: dynamic won on {wins} benchmarks (required {n})");
    }
}
