//! Extension experiments beyond the paper's evaluation:
//!
//! 1. A third hardware assist — Jouppi stream buffers (the "hardware
//!    prefetching" entry of the paper's related-work list) — run through
//!    the same four-version protocol as bypassing and victim caches.
//! 2. The extension compiler passes (loop fusion, loop distribution,
//!    unroll-and-jam) measured on top of the default pipeline.
//!
//! Usage: `cargo run --release -p selcache-bench --bin extensions
//! [-- --scale tiny|small|medium]`

use selcache_compiler::{insert_markers_for, optimize, AssistPolicy, OptConfig};
use selcache_core::{
    AssistKind, Benchmark, Experiment, MachineConfig, Scale, SuiteResult, Version,
};

fn main() {
    let cli = selcache_bench::cli();
    assists_table(cli.scale);
    assist_aware_selective(cli.scale);
    extension_passes(cli.scale);
}

/// Assist-aware region preference: the selective scheme with the marker
/// polarity chosen per mechanism. For the stream-buffer assist the paper's
/// irregular-regions rule forfeits most of the benefit; enabling it on the
/// *regular* regions recovers the combined version's gains while still
/// switching it off where it would pollute.
fn assist_aware_selective(scale: Scale) {
    println!("== Extension: assist-aware selective (stream buffers) ==");
    println!("{:<24} {:>10}", "Policy", "Average");
    let exp = Experiment::new(MachineConfig::base(), AssistKind::Stream);
    for (name, policy) in [
        ("paper rule (irregular)", AssistPolicy::IrregularRegions),
        ("inverted (regular)", AssistPolicy::RegularRegions),
        ("always on (combined)", AssistPolicy::Always),
    ] {
        let mut total = 0.0;
        for bm in Benchmark::ALL {
            let p = bm.build(scale);
            let base = exp.run_program(&p, Version::Base);
            let optimized = optimize(&p, exp.opt());
            let marked = insert_markers_for(&optimized, exp.opt().threshold, policy);
            let r = exp.run_program(&marked, Version::Selective);
            total += r.improvement_over(&base);
        }
        println!("{:<24} {:>9.2}%", name, total / Benchmark::ALL.len() as f64);
    }
    println!();
}

fn assists_table(scale: Scale) {
    println!("== Extension: all three hardware assists, base machine ==");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9}",
        "Assist", "PureHW", "PureSW", "Combined", "Selective"
    );
    for assist in [AssistKind::Bypass, AssistKind::Victim, AssistKind::Stream] {
        eprintln!("running {assist:?} suite at scale {scale}…");
        let s = SuiteResult::run(MachineConfig::base(), assist, scale);
        println!(
            "{:<10} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            format!("{assist:?}"),
            s.average(Version::PureHardware),
            s.average(Version::PureSoftware),
            s.average(Version::Combined),
            s.average(Version::Selective)
        );
    }
    println!();
}

fn extension_passes(scale: Scale) {
    println!("== Extension: compiler passes beyond the paper's list ==");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>12}",
        "Benchmark", "default", "+fusion", "+unroll", "+distribute"
    );
    let exp = Experiment::new(MachineConfig::base(), AssistKind::None);
    for bm in [Benchmark::Vpenta, Benchmark::Swim, Benchmark::TpcDQ1, Benchmark::Chaos] {
        let p = bm.build(scale);
        let base = exp.run_program(&p, Version::Base);
        let mut cells = Vec::new();
        for (fusion, unroll_jam, distribute) in [
            (false, false, false),
            (true, false, false),
            (false, true, false),
            (false, false, true),
        ] {
            let cfg = OptConfig { fusion, unroll_jam, distribute, ..OptConfig::default() };
            let o = optimize(&p, &cfg);
            let r = exp.run_program(&o, Version::PureSoftware);
            cells.push(r.improvement_over(&base));
        }
        println!(
            "{:<12} {:>8.2}% {:>8.2}% {:>8.2}% {:>11.2}%",
            bm.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
}
