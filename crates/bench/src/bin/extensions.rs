//! Extension experiments beyond the paper's evaluation:
//!
//! 1. A third hardware assist — Jouppi stream buffers (the "hardware
//!    prefetching" entry of the paper's related-work list) — run through
//!    the same four-version protocol as bypassing and victim caches.
//! 2. The extension compiler passes (loop fusion, loop distribution,
//!    unroll-and-jam) measured on top of the default pipeline.
//!
//! Usage: `cargo run --release -p selcache-bench --bin extensions
//! [-- --scale tiny|small|medium] [--threads N]`

use selcache_bench::Cli;
use selcache_compiler::{insert_markers_for, optimize, AssistPolicy, OptConfig};
use selcache_core::{
    AssistKind, Benchmark, Experiment, JobEngine, MachineConfig, Scale, SimJob, SuiteResult,
    Version,
};

fn main() {
    let cli = Cli::from_env();
    let engine = cli.engine();
    assists_table(&engine, cli.scale);
    assist_aware_selective(cli.scale);
    extension_passes(&engine, cli.scale);
}

/// Assist-aware region preference: the selective scheme with the marker
/// polarity chosen per mechanism. For the stream-buffer assist the paper's
/// irregular-regions rule forfeits most of the benefit; enabling it on the
/// *regular* regions recovers the combined version's gains while still
/// switching it off where it would pollute.
///
/// The marked programs are built by hand (per policy), so this study stays
/// on [`Experiment::run_program`]; the Base runs are computed once and
/// shared by all three policies.
fn assist_aware_selective(scale: Scale) {
    println!("== Extension: assist-aware selective (stream buffers) ==");
    println!("{:<24} {:>10}", "Policy", "Average");
    let exp = Experiment::new(MachineConfig::base(), AssistKind::Stream);
    let prepared: Vec<_> = Benchmark::ALL
        .iter()
        .map(|bm| {
            let p = bm.build(scale);
            let base = exp.run_program(&p, Version::Base);
            (optimize(&p, exp.opt()), base)
        })
        .collect();
    for (name, policy) in [
        ("paper rule (irregular)", AssistPolicy::IrregularRegions),
        ("inverted (regular)", AssistPolicy::RegularRegions),
        ("always on (combined)", AssistPolicy::Always),
    ] {
        let mut total = 0.0;
        for (optimized, base) in &prepared {
            let marked = insert_markers_for(optimized, exp.opt().threshold, policy);
            let r = exp.run_program(&marked, Version::Selective);
            total += r.improvement_over(base);
        }
        println!("{:<24} {:>9.2}%", name, total / Benchmark::ALL.len() as f64);
    }
    println!();
}

/// All three assists on the base machine as one job set: the 13 Base and
/// 13 PureSoftware runs are assist-independent, so the engine executes
/// them once and shares them across the three suites.
fn assists_table(engine: &JobEngine, scale: Scale) {
    println!("== Extension: all three hardware assists, base machine ==");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9}",
        "Assist", "PureHW", "PureSW", "Combined", "Selective"
    );
    let machine = MachineConfig::base();
    let assists = [AssistKind::Bypass, AssistKind::Victim, AssistKind::Stream];
    eprintln!("running {} suites at scale {scale} ({} threads)…", assists.len(), engine.threads());
    let mut jobs = Vec::new();
    for &assist in &assists {
        jobs.extend(SuiteResult::jobs(&machine, assist, scale, &Benchmark::ALL));
    }
    let results = engine.run(&jobs);
    let per_suite = jobs.len() / assists.len();
    for (assist, chunk) in assists.iter().zip(results.chunks_exact(per_suite)) {
        let s = SuiteResult::from_results(machine.name, *assist, &Benchmark::ALL, chunk);
        println!(
            "{:<10} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            format!("{assist:?}"),
            s.average(Version::PureHardware),
            s.average(Version::PureSoftware),
            s.average(Version::Combined),
            s.average(Version::Selective)
        );
    }
    println!();
}

fn extension_passes(engine: &JobEngine, scale: Scale) {
    println!("== Extension: compiler passes beyond the paper's list ==");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>12}",
        "Benchmark", "default", "+fusion", "+unroll", "+distribute"
    );
    let machine = MachineConfig::base();
    let benchmarks = [Benchmark::Vpenta, Benchmark::Swim, Benchmark::TpcDQ1, Benchmark::Chaos];
    let configs =
        [(false, false, false), (true, false, false), (false, true, false), (false, false, true)];
    let mut jobs = Vec::new();
    for &bm in &benchmarks {
        jobs.push(SimJob::new(bm, scale, machine.clone(), AssistKind::None, Version::Base));
        for &(fusion, unroll_jam, distribute) in &configs {
            let cfg = OptConfig { fusion, unroll_jam, distribute, ..OptConfig::default() };
            jobs.push(
                SimJob::new(bm, scale, machine.clone(), AssistKind::None, Version::PureSoftware)
                    .with_opt(cfg),
            );
        }
    }
    let results = engine.run(&jobs);
    for (bm, chunk) in benchmarks.iter().zip(results.chunks_exact(1 + configs.len())) {
        let base = &chunk[0];
        let cells: Vec<f64> = chunk[1..].iter().map(|r| r.improvement_over(base)).collect();
        println!(
            "{:<12} {:>8.2}% {:>8.2}% {:>8.2}% {:>11.2}%",
            bm.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
}
