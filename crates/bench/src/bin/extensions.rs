//! Extension experiments beyond the paper's evaluation:
//!
//! 1. A third hardware assist — Jouppi stream buffers (the "hardware
//!    prefetching" entry of the paper's related-work list) — run through
//!    the same four-version protocol as bypassing and victim caches.
//! 2. The extension compiler passes (loop fusion, loop distribution,
//!    unroll-and-jam) measured on top of the default pipeline.
//! 3. The online assist controller (`selcache-adapt`) swept over its
//!    decision-interval length, against the static selective scheme.
//!
//! Usage: `cargo run --release -p selcache-bench --bin extensions
//! [-- --scale tiny|small|medium] [--threads N]`

use selcache_bench::adapt::Ablation;
use selcache_bench::Cli;
use selcache_compiler::{insert_markers_for, optimize, AssistPolicy, OptConfig};
use selcache_core::{
    AssistKind, Benchmark, ControllerConfig, Experiment, JobEngine, MachineConfig, Scale, SimJob,
    SuiteResult, Version,
};

fn main() {
    let cli = Cli::from_env();
    let engine = cli.engine();
    assists_table(&engine, cli.scale);
    assist_aware_selective(cli.scale);
    extension_passes(&engine, cli.scale);
    controller_sensitivity(&engine, cli.scale);
}

/// Decision-interval sensitivity of the dynamic controller: too short and
/// the miss samples are noisy (spurious re-exploration), too long and the
/// controller reacts late and spends more of the run exploring at full
/// interval granularity. Averages over one benchmark per category.
fn controller_sensitivity(engine: &JobEngine, scale: Scale) {
    println!("== Extension: adapt controller interval sensitivity ==");
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>6}",
        "Interval", "Static%", "Dynamic%", "Switches", "Wins"
    );
    let benchmarks = [Benchmark::Adi, Benchmark::Li, Benchmark::Chaos];
    for interval in [128u32, 512, 2048] {
        let ctl = ControllerConfig { interval_accesses: interval, ..ControllerConfig::default() };
        let ab = Ablation::run(
            engine,
            &MachineConfig::base(),
            AssistKind::Bypass,
            ctl,
            scale,
            &benchmarks,
        );
        let n = ab.rows.len();
        let st: f64 = ab.rows.iter().map(|r| r.static_improvement_pct).sum::<f64>() / n as f64;
        let dy: f64 = ab.rows.iter().map(|r| r.dynamic_improvement_pct).sum::<f64>() / n as f64;
        let switches: u64 = ab.rows.iter().map(|r| r.policy_switches).sum();
        println!(
            "{:<16} {:>8.2}% {:>8.2}% {:>9} {:>4}/{}",
            format!("{interval} accesses"),
            st,
            dy,
            switches,
            ab.dynamic_wins(),
            n,
        );
    }
    println!();
}

/// Assist-aware region preference: the selective scheme with the marker
/// polarity chosen per mechanism. For the stream-buffer assist the paper's
/// irregular-regions rule forfeits most of the benefit; enabling it on the
/// *regular* regions recovers the combined version's gains while still
/// switching it off where it would pollute.
///
/// The marked programs are built by hand (per policy), so this study stays
/// on [`Experiment::run_program`]; the Base runs are computed once and
/// shared by all three policies.
fn assist_aware_selective(scale: Scale) {
    println!("== Extension: assist-aware selective (stream buffers) ==");
    println!("{:<24} {:>10}", "Policy", "Average");
    let exp = Experiment::new(MachineConfig::base(), AssistKind::Stream);
    let prepared: Vec<_> = Benchmark::ALL
        .iter()
        .map(|bm| {
            let p = bm.build(scale);
            let base = exp.run_program(&p, Version::Base);
            (optimize(&p, exp.opt()), base)
        })
        .collect();
    for (name, policy) in [
        ("paper rule (irregular)", AssistPolicy::IrregularRegions),
        ("inverted (regular)", AssistPolicy::RegularRegions),
        ("always on (combined)", AssistPolicy::Always),
    ] {
        let mut total = 0.0;
        for (optimized, base) in &prepared {
            let marked = insert_markers_for(optimized, exp.opt().threshold, policy);
            let r = exp.run_program(&marked, Version::Selective);
            total += r.improvement_over(base);
        }
        println!("{:<24} {:>9.2}%", name, total / Benchmark::ALL.len() as f64);
    }
    println!();
}

/// All three assists on the base machine as one job set: the 13 Base and
/// 13 PureSoftware runs are assist-independent, so the engine executes
/// them once and shares them across the three suites.
fn assists_table(engine: &JobEngine, scale: Scale) {
    println!("== Extension: all three hardware assists, base machine ==");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9}",
        "Assist", "PureHW", "PureSW", "Combined", "Selective"
    );
    let machine = MachineConfig::base();
    let assists = [AssistKind::Bypass, AssistKind::Victim, AssistKind::Stream];
    eprintln!("running {} suites at scale {scale} ({} threads)…", assists.len(), engine.threads());
    let mut jobs = Vec::new();
    for &assist in &assists {
        jobs.extend(SuiteResult::jobs(&machine, assist, scale, &Benchmark::ALL));
    }
    let results = engine.run(&jobs);
    let per_suite = jobs.len() / assists.len();
    for (assist, chunk) in assists.iter().zip(results.chunks_exact(per_suite)) {
        let s = SuiteResult::from_results(machine.name, *assist, &Benchmark::ALL, chunk);
        println!(
            "{:<10} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            format!("{assist:?}"),
            s.average(Version::PureHardware),
            s.average(Version::PureSoftware),
            s.average(Version::Combined),
            s.average(Version::Selective)
        );
    }
    println!();
}

fn extension_passes(engine: &JobEngine, scale: Scale) {
    println!("== Extension: compiler passes beyond the paper's list ==");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>12}",
        "Benchmark", "default", "+fusion", "+unroll", "+distribute"
    );
    let machine = MachineConfig::base();
    let benchmarks = [Benchmark::Vpenta, Benchmark::Swim, Benchmark::TpcDQ1, Benchmark::Chaos];
    let configs =
        [(false, false, false), (true, false, false), (false, true, false), (false, false, true)];
    let mut jobs = Vec::new();
    for &bm in &benchmarks {
        jobs.push(SimJob::new(bm, scale, machine.clone(), AssistKind::None, Version::Base));
        for &(fusion, unroll_jam, distribute) in &configs {
            let cfg = OptConfig { fusion, unroll_jam, distribute, ..OptConfig::default() };
            jobs.push(
                SimJob::new(bm, scale, machine.clone(), AssistKind::None, Version::PureSoftware)
                    .with_opt(cfg),
            );
        }
    }
    let results = engine.run(&jobs);
    for (bm, chunk) in benchmarks.iter().zip(results.chunks_exact(1 + configs.len())) {
        let base = &chunk[0];
        let cells: Vec<f64> = chunk[1..].iter().map(|r| r.improvement_over(base)).collect();
        println!(
            "{:<12} {:>8.2}% {:>8.2}% {:>8.2}% {:>11.2}%",
            bm.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
}
