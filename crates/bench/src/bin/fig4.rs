//! Regenerates Figure 4 of the paper: percent improvement in execution
//! cycles for the four simulated versions under the `Base` machine.
fn main() {
    selcache_bench::run_figure(selcache_core::ConfigVariant::Base);
}
