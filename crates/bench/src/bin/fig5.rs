//! Regenerates Figure 5 of the paper: percent improvement in execution
//! cycles for the four simulated versions under the `HigherMemLatency` machine.
fn main() {
    selcache_bench::run_figure(selcache_core::ConfigVariant::HigherMemLatency);
}
