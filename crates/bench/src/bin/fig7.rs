//! Regenerates Figure 7 of the paper: percent improvement in execution
//! cycles for the four simulated versions under the `LargerL1` machine.
fn main() {
    selcache_bench::run_figure(selcache_core::ConfigVariant::LargerL1);
}
