//! Regenerates Figure 8 of the paper: percent improvement in execution
//! cycles for the four simulated versions under the `HigherL2Assoc` machine.
fn main() {
    selcache_bench::run_figure(selcache_core::ConfigVariant::HigherL2Assoc);
}
