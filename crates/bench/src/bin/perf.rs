//! Simulator-throughput baseline: runs a fixed benchmark matrix and writes
//! `BENCH_perf.json` so the series tracks simulated-ops/sec over time.
//!
//! The matrix is pinned — every workload × {Base, Selective} at
//! `Scale::Tiny` — so successive artifacts are comparable. Each cell is
//! timed over several serial repetitions (best-of to shed scheduler noise);
//! a final pass runs the whole matrix through the [`JobEngine`] in parallel
//! for the suite wall time.
//!
//! ```text
//! usage: perf [--subset tiny|full] [--threads N] [--out PATH] [--baseline PATH] [--store DIR]
//! ```
//!
//! `--subset tiny` restricts the matrix to four representative workloads
//! (CI smoke); `full` (the default) runs all 13. With `--baseline PATH`
//! the run compares its per-cell throughput against that earlier
//! `BENCH_perf.json` and exits 1 when the geometric-mean ratio regresses
//! more than 20%; a missing baseline file skips the gate.
//!
//! The report also carries a `store_warm` cell: the suite matrix is run
//! cold into a scratch result store and then rerun warm (every identity a
//! store hit, zero simulations), recording both wall times and the
//! speedup. `--store DIR` places the scratch store under `DIR` (CI points
//! it at a tempdir); by default it lives under the system temp directory.
//! The scratch store is deleted afterwards either way.
//!
//! A `sampled` cell times the Base/Selective pair of one benchmark at the
//! largest configured scale, exact versus `SimMode::sampled()`, and
//! reports the speedup plus the worst-case CPI and L1-miss-rate error of
//! the weighted extrapolation.
//!
//! A `sampled_parallel` cell reruns the same sampled pair through the
//! intra-job executor fan-out at `max(--threads, 4)` threads, asserts the
//! reconstruction is bit-identical to the serial sampled run, and records
//! the wall-clock speedup both against the cold serial cell above and
//! against a warm serial rerun (isolating the fan-out win from the shared
//! profile-pass win).
//!
//! A `dynamic_adapt` cell times one run under the online assist controller
//! (every region ON, the controller picking {off, bypass, victim} at run
//! time), so controller overhead in the simulator hot path is tracked by
//! the same regression gate.

use selcache_bench::json::Json;
use selcache_bench::ops_per_sec;
use selcache_core::{
    AssistKind, Benchmark, ControllerConfig, JobEngine, MachineConfig, Scale, SimJob, SimMode,
    SimResult, Store, SweepAxis, SweepMode, SweepSpec, Version,
};
use std::path::PathBuf;
use std::time::Instant;

/// The matrix scale. Pinned so artifacts from different machines and dates
/// stay comparable; change it only with a fresh baseline.
const SCALE: Scale = Scale::Tiny;

/// Serial repetitions per cell; the fastest is reported.
const REPS: usize = 3;

/// Regression the gate tolerates before failing, in percent.
const MAX_REGRESS_PCT: f64 = 20.0;

/// The two versions the baseline tracks: the unmodified code path and the
/// paper's full selective scheme (compiler passes + markers + assist).
const VERSIONS: [Version; 2] = [Version::Base, Version::Selective];

/// `--subset tiny`: one regular FP kernel, one pointer-chaser, one control
/// benchmark, one database query — the four hot-path shapes.
const TINY: [Benchmark; 4] = [Benchmark::Vpenta, Benchmark::Li, Benchmark::Perl, Benchmark::TpcDQ6];

/// Benchmark the analytical sweep grid is timed on.
const SWEEP_BENCH: Benchmark = Benchmark::TpcDQ6;

/// Benchmark and scale the sampled-mode cell measures: the largest
/// configured scale, where sampling pays off most (and where exact runs
/// are still affordable enough to cross-check every artifact).
const SAMPLED_BENCH: Benchmark = Benchmark::Vpenta;
const SAMPLED_SCALE: Scale = Scale::Large;

/// Benchmark the dynamic-controller cell times — a pointer-chaser, where
/// the controller does real per-region work (policy switches > 0).
const DYNAMIC_BENCH: Benchmark = Benchmark::Li;

const USAGE: &str = "usage: perf [--subset tiny|full] [--threads N] [--out PATH] \
[--baseline PATH] [--store DIR]";

struct PerfCli {
    subset_name: &'static str,
    benchmarks: Vec<Benchmark>,
    threads: usize,
    out: PathBuf,
    baseline: Option<PathBuf>,
    store: Option<PathBuf>,
}

fn parse_cli() -> PerfCli {
    let mut cli = PerfCli {
        subset_name: "full",
        benchmarks: Benchmark::ALL.to_vec(),
        threads: 0,
        out: PathBuf::from("BENCH_perf.json"),
        baseline: None,
        store: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--subset" => match value("--subset").as_str() {
                "tiny" => {
                    cli.subset_name = "tiny";
                    cli.benchmarks = TINY.to_vec();
                }
                "full" => {
                    cli.subset_name = "full";
                    cli.benchmarks = Benchmark::ALL.to_vec();
                }
                other => {
                    eprintln!("error: unknown subset {other:?}; use tiny|full\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--threads" => {
                let v = value("--threads");
                cli.threads = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: invalid --threads {v:?}\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--out" => cli.out = value("--out").into(),
            "--baseline" => cli.baseline = Some(value("--baseline").into()),
            "--store" => cli.store = Some(value("--store").into()),
            other => {
                eprintln!("error: unknown argument {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    cli
}

struct Cell {
    benchmark: Benchmark,
    version: Version,
    result: SimResult,
    best_secs: f64,
}

impl Cell {
    fn key(&self) -> String {
        format!("{}/{}", self.benchmark.name(), version_tag(self.version))
    }

    fn ops_per_sec(&self) -> f64 {
        ops_per_sec(self.result.instructions, self.best_secs)
    }
}

fn version_tag(v: Version) -> &'static str {
    match v {
        Version::Base => "Base",
        Version::Selective => "Selective",
        _ => unreachable!("perf matrix only runs Base and Selective"),
    }
}

fn job(benchmark: Benchmark, version: Version) -> SimJob {
    SimJob::new(benchmark, SCALE, MachineConfig::base(), AssistKind::Bypass, version)
}

fn main() {
    let cli = parse_cli();
    let engine = JobEngine::new(cli.threads);
    eprintln!(
        "perf: {} subset ({} benchmarks x {} versions) at scale {SCALE}, {} threads",
        cli.subset_name,
        cli.benchmarks.len(),
        VERSIONS.len(),
        engine.threads()
    );

    // Per-cell timing: serial, best of REPS, so each number reflects raw
    // single-stream simulator throughput.
    let serial = JobEngine::new(1);
    let mut cells = Vec::new();
    for &bm in &cli.benchmarks {
        for &version in &VERSIONS {
            let j = job(bm, version);
            let mut best_secs = f64::INFINITY;
            let mut result = None;
            for _ in 0..REPS {
                let t0 = Instant::now();
                let mut out = serial.run(std::slice::from_ref(&j));
                best_secs = best_secs.min(t0.elapsed().as_secs_f64());
                result = out.pop();
            }
            let result = result.expect("one job in, one result out");
            let cell = Cell { benchmark: bm, version, result, best_secs };
            eprintln!(
                "  {:24} {:>12.0} ops/s  ({} ops, {:.1} ms)",
                cell.key(),
                cell.ops_per_sec(),
                cell.result.instructions,
                cell.best_secs * 1e3,
            );
            cells.push(cell);
        }
    }
    // The artifact lists cells under a stable key order regardless of the
    // subset's iteration order, so diffs between artifacts stay readable.
    cells.sort_by_key(Cell::key);

    // Suite pass: the whole matrix through the parallel engine at once.
    let jobs: Vec<SimJob> =
        cli.benchmarks.iter().flat_map(|&bm| VERSIONS.map(|v| job(bm, v))).collect();
    let t0 = Instant::now();
    let suite = engine.run(&jobs);
    let suite_secs = t0.elapsed().as_secs_f64();
    let total_ops: u64 = suite.iter().map(|r| r.instructions).sum();

    // Store cold/warm cycle on the suite matrix: the cold pass simulates
    // everything and populates a scratch store; the warm pass must answer
    // every identity from disk with zero simulations.
    let store_parent = cli.store.clone().unwrap_or_else(std::env::temp_dir);
    let scratch = store_parent.join(format!("selcache-perf-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let open_scratch = || {
        Store::open(&scratch).unwrap_or_else(|e| {
            eprintln!("error: cannot create scratch store {}: {e}", scratch.display());
            std::process::exit(1);
        })
    };
    let t0 = Instant::now();
    let (cold_results, cold_stats) =
        JobEngine::with_store(cli.threads, open_scratch()).run_with_stats(&jobs);
    let store_cold_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let (warm_results, warm_stats) =
        JobEngine::with_store(cli.threads, open_scratch()).run_with_stats(&jobs);
    let store_warm_secs = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&scratch);
    assert_eq!(warm_stats.executed, 0, "warm store must execute zero simulations");
    assert_eq!(warm_stats.store_hits, cold_stats.store_misses);
    assert_eq!(cold_results, warm_results, "warm results must be byte-identical");
    let store_speedup = if store_warm_secs > 0.0 { store_cold_secs / store_warm_secs } else { 0.0 };
    eprintln!(
        "  store_warm ({} unique)   cold {:.1} ms, warm {:.1} ms ({:.0}x)",
        cold_stats.store_misses,
        store_cold_secs * 1e3,
        store_warm_secs * 1e3,
        store_speedup,
    );

    // Sweep-grid throughput: a 200-point analytical L1 design-space grid
    // (single trace pass per version, no cross-check sims), best of REPS.
    // The speedup column extrapolates the exact equivalent from one
    // measured point (two simulations: base + optimized).
    let grid_spec = SweepSpec::new(SWEEP_BENCH)
        .scale(SCALE)
        .mode(SweepMode::Analytical { check_fraction: 0.0 })
        .axis(SweepAxis::L1Size, (12..22).map(|p| 1u64 << p))
        .axis(SweepAxis::L1Assoc, [1, 2, 4, 8, 16])
        .axis(SweepAxis::L1Line, [16, 32, 64, 128]);
    let grid_points = grid_spec.points();
    let mut grid_secs = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let sweep = grid_spec.run_with(&serial).expect("perf grid spec is valid");
        grid_secs = grid_secs.min(t0.elapsed().as_secs_f64());
        assert_eq!(sweep.points.len(), grid_points);
    }
    let exact_jobs = [
        SimJob::new(SWEEP_BENCH, SCALE, MachineConfig::base(), AssistKind::None, Version::Base),
        SimJob::new(
            SWEEP_BENCH,
            SCALE,
            MachineConfig::base(),
            AssistKind::None,
            Version::PureSoftware,
        ),
    ];
    let t0 = Instant::now();
    serial.run(&exact_jobs);
    let exact_point_secs = t0.elapsed().as_secs_f64();
    let sweep_points_per_sec = ops_per_sec(grid_points as u64, grid_secs);
    let speedup_vs_exact = if grid_secs > 0.0 && exact_point_secs > 0.0 {
        exact_point_secs * grid_points as f64 / grid_secs
    } else {
        0.0
    };
    eprintln!(
        "  sweep_grid ({} pts)      {:>12.0} pts/s  ({:.1} ms; exact point {:.1} ms, {:.0}x)",
        grid_points,
        sweep_points_per_sec,
        grid_secs * 1e3,
        exact_point_secs * 1e3,
        speedup_vs_exact,
    );

    // Sampled-mode cell: the Base/Selective pair at the largest scale, run
    // exact and then sampled, reporting the wall-clock speedup and the
    // worst-case CPI / L1-miss-rate error of the weighted extrapolation.
    let sampled_exact_jobs: Vec<SimJob> = VERSIONS
        .iter()
        .map(|&v| {
            SimJob::new(SAMPLED_BENCH, SAMPLED_SCALE, MachineConfig::base(), AssistKind::Bypass, v)
        })
        .collect();
    let sampled_jobs: Vec<SimJob> =
        sampled_exact_jobs.iter().map(|j| j.clone().with_mode(SimMode::sampled())).collect();
    let t0 = Instant::now();
    let sampled_exact = serial.run(&sampled_exact_jobs);
    let sampled_exact_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let sampled_results = serial.run(&sampled_jobs);
    let sampled_secs = t0.elapsed().as_secs_f64();
    let mut max_cpi_err_pct: f64 = 0.0;
    let mut max_l1_err_pts: f64 = 0.0;
    for (e, s) in sampled_exact.iter().zip(&sampled_results) {
        let cpi_exact = e.cycles as f64 / e.instructions as f64;
        let cpi_sampled = s.cycles as f64 / s.instructions as f64;
        max_cpi_err_pct = max_cpi_err_pct.max((cpi_sampled - cpi_exact).abs() / cpi_exact * 100.0);
        max_l1_err_pts = max_l1_err_pts.max((s.l1_miss_pct() - e.l1_miss_pct()).abs());
    }
    let sampled_info = sampled_results[0].sampled.expect("sampled jobs report interval coverage");
    let sampled_speedup = if sampled_secs > 0.0 { sampled_exact_secs / sampled_secs } else { 0.0 };
    eprintln!(
        "  sampled ({}/{SAMPLED_SCALE})  exact {:.0} ms, sampled {:.0} ms ({:.1}x); \
         max CPI err {:.2}%, max L1 err {:.2} pts",
        SAMPLED_BENCH.name(),
        sampled_exact_secs * 1e3,
        sampled_secs * 1e3,
        sampled_speedup,
        max_cpi_err_pct,
        max_l1_err_pts,
    );

    // Parallel-sampled cell: the same sampled job pair driven through the
    // intra-job executor fan-out at >= 4 threads. The selection cache is
    // warm from the cell above, so a warm serial rerun is timed alongside
    // as the profile-free reference; the reported speedups separate the
    // shared-profile win (vs the cold serial cell, the number the
    // acceptance gate tracks) from the pure fan-out win (vs warm serial).
    // Reconstruction must be bit-identical, so the accuracy columns of the
    // sampled cell carry over unchanged — asserted here, not assumed.
    let parallel_threads = engine.threads().max(4);
    let parallel_engine = JobEngine::new(parallel_threads);
    let mut warm_serial_secs = f64::INFINITY;
    let mut parallel_secs = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let warm = serial.run(&sampled_jobs);
        warm_serial_secs = warm_serial_secs.min(t0.elapsed().as_secs_f64());
        assert_eq!(warm, sampled_results, "warm serial rerun must be bit-identical");
        let t0 = Instant::now();
        let par = parallel_engine.run(&sampled_jobs);
        parallel_secs = parallel_secs.min(t0.elapsed().as_secs_f64());
        assert_eq!(par, sampled_results, "parallel sampled run must be bit-identical");
    }
    let parallel_speedup = if parallel_secs > 0.0 { sampled_secs / parallel_secs } else { 0.0 };
    let parallel_speedup_warm =
        if parallel_secs > 0.0 { warm_serial_secs / parallel_secs } else { 0.0 };
    eprintln!(
        "  sampled_parallel ({} threads)  warm serial {:.0} ms, parallel {:.0} ms \
         ({:.1}x vs serial cell, {:.1}x vs warm serial)",
        parallel_threads,
        warm_serial_secs * 1e3,
        parallel_secs * 1e3,
        parallel_speedup,
        parallel_speedup_warm,
    );

    // Dynamic-controller cell: one selective run with the adapt controller
    // attached, serial, best of REPS — tracks the controller's overhead in
    // the simulator hot path alongside the static cells.
    let dynamic_job = SimJob::new(
        DYNAMIC_BENCH,
        SCALE,
        MachineConfig::base(),
        AssistKind::None,
        Version::Selective,
    )
    .with_controller(ControllerConfig::default());
    let mut dynamic_secs = f64::INFINITY;
    let mut dynamic_result = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut out = serial.run(std::slice::from_ref(&dynamic_job));
        dynamic_secs = dynamic_secs.min(t0.elapsed().as_secs_f64());
        dynamic_result = out.pop();
    }
    let dynamic_result = dynamic_result.expect("one job in, one result out");
    let dynamic_ops_per_sec = ops_per_sec(dynamic_result.instructions, dynamic_secs);
    eprintln!(
        "  dynamic_adapt ({})       {:>12.0} ops/s  ({} ops, {:.1} ms, {} switches)",
        DYNAMIC_BENCH.name(),
        dynamic_ops_per_sec,
        dynamic_result.instructions,
        dynamic_secs * 1e3,
        dynamic_result.mem.assist.adapt_switches,
    );

    let report = Json::obj([
        ("schema", Json::str("selcache-perf/1")),
        ("subset", Json::str(cli.subset_name)),
        ("scale", Json::str(SCALE.to_string())),
        ("threads", Json::UInt(engine.threads() as u64)),
        (
            "suite",
            Json::obj([
                ("sim_ops", Json::UInt(total_ops)),
                ("wall_ms", Json::Num(suite_secs * 1e3)),
                ("ops_per_sec", Json::Num(ops_per_sec(total_ops, suite_secs))),
            ]),
        ),
        (
            "store_warm",
            Json::obj([
                ("jobs", Json::UInt(jobs.len() as u64)),
                ("unique", Json::UInt(cold_stats.store_misses as u64)),
                ("cold_ms", Json::Num(store_cold_secs * 1e3)),
                ("warm_ms", Json::Num(store_warm_secs * 1e3)),
                ("speedup_vs_cold", Json::Num(store_speedup)),
                ("store_hits", Json::UInt(warm_stats.store_hits as u64)),
                ("bytes_written", Json::UInt(cold_stats.bytes_written)),
            ]),
        ),
        (
            "sweep_grid",
            Json::obj([
                ("benchmark", Json::str(SWEEP_BENCH.name())),
                ("grid_points", Json::UInt(grid_points as u64)),
                ("wall_ms", Json::Num(grid_secs * 1e3)),
                ("points_per_sec", Json::Num(sweep_points_per_sec)),
                ("exact_point_ms", Json::Num(exact_point_secs * 1e3)),
                ("speedup_vs_exact", Json::Num(speedup_vs_exact)),
            ]),
        ),
        (
            "sampled",
            Json::obj([
                ("benchmark", Json::str(SAMPLED_BENCH.name())),
                ("scale", Json::str(SAMPLED_SCALE.to_string())),
                ("exact_ms", Json::Num(sampled_exact_secs * 1e3)),
                ("sampled_ms", Json::Num(sampled_secs * 1e3)),
                ("speedup_vs_exact", Json::Num(sampled_speedup)),
                ("max_cpi_err_pct", Json::Num(max_cpi_err_pct)),
                ("max_l1_miss_err_pts", Json::Num(max_l1_err_pts)),
                ("total_ops", Json::UInt(sampled_info.total_ops)),
                ("detailed_ops", Json::UInt(sampled_info.detailed_ops)),
                ("representatives", Json::UInt(sampled_info.representatives as u64)),
            ]),
        ),
        (
            "sampled_parallel",
            Json::obj([
                ("benchmark", Json::str(SAMPLED_BENCH.name())),
                ("scale", Json::str(SAMPLED_SCALE.to_string())),
                ("threads", Json::UInt(parallel_threads as u64)),
                ("warm_serial_ms", Json::Num(warm_serial_secs * 1e3)),
                ("parallel_ms", Json::Num(parallel_secs * 1e3)),
                ("speedup_vs_serial", Json::Num(parallel_speedup)),
                ("speedup_vs_warm_serial", Json::Num(parallel_speedup_warm)),
                ("max_cpi_err_pct", Json::Num(max_cpi_err_pct)),
                ("max_l1_miss_err_pts", Json::Num(max_l1_err_pts)),
            ]),
        ),
        (
            "dynamic_adapt",
            Json::obj([
                ("benchmark", Json::str(DYNAMIC_BENCH.name())),
                ("sim_ops", Json::UInt(dynamic_result.instructions)),
                ("wall_ms", Json::Num(dynamic_secs * 1e3)),
                ("ops_per_sec", Json::Num(dynamic_ops_per_sec)),
                ("policy_switches", Json::UInt(dynamic_result.mem.assist.adapt_switches)),
            ]),
        ),
        (
            "benchmarks",
            Json::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("name", Json::str(c.benchmark.name())),
                            ("version", Json::str(version_tag(c.version))),
                            ("sim_ops", Json::UInt(c.result.instructions)),
                            ("cycles", Json::UInt(c.result.cycles)),
                            ("l1d_miss_pct", Json::Num(c.result.l1_miss_pct())),
                            ("wall_ms", Json::Num(c.best_secs * 1e3)),
                            ("ops_per_sec", Json::Num(c.ops_per_sec())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let body = report.to_string();
    if let Err(e) = std::fs::write(&cli.out, format!("{body}\n")) {
        eprintln!("error: failed to write {}: {e}", cli.out.display());
        std::process::exit(1);
    }
    eprintln!(
        "perf: suite {:.0} ops/s over {} sims; wrote {}",
        ops_per_sec(total_ops, suite_secs),
        suite.len(),
        cli.out.display()
    );

    if let Some(path) = &cli.baseline {
        match gate(&cells, sweep_points_per_sec, dynamic_ops_per_sec, path) {
            Gate::Skipped(why) => eprintln!("perf: baseline gate skipped ({why})"),
            Gate::Passed(ratio) => {
                eprintln!("perf: baseline gate passed (geomean ratio {ratio:.3})");
            }
            Gate::Failed(ratio) => {
                eprintln!(
                    "perf: baseline gate FAILED: geomean throughput ratio {ratio:.3} \
                     is more than {MAX_REGRESS_PCT}% below baseline {}",
                    path.display()
                );
                std::process::exit(1);
            }
        }
    }
}

enum Gate {
    Skipped(String),
    Passed(f64),
    Failed(f64),
}

/// Compares this run's per-cell throughput with an earlier artifact: the
/// geometric mean of current/baseline ratios over cells present in both,
/// with the analytical sweep grid's points/sec and the dynamic-controller
/// cell's ops/sec included as extra cells when the baseline carries them.
///
/// Cells present in only one of the two artifacts are *skipped with a
/// printed notice*, never compared and never fatal: a newly introduced
/// cell has no baseline on its first artifact (and a tiny-subset run
/// legitimately lacks most of a full baseline), and neither situation is a
/// regression.
fn gate(
    cells: &[Cell],
    sweep_points_per_sec: f64,
    dynamic_ops_per_sec: f64,
    path: &std::path::Path,
) -> Gate {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return Gate::Skipped(format!("no baseline at {}", path.display())),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => return Gate::Skipped(format!("unparseable baseline: {e}")),
    };
    let Some(rows) = doc.get("benchmarks").and_then(Json::as_arr) else {
        return Gate::Skipped("baseline has no benchmarks array".to_string());
    };
    let row_key = |row: &Json| {
        let name = row.get("name")?.as_str()?;
        let version = row.get("version")?.as_str()?;
        Some(format!("{name}/{version}"))
    };
    let baseline_rate = |key: &str| {
        rows.iter().find_map(|row| {
            if row_key(row)? == key {
                row.get("ops_per_sec")?.as_f64()
            } else {
                None
            }
        })
    };
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for cell in cells {
        let Some(base) = baseline_rate(&cell.key()) else {
            eprintln!("perf: gate: cell {} has no baseline entry; skipped", cell.key());
            continue;
        };
        let cur = cell.ops_per_sec();
        if base > 0.0 && cur > 0.0 {
            log_sum += (cur / base).ln();
            n += 1;
        }
    }
    for key in rows.iter().filter_map(row_key) {
        if !cells.iter().any(|c| c.key() == key) {
            eprintln!("perf: gate: baseline cell {key} not in this run; skipped");
        }
    }
    let extra_cells = [
        ("sweep_grid", "points_per_sec", sweep_points_per_sec),
        ("dynamic_adapt", "ops_per_sec", dynamic_ops_per_sec),
    ];
    for (cell, rate_key, cur) in extra_cells {
        let base = doc.get(cell).and_then(|g| g.get(rate_key)).and_then(Json::as_f64);
        match base {
            Some(base) if base > 0.0 && cur > 0.0 => {
                log_sum += (cur / base).ln();
                n += 1;
            }
            Some(_) => {}
            None => eprintln!("perf: gate: cell {cell} has no baseline entry; skipped"),
        }
    }
    if n == 0 {
        return Gate::Skipped("no comparable cells in baseline".to_string());
    }
    let ratio = (log_sum / n as f64).exp();
    if ratio < 1.0 - MAX_REGRESS_PCT / 100.0 {
        Gate::Failed(ratio)
    } else {
        Gate::Passed(ratio)
    }
}
