//! Per-region attribution of the selective scheme: for each benchmark,
//! runs the `Selective` version with a region profile attached and prints
//! one table per benchmark — cycles, misses, and assist coverage broken
//! down by the compiler's uniform-region partition, with a TOTAL row that
//! matches the aggregate counters exactly.
//!
//! All runs are submitted as one job set, so the pool keeps every core
//! busy and deduplicated runs are simulated once. `--format json` emits
//! the profiles as a JSON array (each entry carrying its stable
//! `job_id`); `--format csv` emits one row per (benchmark, region).
//! With `--dynamic` the runs attach the online assist controller, and the
//! JSON adds a per-benchmark policy summary: total switch count plus each
//! region's final {off, bypass, victim} decision.
use selcache_bench::json::Json;
use selcache_bench::{Cli, OutputFormat};
use selcache_core::{
    format_region_report, ControllerConfig, MachineConfig, SimJob, SimResult, Version,
};
use std::fmt::Write as _;

fn region_json(r: &selcache_core::RegionStats) -> Json {
    Json::obj([
        ("label", Json::str(r.label.clone())),
        ("cycles", Json::UInt(r.cycles)),
        ("committed", Json::UInt(r.committed)),
        ("loads", Json::UInt(r.loads)),
        ("stores", Json::UInt(r.stores)),
        ("l1d_accesses", Json::UInt(r.l1d_accesses)),
        ("l1d_misses", Json::UInt(r.l1d_misses)),
        ("l2_accesses", Json::UInt(r.l2_accesses)),
        ("l2_misses", Json::UInt(r.l2_misses)),
        ("assisted_accesses", Json::UInt(r.assisted_accesses)),
        ("assist_hits", Json::UInt(r.assist_hits)),
        ("toggles", Json::UInt(r.toggles)),
        ("policy_switches", Json::UInt(r.policy_switches)),
        ("final_policy", Json::str(r.final_policy.clone())),
        ("assist_coverage_pct", Json::Num(r.assist_coverage_pct())),
    ])
}

fn result_json(name: &str, r: &SimResult, dynamic: bool) -> Json {
    let profile = r.regions.as_ref().expect("profiled run");
    let version = if dynamic { "selective+adapt" } else { "selective" };
    let mut pairs = vec![("benchmark", Json::str(name)), ("version", Json::str(version))];
    if let Some(id) = r.job_id {
        pairs.push(("job_id", Json::str(id.to_string())));
    }
    pairs.push(("cycles", Json::UInt(r.cycles)));
    pairs.push(("instructions", Json::UInt(r.instructions)));
    if dynamic {
        // Per-region policy-switch summary: how often the controller
        // changed its mind, and where each region ended up.
        pairs.push(("policy_switches", Json::UInt(r.mem.assist.adapt_switches)));
        pairs.push((
            "final_policies",
            Json::Arr(
                profile
                    .regions()
                    .iter()
                    .map(|reg| {
                        Json::obj([
                            ("region", Json::str(reg.label.clone())),
                            ("switches", Json::UInt(reg.policy_switches)),
                            ("final_policy", Json::str(reg.final_policy.clone())),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    pairs.push(("regions", Json::Arr(profile.regions().iter().map(region_json).collect())));
    Json::obj(pairs)
}

/// One CSV row per (benchmark, region), matching the other binaries' CSV
/// style: a header line, then plain comma-joined values.
fn results_csv(names: &[&str], results: &[SimResult]) -> String {
    let mut out = String::from(
        "benchmark,region,cycles,committed,loads,stores,l1d_accesses,l1d_misses,\
         l2_accesses,l2_misses,assisted_accesses,assist_hits,toggles,\
         policy_switches,final_policy\n",
    );
    for (name, r) in names.iter().zip(results) {
        let profile = r.regions.as_ref().expect("profiled run");
        for reg in profile.regions() {
            let _ = writeln!(
                out,
                "{name},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                reg.label,
                reg.cycles,
                reg.committed,
                reg.loads,
                reg.stores,
                reg.l1d_accesses,
                reg.l1d_misses,
                reg.l2_accesses,
                reg.l2_misses,
                reg.assisted_accesses,
                reg.assist_hits,
                reg.toggles,
                reg.policy_switches,
                reg.final_policy
            );
        }
    }
    out
}

fn main() {
    let cli = Cli::from_env();
    let engine = cli.engine();
    let benchmarks = cli.benchmarks();
    let machine = MachineConfig::base();
    eprintln!(
        "profiling {} benchmarks (selective{}, {:?} assist) at scale {} ({} threads)…",
        benchmarks.len(),
        if cli.dynamic { "+adapt" } else { "" },
        cli.assist,
        cli.scale,
        engine.threads()
    );
    let jobs: Vec<SimJob> = benchmarks
        .iter()
        .map(|&bm| {
            let job = SimJob::new(bm, cli.scale, machine.clone(), cli.assist, Version::Selective);
            if cli.dynamic {
                job.with_controller(ControllerConfig::default())
            } else {
                job
            }
        })
        .collect();
    let results = engine.run_profiled(&jobs);
    match cli.format {
        OutputFormat::Text => {
            for (bm, r) in benchmarks.iter().zip(&results) {
                print!("{}", format_region_report(bm.name(), r));
                if cli.dynamic {
                    println!("policy switches: {}", r.mem.assist.adapt_switches);
                }
                println!();
            }
        }
        OutputFormat::Json => {
            let rows: Vec<Json> = benchmarks
                .iter()
                .zip(&results)
                .map(|(bm, r)| result_json(bm.name(), r, cli.dynamic))
                .collect();
            println!("{}", Json::Arr(rows));
        }
        OutputFormat::Csv => {
            let names: Vec<&str> = benchmarks.iter().map(|b| b.name()).collect();
            print!("{}", results_csv(&names, &results));
        }
    }
}
