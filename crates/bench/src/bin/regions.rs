//! Per-region attribution of the selective scheme: for each benchmark,
//! runs the `Selective` version with a region profile attached and prints
//! one table per benchmark — cycles, misses, and assist coverage broken
//! down by the compiler's uniform-region partition, with a TOTAL row that
//! matches the aggregate counters exactly.
//!
//! All runs are submitted as one job set, so the pool keeps every core
//! busy and deduplicated runs are simulated once. `--format json` emits
//! the profiles as a JSON array instead of the tables.
use selcache_bench::json::Json;
use selcache_bench::{Cli, OutputFormat};
use selcache_core::{format_region_report, MachineConfig, SimJob, SimResult, Version};

fn region_json(r: &selcache_core::RegionStats) -> Json {
    Json::obj([
        ("label", Json::str(r.label.clone())),
        ("cycles", Json::UInt(r.cycles)),
        ("committed", Json::UInt(r.committed)),
        ("loads", Json::UInt(r.loads)),
        ("stores", Json::UInt(r.stores)),
        ("l1d_accesses", Json::UInt(r.l1d_accesses)),
        ("l1d_misses", Json::UInt(r.l1d_misses)),
        ("l2_accesses", Json::UInt(r.l2_accesses)),
        ("l2_misses", Json::UInt(r.l2_misses)),
        ("assisted_accesses", Json::UInt(r.assisted_accesses)),
        ("assist_hits", Json::UInt(r.assist_hits)),
        ("toggles", Json::UInt(r.toggles)),
        ("assist_coverage_pct", Json::Num(r.assist_coverage_pct())),
    ])
}

fn result_json(name: &str, r: &SimResult) -> Json {
    let profile = r.regions.as_ref().expect("profiled run");
    Json::obj([
        ("benchmark", Json::str(name)),
        ("version", Json::str("selective")),
        ("cycles", Json::UInt(r.cycles)),
        ("instructions", Json::UInt(r.instructions)),
        ("regions", Json::Arr(profile.regions().iter().map(region_json).collect())),
    ])
}

fn main() {
    let cli = Cli::from_env();
    let engine = cli.engine();
    let benchmarks = cli.benchmarks();
    let machine = MachineConfig::base();
    eprintln!(
        "profiling {} benchmarks (selective, {:?} assist) at scale {} ({} threads)…",
        benchmarks.len(),
        cli.assist,
        cli.scale,
        engine.threads()
    );
    let jobs: Vec<SimJob> = benchmarks
        .iter()
        .map(|&bm| SimJob::new(bm, cli.scale, machine.clone(), cli.assist, Version::Selective))
        .collect();
    let results = engine.run_profiled(&jobs);
    match cli.format {
        OutputFormat::Text => {
            for (bm, r) in benchmarks.iter().zip(&results) {
                print!("{}", format_region_report(bm.name(), r));
                println!();
            }
        }
        OutputFormat::Json => {
            let rows: Vec<Json> =
                benchmarks.iter().zip(&results).map(|(bm, r)| result_json(bm.name(), r)).collect();
            println!("{}", Json::Arr(rows));
        }
        OutputFormat::Csv => {
            eprintln!("error: regions supports --format text|json (csv is sweep-only)");
            std::process::exit(2);
        }
    }
}
