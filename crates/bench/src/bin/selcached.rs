//! `selcached` — the long-running result-store service.
//!
//! Serves the shared `JobEngine` over a unix domain socket using the
//! newline-delimited JSON protocol documented in
//! `selcache_bench::service` (and `DESIGN.md`). All clients share one
//! engine and one persistent store, so overlapping sweeps are simulated
//! once per unique execution identity — ever — and every rerun is
//! answered from disk.
//!
//! ```text
//! selcached [--socket PATH] [--store DIR] [--threads N]
//! selcached [--socket PATH] --once '<request JSON>'
//! ```
//!
//! Server mode binds the socket and serves until SIGTERM/ctrl-c (or a
//! `{"op":"shutdown"}` request), draining in-flight work before exiting.
//! `--once` is the client: it sends a single request line and prints the
//! response lines to stdout — e.g.
//!
//! ```text
//! selcached --socket /tmp/selcache.sock \
//!   --once '{"op":"run","jobs":[{"benchmark":"vpenta","version":"selective"}]}'
//! ```

#[cfg(unix)]
fn main() {
    unix::main();
}

#[cfg(not(unix))]
fn main() {
    eprintln!("selcached requires unix domain sockets and is not available on this platform");
    std::process::exit(1);
}

#[cfg(unix)]
mod unix {
    use selcache_bench::service::{self, Server};
    use selcache_core::{JobEngine, Store};
    use std::path::PathBuf;

    const USAGE: &str = "usage: selcached [--socket PATH] [--store DIR] [--threads N] \
[--once '<request JSON>']";

    // libc `signal(2)`, declared directly so the binary needs no new
    // dependency. The handler only flips the service's atomic shutdown
    // latch, which is async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        service::request_shutdown();
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    fn fail(msg: &str) -> ! {
        eprintln!("error: {msg}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    pub fn main() {
        let mut socket: Option<PathBuf> = None;
        let mut store: Option<PathBuf> = None;
        let mut threads: usize = 0;
        let mut once: Option<String> = None;

        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut value = |flag: &'static str| {
                args.next().unwrap_or_else(|| fail(&format!("{flag} needs a value")))
            };
            match a.as_str() {
                "--socket" => socket = Some(PathBuf::from(value("--socket"))),
                "--store" => store = Some(PathBuf::from(value("--store"))),
                "--threads" => {
                    let v = value("--threads");
                    threads =
                        v.parse().unwrap_or_else(|_| fail(&format!("invalid --threads {v:?}")));
                }
                "--once" => once = Some(value("--once")),
                "--help" | "-h" => {
                    println!("{USAGE}");
                    return;
                }
                other => fail(&format!("unknown flag {other:?}")),
            }
        }
        let socket = socket.unwrap_or_else(|| std::env::temp_dir().join("selcached.sock"));

        if let Some(line) = once {
            if let Err(e) = service::request_once(&socket, &line, &mut std::io::stdout()) {
                eprintln!("request to {} failed: {e}", socket.display());
                std::process::exit(1);
            }
            return;
        }

        if store.is_none() {
            if let Some(dir) = std::env::var_os("SELCACHE_STORE") {
                if !dir.is_empty() {
                    store = Some(PathBuf::from(dir));
                }
            }
        }
        let engine = match &store {
            None => JobEngine::new(threads),
            Some(root) => match Store::open(root) {
                Ok(s) => JobEngine::with_store(threads, s),
                Err(e) => {
                    eprintln!("failed to open store {}: {e}", root.display());
                    std::process::exit(1);
                }
            },
        };

        unsafe {
            let _ = signal(SIGINT, on_signal);
            let _ = signal(SIGTERM, on_signal);
        }

        let server = match Server::bind(&socket, engine) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to bind {}: {e}", socket.display());
                std::process::exit(1);
            }
        };
        match &store {
            Some(root) => eprintln!(
                "selcached listening on {} (store {})",
                server.path().display(),
                root.display()
            ),
            None => eprintln!(
                "selcached listening on {} (no store: results are not persisted)",
                server.path().display()
            ),
        }
        if let Err(e) = server.run() {
            eprintln!("server error: {e}");
            std::process::exit(1);
        }
        eprintln!("selcached: shutdown complete");
    }
}
