//! Design-space sweeps over one benchmark via the unified `SweepSpec`
//! API (the data behind the paper's Section 5.1 sensitivity studies).
//!
//! Two modes:
//!
//! - `--mode analytical` (the default): a single reuse-profiling trace
//!   pass per program version evaluates the whole
//!   `--sizes × --assocs × --lines` L1 grid analytically, then
//!   `--check-fraction` of the points are verified by exact simulation
//!   and the max/mean absolute miss-ratio error is reported.
//! - `--mode exact`: every point of the `--latencies` axis is simulated
//!   in full (base plus the four reported versions), yielding the
//!   classic % improvement series.
//!
//! On top of the shared flags this binary accepts `--benchmark <name>`,
//! and `--format text|json|csv` (JSON includes the analytical-vs-exact
//! error fields; CSV matches `Sweep::to_csv`).
use selcache_bench::json::Json;
use selcache_bench::{engine_stats_json, parse_benchmark, Cli, OutputFormat, USAGE};
use selcache_core::{Benchmark, PointData, Sweep, SweepAxis, SweepMode, SweepSpec};

/// Sweep-specific usage, printed after the shared [`USAGE`] line.
const SWEEP_USAGE: &str = "sweep:  [--benchmark <name>] [--mode exact|analytical] \
[--check-fraction F] [--sizes a,b,...] [--assocs a,b,...] [--lines a,b,...] \
[--latencies a,b,...]";

struct SweepCli {
    cli: Cli,
    benchmark: Benchmark,
    mode: SweepMode,
    sizes: Vec<u64>,
    assocs: Vec<u64>,
    lines: Vec<u64>,
    latencies: Vec<u64>,
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    eprintln!("{SWEEP_USAGE}");
    std::process::exit(2);
}

fn parse_list(flag: &str, v: &str) -> Vec<u64> {
    let mut out = Vec::new();
    for token in v.split(',').filter(|t| !t.trim().is_empty()) {
        match token.trim().parse::<u64>() {
            Ok(n) => out.push(n),
            Err(_) => fail(&format!("invalid {flag} entry {token:?}; use positive integers")),
        }
    }
    if out.is_empty() {
        fail(&format!("{flag} needs at least one value"));
    }
    out
}

/// Splits the command line into sweep-specific flags and the shared set,
/// handing the latter to [`Cli::parse`].
fn parse_args() -> SweepCli {
    let mut benchmark = Benchmark::TpcDQ6;
    let mut mode = None;
    let mut check_fraction = 0.05;
    // 4 KiB – 2 MiB: every size admits the largest default assoc x line
    // footprint (16 x 128 B = 2 KiB), so the whole 200-point grid is
    // feasible.
    let mut sizes: Vec<u64> = (12..22).map(|p| 1u64 << p).collect();
    let mut assocs: Vec<u64> = vec![1, 2, 4, 8, 16];
    let mut lines: Vec<u64> = vec![16, 32, 64, 128];
    let mut latencies: Vec<u64> = vec![50, 100, 200, 400];
    let mut shared: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &'static str| {
            args.next().unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--benchmark" => {
                let v = value("--benchmark");
                benchmark = parse_benchmark(&v)
                    .unwrap_or_else(|| fail(&format!("unknown benchmark {v:?}")));
            }
            "--mode" => {
                let v = value("--mode");
                mode = match v.as_str() {
                    "exact" => Some(SweepMode::Exact),
                    "analytical" => None,
                    _ => fail(&format!("unknown mode {v:?}; use exact|analytical")),
                };
            }
            "--check-fraction" => {
                let v = value("--check-fraction");
                check_fraction =
                    v.parse::<f64>().ok().filter(|f| (0.0..=1.0).contains(f)).unwrap_or_else(
                        || fail(&format!("invalid --check-fraction {v:?}; use 0..=1")),
                    );
            }
            "--sizes" => sizes = parse_list("--sizes", &value("--sizes")),
            "--assocs" => assocs = parse_list("--assocs", &value("--assocs")),
            "--lines" => lines = parse_list("--lines", &value("--lines")),
            "--latencies" => latencies = parse_list("--latencies", &value("--latencies")),
            other => shared.push(other.to_string()),
        }
    }
    let cli = match Cli::parse(shared) {
        Ok(cli) => cli,
        Err(e) => fail(&e.to_string()),
    };
    let mode = mode.unwrap_or(SweepMode::Analytical { check_fraction });
    SweepCli { cli, benchmark, mode, sizes, assocs, lines, latencies }
}

fn point_json(values: &[u64], data: &PointData) -> Json {
    let vals = Json::Arr(values.iter().map(|&v| Json::UInt(v)).collect());
    match data {
        PointData::Exact { improvements } => Json::obj([
            ("values", vals),
            ("pure_hw", Json::Num(improvements[0])),
            ("pure_sw", Json::Num(improvements[1])),
            ("combined", Json::Num(improvements[2])),
            ("selective", Json::Num(improvements[3])),
        ]),
        PointData::Analytical { est, check } => {
            let mut pairs = vec![
                ("values", vals),
                ("est_base_miss", Json::Num(est.base)),
                ("est_optimized_miss", Json::Num(est.optimized)),
            ];
            if let Some(c) = check {
                pairs.push(("exact_base_miss", Json::Num(c.exact.base)));
                pairs.push(("exact_optimized_miss", Json::Num(c.exact.optimized)));
                pairs.push(("abs_error", Json::Num(c.abs_error)));
            }
            Json::obj(pairs)
        }
    }
}

fn sweep_json(sweep: &Sweep) -> Json {
    let mode = match sweep.mode {
        SweepMode::Exact => "exact",
        SweepMode::Analytical { .. } => "analytical",
    };
    let mut pairs = vec![
        ("benchmark", Json::str(sweep.benchmark.name())),
        ("scale", Json::str(sweep.scale.to_string())),
        ("mode", Json::str(mode)),
        ("axes", Json::Arr(sweep.axes.iter().map(|a| Json::str(a.name())).collect())),
        ("grid_points", Json::UInt(sweep.work.grid_points as u64)),
        ("trace_passes", Json::UInt(sweep.work.trace_passes as u64)),
        ("exact_sims", Json::UInt(sweep.work.exact_sims as u64)),
        ("engine", engine_stats_json(&sweep.engine)),
    ];
    if let Some(c) = &sweep.check {
        pairs.push((
            "check",
            Json::obj([
                ("checked", Json::UInt(c.checked as u64)),
                ("max_abs_error", Json::Num(c.max_abs_error)),
                ("mean_abs_error", Json::Num(c.mean_abs_error)),
            ]),
        ));
    }
    pairs.push((
        "points",
        Json::Arr(sweep.points.iter().map(|p| point_json(&p.values, &p.data)).collect()),
    ));
    Json::obj(pairs)
}

fn print_text(sweep: &Sweep) {
    println!(
        "{} sweep for {} ({} points):",
        sweep.parameter(),
        sweep.benchmark,
        sweep.points.len()
    );
    match sweep.mode {
        SweepMode::Exact => {
            println!(
                "{:<24} {:>9} {:>9} {:>9} {:>9}",
                sweep.parameter(),
                "PureHW",
                "PureSW",
                "Combined",
                "Selective"
            );
            for p in &sweep.points {
                let imp = p.improvements().expect("exact sweep");
                let vals: Vec<String> = p.values.iter().map(u64::to_string).collect();
                println!(
                    "{:<24} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
                    vals.join(" x "),
                    imp[0],
                    imp[1],
                    imp[2],
                    imp[3]
                );
            }
        }
        SweepMode::Analytical { .. } => {
            println!(
                "{:<24} {:>10} {:>10} {:>10}",
                sweep.parameter(),
                "est base",
                "est opt",
                "|err|"
            );
            for p in &sweep.points {
                let est = p.estimate().expect("analytical sweep");
                let vals: Vec<String> = p.values.iter().map(u64::to_string).collect();
                let err = match p.check() {
                    Some(c) => format!("{:>10.4}", c.abs_error),
                    None => format!("{:>10}", "-"),
                };
                println!(
                    "{:<24} {:>10.4} {:>10.4} {err}",
                    vals.join(" x "),
                    est.base,
                    est.optimized
                );
            }
        }
    }
    println!(
        "work: {} grid points, {} trace passes, {} exact simulations",
        sweep.work.grid_points, sweep.work.trace_passes, sweep.work.exact_sims
    );
    if let Some(c) = &sweep.check {
        println!(
            "cross-check: {} points, max |err| {:.4}, mean |err| {:.4}",
            c.checked, c.max_abs_error, c.mean_abs_error
        );
    }
}

fn main() {
    let args = parse_args();
    let mut spec = SweepSpec::new(args.benchmark)
        .scale(args.cli.scale)
        .assist(args.cli.assist)
        .mode(args.mode);
    spec = match args.mode {
        SweepMode::Exact => spec.axis(SweepAxis::MemLatency, args.latencies.iter().copied()),
        SweepMode::Analytical { .. } => spec
            .axis(SweepAxis::L1Size, args.sizes.iter().copied())
            .axis(SweepAxis::L1Assoc, args.assocs.iter().copied())
            .axis(SweepAxis::L1Line, args.lines.iter().copied()),
    };
    let engine = args.cli.engine();
    eprintln!(
        "sweeping {} ({} grid points) at scale {} ({} threads)…",
        args.benchmark,
        spec.points(),
        args.cli.scale,
        engine.threads()
    );
    let sweep = match spec.run_with(&engine) {
        Ok(s) => s,
        Err(e) => fail(&e.to_string()),
    };
    match args.cli.format {
        OutputFormat::Text => print_text(&sweep),
        OutputFormat::Json => println!("{}", sweep_json(&sweep)),
        OutputFormat::Csv => print!("{}", sweep.to_csv()),
    }
    if let Some(path) = &args.cli.csv {
        if let Err(e) = std::fs::write(path, sweep.to_csv()) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
}
