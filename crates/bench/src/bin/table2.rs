//! Regenerates Table 2 of the paper: benchmark characteristics (input,
//! instructions executed, L1/L2 miss rates) under the base configuration.
fn main() {
    let cli = selcache_bench::cli();
    eprintln!("running base-configuration characterization at scale {}…", cli.scale);
    print!("{}", selcache_core::table2(cli.scale));
}
