//! Regenerates Table 2 of the paper: benchmark characteristics (input,
//! instructions executed, L1/L2 miss rates) under the base configuration.
use selcache_bench::Cli;

fn main() {
    let cli = Cli::from_env();
    let engine = cli.engine();
    eprintln!(
        "running base-configuration characterization at scale {} ({} threads)…",
        cli.scale,
        engine.threads()
    );
    print!("{}", selcache_core::table2_with(&engine, cli.scale));
}
