//! Regenerates Table 3 of the paper: average improvements of every version
//! (both assists) across all six machine configurations.
//!
//! All twelve suites (six machines x two assists) are submitted as one job
//! set, so the engine shares each machine's Base and PureSoftware runs
//! between its bypass and victim sweeps and keeps every core busy.
//! `--format json` emits `{"rows": [...], "engine": {...}}` (engine
//! counters include store hits/misses when `--store` is set);
//! `--format csv` emits the rows via `table3_csv`.
use selcache_bench::json::Json;
use selcache_bench::{engine_stats_json, Cli, OutputFormat};
use selcache_core::{
    format_table3, table3_csv, table3_rows_with_stats_in_mode, ConfigVariant, Table3Row,
};

fn row_json(r: &Table3Row) -> Json {
    Json::obj([
        ("machine", Json::str(r.machine_name)),
        ("pure_software", Json::Num(r.pure_software)),
        ("cache_bypass", Json::Num(r.cache_bypass)),
        ("combined_bypass", Json::Num(r.combined_bypass)),
        ("selective_bypass", Json::Num(r.selective_bypass)),
        ("victim", Json::Num(r.victim)),
        ("combined_victim", Json::Num(r.combined_victim)),
        ("selective_victim", Json::Num(r.selective_victim)),
    ])
}

fn main() {
    let cli = Cli::from_env();
    let engine = cli.engine();
    let machines: Vec<_> = ConfigVariant::ALL.iter().map(|v| v.machine()).collect();
    eprintln!(
        "running {} machine configurations (both assists) at scale {} ({} threads)…",
        machines.len(),
        cli.scale,
        engine.threads()
    );
    let (rows, stats) =
        table3_rows_with_stats_in_mode(&engine, &machines, cli.scale, &cli.benchmarks(), cli.mode);
    if engine.store().is_some() {
        eprintln!(
            "store: {} hits, {} misses, {} bytes written",
            stats.store_hits, stats.store_misses, stats.bytes_written
        );
    }
    match cli.format {
        OutputFormat::Text => print!("{}", format_table3(&rows)),
        OutputFormat::Json => {
            let mode = if cli.mode.is_sampled() { "sampled" } else { "exact" };
            println!(
                "{}",
                Json::obj([
                    ("mode", Json::str(mode)),
                    ("rows", Json::Arr(rows.iter().map(row_json).collect())),
                    ("engine", engine_stats_json(&stats)),
                ])
            );
        }
        OutputFormat::Csv => print!("{}", table3_csv(&rows)),
    }
}
