//! Regenerates Table 3 of the paper: average improvements of every version
//! (both assists) across all six machine configurations.
use selcache_core::{format_table3, table3_row, Benchmark, ConfigVariant};

fn main() {
    let cli = selcache_bench::cli();
    let rows: Vec<_> = ConfigVariant::ALL
        .iter()
        .map(|v| {
            eprintln!("running {} (both assists) at scale {}…", v, cli.scale);
            table3_row(v.machine(), cli.scale, &Benchmark::ALL)
        })
        .collect();
    print!("{}", format_table3(&rows));
}
