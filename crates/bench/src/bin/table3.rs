//! Regenerates Table 3 of the paper: average improvements of every version
//! (both assists) across all six machine configurations.
//!
//! All twelve suites (six machines x two assists) are submitted as one job
//! set, so the engine shares each machine's Base and PureSoftware runs
//! between its bypass and victim sweeps and keeps every core busy.
use selcache_bench::Cli;
use selcache_core::{format_table3, table3_rows, ConfigVariant};

fn main() {
    let cli = Cli::from_env();
    let engine = cli.engine();
    let machines: Vec<_> = ConfigVariant::ALL.iter().map(|v| v.machine()).collect();
    eprintln!(
        "running {} machine configurations (both assists) at scale {} ({} threads)…",
        machines.len(),
        cli.scale,
        engine.threads()
    );
    let rows = table3_rows(&engine, &machines, cli.scale, &cli.benchmarks());
    print!("{}", format_table3(&rows));
}
