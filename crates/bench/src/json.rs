//! Re-export of the workspace JSON value tree.
//!
//! The minimal JSON writer/reader this harness historically owned moved
//! into `selcache-core` when the persistent result store landed (store
//! envelopes and the `selcached` wire protocol need it below the bench
//! layer). `selcache_bench::json::Json` keeps working unchanged.

pub use selcache_core::json::{Json, JsonError};
