//! A minimal JSON writer for `--format json` output.
//!
//! The harness depends on nothing outside the workspace, so instead of a
//! serde stack this is a tiny value tree with a renderer: enough to emit
//! tables of numbers and strings, with correct string escaping and
//! locale-independent number formatting.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string (escaped on render).
    Str(String),
    /// An unsigned integer, rendered without a fraction.
    UInt(u64),
    /// A float, rendered with enough precision to round-trip; non-finite
    /// values render as `null` (JSON has no NaN/Infinity).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(v: &Json, out: &mut String) {
    match v {
        Json::Str(s) => escape(s, out),
        Json::UInt(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Json::Num(x) if x.is_finite() => {
            let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
        }
        Json::Num(_) => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Arr(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (k, (key, val)) in pairs.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                escape(key, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        render(self, &mut s);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::UInt(42).to_string(), "42");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::str("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn strings_escape_specials() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn nesting_renders_in_order() {
        let v = Json::obj([
            ("name", Json::str("adi")),
            ("vals", Json::Arr(vec![Json::UInt(1), Json::Num(0.5)])),
        ]);
        assert_eq!(v.to_string(), r#"{"name":"adi","vals":[1,0.5]}"#);
    }
}
