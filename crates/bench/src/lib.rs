//! # selcache-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation section (Section 5). One binary per artifact:
//!
//! | Binary   | Artifact | Contents |
//! |----------|----------|----------|
//! | `table2` | Table 2  | benchmark characteristics under the base machine |
//! | `fig4`   | Figure 4 | % improvement, base configuration |
//! | `fig5`   | Figure 5 | % improvement, 200-cycle memory latency |
//! | `fig6`   | Figure 6 | % improvement, 1 MiB L2 |
//! | `fig7`   | Figure 7 | % improvement, 64 KiB L1 |
//! | `fig8`   | Figure 8 | % improvement, 8-way L2 |
//! | `fig9`   | Figure 9 | % improvement, 8-way L1 |
//! | `table3` | Table 3  | average improvements across all six machines and both assists |
//! | `regions` | —       | per-region cycles/misses/assist coverage of the selective version |
//! | `sweep`  | Figs 4–9 axes | design-space sweeps via `SweepSpec` (exact or analytical) |
//!
//! Every binary accepts `--scale tiny|small|medium|large` (default
//! `small`), `--victim`/`--stream` to switch the figures' assist,
//! `--threads N` to size the simulation pool (default: all cores; output
//! is identical for every `N`), `--subset bench,bench,...` to restrict the
//! suite, `--mode exact|sampled` to switch on SimPoint-style interval
//! sampling (intended for `--scale large`), and `--store <dir>` (or the
//! `SELCACHE_STORE` environment variable) to back the engine with a
//! persistent result store — a warm store answers every repeated job from
//! disk and executes zero simulations.
//! `table3`, `regions`, and `sweep` accept `--format text|json|csv`.
//! The `selcached` binary runs the same engine as a long-lived unix-socket
//! service (see `DESIGN.md`).
//! Criterion benches (`cargo bench`) measure simulator component
//! throughput and run the ablation studies listed in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod json;
#[cfg(unix)]
pub mod service;

use selcache_core::{
    AssistKind, Benchmark, ConfigVariant, JobEngine, Scale, SimMode, Store, SuiteResult,
};
use std::fmt;

/// Usage string the binaries print when argument parsing fails.
pub const USAGE: &str = "usage: [--scale tiny|small|medium|large] [--bypass|--victim|--stream] \
[--threads N] [--subset bench,bench,...] [--mode exact|sampled] [--dynamic] [--csv <path>] \
[--format text|json|csv] [--store <dir>]";

/// Why the command line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Argument not recognized by any binary.
    UnknownArgument(String),
    /// A flag that takes a value appeared last.
    MissingValue(&'static str),
    /// `--scale` value was not `tiny|small|medium|large`.
    InvalidScale(String),
    /// `--mode` value was not `exact|sampled`.
    InvalidMode(String),
    /// `--threads` value was not a non-negative integer.
    InvalidThreads(String),
    /// A `--subset` entry named no known benchmark.
    UnknownBenchmark(String),
    /// `--format` value was not `text|json|csv`.
    InvalidFormat(String),
}

/// Output format for binaries that support `--format`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OutputFormat {
    /// Human-readable aligned tables (the default).
    #[default]
    Text,
    /// Machine-readable JSON on stdout.
    Json,
    /// Comma-separated values on stdout (`sweep`, `table3`, `regions`).
    Csv,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownArgument(a) => write!(f, "unknown argument {a:?}"),
            CliError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            CliError::InvalidScale(v) => {
                write!(f, "unknown scale {v:?}; use tiny|small|medium|large")
            }
            CliError::InvalidMode(v) => {
                write!(f, "unknown mode {v:?}; use exact|sampled")
            }
            CliError::InvalidThreads(v) => {
                write!(f, "invalid --threads {v:?}; use a non-negative integer (0 = all cores)")
            }
            CliError::UnknownBenchmark(v) => {
                write!(f, "unknown benchmark {v:?}; known: {}", known_benchmarks())
            }
            CliError::InvalidFormat(v) => {
                write!(f, "unknown format {v:?}; use text|json|csv")
            }
        }
    }
}

impl std::error::Error for CliError {}

fn known_benchmarks() -> String {
    let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
    names.join(" ")
}

/// Benchmark name lookup for `--subset` entries and the `sweep` binary's
/// `--benchmark` flag: exact display name first, then a form with
/// punctuation stripped so the comma-bearing TPC-D names stay addressable
/// inside a comma-separated list (`tpc-dq6`, `tpcdq6`).
pub fn parse_benchmark(token: &str) -> Option<Benchmark> {
    Benchmark::parse(token).or_else(|| {
        let canon = |s: &str| {
            s.chars().filter(char::is_ascii_alphanumeric).collect::<String>().to_ascii_lowercase()
        };
        let wanted = canon(token);
        if wanted.is_empty() {
            return None;
        }
        Benchmark::ALL.into_iter().find(|b| canon(b.name()) == wanted)
    })
}

/// Parsed command line shared by the figure/table binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Workload scale.
    pub scale: Scale,
    /// Assist under study for the figures.
    pub assist: AssistKind,
    /// Optional CSV output path for the figure data.
    pub csv: Option<std::path::PathBuf>,
    /// Worker threads for the job engine (`0` = all available cores).
    pub threads: usize,
    /// Benchmarks to run (`None` = the full suite).
    pub subset: Option<Vec<Benchmark>>,
    /// Simulation mode (`--mode`): exact whole-trace simulation or
    /// SimPoint-style interval sampling with the default parameters.
    pub mode: SimMode,
    /// Output format for binaries that support `--format`.
    pub format: OutputFormat,
    /// Persistent result-store root (`--store` flag; [`Cli::from_env`]
    /// also honors the `SELCACHE_STORE` environment variable).
    pub store: Option<std::path::PathBuf>,
    /// Attach the online assist controller (`--dynamic`): selective runs
    /// then defer the per-region {off, bypass, victim} choice to the
    /// run-time `selcache-adapt` hardware instead of the compiler's static
    /// decision.
    pub dynamic: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: Scale::Small,
            assist: AssistKind::Bypass,
            csv: None,
            threads: 0,
            subset: None,
            mode: SimMode::Exact,
            format: OutputFormat::Text,
            store: None,
            dynamic: false,
        }
    }
}

impl Cli {
    /// Parses an argument list (without the program name).
    pub fn parse<I, S>(args: I) -> Result<Cli, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Cli::default();
        let mut args = args.into_iter().map(Into::into);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().ok_or(CliError::MissingValue("--scale"))?;
                    out.scale = Scale::parse(&v).ok_or(CliError::InvalidScale(v))?;
                }
                "--victim" => out.assist = AssistKind::Victim,
                "--bypass" => out.assist = AssistKind::Bypass,
                "--stream" => out.assist = AssistKind::Stream,
                "--dynamic" => out.dynamic = true,
                "--threads" => {
                    let v = args.next().ok_or(CliError::MissingValue("--threads"))?;
                    out.threads = v.parse().map_err(|_| CliError::InvalidThreads(v))?;
                }
                "--subset" => {
                    let v = args.next().ok_or(CliError::MissingValue("--subset"))?;
                    let mut subset = Vec::new();
                    for token in v.split(',').filter(|t| !t.trim().is_empty()) {
                        let bm = parse_benchmark(token.trim())
                            .ok_or_else(|| CliError::UnknownBenchmark(token.trim().into()))?;
                        if !subset.contains(&bm) {
                            subset.push(bm);
                        }
                    }
                    if !subset.is_empty() {
                        out.subset = Some(subset);
                    }
                }
                "--mode" => {
                    let v = args.next().ok_or(CliError::MissingValue("--mode"))?;
                    out.mode = match v.as_str() {
                        "exact" => SimMode::Exact,
                        "sampled" => SimMode::sampled(),
                        _ => return Err(CliError::InvalidMode(v)),
                    };
                }
                "--csv" => {
                    let v = args.next().ok_or(CliError::MissingValue("--csv"))?;
                    out.csv = Some(v.into());
                }
                "--store" => {
                    let v = args.next().ok_or(CliError::MissingValue("--store"))?;
                    out.store = Some(v.into());
                }
                "--format" => {
                    let v = args.next().ok_or(CliError::MissingValue("--format"))?;
                    out.format = match v.as_str() {
                        "text" => OutputFormat::Text,
                        "json" => OutputFormat::Json,
                        "csv" => OutputFormat::Csv,
                        _ => return Err(CliError::InvalidFormat(v)),
                    };
                }
                other => return Err(CliError::UnknownArgument(other.into())),
            }
        }
        Ok(out)
    }

    /// Parses `std::env::args`; on failure prints the error plus [`USAGE`]
    /// to stderr and exits with status 2. When `--store` is absent, a
    /// non-empty `SELCACHE_STORE` environment variable supplies the store
    /// root (so CI and shell profiles can warm one store across runs).
    pub fn from_env() -> Cli {
        match Cli::parse(std::env::args().skip(1)) {
            Ok(mut cli) => {
                if cli.store.is_none() {
                    if let Ok(dir) = std::env::var("SELCACHE_STORE") {
                        if !dir.is_empty() {
                            cli.store = Some(dir.into());
                        }
                    }
                }
                cli
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// The benchmarks this invocation covers.
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        match &self.subset {
            Some(s) => s.clone(),
            None => Benchmark::ALL.to_vec(),
        }
    }

    /// A job engine sized per `--threads`, backed by the `--store`
    /// directory when one was given. A store root that cannot be created
    /// is fatal (exit 1): silently running store-less would re-simulate
    /// everything the caller expected to be cached.
    pub fn engine(&self) -> JobEngine {
        match &self.store {
            None => JobEngine::new(self.threads),
            Some(root) => match Store::open(root) {
                Ok(store) => JobEngine::with_store(self.threads, store),
                Err(e) => {
                    eprintln!("failed to open store {}: {e}", root.display());
                    std::process::exit(1);
                }
            },
        }
    }
}

/// Renders [`EngineStats`](selcache_core::EngineStats) as the JSON object
/// the `table3`/`sweep` binaries and the `selcached` protocol all embed
/// (dedup plus store hit/miss accounting).
pub fn engine_stats_json(stats: &selcache_core::EngineStats) -> json::Json {
    use json::Json;
    Json::obj([
        ("submitted", Json::UInt(stats.submitted as u64)),
        ("executed", Json::UInt(stats.executed as u64)),
        ("dedup_hits", Json::UInt(stats.dedup_hits as u64)),
        ("programs_prepared", Json::UInt(stats.programs_prepared as u64)),
        ("store_hits", Json::UInt(stats.store_hits as u64)),
        ("store_misses", Json::UInt(stats.store_misses as u64)),
        ("bytes_written", Json::UInt(stats.bytes_written)),
        ("threads", Json::UInt(stats.threads as u64)),
    ])
}

/// Throughput in simulated ops per wall-clock second, guarded the same way
/// as the core `RegionStats` rate helpers: an empty or zero-duration run
/// reports 0 instead of NaN/infinity.
pub fn ops_per_sec(ops: u64, wall_secs: f64) -> f64 {
    if ops == 0 || wall_secs <= 0.0 {
        0.0
    } else {
        ops as f64 / wall_secs
    }
}

/// Runs and prints one figure (4–9) for the chosen variant, optionally
/// writing the per-benchmark data as CSV.
pub fn run_figure(variant: ConfigVariant) {
    let cli = Cli::from_env();
    let engine = cli.engine();
    eprintln!(
        "running {} suite at scale {} ({:?} assist, {} threads)…",
        variant,
        cli.scale,
        cli.assist,
        engine.threads()
    );
    let suite = SuiteResult::run_in_mode(
        &engine,
        variant.machine(),
        cli.assist,
        cli.scale,
        &cli.benchmarks(),
        cli.mode,
    );
    print!("{}", suite.format_figure(variant.figure()));
    if let Some(path) = &cli.csv {
        if let Err(e) = std::fs::write(path, suite.to_csv()) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cli() {
        let c = Cli::parse(Vec::<String>::new()).unwrap();
        assert_eq!(c, Cli::default());
        assert_eq!(c.scale, Scale::Small);
        assert_eq!(c.benchmarks().len(), 13);
        assert!(c.engine().threads() >= 1);
    }

    #[test]
    fn parses_every_flag() {
        let c = Cli::parse([
            "--scale",
            "tiny",
            "--mode",
            "sampled",
            "--victim",
            "--threads",
            "4",
            "--subset",
            "adi,li,tpc-dq6",
            "--csv",
            "/tmp/out.csv",
            "--format",
            "json",
            "--store",
            "/tmp/selcache-store",
            "--dynamic",
        ])
        .unwrap();
        assert!(c.dynamic);
        assert_eq!(c.scale, Scale::Tiny);
        assert_eq!(c.mode, SimMode::sampled());
        assert_eq!(c.assist, AssistKind::Victim);
        assert_eq!(c.threads, 4);
        assert_eq!(c.benchmarks(), vec![Benchmark::Adi, Benchmark::Li, Benchmark::TpcDQ6]);
        assert_eq!(c.csv.as_deref(), Some(std::path::Path::new("/tmp/out.csv")));
        assert_eq!(c.format, OutputFormat::Json);
        assert_eq!(c.store.as_deref(), Some(std::path::Path::new("/tmp/selcache-store")));
        let c = Cli::parse(["--format", "csv"]).unwrap();
        assert_eq!(c.format, OutputFormat::Csv);
        assert_eq!(c.store, None, "store defaults to none in parse()");
        let c = Cli::parse(["--scale", "large", "--mode", "exact"]).unwrap();
        assert_eq!(c.scale, Scale::Large);
        assert_eq!(c.mode, SimMode::Exact);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert_eq!(
            Cli::parse(["--frobnicate"]),
            Err(CliError::UnknownArgument("--frobnicate".into()))
        );
        assert_eq!(Cli::parse(["--scale"]), Err(CliError::MissingValue("--scale")));
        assert_eq!(Cli::parse(["--scale", "huge"]), Err(CliError::InvalidScale("huge".into())));
        assert_eq!(Cli::parse(["--threads", "-1"]), Err(CliError::InvalidThreads("-1".into())));
        assert_eq!(
            Cli::parse(["--subset", "adi,nosuch"]),
            Err(CliError::UnknownBenchmark("nosuch".into()))
        );
        assert_eq!(Cli::parse(["--format", "yaml"]), Err(CliError::InvalidFormat("yaml".into())));
        let msg = CliError::InvalidFormat("yaml".into()).to_string();
        assert!(msg.contains("text|json|csv"), "{msg}");
        assert_eq!(Cli::parse(["--mode", "fuzzy"]), Err(CliError::InvalidMode("fuzzy".into())));
        // Errors render with guidance.
        let msg = CliError::InvalidScale("huge".into()).to_string();
        assert!(msg.contains("tiny|small|medium|large"), "{msg}");
        let msg = CliError::InvalidMode("fuzzy".into()).to_string();
        assert!(msg.contains("exact|sampled"), "{msg}");
    }

    #[test]
    fn ops_per_sec_guards_empty_runs() {
        // An empty run (no ops, no elapsed time) must report 0, not NaN.
        assert_eq!(ops_per_sec(0, 0.0), 0.0);
        assert_eq!(ops_per_sec(100, 0.0), 0.0);
        assert_eq!(ops_per_sec(0, 1.0), 0.0);
        assert_eq!(ops_per_sec(500, 2.0), 250.0);
        assert!(ops_per_sec(1, -1.0) == 0.0, "negative durations are clamped");
    }

    #[test]
    fn subset_accepts_punctuation_free_tpc_names() {
        for token in ["TPC-C", "tpcc", "tpcdq6", "Tpc-Dq1"] {
            assert!(parse_benchmark(token).is_some(), "{token} should resolve");
        }
        assert!(parse_benchmark("").is_none());
        assert!(parse_benchmark("---").is_none());
    }
}
