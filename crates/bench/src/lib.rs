//! # selcache-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation section (Section 5). One binary per artifact:
//!
//! | Binary   | Artifact | Contents |
//! |----------|----------|----------|
//! | `table2` | Table 2  | benchmark characteristics under the base machine |
//! | `fig4`   | Figure 4 | % improvement, base configuration |
//! | `fig5`   | Figure 5 | % improvement, 200-cycle memory latency |
//! | `fig6`   | Figure 6 | % improvement, 1 MiB L2 |
//! | `fig7`   | Figure 7 | % improvement, 64 KiB L1 |
//! | `fig8`   | Figure 8 | % improvement, 8-way L2 |
//! | `fig9`   | Figure 9 | % improvement, 8-way L1 |
//! | `table3` | Table 3  | average improvements across all six machines and both assists |
//!
//! Every binary accepts `--scale tiny|small|medium` (default `small`) and
//! `--victim` to switch the figures to the victim-cache assist. Criterion
//! benches (`cargo bench`) measure simulator component throughput and run
//! the ablation studies listed in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use selcache_core::{AssistKind, ConfigVariant, Scale, SuiteResult};

/// Parsed command line shared by the figure/table binaries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cli {
    /// Workload scale.
    pub scale: Scale,
    /// Assist under study for the figures.
    pub assist: AssistKind,
    /// Optional CSV output path for the figure data.
    pub csv: Option<std::path::PathBuf>,
}

/// Parses `--scale <s>`, `--victim`/`--stream`, and `--csv <path>` from
/// `std::env::args`.
///
/// # Panics
///
/// Panics with a usage message on an unknown argument.
pub fn cli() -> Cli {
    let mut out = Cli { scale: Scale::Small, assist: AssistKind::Bypass, csv: None };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                out.scale = Scale::parse(&v)
                    .unwrap_or_else(|| panic!("unknown scale {v:?}; use tiny|small|medium"));
            }
            "--victim" => out.assist = AssistKind::Victim,
            "--bypass" => out.assist = AssistKind::Bypass,
            "--stream" => out.assist = AssistKind::Stream,
            "--csv" => {
                let v = args.next().unwrap_or_else(|| panic!("--csv needs a path"));
                out.csv = Some(v.into());
            }
            other => panic!(
                "unknown argument {other:?}; usage: [--scale tiny|small|medium] [--victim|--stream] [--csv <path>]"
            ),
        }
    }
    out
}

/// Runs and prints one figure (4–9) for the chosen variant, optionally
/// writing the per-benchmark data as CSV.
pub fn run_figure(variant: ConfigVariant) {
    let cli = cli();
    eprintln!(
        "running {} suite at scale {} ({:?} assist)…",
        variant,
        cli.scale,
        cli.assist
    );
    let suite = SuiteResult::run(variant.machine(), cli.assist, cli.scale);
    print!("{}", suite.format_figure(variant.figure()));
    if let Some(path) = &cli.csv {
        if let Err(e) = std::fs::write(path, suite.to_csv()) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cli() {
        let c = Cli { scale: Scale::Small, assist: AssistKind::Bypass, csv: None };
        assert_eq!(c.scale, Scale::Small);
        assert!(c.csv.is_none());
    }
}
