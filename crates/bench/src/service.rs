//! The `selcached` service: a long-running unix-socket server wrapping one
//! shared [`JobEngine`] (and usually a persistent [`selcache_core::Store`])
//! so repeated
//! sweeps from many clients are answered from a single warm cache.
//!
//! # Protocol
//!
//! Newline-delimited JSON, one request object per line, answered by one or
//! more response lines (each a JSON object with an `"ok"` boolean and a
//! `"kind"` tag):
//!
//! | request | response lines |
//! |---|---|
//! | `{"op":"ping"}` | `{"ok":true,"kind":"pong"}` |
//! | `{"op":"stats"}` | `{"ok":true,"kind":"stats",...}` server-lifetime totals, plus the engine's `threads` budget and the current `in_flight_jobs` count (pool saturation) |
//! | `{"op":"store-stats"}` | `{"ok":true,"kind":"store-stats",...}` entry/byte counts of the backing store |
//! | `{"op":"gc"}` | `{"ok":true,"kind":"gc",...}` reclaims corrupt/stale store entries; optional `"max_age_secs"` also drops entries older than the cutoff |
//! | `{"op":"shutdown"}` | `{"ok":true,"kind":"bye"}`, then the server drains and exits |
//! | `{"op":"run","jobs":[...]}` | one `"result"` line per job (submission order), then a `"done"` line |
//!
//! `store-stats` and `gc` answer with an error on a store-less server —
//! there is nothing to inspect or reclaim.
//!
//! A job object names its execution identity with the same vocabulary the
//! CLI binaries use (all string fields are case-insensitive and ignore
//! punctuation):
//!
//! ```json
//! {"benchmark": "vpenta", "scale": "tiny", "machine": "base",
//!  "assist": "bypass", "version": "selective"}
//! ```
//!
//! `machine` is one of the six Table 3 configurations (`base`,
//! `higher-mem-latency`, `larger-l2`, `larger-l1`, `higher-l2-assoc`,
//! `higher-l1-assoc`); `version` is `base`, `pure-hardware`,
//! `pure-software`, `combined`, or `selective`; `assist` is `none`,
//! `bypass`, `victim`, or `stream`; an optional `"mode"` of `"sampled"`
//! runs the job with SimPoint-style interval sampling (result lines then
//! carry a `sampled` coverage object). An optional `"policy"` of
//! `"dynamic"` attaches the online `selcache-adapt` controller (default
//! configuration) to the job; its result line then echoes the controller
//! stats as `"policy":"dynamic"` plus the `policy_switches` count. A
//! request-level `"profiled": true`
//! runs the set with region attribution (result lines then carry a
//! `regions` count). Each `"result"` line echoes the job's stable
//! `job_id`; the `"done"` line carries the engine counters for the
//! request, so clients see how much of their sweep was answered by the
//! store (cross-client dedup shows up here as `store_hits`).
//!
//! Malformed lines never kill the connection: they are answered with
//! `{"ok":false,"kind":"error","message":...}` and the server reads on.
//!
//! # Shutdown
//!
//! [`request_shutdown`] flips a process-wide flag (async-signal-safe — the
//! `selcached` binary calls it from its SIGINT/SIGTERM handlers); the
//! accept loop and every connection handler poll it, so in-flight requests
//! finish, sockets drain, and [`Server::run`] returns after removing the
//! socket file. The `shutdown` op does the same from the wire.
use crate::engine_stats_json;
use crate::json::Json;
use crate::parse_benchmark;
use selcache_core::{
    AssistKind, ConfigVariant, ControllerConfig, EngineStats, JobEngine, Scale, SimJob, SimMode,
    SimResult, Version,
};
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Process-wide shutdown latch; see [`request_shutdown`].
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// How often idle loops (accept, blocked reads) re-check [`SHUTDOWN`].
const POLL: Duration = Duration::from_millis(25);

/// Hard cap on bytes buffered for a single request line; a client that
/// exceeds it gets an error and is disconnected.
const MAX_LINE: usize = 1 << 20;

/// Asks the server (and every open connection) to wind down. Safe to call
/// from a signal handler: it is a single atomic store.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Whether [`request_shutdown`] has been called.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Re-arms the latch so a test (or a supervisor restarting the service
/// in-process) can run another [`Server`].
pub fn reset_shutdown() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Server-lifetime counters, summed over every `run` request.
#[derive(Debug, Default, Clone, Copy)]
struct Totals {
    connections: u64,
    requests: u64,
    jobs: u64,
    executed: u64,
    dedup_hits: u64,
    store_hits: u64,
    store_misses: u64,
    bytes_written: u64,
}

impl Totals {
    fn absorb(&mut self, stats: &EngineStats) {
        self.requests += 1;
        self.jobs += stats.submitted as u64;
        self.executed += stats.executed as u64;
        self.dedup_hits += stats.dedup_hits as u64;
        self.store_hits += stats.store_hits as u64;
        self.store_misses += stats.store_misses as u64;
        self.bytes_written += stats.bytes_written;
    }
}

/// Shared server state: the engine (itself freely shareable — its store
/// writes are atomic), the lifetime totals, and the number of jobs
/// currently inside [`JobEngine::run`] across all connections (the pool-
/// saturation signal `stats` reports next to the thread budget).
struct ServerState {
    engine: JobEngine,
    totals: Mutex<Totals>,
    in_flight: AtomicU64,
}

/// A bound `selcached` listener; [`Server::run`] serves until shutdown.
pub struct Server {
    listener: UnixListener,
    path: PathBuf,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the service socket, replacing a stale socket file if one is
    /// left over from a previous run.
    pub fn bind(path: &Path, engine: JobEngine) -> io::Result<Server> {
        match std::fs::remove_file(path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState {
            engine,
            totals: Mutex::new(Totals::default()),
            in_flight: AtomicU64::new(0),
        });
        Ok(Server { listener, path: path.to_path_buf(), state })
    }

    /// The socket path this server is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Accepts and serves connections until [`request_shutdown`] (from a
    /// signal handler or a `shutdown` request). In-flight connections are
    /// drained before this returns; the socket file is removed.
    pub fn run(&self) -> io::Result<()> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !shutdown_requested() {
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    let state = Arc::clone(&self.state);
                    if let Ok(mut totals) = state.totals.lock() {
                        totals.connections += 1;
                    }
                    handlers.push(std::thread::spawn(move || handle_conn(stream, &state)));
                    handlers.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(e) => return Err(e),
            }
        }
        for h in handlers {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
        Ok(())
    }
}

/// Serves one connection: reads newline-delimited requests, answers each,
/// exits on EOF, error, or shutdown. Reads use a short timeout so an idle
/// connection notices [`request_shutdown`] promptly.
fn handle_conn(mut stream: UnixStream, state: &ServerState) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            match serve_line(&line, state, &mut stream) {
                Ok(false) => {}
                Ok(true) | Err(_) => return,
            }
        }
        if buf.len() > MAX_LINE {
            let _ = write_line(&mut stream, &error_json("request line exceeds 1 MiB"));
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF; a final un-terminated line still gets an answer.
                if !buf.is_empty() {
                    let line = std::mem::take(&mut buf);
                    let _ = serve_line(&line, state, &mut stream);
                }
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown_requested() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Parses and answers one request line. Returns `Ok(true)` when the
/// connection should close (the `shutdown` op).
fn serve_line(raw: &[u8], state: &ServerState, out: &mut UnixStream) -> io::Result<bool> {
    let line = String::from_utf8_lossy(raw);
    let line = line.trim();
    if line.is_empty() {
        return Ok(false);
    }
    let req = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => {
            write_line(out, &error_json(&format!("bad JSON: {e}")))?;
            return Ok(false);
        }
    };
    let op = req.get("op").and_then(Json::as_str).unwrap_or("");
    match op {
        "ping" => {
            write_line(out, &Json::obj([("ok", Json::Bool(true)), ("kind", Json::str("pong"))]))?;
            Ok(false)
        }
        "stats" => {
            let totals = *state.totals.lock().expect("totals lock");
            write_line(out, &stats_json(state, &totals))?;
            Ok(false)
        }
        "store-stats" => {
            match state.engine.store() {
                Some(store) => {
                    let s = store.stats();
                    write_line(
                        out,
                        &Json::obj([
                            ("ok", Json::Bool(true)),
                            ("kind", Json::str("store-stats")),
                            ("root", Json::str(store.root().display().to_string())),
                            ("entries", Json::UInt(s.entries as u64)),
                            ("bytes", Json::UInt(s.bytes)),
                        ]),
                    )?;
                }
                None => write_line(out, &error_json("server has no store"))?,
            }
            Ok(false)
        }
        "gc" => {
            match state.engine.store() {
                Some(store) => {
                    let max_age =
                        req.get("max_age_secs").and_then(Json::as_u64).map(Duration::from_secs);
                    match store.gc(max_age) {
                        Ok(r) => write_line(
                            out,
                            &Json::obj([
                                ("ok", Json::Bool(true)),
                                ("kind", Json::str("gc")),
                                ("kept", Json::UInt(r.kept as u64)),
                                ("removed", Json::UInt(r.removed as u64)),
                                ("tmp_removed", Json::UInt(r.tmp_removed as u64)),
                                ("bytes_freed", Json::UInt(r.bytes_freed)),
                            ]),
                        )?,
                        Err(e) => write_line(out, &error_json(&format!("gc failed: {e}")))?,
                    }
                }
                None => write_line(out, &error_json("server has no store"))?,
            }
            Ok(false)
        }
        "shutdown" => {
            write_line(out, &Json::obj([("ok", Json::Bool(true)), ("kind", Json::str("bye"))]))?;
            request_shutdown();
            Ok(true)
        }
        "run" => {
            serve_run(&req, state, out)?;
            Ok(false)
        }
        other => {
            write_line(
                out,
                &error_json(&format!(
                    "unknown op {other:?}; use ping | stats | store-stats | gc | run | shutdown"
                )),
            )?;
            Ok(false)
        }
    }
}

/// Answers a `run` request: parse every job up front (one bad job fails
/// the whole request, nothing is simulated), execute through the shared
/// engine, stream per-job result lines, close with a `done` line.
fn serve_run(req: &Json, state: &ServerState, out: &mut UnixStream) -> io::Result<()> {
    let Some(specs) = req.get("jobs").and_then(Json::as_arr) else {
        return write_line(out, &error_json("run needs a \"jobs\" array"));
    };
    let profiled = matches!(req.get("profiled"), Some(Json::Bool(true)));
    let mut jobs: Vec<SimJob> = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        match job_from_json(spec) {
            Ok(job) => jobs.push(job),
            Err(msg) => return write_line(out, &error_json(&format!("jobs[{i}]: {msg}"))),
        }
    }
    state.in_flight.fetch_add(jobs.len() as u64, Ordering::AcqRel);
    let (results, stats) = if profiled {
        state.engine.run_profiled_with_stats(&jobs)
    } else {
        state.engine.run_with_stats(&jobs)
    };
    state.in_flight.fetch_sub(jobs.len() as u64, Ordering::AcqRel);
    state.totals.lock().expect("totals lock").absorb(&stats);
    for (i, r) in results.iter().enumerate() {
        write_line(out, &result_json(i, &jobs[i], r))?;
    }
    write_line(
        out,
        &Json::obj([
            ("ok", Json::Bool(true)),
            ("kind", Json::str("done")),
            ("jobs", Json::UInt(results.len() as u64)),
            ("engine", engine_stats_json(&stats)),
        ]),
    )
}

/// One `result` response line: the job's identity echo plus the headline
/// counters (full per-region detail stays with the `regions` binary).
fn result_json(index: usize, job: &SimJob, r: &SimResult) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("kind", Json::str("result")),
        ("index", Json::UInt(index as u64)),
        ("benchmark", Json::str(job.benchmark.name())),
        ("job_id", Json::str(r.job_id.map(|id| id.to_string()).unwrap_or_default())),
        ("cycles", Json::UInt(r.cycles)),
        ("instructions", Json::UInt(r.instructions)),
        ("l1d_miss_pct", Json::Num(r.l1_miss_pct())),
        ("l2_miss_pct", Json::Num(r.l2_miss_pct())),
    ];
    if job.machine.mem.controller.is_some() {
        pairs.push(("policy", Json::str("dynamic")));
        pairs.push(("policy_switches", Json::UInt(r.mem.assist.adapt_switches)));
    }
    if let Some(profile) = &r.regions {
        pairs.push(("regions", Json::UInt(profile.regions().len() as u64)));
    }
    if let Some(info) = &r.sampled {
        pairs.push((
            "sampled",
            Json::obj([
                ("total_ops", Json::UInt(info.total_ops)),
                ("intervals", Json::UInt(info.intervals as u64)),
                ("representatives", Json::UInt(info.representatives as u64)),
                ("detailed_ops", Json::UInt(info.detailed_ops)),
                ("warmup_ops", Json::UInt(info.warmup_ops)),
            ]),
        ));
    }
    Json::obj(pairs)
}

/// The `stats` response: lifetime totals plus the engine's shape.
fn stats_json(state: &ServerState, totals: &Totals) -> Json {
    let store = match state.engine.store() {
        Some(s) => Json::str(s.root().display().to_string()),
        None => Json::Bool(false),
    };
    Json::obj([
        ("ok", Json::Bool(true)),
        ("kind", Json::str("stats")),
        ("connections", Json::UInt(totals.connections)),
        ("requests", Json::UInt(totals.requests)),
        ("jobs", Json::UInt(totals.jobs)),
        ("executed", Json::UInt(totals.executed)),
        ("dedup_hits", Json::UInt(totals.dedup_hits)),
        ("store_hits", Json::UInt(totals.store_hits)),
        ("store_misses", Json::UInt(totals.store_misses)),
        ("bytes_written", Json::UInt(totals.bytes_written)),
        ("threads", Json::UInt(state.engine.threads() as u64)),
        ("in_flight_jobs", Json::UInt(state.in_flight.load(Ordering::Acquire))),
        ("store", store),
    ])
}

fn error_json(msg: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("kind", Json::str("error")),
        ("message", Json::str(msg)),
    ])
}

fn write_line(out: &mut UnixStream, j: &Json) -> io::Result<()> {
    let mut text = j.to_string();
    text.push('\n');
    out.write_all(text.as_bytes())
}

/// Canonicalizes a protocol token the same way [`parse_benchmark`] does:
/// lowercase alphanumerics only, so `"Higher L2 Assoc"`, `"higher-l2-assoc"`
/// and `"HIGHERL2ASSOC"` all agree.
fn canon(s: &str) -> String {
    s.chars().filter(char::is_ascii_alphanumeric).collect::<String>().to_ascii_lowercase()
}

fn parse_machine(s: &str) -> Option<ConfigVariant> {
    ConfigVariant::ALL.into_iter().find(|v| canon(&format!("{v:?}")) == canon(s))
}

fn parse_version(s: &str) -> Option<Version> {
    match canon(s).as_str() {
        "base" => Some(Version::Base),
        "purehardware" | "purehw" => Some(Version::PureHardware),
        "puresoftware" | "puresw" => Some(Version::PureSoftware),
        "combined" => Some(Version::Combined),
        "selective" => Some(Version::Selective),
        _ => None,
    }
}

fn parse_assist(s: &str) -> Option<AssistKind> {
    match canon(s).as_str() {
        "none" => Some(AssistKind::None),
        "bypass" => Some(AssistKind::Bypass),
        "victim" => Some(AssistKind::Victim),
        "stream" => Some(AssistKind::Stream),
        _ => None,
    }
}

/// Builds a [`SimJob`] from a protocol job object. `benchmark` and
/// `version` are required; `scale` defaults to `tiny`, `machine` to the
/// base configuration, `assist` to `bypass` (the paper's primary assist).
fn job_from_json(spec: &Json) -> Result<SimJob, String> {
    let field = |key: &str| spec.get(key).and_then(Json::as_str);
    let benchmark = match field("benchmark") {
        Some(s) => parse_benchmark(s).ok_or_else(|| format!("unknown benchmark {s:?}"))?,
        None => return Err("missing \"benchmark\"".into()),
    };
    let version = match field("version") {
        Some(s) => parse_version(s).ok_or_else(|| format!("unknown version {s:?}"))?,
        None => return Err("missing \"version\"".into()),
    };
    let scale = match field("scale") {
        Some(s) => Scale::parse(s).ok_or_else(|| format!("unknown scale {s:?}"))?,
        None => Scale::Tiny,
    };
    let machine = match field("machine") {
        Some(s) => parse_machine(s).ok_or_else(|| format!("unknown machine {s:?}"))?.machine(),
        None => ConfigVariant::Base.machine(),
    };
    let assist = match field("assist") {
        Some(s) => parse_assist(s).ok_or_else(|| format!("unknown assist {s:?}"))?,
        None => AssistKind::Bypass,
    };
    let mode = match field("mode") {
        Some(s) => match canon(s).as_str() {
            "exact" => SimMode::Exact,
            "sampled" => SimMode::sampled(),
            _ => return Err(format!("unknown mode {s:?}")),
        },
        None => SimMode::Exact,
    };
    let job = SimJob::new(benchmark, scale, machine, assist, version).with_mode(mode);
    match field("policy") {
        Some(s) => match canon(s).as_str() {
            "static" => Ok(job),
            "dynamic" => Ok(job.with_controller(ControllerConfig::default())),
            _ => Err(format!("unknown policy {s:?}; use static | dynamic")),
        },
        None => Ok(job),
    }
}

/// Client side of the protocol: connect, send one request line, close the
/// write half, and stream every response line into `out` until the server
/// hangs up. This is `selcached --once` (and what the integration tests
/// drive).
pub fn request_once(path: &Path, line: &str, out: &mut impl Write) -> io::Result<()> {
    let mut stream = UnixStream::connect(path)?;
    stream.write_all(line.trim().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    out.write_all(&response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_tokens_parse() {
        assert_eq!(parse_machine("base"), Some(ConfigVariant::Base));
        assert_eq!(parse_machine("higher-l2-assoc"), Some(ConfigVariant::HigherL2Assoc));
        assert_eq!(parse_machine("Larger L1"), Some(ConfigVariant::LargerL1));
        assert_eq!(parse_machine("nope"), None);
        assert_eq!(parse_version("pure-software"), Some(Version::PureSoftware));
        assert_eq!(parse_version("PureHW"), Some(Version::PureHardware));
        assert_eq!(parse_assist("victim"), Some(AssistKind::Victim));
        assert_eq!(parse_assist(""), None);
    }

    #[test]
    fn job_parsing_defaults_and_errors() {
        let spec = Json::parse(r#"{"benchmark":"vpenta","version":"selective"}"#).unwrap();
        let job = job_from_json(&spec).unwrap();
        assert_eq!(job.scale, Scale::Tiny);
        assert_eq!(job.assist, AssistKind::Bypass);
        assert!(job.same_execution(&SimJob::new(
            selcache_core::Benchmark::Vpenta,
            Scale::Tiny,
            ConfigVariant::Base.machine(),
            AssistKind::Bypass,
            Version::Selective,
        )));

        let bad = Json::parse(r#"{"benchmark":"vpenta"}"#).unwrap();
        assert!(job_from_json(&bad).unwrap_err().contains("version"));
        let bad = Json::parse(r#"{"version":"base","benchmark":"whom"}"#).unwrap();
        assert!(job_from_json(&bad).unwrap_err().contains("whom"));
    }

    #[test]
    fn job_policy_parses_and_rejects() {
        let spec =
            Json::parse(r#"{"benchmark":"li","version":"selective","policy":"dynamic"}"#).unwrap();
        let job = job_from_json(&spec).unwrap();
        assert!(job.machine.mem.controller.is_some(), "dynamic policy attaches the controller");
        let spec =
            Json::parse(r#"{"benchmark":"li","version":"selective","policy":"Static"}"#).unwrap();
        assert!(job_from_json(&spec).unwrap().machine.mem.controller.is_none());
        let bad =
            Json::parse(r#"{"benchmark":"li","version":"selective","policy":"oracle"}"#).unwrap();
        assert!(job_from_json(&bad).unwrap_err().contains("policy"));
    }

    #[test]
    fn job_mode_parses_and_rejects() {
        let spec =
            Json::parse(r#"{"benchmark":"vpenta","version":"base","mode":"sampled"}"#).unwrap();
        assert_eq!(job_from_json(&spec).unwrap().mode, SimMode::sampled());
        let spec =
            Json::parse(r#"{"benchmark":"vpenta","version":"base","mode":"Exact"}"#).unwrap();
        assert_eq!(job_from_json(&spec).unwrap().mode, SimMode::Exact);
        let bad = Json::parse(r#"{"benchmark":"vpenta","version":"base","mode":"fuzzy"}"#).unwrap();
        assert!(job_from_json(&bad).unwrap_err().contains("mode"));
    }
}
