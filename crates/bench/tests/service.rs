//! In-process integration test of the `selcached` service: a server on a
//! temp socket, concurrent clients with overlapping job sets, cross-client
//! dedup through the shared store, and graceful shutdown.
#![cfg(unix)]

use selcache_bench::json::Json;
use selcache_bench::service::{self, Server};
use selcache_core::{JobEngine, Store};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The shutdown latch is process-wide, so tests that run a server must not
/// overlap; each takes this lock for its whole body.
static SERVER_LOCK: Mutex<()> = Mutex::new(());

/// A self-cleaning scratch directory (same pattern as the core store
/// tests: temp_dir + pid + sequence number).
struct TempRoot(PathBuf);

impl TempRoot {
    fn new(tag: &str) -> TempRoot {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "selcached-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create temp root");
        TempRoot(path)
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Sends one request line and returns the parsed response lines.
fn request(sock: &Path, line: &str) -> Vec<Json> {
    let mut out = Vec::new();
    service::request_once(sock, line, &mut out).expect("request");
    let text = String::from_utf8(out).expect("utf8 response");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad response line {l:?}: {e}")))
        .collect()
}

fn kind(j: &Json) -> &str {
    j.get("kind").and_then(Json::as_str).unwrap_or("")
}

fn uint(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or_else(|| panic!("missing uint {key} in {j}"))
}

/// Connect-retry until the server thread has bound the socket.
fn await_server(sock: &Path) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if std::os::unix::net::UnixStream::connect(sock).is_ok() {
            return;
        }
        assert!(Instant::now() < deadline, "server never came up on {}", sock.display());
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn concurrent_clients_share_one_store() {
    let _guard = SERVER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    service::reset_shutdown();
    let root = TempRoot::new("svc");
    let sock = root.0.join("selcached.sock");
    let store = Store::open(root.0.join("store")).expect("open store");
    let server = Server::bind(&sock, JobEngine::with_store(2, store)).expect("bind");
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));
    await_server(&sock);

    // Bad input is answered, not fatal: the connection and server live on.
    let lines = request(&sock, "this is not json");
    assert_eq!(lines.len(), 1);
    assert_eq!(kind(&lines[0]), "error");
    let lines = request(&sock, r#"{"op":"run","jobs":[{"benchmark":"nope","version":"base"}]}"#);
    assert_eq!(kind(&lines[0]), "error");
    let lines = request(&sock, r#"{"op":"ping"}"#);
    assert_eq!(kind(&lines[0]), "pong");

    // Warm one job so the later concurrent clients deterministically see
    // cross-client store hits no matter how their runs interleave.
    const SHARED: &str = r#"{"benchmark":"vpenta","scale":"tiny","machine":"base","assist":"bypass","version":"selective"}"#;
    let warm = request(&sock, &format!(r#"{{"op":"run","jobs":[{SHARED}]}}"#));
    assert_eq!(warm.len(), 2, "one result line + one done line: {warm:?}");
    assert_eq!(kind(&warm[0]), "result");
    assert_eq!(warm[0].get("benchmark").and_then(Json::as_str), Some("Vpenta"));
    let warm_id = warm[0].get("job_id").and_then(Json::as_str).expect("job_id").to_string();
    assert_eq!(warm_id.len(), 32, "job_id is a 128-bit hex string: {warm_id}");
    assert_eq!(kind(&warm[1]), "done");
    assert_eq!(uint(warm[1].get("engine").expect("engine"), "store_misses"), 1);

    // Two concurrent clients, overlapping job sets: both include the warmed
    // job plus a private one.
    let mk_req = |private: &str| {
        format!(
            r#"{{"op":"run","jobs":[{SHARED},{{"benchmark":{private:?},"scale":"tiny","version":"base"}}]}}"#
        )
    };
    let sock_a = sock.clone();
    let req_a = mk_req("adi");
    let client_a = std::thread::spawn(move || request(&sock_a, &req_a));
    let sock_b = sock.clone();
    let req_b = mk_req("swim");
    let client_b = std::thread::spawn(move || request(&sock_b, &req_b));
    let lines_a = client_a.join().expect("client a");
    let lines_b = client_b.join().expect("client b");

    for (label, lines) in [("a", &lines_a), ("b", &lines_b)] {
        assert_eq!(lines.len(), 3, "client {label}: 2 results + done: {lines:?}");
        assert_eq!(kind(&lines[0]), "result");
        assert_eq!(kind(&lines[1]), "result");
        assert_eq!(uint(&lines[0], "index"), 0);
        assert_eq!(uint(&lines[1], "index"), 1);
        // The shared job is already in the store: each client's engine run
        // reports at least that one store hit — dedup across clients.
        let engine = lines[2].get("engine").expect("done.engine");
        assert!(
            uint(engine, "store_hits") >= 1,
            "client {label} should hit the warmed entry: {engine}"
        );
        // Shared identity resolves to the same job_id for every client.
        assert_eq!(lines[0].get("job_id").and_then(Json::as_str), Some(warm_id.as_str()));
        assert!(uint(&lines[0], "cycles") > 0);
    }

    // Lifetime stats aggregate all of it.
    let stats = request(&sock, r#"{"op":"stats"}"#);
    assert_eq!(stats.len(), 1);
    let s = &stats[0];
    assert_eq!(kind(s), "stats");
    assert_eq!(uint(s, "jobs"), 5, "1 warm + 2 + 2: {s}");
    assert_eq!(uint(s, "requests"), 3);
    assert!(uint(s, "store_hits") >= 2, "both clients hit the shared entry: {s}");
    // 3 unique identities were ever simulated (shared, adi, swim).
    assert_eq!(uint(s, "executed"), 3);
    assert!(uint(s, "bytes_written") > 0);
    assert!(s.get("store").and_then(Json::as_str).is_some(), "stats names the store root");
    // Pool-saturation fields: the engine's thread budget and the jobs
    // currently inside the engine (none, from an idle stats connection).
    assert_eq!(uint(s, "threads"), 2);
    assert_eq!(uint(s, "in_flight_jobs"), 0, "no run in flight during stats: {s}");

    // Graceful shutdown over the wire: server thread exits, socket is gone.
    let bye = request(&sock, r#"{"op":"shutdown"}"#);
    assert_eq!(kind(&bye[0]), "bye");
    server_thread.join().expect("server thread");
    assert!(!sock.exists(), "socket file removed on shutdown");
    service::reset_shutdown();
}

#[test]
fn store_maintenance_ops_inspect_and_reclaim() {
    let _guard = SERVER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    service::reset_shutdown();
    let root = TempRoot::new("maint");
    let sock = root.0.join("maint.sock");
    let store_root = root.0.join("store");
    let store = Store::open(&store_root).expect("open store");
    let server = Server::bind(&sock, JobEngine::with_store(1, store)).expect("bind");
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));
    await_server(&sock);

    // An empty store reports zero entries.
    let lines = request(&sock, r#"{"op":"store-stats"}"#);
    assert_eq!(lines.len(), 1);
    assert_eq!(kind(&lines[0]), "store-stats");
    assert_eq!(uint(&lines[0], "entries"), 0);
    assert_eq!(
        lines[0].get("root").and_then(Json::as_str),
        Some(store_root.display().to_string().as_str())
    );

    // Populate two entries (one sampled, one exact), then inspect again.
    let lines = request(
        &sock,
        r#"{"op":"run","jobs":[{"benchmark":"vpenta","scale":"tiny","version":"base","mode":"sampled"},{"benchmark":"adi","scale":"tiny","version":"base"}]}"#,
    );
    assert_eq!(lines.len(), 3, "2 results + done: {lines:?}");
    let sampled = lines[0].get("sampled").expect("sampled job reports coverage");
    assert!(uint(sampled, "total_ops") > 0);
    assert!(uint(sampled, "representatives") > 0);
    assert!(lines[1].get("sampled").is_none(), "exact job carries no sampled block");
    let lines = request(&sock, r#"{"op":"store-stats"}"#);
    assert_eq!(uint(&lines[0], "entries"), 2);
    assert!(uint(&lines[0], "bytes") > 0);

    // Plant a corrupt entry; gc keeps the 2 real ones and reclaims it.
    let shard = std::fs::read_dir(&store_root)
        .expect("read store root")
        .map(|e| e.expect("dirent").path())
        .find(|p| p.is_dir())
        .expect("one shard exists");
    std::fs::write(shard.join("deadbeefdeadbeefdeadbeefdeadbeef.json"), "garbage").unwrap();
    let lines = request(&sock, r#"{"op":"gc"}"#);
    assert_eq!(kind(&lines[0]), "gc");
    assert_eq!(uint(&lines[0], "kept"), 2);
    assert_eq!(uint(&lines[0], "removed"), 1);
    assert!(uint(&lines[0], "bytes_freed") > 0);

    // An aggressive age cutoff clears everything.
    let lines = request(&sock, r#"{"op":"gc","max_age_secs":0}"#);
    assert_eq!(uint(&lines[0], "kept"), 0);
    assert_eq!(uint(&lines[0], "removed"), 2);
    let lines = request(&sock, r#"{"op":"store-stats"}"#);
    assert_eq!(uint(&lines[0], "entries"), 0);

    let bye = request(&sock, r#"{"op":"shutdown"}"#);
    assert_eq!(kind(&bye[0]), "bye");
    server_thread.join().expect("server thread");
    service::reset_shutdown();
}

#[test]
fn store_maintenance_ops_error_without_a_store() {
    let _guard = SERVER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    service::reset_shutdown();
    let root = TempRoot::new("nostore");
    let sock = root.0.join("nostore.sock");
    let server = Server::bind(&sock, JobEngine::new(1)).expect("bind");
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));
    await_server(&sock);

    for op in [r#"{"op":"store-stats"}"#, r#"{"op":"gc"}"#] {
        let lines = request(&sock, op);
        assert_eq!(lines.len(), 1);
        assert_eq!(kind(&lines[0]), "error", "{op} must error store-less: {}", lines[0]);
        let msg = lines[0].get("message").and_then(Json::as_str).unwrap_or("");
        assert!(msg.contains("no store"), "{msg}");
    }

    let bye = request(&sock, r#"{"op":"shutdown"}"#);
    assert_eq!(kind(&bye[0]), "bye");
    server_thread.join().expect("server thread");
    service::reset_shutdown();
}

#[test]
fn dynamic_policy_requests_echo_controller_stats() {
    let _guard = SERVER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    service::reset_shutdown();
    let root = TempRoot::new("dyn");
    let sock = root.0.join("dyn.sock");
    let store = Store::open(root.0.join("store")).expect("open store");
    let server = Server::bind(&sock, JobEngine::with_store(2, store)).expect("bind");
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));
    await_server(&sock);

    // The same selective job twice — once static, once under the adapt
    // controller. They are distinct identities with distinct result lines.
    const REQ: &str = r#"{"op":"run","jobs":[{"benchmark":"li","scale":"tiny","version":"selective"},{"benchmark":"li","scale":"tiny","version":"selective","policy":"dynamic"}]}"#;
    let lines = request(&sock, REQ);
    assert_eq!(lines.len(), 3, "2 results + done: {lines:?}");
    let (st, dy) = (&lines[0], &lines[1]);
    assert_eq!(kind(st), "result");
    assert!(st.get("policy").is_none(), "static job carries no policy echo: {st}");
    assert_eq!(dy.get("policy").and_then(Json::as_str), Some("dynamic"));
    assert!(uint(dy, "policy_switches") > 0, "controller must act on Li: {dy}");
    assert_ne!(
        st.get("job_id").and_then(Json::as_str),
        dy.get("job_id").and_then(Json::as_str),
        "dynamic and static runs are distinct identities"
    );
    assert_eq!(uint(lines[2].get("engine").expect("engine"), "store_misses"), 2);

    // A warm rerun answers both from the store, with identical stats.
    let warm = request(&sock, REQ);
    assert_eq!(warm[1].to_string(), dy.to_string(), "warm dynamic line is byte-identical");
    let engine = warm[2].get("engine").expect("engine");
    assert_eq!(uint(engine, "store_hits"), 2);
    assert_eq!(uint(engine, "executed"), 0);

    // An unknown policy is a request error, not a crash.
    let bad = request(
        &sock,
        r#"{"op":"run","jobs":[{"benchmark":"li","version":"selective","policy":"oracle"}]}"#,
    );
    assert_eq!(kind(&bad[0]), "error");

    let bye = request(&sock, r#"{"op":"shutdown"}"#);
    assert_eq!(kind(&bye[0]), "bye");
    server_thread.join().expect("server thread");
    service::reset_shutdown();
}

#[test]
fn profiled_requests_report_regions() {
    let _guard = SERVER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    service::reset_shutdown();
    // A store-less engine also covers that configuration of the service.
    let root = TempRoot::new("prof");
    let sock = root.0.join("prof.sock");
    let server = Server::bind(&sock, JobEngine::new(1)).expect("bind");
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));
    await_server(&sock);

    let lines = request(
        &sock,
        r#"{"op":"run","profiled":true,"jobs":[{"benchmark":"adi","scale":"tiny","version":"selective"}]}"#,
    );
    assert_eq!(lines.len(), 2);
    assert_eq!(kind(&lines[0]), "result");
    assert!(uint(&lines[0], "regions") > 0, "profiled result carries regions: {}", lines[0]);
    let engine = lines[1].get("engine").expect("engine");
    assert_eq!(uint(engine, "store_hits"), 0);
    assert_eq!(uint(engine, "bytes_written"), 0, "no store attached");

    let bye = request(&sock, r#"{"op":"shutdown"}"#);
    assert_eq!(kind(&bye[0]), "bye");
    server_thread.join().expect("server thread");
    service::reset_shutdown();
}
