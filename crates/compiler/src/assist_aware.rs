//! Assist-aware region preference (extension).
//!
//! The paper's region detector assigns *hardware* to irregular regions and
//! *software* to regular ones — the right policy for conflict-reduction
//! assists (MAT bypassing, victim caches), whose value lies in protecting
//! hot data from irregular traffic. For a *prefetching* assist the mapping
//! inverts: stream buffers help exactly the regions with sequential miss
//! streams, i.e. the regular ones (see EXPERIMENTS.md, "Extension
//! experiments").
//!
//! This module generalizes marker insertion over an [`AssistPolicy`]: the
//! same region analysis, but each region's ON/OFF decision reflects where
//! the attached mechanism actually helps.

use crate::classify::Preference;
use crate::redundant::eliminate_redundant_markers;
use crate::region::{detect_and_mark_with, MIN_REGION_VOLUME};
use selcache_ir::{Item, Loop, Marker, Program};

/// Which program regions an assist benefits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssistPolicy {
    /// Conflict-reduction mechanisms (bypassing, victim caches): enable on
    /// irregular regions — the paper's rule.
    IrregularRegions,
    /// Prefetching mechanisms (stream buffers): enable on regular regions,
    /// whose miss streams are sequential.
    RegularRegions,
    /// Enable everywhere (equivalent to the combined version, expressed as
    /// markers).
    Always,
    /// Defer the per-region decision to a run-time controller (the
    /// `selcache-adapt` adaptive hardware): every region's marker is ON so
    /// the controller sees all of them, and the static hardware/software
    /// classification is carried only as region labels. Marker-wise
    /// identical to
    /// [`AssistPolicy::Always`]; kept distinct because the *meaning* of ON
    /// differs — "controller may act here", not "assist is on here".
    Dynamic,
}

impl AssistPolicy {
    /// The marker a region with the given (paper-rule) preference receives
    /// under this policy.
    pub fn marker_for(&self, preference: Preference) -> Marker {
        let on = match self {
            AssistPolicy::IrregularRegions => preference == Preference::Hardware,
            AssistPolicy::RegularRegions => preference == Preference::Software,
            AssistPolicy::Always | AssistPolicy::Dynamic => true,
        };
        if on {
            Marker::On
        } else {
            Marker::Off
        }
    }
}

fn flip_markers(items: &mut [Item], policy: AssistPolicy) {
    for item in items.iter_mut() {
        match item {
            Item::Marker(m) => {
                // The paper-rule marking encodes the preference: On =
                // hardware region, Off = software region. Re-map it.
                let pref =
                    if *m == Marker::On { Preference::Hardware } else { Preference::Software };
                *m = policy.marker_for(pref);
            }
            Item::Loop(Loop { body, .. }) => flip_markers(body, policy),
            Item::Block(_) => {}
        }
    }
}

/// Region detection + marker insertion under an assist-specific policy,
/// with redundant markers eliminated. With
/// [`AssistPolicy::IrregularRegions`] this is exactly
/// [`crate::insert_markers`].
pub fn insert_markers_for(program: &Program, threshold: f64, policy: AssistPolicy) -> Program {
    let mut marked = detect_and_mark_with(program, threshold, MIN_REGION_VOLUME);
    flip_markers(&mut marked.items, policy);
    eliminate_redundant_markers(&marked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{AffineExpr, Interp, OpKind, ProgramBuilder, Subscript};

    fn mixed() -> Program {
        let mut b = ProgramBuilder::new("m");
        let a = b.array("A", &[2048], 8);
        let x = b.array("X", &[2048], 8);
        let ip = b.data_array("IP", (0..2048).rev().collect(), 4);
        b.loop_(2048, |b, i| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i)]).fp(1);
            });
        });
        b.loop_(2048, |b, i| {
            b.stmt(|s| {
                s.gather(x, ip, AffineExpr::var(i), 0);
            });
        });
        b.finish().unwrap()
    }

    fn dynamic_markers(p: &Program) -> Vec<OpKind> {
        Interp::new(p)
            .filter(|o| matches!(o.kind, OpKind::AssistOn | OpKind::AssistOff))
            .map(|o| o.kind)
            .collect()
    }

    #[test]
    fn irregular_policy_matches_paper_rule() {
        let p = mixed();
        let a = insert_markers_for(&p, 0.5, AssistPolicy::IrregularRegions);
        let b = crate::insert_markers(&p, 0.5);
        assert_eq!(a, b);
        // ON before the gather loop only.
        assert_eq!(dynamic_markers(&a), vec![OpKind::AssistOn]);
    }

    #[test]
    fn regular_policy_inverts() {
        let p = mixed();
        let m = insert_markers_for(&p, 0.5, AssistPolicy::RegularRegions);
        // The regular loop is first: ON for it, then OFF before the gather.
        assert_eq!(dynamic_markers(&m), vec![OpKind::AssistOn, OpKind::AssistOff]);
    }

    #[test]
    fn always_policy_single_on() {
        let p = mixed();
        let m = insert_markers_for(&p, 0.5, AssistPolicy::Always);
        assert_eq!(dynamic_markers(&m), vec![OpKind::AssistOn]);
    }

    #[test]
    fn dynamic_policy_marks_everything_on() {
        // The controller wants to see every region: marker-wise this is
        // `Always`, and the region structure itself is untouched.
        let p = mixed();
        let m = insert_markers_for(&p, 0.5, AssistPolicy::Dynamic);
        assert_eq!(m, insert_markers_for(&p, 0.5, AssistPolicy::Always));
        assert_eq!(dynamic_markers(&m), vec![OpKind::AssistOn]);
    }

    #[test]
    fn policies_preserve_work() {
        let p = mixed();
        let loads =
            |p: &Program| Interp::new(p).filter(|o| matches!(o.kind, OpKind::Load(_))).count();
        for policy in
            [AssistPolicy::IrregularRegions, AssistPolicy::RegularRegions, AssistPolicy::Always]
        {
            let m = insert_markers_for(&p, 0.5, policy);
            assert_eq!(loads(&p), loads(&m), "{policy:?}");
            assert!(m.validate().is_ok());
        }
    }

    #[test]
    fn marker_mapping_table() {
        use AssistPolicy::*;
        assert_eq!(IrregularRegions.marker_for(Preference::Hardware), Marker::On);
        assert_eq!(IrregularRegions.marker_for(Preference::Software), Marker::Off);
        assert_eq!(RegularRegions.marker_for(Preference::Hardware), Marker::Off);
        assert_eq!(RegularRegions.marker_for(Preference::Software), Marker::On);
        assert_eq!(Always.marker_for(Preference::Software), Marker::On);
        assert_eq!(Dynamic.marker_for(Preference::Hardware), Marker::On);
        assert_eq!(Dynamic.marker_for(Preference::Software), Marker::On);
    }
}
