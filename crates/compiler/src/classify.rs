//! Reference classification and per-loop optimization-method selection
//! (Section 2.3 of the paper).
//!
//! A reference is *analyzable* if it is a scalar or an affine array
//! reference; non-affine, indexed (subscripted), pointer, and struct
//! references are non-analyzable. A loop is optimized by the **compiler**
//! when the ratio of analyzable references to all references it contains
//! exceeds a threshold (0.5 in the paper), and by **hardware** otherwise.
//!
//! Scalar references are excluded from the counts: the paper's compiler
//! sees post-register-allocation code, where named scalars live in
//! registers and generate no memory references. Counting them would dilute
//! every ratio toward the threshold.

use selcache_ir::{Item, Loop, Stmt};

/// The optimization method selected for a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preference {
    /// Run-time hardware assist (irregular access).
    Hardware,
    /// Compile-time loop/data transformation (regular access).
    Software,
}

/// Counts of analyzable vs. total references.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefCounts {
    /// References classified analyzable.
    pub analyzable: usize,
    /// All references.
    pub total: usize,
}

impl RefCounts {
    /// Merges two counts.
    pub fn merge(self, other: RefCounts) -> RefCounts {
        RefCounts {
            analyzable: self.analyzable + other.analyzable,
            total: self.total + other.total,
        }
    }

    /// Analyzable ratio in `[0, 1]`; 1.0 for reference-free code (nothing to
    /// optimize, treated as software).
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.analyzable as f64 / self.total as f64
        }
    }

    /// Selects the method for the given threshold: software when
    /// `ratio > threshold`, hardware otherwise (reference-free code is
    /// software).
    pub fn preference(&self, threshold: f64) -> Preference {
        if self.total == 0 || self.ratio() > threshold {
            Preference::Software
        } else {
            Preference::Hardware
        }
    }
}

/// Counts references in one statement (scalar references are skipped —
/// they are register-resident).
pub fn stmt_counts(stmt: &Stmt) -> RefCounts {
    let mut c = RefCounts::default();
    for r in &stmt.refs {
        if matches!(r.pattern, selcache_ir::RefPattern::Scalar(_)) {
            continue;
        }
        c.total += 1;
        if r.pattern.is_analyzable() {
            c.analyzable += 1;
        }
    }
    c
}

/// Counts references in a list of items (recursing into nested loops).
pub fn items_counts(items: &[Item]) -> RefCounts {
    let mut c = RefCounts::default();
    for item in items {
        match item {
            Item::Loop(l) => c = c.merge(items_counts(&l.body)),
            Item::Block(stmts) => {
                for s in stmts {
                    c = c.merge(stmt_counts(s));
                }
            }
            Item::Marker(_) => {}
        }
    }
    c
}

/// Counts every reference contained in a loop (its whole subtree).
pub fn loop_counts(l: &Loop) -> RefCounts {
    items_counts(&l.body)
}

/// Selects the optimization method for a loop: compiler (software) when the
/// analyzable ratio exceeds `threshold`, hardware otherwise.
pub fn classify_loop(l: &Loop, threshold: f64) -> Preference {
    loop_counts(l).preference(threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{AffineExpr, ProgramBuilder, Subscript};

    #[test]
    fn affine_nest_is_software() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[8, 8], 8);
        b.nest2(8, 8, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j)]);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        assert_eq!(classify_loop(l, 0.5), Preference::Software);
        assert_eq!(loop_counts(l).ratio(), 1.0);
    }

    #[test]
    fn gather_loop_is_hardware() {
        let mut b = ProgramBuilder::new("t");
        let x = b.array("X", &[64], 8);
        let ip = b.data_array("IP", (0..64).collect(), 4);
        b.loop_(64, |b, j| {
            b.stmt(|s| {
                s.gather(x, ip, AffineExpr::var(j), 0);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        assert_eq!(classify_loop(l, 0.5), Preference::Hardware);
    }

    #[test]
    fn threshold_splits_mixed_loop() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64], 8);
        let h = b.array("H", &[64], 16);
        let n = b.data_array("N", (0..64).collect(), 8);
        b.loop_(64, |b, i| {
            b.stmt(|s| {
                // 2 analyzable + 1 pointer = ratio 2/3.
                s.read(a, vec![Subscript::var(i)]).write(a, vec![Subscript::var(i)]).chase(h, n, 0);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        assert_eq!(classify_loop(l, 0.5), Preference::Software);
        assert_eq!(classify_loop(l, 0.7), Preference::Hardware);
    }

    #[test]
    fn empty_loop_defaults_to_software() {
        let mut b = ProgramBuilder::new("t");
        b.loop_(4, |b, _| {
            b.stmt(|s| {
                s.int(1);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        assert_eq!(classify_loop(l, 0.5), Preference::Software);
    }

    #[test]
    fn counts_recurse_into_nests() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[8, 8], 8);
        let h = b.array("H", &[8], 16);
        let n = b.data_array("N", (0..8).collect(), 8);
        b.loop_(8, |b, i| {
            b.stmt(|s| {
                s.chase(h, n, 0);
            });
            b.loop_(8, |b, j| {
                b.stmt(|s| {
                    s.read(a, vec![Subscript::var(i), Subscript::var(j)]);
                });
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        let c = loop_counts(l);
        assert_eq!(c.total, 2);
        assert_eq!(c.analyzable, 1);
    }
}
