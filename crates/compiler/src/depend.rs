//! Data-dependence analysis for loop nests: distance/direction vectors and
//! transformation legality.
//!
//! For each pair of affine references to the same array with at least one
//! write, we derive a per-loop distance element: an exact integer when the
//! subscripts determine it, or *any* when they do not (multi-variable
//! subscripts, vars absent from the subscripts). Legality questions are
//! answered by enumerating sign realizations of the *any* elements, keeping
//! the analysis conservative but precise enough for the kernel shapes in the
//! benchmark suite.

use selcache_ir::{AffineExpr, Ref, RefPattern, Stmt, Subscript, VarId};

/// One distance element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dist {
    /// Exact iteration distance.
    Exact(i64),
    /// Unknown / unconstrained distance.
    Any,
}

/// A dependence between two references, as a distance vector over the nest's
/// loop variables (outermost first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependence {
    /// Distance element per nest loop, outermost first.
    pub distance: Vec<Dist>,
}

impl Dependence {
    /// True if every element is exactly zero (loop-independent dependence).
    pub fn is_loop_independent(&self) -> bool {
        self.distance.iter().all(|d| *d == Dist::Exact(0))
    }
}

/// Extracts the nest-variable terms of an affine subscript expression,
/// returning `(terms over nest vars, constant)`; terms on variables outside
/// the nest are folded into an "outer" marker by returning `None` (the
/// dependence is then approximated as Any for all vars).
fn nest_terms(e: &AffineExpr, nest: &[VarId]) -> Option<(Vec<(usize, i64)>, i64)> {
    let mut terms = Vec::new();
    for &(v, c) in e.terms() {
        match nest.iter().position(|&nv| nv == v) {
            Some(k) => terms.push((k, c)),
            None => return None,
        }
    }
    Some((terms, e.constant_term()))
}

/// Computes the distance vector between two references, or `None` when they
/// provably never touch the same address (no dependence).
fn pair_distance(nest: &[VarId], a: &[Subscript], b: &[Subscript]) -> Option<Vec<Dist>> {
    let mut dist = vec![Dist::Any; nest.len()];
    // Vars not appearing in any subscript stay Any (dependence at every
    // distance). Single-var dimensions pin exact distances.
    for (sa, sb) in a.iter().zip(b.iter()) {
        let (ea, eb) = match (sa, sb) {
            (Subscript::Affine(ea), Subscript::Affine(eb)) => (ea, eb),
            // Non-affine dimension: cannot reason, everything stays Any.
            _ => return Some(dist),
        };
        let (Some((ta, ca)), Some((tb, cb))) = (nest_terms(ea, nest), nest_terms(eb, nest)) else {
            return Some(dist);
        };
        if ta != tb {
            // Different coefficient structure: give up precisely but stay
            // conservative (Any).
            continue;
        }
        match ta.as_slice() {
            [] if ca != cb => {
                // Constant subscripts that differ: no dependence at all.
                return None;
            }
            [(k, c)] => {
                let delta = ca - cb;
                if delta % c != 0 {
                    return None;
                }
                let d = delta / c;
                match dist[*k] {
                    Dist::Any => dist[*k] = Dist::Exact(d),
                    Dist::Exact(prev) if prev != d => return None,
                    Dist::Exact(_) => {}
                }
            }
            // Multi-variable dimension (e.g. i+j): underdetermined; leave
            // the involved vars Any.
            _ => {}
        }
    }
    Some(dist)
}

fn affine_subscripts(r: &Ref) -> Option<(selcache_ir::ArrayId, &[Subscript])> {
    match &r.pattern {
        RefPattern::Array { array, subscripts } => Some((*array, subscripts)),
        _ => None,
    }
}

/// Collects the dependences among all references in the statements of a
/// nest body. Any reference the analysis cannot see through (non-affine,
/// pointer, struct, scalar writes aliasing nothing) contributes a
/// fully-unknown dependence when it shares an array with another reference.
pub fn nest_dependences(nest: &[VarId], stmts: &[&Stmt]) -> Vec<Dependence> {
    let refs: Vec<&Ref> = stmts.iter().flat_map(|s| s.refs.iter()).collect();
    let mut deps = Vec::new();
    for (i, r1) in refs.iter().enumerate() {
        for r2 in &refs[i..] {
            if !r1.write && !r2.write {
                continue;
            }
            let (a1, s1) = match affine_subscripts(r1) {
                Some(x) => x,
                None => continue,
            };
            let (a2, s2) = match affine_subscripts(r2) {
                Some(x) => x,
                None => continue,
            };
            if a1 != a2 {
                continue;
            }
            if let Some(d) = pair_distance(nest, s1, s2) {
                deps.push(Dependence { distance: d });
            }
        }
    }
    deps
}

/// Enumerates the sign realizations of a distance vector: each element
/// becomes -1, 0, or +1. `Exact` elements have a fixed sign; `Any` elements
/// range over all three.
fn sign_realizations(d: &[Dist]) -> Vec<Vec<i8>> {
    let mut out: Vec<Vec<i8>> = vec![Vec::new()];
    for e in d {
        let choices: &[i8] = match e {
            Dist::Exact(k) => match k.cmp(&0) {
                std::cmp::Ordering::Less => &[-1],
                std::cmp::Ordering::Equal => &[0],
                std::cmp::Ordering::Greater => &[1],
            },
            Dist::Any => &[-1, 0, 1],
        };
        let mut next = Vec::with_capacity(out.len() * choices.len());
        for prefix in &out {
            for &c in choices {
                let mut v = prefix.clone();
                v.push(c);
                next.push(v);
            }
        }
        out = next;
    }
    out
}

fn lex_positive_or_zero(v: &[i8]) -> bool {
    for &x in v {
        if x > 0 {
            return true;
        }
        if x < 0 {
            return false;
        }
    }
    true // all zero: loop-independent
}

/// Forward (lex-positive) realizations of a distance vector. A computed
/// vector that is lex-negative represents the dependence flowing the other
/// way, so its negation is included; the all-zero vector stands for the
/// loop-independent dependence.
fn forward_realizations(d: &[Dist]) -> Vec<Vec<i8>> {
    let mut out = Vec::new();
    for signs in sign_realizations(d) {
        if lex_positive_or_zero(&signs) {
            out.push(signs.clone());
        }
        let neg: Vec<i8> = signs.iter().map(|&x| -x).collect();
        if neg != signs && lex_positive_or_zero(&neg) {
            out.push(neg);
        }
    }
    out
}

/// True if permuting the nest loops by `perm` (new order, outermost first,
/// as indices into the original order) preserves every dependence.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..n` where `n` is the vector
/// length of the dependences.
pub fn permutation_legal(deps: &[Dependence], perm: &[usize]) -> bool {
    for dep in deps {
        assert_eq!(perm.len(), dep.distance.len(), "perm arity mismatch");
        for signs in forward_realizations(&dep.distance) {
            let permuted: Vec<i8> = perm.iter().map(|&k| signs[k]).collect();
            if !lex_positive_or_zero(&permuted) {
                return false;
            }
        }
    }
    true
}

/// True if every dependence has all components non-negative in the given
/// band of loop levels — the band is *fully permutable* and can be tiled.
pub fn band_fully_permutable(deps: &[Dependence], band: std::ops::Range<usize>) -> bool {
    for dep in deps {
        for signs in forward_realizations(&dep.distance) {
            if signs[band.clone()].iter().any(|&s| s < 0) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::Ref;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn aref(array: u32, subs: Vec<Subscript>, write: bool) -> Ref {
        let pattern = RefPattern::Array { array: selcache_ir::ArrayId(array), subscripts: subs };
        if write {
            Ref::store(pattern)
        } else {
            Ref::load(pattern)
        }
    }

    fn stmt(refs: Vec<Ref>) -> Stmt {
        Stmt::new(refs, 0, 0)
    }

    #[test]
    fn uniform_distance_detected() {
        // A[i][j] = A[i-1][j]  ->  distance (1, 0)
        let s = stmt(vec![
            aref(0, vec![Subscript::linear(v(0), 1, -1), Subscript::var(v(1))], false),
            aref(0, vec![Subscript::var(v(0)), Subscript::var(v(1))], true),
        ]);
        let deps = nest_dependences(&[v(0), v(1)], &[&s]);
        assert!(deps.iter().any(|d| d.distance == vec![Dist::Exact(1), Dist::Exact(0)]
            || d.distance == vec![Dist::Exact(-1), Dist::Exact(0)]));
    }

    #[test]
    fn read_read_pairs_ignored() {
        let s = stmt(vec![
            aref(0, vec![Subscript::var(v(0))], false),
            aref(0, vec![Subscript::linear(v(0), 1, -1)], false),
        ]);
        let deps = nest_dependences(&[v(0)], &[&s]);
        assert!(deps.is_empty());
    }

    #[test]
    fn disjoint_constants_no_dependence() {
        // A[0][j] write and A[1][j] read never alias; the only dependence is
        // the write's own output dependence across i iterations.
        let s = stmt(vec![
            aref(0, vec![Subscript::constant(0), Subscript::var(v(1))], true),
            aref(0, vec![Subscript::constant(1), Subscript::var(v(1))], false),
        ]);
        let deps = nest_dependences(&[v(0), v(1)], &[&s]);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].distance, vec![Dist::Any, Dist::Exact(0)]);
    }

    #[test]
    fn interchange_legal_for_zero_and_positive() {
        // distance (1, 0): interchange -> (0, 1), still lex positive.
        let deps = vec![Dependence { distance: vec![Dist::Exact(1), Dist::Exact(0)] }];
        assert!(permutation_legal(&deps, &[1, 0]));
    }

    #[test]
    fn interchange_illegal_for_crossing_dependence() {
        // distance (1, -1): interchange -> (-1, 1), lex negative -> illegal.
        let deps = vec![Dependence { distance: vec![Dist::Exact(1), Dist::Exact(-1)] }];
        assert!(!permutation_legal(&deps, &[1, 0]));
    }

    #[test]
    fn any_component_blocks_when_it_could_cross() {
        // (1, any): realization (1, -1) -> interchanged (-1, 1) illegal.
        let deps = vec![Dependence { distance: vec![Dist::Exact(1), Dist::Any] }];
        assert!(!permutation_legal(&deps, &[1, 0]));
        // But (0, any) is fine: realizations (0,1),(0,0) forward; permuted
        // (1,0),(0,0) still forward; (0,-1) is backward, not a dependence.
        let deps = vec![Dependence { distance: vec![Dist::Exact(0), Dist::Any] }];
        assert!(permutation_legal(&deps, &[1, 0]));
    }

    #[test]
    fn identity_permutation_always_legal() {
        let deps = vec![
            Dependence { distance: vec![Dist::Exact(1), Dist::Any] },
            Dependence { distance: vec![Dist::Any, Dist::Any] },
        ];
        assert!(permutation_legal(&deps, &[0, 1]));
    }

    #[test]
    fn band_permutability() {
        let deps = vec![Dependence { distance: vec![Dist::Exact(1), Dist::Exact(0)] }];
        assert!(band_fully_permutable(&deps, 0..2));
        let deps = vec![Dependence { distance: vec![Dist::Exact(1), Dist::Exact(-1)] }];
        assert!(!band_fully_permutable(&deps, 0..2));
        // The negative component is outside the band.
        assert!(band_fully_permutable(&deps, 0..1));
    }

    #[test]
    fn loop_independent_detection() {
        let d = Dependence { distance: vec![Dist::Exact(0), Dist::Exact(0)] };
        assert!(d.is_loop_independent());
        let d = Dependence { distance: vec![Dist::Exact(0), Dist::Any] };
        assert!(!d.is_loop_independent());
    }

    #[test]
    fn var_absent_from_subscripts_is_any() {
        // A[i] write in (i, j) nest: j distance unconstrained.
        let s = stmt(vec![
            aref(0, vec![Subscript::var(v(0))], true),
            aref(0, vec![Subscript::var(v(0))], false),
        ]);
        let deps = nest_dependences(&[v(0), v(1)], &[&s]);
        assert!(!deps.is_empty());
        assert!(deps.iter().all(|d| d.distance[1] == Dist::Any));
        assert!(deps.iter().all(|d| d.distance[0] == Dist::Exact(0)));
    }
}
