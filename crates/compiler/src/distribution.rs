//! Loop distribution (fission).
//!
//! The inverse of fusion: a nest whose innermost body holds several
//! statements is split into one nest per statement group, enabling
//! per-statement interchange/layout decisions and reducing register
//! pressure. Legality: a statement may move to a later loop only if no
//! dependence flows from a later-loop statement back to it across
//! iterations. We implement a conservative order-preserving version:
//! adjacent statements are kept in the same group whenever the shared
//! fusion-legality check cannot prove their separation safe.

use crate::fusion::pair_fusable;
use crate::nest::{NestLevel, PerfectNest};
use selcache_ir::{Item, Loop, LoopId, Program, Stmt, VarId};

/// Fresh loop-id allocator (distribution creates new loops).
fn fresh_loop(next: &mut u32) -> LoopId {
    *next += 1;
    LoopId(*next - 1)
}

/// Splitting `earlier` into a loop that fully precedes `later`'s loop is
/// legal iff every conflicting pair of instances already ran
/// earlier-then-later — i.e. every solution of the address equation has
/// `i_earlier <= i_later`. That is exactly the loop-fusion legality
/// condition, so the check is shared.
fn forward_only(vars: &[VarId], earlier: &Stmt, later: &Stmt) -> bool {
    earlier.refs.iter().all(|r1| later.refs.iter().all(|r2| pair_fusable(vars, r1, r2)))
}

/// True if the two statements conflict at all (shared array with a write);
/// independent statements may always be separated.
fn stmts_dependent(_vars: &[VarId], a: &Stmt, b: &Stmt) -> bool {
    for r1 in &a.refs {
        for r2 in &b.refs {
            if !r1.write && !r2.write {
                continue;
            }
            match (r1.pattern.array(), r2.pattern.array()) {
                (Some(x), Some(y)) if x == y => return true,
                (None, None) => {
                    // Two scalar refs: conflict only on the same slot.
                    use selcache_ir::RefPattern;
                    if let (RefPattern::Scalar(s1), RefPattern::Scalar(s2)) =
                        (&r1.pattern, &r2.pattern)
                    {
                        if s1 == s2 {
                            return true;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    false
}

/// Attempts to distribute the perfect nest rooted at `l` into one loop per
/// independent statement. Returns the replacement loops (more than one on
/// success), or `None` when the nest is not distributable.
pub fn distribute_nest(next_loop: &mut u32, l: &Loop) -> Option<Vec<Loop>> {
    let nest = PerfectNest::extract(l);
    if !nest.is_flat() {
        return None;
    }
    let stmts: Vec<Stmt> = nest.stmts().into_iter().cloned().collect();
    if stmts.len() < 2 {
        return None;
    }
    let vars = nest.vars();

    // Greedy grouping preserving statement order: a statement joins the
    // current group if it depends on (or feeds) anything in it in a way
    // that distribution could break.
    let mut groups: Vec<Vec<Stmt>> = Vec::new();
    for s in stmts {
        let mut placed = false;
        if let Some(group) = groups.last_mut() {
            let must_stay =
                group.iter().any(|g| stmts_dependent(&vars, g, &s) && !forward_only(&vars, g, &s));
            if must_stay {
                group.push(s.clone());
                placed = true;
            }
        }
        if !placed {
            groups.push(vec![s]);
        }
    }
    if groups.len() < 2 {
        return None;
    }

    // Rebuild one nest per group, with fresh loop ids for all but the first.
    let mut out = Vec::with_capacity(groups.len());
    for (k, group) in groups.into_iter().enumerate() {
        let levels: Vec<NestLevel> = nest
            .levels
            .iter()
            .map(|lv| {
                if k == 0 {
                    *lv
                } else {
                    NestLevel { id: fresh_loop(next_loop), var: lv.var, trip: lv.trip }
                }
            })
            .collect();
        out.push(PerfectNest { levels, body: vec![Item::Block(group)] }.rebuild());
    }
    Some(out)
}

/// Distributes every distributable software nest in the program; returns
/// how many nests were split.
///
/// Note: loops produced by distribution share induction-variable ids with
/// their siblings (they are sequential, never nested, so [`Program::validate`]
/// accepts them).
pub fn distribute_loops(program: &mut Program, threshold: f64) -> usize {
    use crate::classify::Preference;
    use crate::region::{analyze_loop, RegionClass};

    fn walk(items: &mut Vec<Item>, threshold: f64, next_loop: &mut u32) -> usize {
        let mut n = 0;
        let mut i = 0;
        while i < items.len() {
            let replacement = match &mut items[i] {
                Item::Loop(l) => match analyze_loop(l, threshold) {
                    RegionClass::Uniform(Preference::Software) => distribute_nest(next_loop, l),
                    RegionClass::Mixed => {
                        n += walk(&mut l.body, threshold, next_loop);
                        None
                    }
                    RegionClass::Uniform(Preference::Hardware) => None,
                },
                _ => None,
            };
            if let Some(loops) = replacement {
                let count = loops.len();
                items.splice(i..=i, loops.into_iter().map(Item::Loop));
                n += 1;
                i += count;
            } else {
                i += 1;
            }
        }
        n
    }

    let mut items = std::mem::take(&mut program.items);
    let mut next_loop = program.num_loops;
    let n = walk(&mut items, threshold, &mut next_loop);
    program.items = items;
    program.num_loops = next_loop;
    debug_assert!(program.validate().is_ok(), "distribution produced invalid program");
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{Interp, OpKind, ProgramBuilder, Subscript};

    #[test]
    fn independent_statements_split() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64], 8);
        let c = b.array("C", &[64], 8);
        b.loop_(64, |b, i| {
            b.stmt(|s| {
                s.fp(1).write(a, vec![Subscript::var(i)]);
            });
            b.stmt(|s| {
                s.fp(1).write(c, vec![Subscript::var(i)]);
            });
        });
        let mut p = b.finish().unwrap();
        assert_eq!(distribute_loops(&mut p, 0.5), 1);
        assert_eq!(p.loop_count(), 2);
        // Same work.
        let fp = Interp::new(&p).filter(|o| o.kind == OpKind::FpAlu).count();
        assert_eq!(fp, 128);
    }

    #[test]
    fn forward_producer_consumer_splits() {
        // s1 writes A[i]; s2 reads A[i]: after distribution all writes
        // complete before any read — still correct.
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64], 8);
        let c = b.array("C", &[64], 8);
        b.loop_(64, |b, i| {
            b.stmt(|s| {
                s.fp(1).write(a, vec![Subscript::var(i)]);
            });
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i)]).fp(1).write(c, vec![Subscript::var(i)]);
            });
        });
        let mut p = b.finish().unwrap();
        assert_eq!(distribute_loops(&mut p, 0.5), 1);
        assert_eq!(p.loop_count(), 2);
    }

    #[test]
    fn recurrence_stays_together() {
        // s2 reads A[i-1] written by s1 in the previous iteration, s1 reads
        // C[i-1] written by s2: a cross-statement cycle with unknown-sign
        // interplay must not be split.
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[65], 8);
        let c = b.array("C", &[65], 8);
        b.loop_(64, |b, i| {
            b.stmt(|s| {
                s.read(c, vec![Subscript::var(i)]).fp(1).write(a, vec![Subscript::linear(i, 1, 1)]);
            });
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i)]).fp(1).write(c, vec![Subscript::linear(i, 1, 1)]);
            });
        });
        let mut p = b.finish().unwrap();
        let n = distribute_loops(&mut p, 0.5);
        // The A[i+1]→A[i] flow is fine forward, but C feeds back into s1:
        // the conservative analysis keeps the pair fused.
        assert_eq!(n, 0, "recurrence must not be distributed");
        assert_eq!(p.loop_count(), 1);
    }

    #[test]
    fn single_statement_nest_untouched() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64], 8);
        b.loop_(64, |b, i| {
            b.stmt(|s| {
                s.write(a, vec![Subscript::var(i)]);
            });
        });
        let mut p = b.finish().unwrap();
        assert_eq!(distribute_loops(&mut p, 0.5), 0);
    }

    #[test]
    fn distribution_preserves_address_multiset() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[32, 16], 8);
        let c = b.array("C", &[32, 16], 8);
        b.nest2(32, 16, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j)]).fp(1);
            });
            b.stmt(|s| {
                s.read(c, vec![Subscript::var(i), Subscript::var(j)]).fp(1);
            });
        });
        let mut p = b.finish().unwrap();
        let mut before: Vec<u64> =
            Interp::new(&p).filter_map(|o| o.kind.addr().map(|x| x.0)).collect();
        distribute_loops(&mut p, 0.5);
        let mut after: Vec<u64> =
            Interp::new(&p).filter_map(|o| o.kind.addr().map(|x| x.0)).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }
}
