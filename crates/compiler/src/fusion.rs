//! Loop fusion.
//!
//! Adjacent software-classified nests with identical trip structure are
//! merged when legal, turning producer→consumer array traffic into
//! same-iteration reuse (the integrated loop/data framework of the paper's
//! reference \[5\] includes fusion among its enabling transformations).
//!
//! Legality: all of the first nest runs before any of the second in the
//! original program, so after fusion every dependence from nest 1 to
//! nest 2 must flow forward — for each pair of references to the same array
//! (at least one a write), every solution of `subs₁(i⃗₁) = subs₂(i⃗₂)` must
//! satisfy `i⃗₁ ≤ i⃗₂` (component-wise, conservatively). Anything the
//! analysis cannot prove is rejected.

use crate::classify::Preference;
use crate::nest::PerfectNest;
use crate::region::{analyze_loop, RegionClass};
use selcache_ir::{Item, Loop, Program, Ref, RefPattern, Stmt, Subscript, VarId};

/// Result statistics of a fusion pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Pairs of nests merged.
    pub fused: usize,
    /// Candidate pairs rejected for legality.
    pub rejected: usize,
}

fn rename_stmt(stmt: &Stmt, from: &[VarId], to: &[VarId]) -> Stmt {
    let mut s = stmt.clone();
    for r in &mut s.refs {
        match &mut r.pattern {
            RefPattern::Array { subscripts, .. } => {
                for sub in subscripts.iter_mut() {
                    for (f, t) in from.iter().zip(to) {
                        *sub = sub.rename(*f, *t);
                    }
                }
            }
            RefPattern::StructField { index, .. } => {
                for (f, t) in from.iter().zip(to) {
                    *index = index.rename(*f, *t);
                }
            }
            RefPattern::Scalar(_) | RefPattern::Pointer { .. } => {}
        }
    }
    s
}

fn rename_items(items: &[Item], from: &[VarId], to: &[VarId]) -> Vec<Item> {
    items
        .iter()
        .map(|item| match item {
            Item::Block(stmts) => {
                Item::Block(stmts.iter().map(|s| rename_stmt(s, from, to)).collect())
            }
            Item::Marker(m) => Item::Marker(*m),
            Item::Loop(l) => Item::Loop(Loop {
                id: l.id,
                var: l.var,
                trip: l.trip,
                body: rename_items(&l.body, from, to),
            }),
        })
        .collect()
}

/// Per-dimension source-minus-sink iteration offset, if determinable.
fn dim_offset(vars: &[VarId], s1: &Subscript, s2: &Subscript) -> Option<Vec<Option<i64>>> {
    let (Subscript::Affine(e1), Subscript::Affine(e2)) = (s1, s2) else {
        return None; // non-affine: cannot reason
    };
    // Require single-variable or constant expressions with matching
    // coefficient structure; anything else is unprovable here.
    let mut offsets = vec![None; vars.len()];
    let t1 = e1.terms();
    let t2 = e2.terms();
    if t1.len() != t2.len() || t1.len() > 1 {
        return (t1.is_empty() && t2.is_empty() && e1.constant_term() == e2.constant_term())
            .then(|| offsets.clone())
            .or(if t1.is_empty() && t2.is_empty() {
                // Distinct constants: no dependence at all — signalled by the
                // caller treating None as "unknown", so return a sentinel of
                // all-None with a marker... use empty vec to mean "no overlap".
                Some(Vec::new())
            } else {
                None
            });
    }
    if t1.is_empty() {
        return if e1.constant_term() == e2.constant_term() {
            Some(offsets)
        } else {
            Some(Vec::new()) // provably disjoint
        };
    }
    let (v1, c1) = t1[0];
    let (v2, c2) = t2[0];
    if v1 != v2 || c1 != c2 {
        return None;
    }
    let k = vars.iter().position(|&v| v == v1)?;
    let delta = e2.constant_term() - e1.constant_term();
    if delta % c1 != 0 {
        return Some(Vec::new()); // never equal
    }
    // subs1(i1) = subs2(i2)  =>  c·i1 + k1 = c·i2 + k2  =>  i1 - i2 = delta/c.
    offsets[k] = Some(delta / c1);
    Some(offsets)
}

/// True if every dependence from a ref of nest 1 to a ref of nest 2 flows
/// forward after fusion (`i1 <= i2` provable, or provably no overlap).
/// Shared with loop distribution, whose legality condition is identical.
pub(crate) fn pair_fusable(vars: &[VarId], r1: &Ref, r2: &Ref) -> bool {
    if !r1.write && !r2.write {
        return true;
    }
    let (a1, s1) = match &r1.pattern {
        RefPattern::Array { array, subscripts } => (*array, subscripts),
        RefPattern::Scalar(_) => return true, // scalars are registers
        _ => return false,                    // pointer/struct: cannot prove
    };
    let (a2, s2) = match &r2.pattern {
        RefPattern::Array { array, subscripts } => (*array, subscripts),
        RefPattern::Scalar(_) => return true,
        _ => return false,
    };
    if a1 != a2 {
        return true;
    }
    // Combine per-dimension constraints; all determined offsets must be <= 0.
    let mut combined: Vec<Option<i64>> = vec![None; vars.len()];
    for (d1, d2) in s1.iter().zip(s2.iter()) {
        match dim_offset(vars, d1, d2) {
            None => return false,                   // unprovable
            Some(v) if v.is_empty() => return true, // provably disjoint
            Some(offsets) => {
                for (c, o) in combined.iter_mut().zip(offsets) {
                    match (&c, o) {
                        (_, None) => {}
                        (None, Some(x)) => *c = Some(x),
                        (Some(prev), Some(x)) if *prev != x => return true, // inconsistent: no solution
                        _ => {}
                    }
                }
            }
        }
    }
    // Vars with no constraint can take any offset — including positive ones
    // — *if* the array subscript actually uses them; unconstrained here
    // means neither subscript uses the var, so the offset is irrelevant.
    combined.into_iter().flatten().all(|o| o <= 0)
}

fn nests_fusable(n1: &PerfectNest, n2: &PerfectNest) -> bool {
    if n1.levels.len() != n2.levels.len() || !n1.is_flat() || !n2.is_flat() {
        return false;
    }
    if !n1.levels.iter().zip(&n2.levels).all(|(a, b)| a.trip == b.trip) {
        return false;
    }
    let vars = n1.vars();
    let from = n2.vars();
    let stmts2: Vec<Stmt> = n2.stmts().iter().map(|s| rename_stmt(s, &from, &vars)).collect();
    for s1 in n1.stmts() {
        for r1 in &s1.refs {
            for s2 in &stmts2 {
                for r2 in &s2.refs {
                    if !pair_fusable(&vars, r1, r2) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

fn fuse_pair(first: &Loop, second: &Loop) -> Loop {
    let n1 = PerfectNest::extract(first);
    let n2 = PerfectNest::extract(second);
    let body2 = rename_items(&n2.body, &n2.vars(), &n1.vars());
    let mut body = n1.body.clone();
    body.extend(body2);
    PerfectNest { levels: n1.levels, body }.rebuild()
}

fn fuse_in_items(items: &mut Vec<Item>, threshold: f64, stats: &mut FusionStats) {
    let mut i = 0;
    while i < items.len() {
        // Recurse first.
        if let Item::Loop(l) = &mut items[i] {
            if analyze_loop(l, threshold) == RegionClass::Mixed {
                fuse_in_items(&mut l.body, threshold, stats);
            }
        }
        // Try to fuse items[i] with items[i+1].
        let fusable = match (items.get(i), items.get(i + 1)) {
            (Some(Item::Loop(a)), Some(Item::Loop(b))) => {
                let both_sw = analyze_loop(a, threshold)
                    == RegionClass::Uniform(Preference::Software)
                    && analyze_loop(b, threshold) == RegionClass::Uniform(Preference::Software);
                if both_sw {
                    let (na, nb) = (PerfectNest::extract(a), PerfectNest::extract(b));
                    if nests_fusable(&na, &nb) {
                        true
                    } else {
                        stats.rejected += 1;
                        false
                    }
                } else {
                    false
                }
            }
            _ => false,
        };
        if fusable {
            let (Item::Loop(a), Item::Loop(b)) = (items[i].clone(), items[i + 1].clone()) else {
                unreachable!("checked above");
            };
            items[i] = Item::Loop(fuse_pair(&a, &b));
            items.remove(i + 1);
            stats.fused += 1;
            // Retry the same position: the fused loop may merge with the
            // next one too.
        } else {
            i += 1;
        }
    }
}

/// Fuses adjacent fusable software nests throughout the program.
pub fn fuse_loops(program: &mut Program, threshold: f64) -> FusionStats {
    let mut stats = FusionStats::default();
    let mut items = std::mem::take(&mut program.items);
    fuse_in_items(&mut items, threshold, &mut stats);
    program.items = items;
    debug_assert!(program.validate().is_ok(), "fusion produced invalid program");
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{trace_len, AffineExpr, Interp, OpKind, ProgramBuilder};

    fn sub_at(v: VarId) -> Subscript {
        Subscript::var(v)
    }

    /// for i { A[i] = B[i] } ; for i { C[i] = A[i] }  — fusable (distance 0).
    fn producer_consumer(offset: i64) -> Program {
        let mut b = ProgramBuilder::new("pc");
        let a = b.array("A", &[64], 8);
        let bb = b.array("B", &[64], 8);
        let c = b.array("C", &[64], 8);
        b.loop_(64, |b, i| {
            b.stmt(|s| {
                s.read(bb, vec![sub_at(i)]).fp(1).write(a, vec![sub_at(i)]);
            });
        });
        b.loop_(64, |b, i| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::linear(i, 1, offset)]).fp(1).write(c, vec![sub_at(i)]);
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn same_iteration_producer_consumer_fuses() {
        let mut p = producer_consumer(0);
        let stats = fuse_loops(&mut p, 0.5);
        assert_eq!(stats.fused, 1);
        assert_eq!(p.loop_count(), 1);
        // Work preserved.
        let fp = Interp::new(&p).filter(|o| o.kind == OpKind::FpAlu).count();
        assert_eq!(fp, 128);
    }

    #[test]
    fn backward_offset_fuses() {
        // Consumer reads A[i-1]: produced in an earlier iteration — legal.
        let mut p = producer_consumer(-1);
        let stats = fuse_loops(&mut p, 0.5);
        assert_eq!(stats.fused, 1);
    }

    #[test]
    fn forward_offset_rejected() {
        // Consumer reads A[i+1]: produced in a *later* iteration — fusing
        // would read a stale value.
        let mut p = producer_consumer(1);
        let stats = fuse_loops(&mut p, 0.5);
        assert_eq!(stats.fused, 0);
        assert_eq!(stats.rejected, 1);
        assert_eq!(p.loop_count(), 2);
    }

    #[test]
    fn different_trips_not_fused() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64], 8);
        b.loop_(64, |b, i| {
            b.stmt(|s| {
                s.write(a, vec![sub_at(i)]);
            });
        });
        b.loop_(32, |b, i| {
            b.stmt(|s| {
                s.read(a, vec![sub_at(i)]);
            });
        });
        let mut p = b.finish().unwrap();
        assert_eq!(fuse_loops(&mut p, 0.5).fused, 0);
    }

    #[test]
    fn chain_of_three_fuses_fully() {
        let mut b = ProgramBuilder::new("t");
        let arrays: Vec<_> = (0..4).map(|k| b.array(format!("A{k}"), &[64], 8)).collect();
        for w in arrays.windows(2) {
            let (src, dst) = (w[0], w[1]);
            b.loop_(64, |b, i| {
                b.stmt(|s| {
                    s.read(src, vec![sub_at(i)]).fp(1).write(dst, vec![sub_at(i)]);
                });
            });
        }
        let mut p = b.finish().unwrap();
        let before = trace_len(&p);
        let stats = fuse_loops(&mut p, 0.5);
        assert_eq!(stats.fused, 2);
        assert_eq!(p.loop_count(), 1);
        // Fewer latch instructions, same real work.
        assert!(trace_len(&p) < before);
    }

    #[test]
    fn two_deep_nests_fuse() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[16, 16], 8);
        let c = b.array("C", &[16, 16], 8);
        b.nest2(16, 16, |b, i, j| {
            b.stmt(|s| {
                s.fp(1).write(a, vec![sub_at(i), sub_at(j)]);
            });
        });
        b.nest2(16, 16, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![sub_at(i), sub_at(j)]).fp(1).write(c, vec![sub_at(i), sub_at(j)]);
            });
        });
        let mut p = b.finish().unwrap();
        let stats = fuse_loops(&mut p, 0.5);
        assert_eq!(stats.fused, 1);
        assert!(p.validate().is_ok());
        // Reuse is now same-iteration: A's value is still L1-resident.
        let fp = Interp::new(&p).filter(|o| o.kind == OpKind::FpAlu).count();
        assert_eq!(fp, 512);
    }

    #[test]
    fn irregular_neighbors_not_fused() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[512], 8);
        let x = b.array("X", &[512], 8);
        let ip = b.data_array("IP", (0..512).rev().collect(), 4);
        b.loop_(512, |b, i| {
            b.stmt(|s| {
                s.write(a, vec![sub_at(i)]);
            });
        });
        b.loop_(512, |b, i| {
            b.stmt(|s| {
                s.gather(x, ip, AffineExpr::var(i), 0);
            });
        });
        let mut p = b.finish().unwrap();
        // Second loop is hardware-classified: never fused.
        assert_eq!(fuse_loops(&mut p, 0.5).fused, 0);
    }
}
