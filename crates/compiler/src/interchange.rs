//! Loop interchange (permutation), guided by the reuse cost model and
//! checked against the dependence analysis.

use crate::depend::{nest_dependences, permutation_legal};
use crate::nest::PerfectNest;
use crate::reuse::preferred_permutation;
use selcache_ir::{ArrayDecl, Loop};

/// Attempts to permute the loops of the perfect nest rooted at `l` so the
/// loop with the most reuse runs innermost. Returns the transformed loop, or
/// `None` when the nest is not transformable (imperfect, dynamic trips,
/// depth < 2), already optimal, or no legal improving permutation exists.
pub fn interchange_nest(arrays: &[ArrayDecl], l: &Loop, block_bytes: u64) -> Option<Loop> {
    let nest = PerfectNest::extract(l);
    if nest.levels.len() < 2 || !nest.is_flat() || !nest.all_const_trips() {
        return None;
    }
    let vars = nest.vars();
    let stmts = nest.stmts();
    let desired = preferred_permutation(arrays, &vars, &stmts, block_bytes);
    let identity: Vec<usize> = (0..vars.len()).collect();
    if desired == identity {
        return None;
    }
    let deps = nest_dependences(&vars, &stmts);

    // Candidate permutations in preference order: the full cost-sorted
    // permutation, then just rotating the preferred innermost loop into the
    // innermost position.
    let mut candidates = vec![desired.clone()];
    let preferred_inner = *desired.last().expect("non-empty permutation");
    let mut rotate: Vec<usize> =
        identity.iter().copied().filter(|&k| k != preferred_inner).collect();
    rotate.push(preferred_inner);
    if rotate != desired && rotate != identity {
        candidates.push(rotate);
    }

    for perm in candidates {
        if permutation_legal(&deps, &perm) {
            let levels = perm.iter().map(|&k| nest.levels[k]).collect();
            return Some(PerfectNest { levels, body: nest.body }.rebuild());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{Program, ProgramBuilder, Subscript};

    /// The paper's Section 3.2 example: `for i { for j { U[j] += V[i][j] *
    /// W[j][i] } }`. Temporal reuse of `U[j]` is carried by `i`, so the
    /// compiler interchanges to put `i` innermost.
    fn paper_example() -> Program {
        let mut b = ProgramBuilder::new("ex");
        let u = b.array("U", &[64], 8);
        let v = b.array("V", &[64, 64], 8);
        let w = b.array("W", &[64, 64], 8);
        b.nest2(64, 64, |b, i, j| {
            b.stmt(|s| {
                s.read(u, vec![Subscript::var(j)])
                    .read(v, vec![Subscript::var(i), Subscript::var(j)])
                    .read(w, vec![Subscript::var(j), Subscript::var(i)])
                    .fp(2)
                    .write(u, vec![Subscript::var(j)]);
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn paper_example_interchanges() {
        let p = paper_example();
        let l = p.items[0].as_loop().unwrap();
        let i_var = l.var;
        let new = interchange_nest(&p.arrays, l, 32).expect("interchange applies");
        // After interchange, i (originally outermost) is innermost.
        let nest = PerfectNest::extract(&new);
        assert_eq!(nest.levels.len(), 2);
        assert_eq!(nest.levels[1].var, i_var);
    }

    #[test]
    fn row_major_sweep_is_already_optimal() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64, 64], 8);
        b.nest2(64, 64, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j)]).fp(1);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        assert!(interchange_nest(&p.arrays, l, 32).is_none());
    }

    #[test]
    fn column_sweep_interchanges_to_row_order() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64, 64], 8);
        // for i { for j { A[j][i] } }: column order, should interchange.
        b.nest2(64, 64, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(j), Subscript::var(i)]).fp(1);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        let j_var = PerfectNest::extract(l).levels[1].var;
        let new = interchange_nest(&p.arrays, l, 32).expect("interchange applies");
        let nest = PerfectNest::extract(&new);
        // j must now be outermost (i innermost gives unit stride on dim 1).
        assert_eq!(nest.levels[0].var, j_var);
    }

    #[test]
    fn crossing_dependence_blocks_interchange() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64, 64], 8);
        // A[i][j] = A[i-1][j+1]: distance (1, -1), interchange illegal.
        // Access order favors interchange (store A[j]... make access column
        // order so the cost model wants to interchange).
        b.nest2(64, 64, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::linear(i, 1, -1), Subscript::linear(j, 1, 1)])
                    .fp(1)
                    .write(a, vec![Subscript::var(i), Subscript::var(j)]);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        // Row-major accesses are already optimal here, so force the check by
        // asking for the column-order variant:
        let mut bcol = ProgramBuilder::new("t2");
        let a2 = bcol.array("A", &[64, 64], 8);
        bcol.nest2(64, 64, |b, i, j| {
            b.stmt(|s| {
                s.read(a2, vec![Subscript::linear(j, 1, 1), Subscript::linear(i, 1, -1)])
                    .fp(1)
                    .write(a2, vec![Subscript::var(j), Subscript::var(i)]);
            });
        });
        let p2 = bcol.finish().unwrap();
        let l2 = p2.items[0].as_loop().unwrap();
        // Cost model wants i innermost, but distance (1,-1) over (i,j)...
        // dependence blocks it.
        assert!(interchange_nest(&p2.arrays, l2, 32).is_none());
        let _ = l; // first variant: already row-optimal
        assert!(interchange_nest(&p.arrays, l, 32).is_none());
    }

    #[test]
    fn imperfect_nest_untouched() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64, 64], 8);
        b.loop_(64, |b, i| {
            b.stmt(|s| {
                s.int(1);
            });
            b.loop_(64, |b, j| {
                b.stmt(|s| {
                    s.read(a, vec![Subscript::var(j), Subscript::var(i)]);
                });
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        assert!(interchange_nest(&p.arrays, l, 32).is_none());
    }

    #[test]
    fn three_deep_nest_permutes_fully() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[32, 32, 32], 8);
        // Access A[k][j][i]: worst order; optimal is reverse permutation.
        b.nest3(32, 32, 32, |b, i, j, k| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(k), Subscript::var(j), Subscript::var(i)]).fp(1);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        let orig = PerfectNest::extract(l);
        let new = interchange_nest(&p.arrays, l, 32).expect("permutes");
        let nest = PerfectNest::extract(&new);
        // i (originally outermost) must be innermost now; j and k tie on
        // cost, so their relative order is unspecified.
        assert_eq!(nest.levels[2].var, orig.levels[0].var);
        assert_ne!(nest.levels[2].var, nest.levels[0].var);
    }
}
