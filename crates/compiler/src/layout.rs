//! Data-layout selection (after O'Boyle & Knijnenburg and the framework of
//! reference \[5\] in the paper).
//!
//! For each multi-dimensional array we choose the storage order that gives
//! the innermost loops unit stride: every affine reference in a software
//! region votes (weighted by its nest's iteration volume) for the source
//! dimension it traverses with the innermost loop variable; the winning
//! dimension is stored last.

use crate::classify::Preference;
use crate::nest::PerfectNest;
use crate::region::{analyze_loop, RegionClass};
use selcache_ir::Subscript;
use selcache_ir::{Item, Layout, Program, RefPattern};

/// One array's accumulated votes: weight per source dimension.
type Votes = Vec<f64>;

fn collect_votes(items: &[Item], threshold: f64, votes: &mut Vec<Votes>) {
    for item in items {
        match item {
            Item::Loop(l) => match analyze_loop(l, threshold) {
                RegionClass::Uniform(Preference::Software) => {
                    let nest = PerfectNest::extract(l);
                    let inner = nest.levels.last().expect("nest has level").var;
                    let volume = nest.volume();
                    for s in nest.stmts() {
                        for r in &s.refs {
                            let RefPattern::Array { array, subscripts } = &r.pattern else {
                                continue;
                            };
                            if subscripts.len() < 2 {
                                continue;
                            }
                            // The dimension traversed by the innermost var
                            // with the smallest non-zero |coeff| wants to be
                            // stored last.
                            let mut best: Option<(usize, i64)> = None;
                            for (d, sub) in subscripts.iter().enumerate() {
                                let Some(e) = sub.as_affine() else { continue };
                                let c = e.coeff(inner).abs();
                                if c != 0 && best.is_none_or(|(_, bc)| c < bc) {
                                    best = Some((d, c));
                                }
                            }
                            if let Some((d, _)) = best {
                                votes[array.index()][d] += volume;
                            }
                        }
                    }
                    // Recurse into the innermost body in case of inner
                    // (imperfect) nests.
                    if !nest.is_flat() {
                        collect_votes(&nest.body, threshold, votes);
                    }
                }
                RegionClass::Mixed => collect_votes(&l.body, threshold, votes),
                RegionClass::Uniform(Preference::Hardware) => {}
            },
            Item::Block(_) | Item::Marker(_) => {}
        }
    }
}

/// Chooses and applies per-array layouts; returns how many arrays changed.
pub fn select_layouts(program: &mut Program, threshold: f64) -> usize {
    let mut votes: Vec<Votes> = program.arrays.iter().map(|a| vec![0.0; a.dims.len()]).collect();
    let items = std::mem::take(&mut program.items);
    collect_votes(&items, threshold, &mut votes);
    program.items = items;

    let mut changed = 0;
    for (a, v) in program.arrays.iter_mut().zip(&votes) {
        if a.dims.len() < 2 || v.iter().all(|&x| x == 0.0) {
            continue;
        }
        let (win, _) = v
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("non-empty dims");
        // Storage order: all dims in source order except the winner, which
        // goes last (perm[k] = storage position of source dim k).
        let nd = a.dims.len();
        let mut perm = vec![0usize; nd];
        let mut pos = 0;
        for (k, p) in perm.iter_mut().enumerate() {
            if k != win {
                *p = pos;
                pos += 1;
            }
        }
        perm[win] = nd - 1;
        let new_layout = if perm.iter().enumerate().all(|(k, &p)| k == p) {
            Layout::RowMajor
        } else {
            Layout::Permuted(perm)
        };
        if a.layout != new_layout {
            a.layout = new_layout;
            changed += 1;
        }
    }
    changed
}

/// True if `subscripts`' last dimension is traversed by `var` — helper used
/// in tests and diagnostics.
pub fn last_dim_uses(subscripts: &[Subscript], var: selcache_ir::VarId) -> bool {
    subscripts.last().is_some_and(|s| s.uses(var))
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{ProgramBuilder, Subscript};

    #[test]
    fn column_accessed_array_becomes_col_major() {
        let mut b = ProgramBuilder::new("t");
        let w = b.array("W", &[64, 64], 8);
        // for i { for j { ... W[j][i] ... } }: innermost j traverses dim 0.
        b.nest2(64, 64, |b, _i, j| {
            b.stmt(|s| {
                s.read(w, vec![Subscript::var(j), Subscript::constant(0)]).fp(1);
            });
        });
        let mut p = b.finish().unwrap();
        // dim 0 uses j -> wants dim 0 last -> Permuted([1, 0]) == col-major.
        let changed = select_layouts(&mut p, 0.5);
        assert_eq!(changed, 1);
        assert_eq!(p.arrays[0].layout, Layout::Permuted(vec![1, 0]));
        // Unit stride achieved.
        assert_eq!(p.arrays[0].layout.order(2), vec![1, 0]);
    }

    #[test]
    fn row_accessed_array_stays_row_major() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64, 64], 8);
        b.nest2(64, 64, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j)]).fp(1);
            });
        });
        let mut p = b.finish().unwrap();
        assert_eq!(select_layouts(&mut p, 0.5), 0);
        assert_eq!(p.arrays[0].layout, Layout::RowMajor);
    }

    #[test]
    fn conflicting_nests_resolved_by_volume() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64, 64], 8);
        // Small nest accesses row-wise, big nest column-wise: column wins.
        b.nest2(8, 8, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j)]).fp(1);
            });
        });
        b.nest2(64, 64, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(j), Subscript::var(i)]).fp(1);
            });
        });
        let mut p = b.finish().unwrap();
        assert_eq!(select_layouts(&mut p, 0.5), 1);
        assert_eq!(p.arrays[0].layout, Layout::Permuted(vec![1, 0]));
    }

    #[test]
    fn hardware_regions_do_not_vote() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64, 64], 8);
        let x = b.array("X", &[4096], 8);
        let ip = b.data_array("IP", (0..4096).rev().collect(), 4);
        // Irregular nest that happens to touch A column-wise.
        b.nest2(64, 64, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(j), Subscript::var(i)]);
                s.gather(x, ip, selcache_ir::AffineExpr::var(j), 0);
                s.gather(x, ip, selcache_ir::AffineExpr::var(i), 1);
                s.gather(x, ip, selcache_ir::AffineExpr::var(i), 2);
            });
        });
        let mut p = b.finish().unwrap();
        // Ratio 1/4 analyzable -> hardware region -> no votes -> unchanged.
        assert_eq!(select_layouts(&mut p, 0.5), 0);
        assert_eq!(p.arrays[0].layout, Layout::RowMajor);
    }

    #[test]
    fn one_dimensional_arrays_ignored() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[4096], 8);
        b.loop_(4096, |b, i| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i)]);
            });
        });
        let mut p = b.finish().unwrap();
        assert_eq!(select_layouts(&mut p, 0.5), 0);
    }

    #[test]
    fn helper_last_dim_uses() {
        let subs =
            vec![Subscript::var(selcache_ir::VarId(0)), Subscript::var(selcache_ir::VarId(1))];
        assert!(last_dim_uses(&subs, selcache_ir::VarId(1)));
        assert!(!last_dim_uses(&subs, selcache_ir::VarId(0)));
    }
}
