//! # selcache-compiler
//!
//! The compiler half of the *selcache* framework (Memik et al., DATE 2003):
//!
//! - **Reference classification** ([`classify`]) — analyzable (scalar,
//!   affine) vs. non-analyzable (non-affine, indexed, pointer, struct)
//!   references, and the threshold-based per-loop method selection of
//!   Section 2.3.
//! - **Region detection** ([`region`]) — the innermost-out algorithm of
//!   Section 2.2 that partitions a program into uniform regions and marks
//!   each with activate/deactivate (ON/OFF) instructions.
//! - **Redundant-marker elimination** ([`redundant`]) — the dataflow pass
//!   that turns Figure 2(b) into Figure 2(c).
//! - **Locality optimization** ([`passes`]) — loop interchange
//!   ([`interchange`]), data-layout selection ([`layout`]), iteration-space
//!   tiling ([`tiling`]) and scalar replacement ([`scalar`]), legality
//!   checked by dependence analysis ([`depend`]) and driven by a reuse cost
//!   model ([`reuse`]).
//!
//! ## Example
//!
//! ```
//! use selcache_compiler::{optimize, selective, OptConfig};
//! use selcache_ir::{ProgramBuilder, Subscript};
//!
//! let mut b = ProgramBuilder::new("demo");
//! let a = b.array("A", &[256, 256], 8);
//! // Column-order sweep: the optimizer interchanges it.
//! b.nest2(256, 256, |b, i, j| {
//!     b.stmt(|s| { s.read(a, vec![Subscript::var(j), Subscript::var(i)]).fp(1); });
//! });
//! let p = b.finish()?;
//! let optimized = optimize(&p, &OptConfig::default());
//! let marked = selective(&p, &OptConfig::default());
//! assert!(optimized.validate().is_ok());
//! assert!(marked.validate().is_ok());
//! # Ok::<(), selcache_ir::ProgramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assist_aware;
pub mod classify;
pub mod depend;
pub mod distribution;
pub mod fusion;
pub mod interchange;
pub mod layout;
pub mod nest;
pub mod padding;
pub mod passes;
pub mod redundant;
pub mod region;
pub mod reuse;
pub mod scalar;
pub mod tiling;
pub mod unroll;

pub use assist_aware::{insert_markers_for, AssistPolicy};
pub use classify::{classify_loop, loop_counts, Preference, RefCounts};
pub use depend::{band_fully_permutable, nest_dependences, permutation_legal, Dependence, Dist};
pub use distribution::{distribute_loops, distribute_nest};
pub use fusion::{fuse_loops, FusionStats};
pub use interchange::interchange_nest;
pub use layout::select_layouts;
pub use nest::{NestLevel, PerfectNest};
pub use padding::{pad_arrays, PaddingConfig};
pub use passes::{
    apply_to_software_loops, insert_markers, optimize, selective, selective_for, OptConfig,
};
pub use redundant::eliminate_redundant_markers;
pub use region::{
    analyze_loop, detect_and_mark, detect_and_mark_with, region_partition, region_partition_with,
    RegionClass, MIN_REGION_VOLUME,
};
pub use reuse::{innermost_cost, preferred_permutation, ref_stride};
pub use scalar::scalar_replace;
pub use tiling::{tile_nest, IdAlloc, TilingConfig};
pub use unroll::{unroll_and_jam, unroll_and_jam_program, UnrollConfig};
