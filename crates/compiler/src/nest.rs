//! Perfect-nest extraction and reconstruction.

use selcache_ir::{Item, Loop, LoopId, Stmt, Trip, VarId};

/// One loop level of a perfect nest (outermost first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NestLevel {
    /// Loop identity.
    pub id: LoopId,
    /// Induction variable.
    pub var: VarId,
    /// Trip count.
    pub trip: Trip,
}

/// A perfect nest: a chain of singly-nested loops and the innermost body.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfectNest {
    /// Loop levels, outermost first.
    pub levels: Vec<NestLevel>,
    /// Innermost loop body (may still contain further, imperfect nests).
    pub body: Vec<Item>,
}

impl PerfectNest {
    /// Extracts the maximal perfect-nest prefix rooted at `l`.
    pub fn extract(l: &Loop) -> PerfectNest {
        let mut levels = vec![NestLevel { id: l.id, var: l.var, trip: l.trip }];
        let mut body = &l.body;
        while let [Item::Loop(inner)] = body.as_slice() {
            levels.push(NestLevel { id: inner.id, var: inner.var, trip: inner.trip });
            body = &inner.body;
        }
        PerfectNest { levels, body: body.clone() }
    }

    /// True if the innermost body contains no further loops (the nest is the
    /// whole structure).
    pub fn is_flat(&self) -> bool {
        self.body.iter().all(|i| !matches!(i, Item::Loop(_)))
    }

    /// True if every level has a compile-time constant trip count.
    pub fn all_const_trips(&self) -> bool {
        self.levels.iter().all(|lv| matches!(lv.trip, Trip::Const(_)))
    }

    /// The induction variables, outermost first.
    pub fn vars(&self) -> Vec<VarId> {
        self.levels.iter().map(|lv| lv.var).collect()
    }

    /// All statements of the innermost body (not recursing into inner
    /// loops).
    pub fn stmts(&self) -> Vec<&Stmt> {
        self.body
            .iter()
            .filter_map(|i| match i {
                Item::Block(stmts) => Some(stmts.iter()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// Product of the (maximum) trip counts — the nest's iteration volume.
    pub fn volume(&self) -> f64 {
        self.levels.iter().map(|lv| lv.trip.max().max(0) as f64).product()
    }

    /// Rebuilds the nest into a single loop.
    ///
    /// # Panics
    ///
    /// Panics if the nest has no levels.
    pub fn rebuild(self) -> Loop {
        let mut levels = self.levels;
        assert!(!levels.is_empty(), "cannot rebuild an empty nest");
        let innermost = levels.pop().expect("nonempty");
        let mut current =
            Loop { id: innermost.id, var: innermost.var, trip: innermost.trip, body: self.body };
        while let Some(lv) = levels.pop() {
            current =
                Loop { id: lv.id, var: lv.var, trip: lv.trip, body: vec![Item::Loop(current)] };
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{ProgramBuilder, Subscript};

    #[test]
    fn extract_and_rebuild_roundtrip() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[8, 8, 8], 8);
        b.nest3(4, 6, 8, |b, i, j, k| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j), Subscript::var(k)]);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        let nest = PerfectNest::extract(l);
        assert_eq!(nest.levels.len(), 3);
        assert!(nest.is_flat());
        assert!(nest.all_const_trips());
        assert_eq!(nest.volume(), 4.0 * 6.0 * 8.0);
        assert_eq!(nest.stmts().len(), 1);
        let rebuilt = nest.rebuild();
        assert_eq!(&rebuilt, l);
    }

    #[test]
    fn imperfect_nest_stops_at_branching_body() {
        let mut b = ProgramBuilder::new("t");
        b.loop_(4, |b, _| {
            b.stmt(|s| {
                s.int(1);
            });
            b.loop_(8, |b, _| {
                b.stmt(|s| {
                    s.int(1);
                });
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        let nest = PerfectNest::extract(l);
        assert_eq!(nest.levels.len(), 1);
        assert!(!nest.is_flat());
    }

    #[test]
    fn single_loop_is_perfect() {
        let mut b = ProgramBuilder::new("t");
        b.loop_(4, |b, _| {
            b.stmt(|s| {
                s.int(1);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        let nest = PerfectNest::extract(l);
        assert_eq!(nest.levels.len(), 1);
        assert!(nest.is_flat());
    }
}
