//! Inter-array padding.
//!
//! Natural allocation places power-of-two-sized arrays at identical
//! cache-set offsets, so corresponding elements of every array contend for
//! the same set — the dominant source of the conflict misses the paper
//! reports. This data transformation appends padding to each array so that
//! consecutive base addresses are staggered across the L1 index range
//! (classic "aggressive array padding").

use selcache_ir::{AddressMap, Program};

/// Padding parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaddingConfig {
    /// The cache index span to stagger across: `sets * block_size` of the
    /// target cache (8 KiB for the paper's L1).
    pub set_span: u64,
    /// Stagger step between consecutive arrays, in bytes. Should be a
    /// multiple of [`AddressMap::ALIGN`] and ideally coprime (in units of
    /// ALIGN) with `set_span / ALIGN` so that many arrays spread evenly.
    pub stagger: u64,
}

impl Default for PaddingConfig {
    fn default() -> Self {
        // 8 KiB L1 index span; 1280 = 5 * 256 steps cover all 32 residues.
        PaddingConfig { set_span: 8 * 1024, stagger: 1280 }
    }
}

/// Pads the program's arrays so the k-th array's base address lands at
/// residue `k * stagger (mod set_span)`. Returns the number of arrays that
/// received padding. Padding never changes program semantics — only the
/// address map.
pub fn pad_arrays(program: &mut Program, cfg: &PaddingConfig) -> usize {
    let align = AddressMap::ALIGN;
    let span = cfg.set_span.max(align);
    let mut padded = 0;
    let mut cursor = AddressMap::BASE;
    let n = program.arrays.len();
    for idx in 0..n {
        // Desired residue of *this* array's base.
        let desired = (idx as u64 * cfg.stagger) % span;
        let have = cursor % span;
        if have != desired && idx > 0 {
            // Grow the previous array's padding to push this base forward.
            let shift = (desired + span - have) % span;
            program.arrays[idx - 1].pad_bytes += shift;
            cursor += shift;
            padded += 1;
        }
        let sz = program.arrays[idx].size_bytes().max(1);
        cursor += sz.div_ceil(align) * align;
    }
    padded
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{ArrayId, ProgramBuilder, Subscript};

    fn eight_same_sized() -> Program {
        let mut b = ProgramBuilder::new("t");
        let mut last = None;
        for k in 0..8 {
            last = Some(b.array(format!("A{k}"), &[32, 32], 8)); // exactly 8 KiB
        }
        let a = last.unwrap();
        b.loop_(4, |b, i| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::constant(0)]);
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn unpadded_bases_collide() {
        let p = eight_same_sized();
        let m = p.address_map();
        let residues: std::collections::HashSet<u64> =
            (0..8).map(|k| m.array_base(ArrayId(k)).0 % 8192).collect();
        assert_eq!(residues.len(), 1, "power-of-two arrays collide by default");
    }

    #[test]
    fn padding_staggers_bases() {
        let mut p = eight_same_sized();
        let n = pad_arrays(&mut p, &PaddingConfig::default());
        assert!(n >= 7, "most arrays padded, got {n}");
        let m = p.address_map();
        let residues: std::collections::HashSet<u64> =
            (0..8).map(|k| m.array_base(ArrayId(k)).0 % 8192).collect();
        assert_eq!(residues.len(), 8, "all bases distinct modulo the set span");
        // And they match the requested stagger pattern.
        for k in 0..8u32 {
            assert_eq!(m.array_base(ArrayId(k)).0 % 8192, (k as u64 * 1280) % 8192, "array {k}");
        }
    }

    #[test]
    fn padding_is_idempotent() {
        let mut p = eight_same_sized();
        pad_arrays(&mut p, &PaddingConfig::default());
        let once = p.clone();
        let n = pad_arrays(&mut p, &PaddingConfig::default());
        assert_eq!(n, 0);
        assert_eq!(p, once);
    }

    #[test]
    fn padding_preserves_validity_and_trace_shape() {
        use selcache_ir::trace_len;
        let mut p = eight_same_sized();
        let before = trace_len(&p);
        pad_arrays(&mut p, &PaddingConfig::default());
        assert!(p.validate().is_ok());
        assert_eq!(trace_len(&p), before);
    }
}
