//! Pass orchestration: the full software-optimization pipeline and the
//! selective ON/OFF preparation (Figure 1 of the paper).

use crate::classify::Preference;
use crate::interchange::interchange_nest;
use crate::layout::select_layouts;
use crate::padding::{pad_arrays, PaddingConfig};
use crate::redundant::eliminate_redundant_markers;
use crate::region::{analyze_loop, detect_and_mark, RegionClass};
use crate::scalar::scalar_replace;
use crate::tiling::{tile_nest, IdAlloc, TilingConfig};
use selcache_ir::{ArrayDecl, Item, Loop, Program};

/// Configuration of the locality-optimizing compiler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptConfig {
    /// Analyzable-reference ratio above which a loop is compiler-optimized
    /// (0.5 in the paper).
    pub threshold: f64,
    /// L1 block size used by the reuse cost model.
    pub block_bytes: u64,
    /// Tiling parameters.
    pub tiling: TilingConfig,
    /// Array-padding parameters.
    pub padding: PaddingConfig,
    /// Enable loop interchange.
    pub interchange: bool,
    /// Enable iteration-space tiling.
    pub tile: bool,
    /// Enable data-layout selection.
    pub layout: bool,
    /// Enable scalar replacement.
    pub scalar_replacement: bool,
    /// Enable inter-array padding.
    pub pad: bool,
    /// Enable loop fusion of adjacent compatible nests (extension; off by
    /// default to match the paper's pass list).
    pub fusion: bool,
    /// Enable loop distribution of multi-statement nests (extension; off by
    /// default).
    pub distribute: bool,
    /// Enable unroll-and-jam (the paper's §3.2 register step; off by
    /// default here because scalar replacement already captures most of the
    /// register reuse — measured in the ablations).
    pub unroll_jam: bool,
    /// Unroll-and-jam parameters.
    pub unroll: crate::unroll::UnrollConfig,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            threshold: 0.5,
            block_bytes: 32,
            tiling: TilingConfig::default(),
            padding: PaddingConfig::default(),
            interchange: true,
            tile: true,
            layout: true,
            scalar_replacement: true,
            pad: true,
            fusion: false,
            distribute: false,
            unroll_jam: false,
            unroll: crate::unroll::UnrollConfig::default(),
        }
    }
}

type LoopTransform<'f> = dyn FnMut(&[ArrayDecl], &mut IdAlloc<'_>, &Loop) -> Option<Loop> + 'f;

fn walk(
    items: &mut [Item],
    arrays: &[ArrayDecl],
    threshold: f64,
    num_vars: &mut u32,
    num_loops: &mut u32,
    assume_software: bool,
    f: &mut LoopTransform<'_>,
) -> usize {
    let mut applied = 0;
    for item in items.iter_mut() {
        if let Item::Loop(l) = item {
            let class = if assume_software {
                RegionClass::Uniform(Preference::Software)
            } else {
                analyze_loop(l, threshold)
            };
            match class {
                RegionClass::Uniform(Preference::Software) => {
                    let mut ids = IdAlloc { num_vars, num_loops };
                    if let Some(new) = f(arrays, &mut ids, l) {
                        *l = new;
                        applied += 1;
                    } else {
                        // The transform does not apply at this level (e.g.
                        // an imperfectly-nested time loop): descend to the
                        // inner nests, which inherit the software class.
                        applied +=
                            walk(&mut l.body, arrays, threshold, num_vars, num_loops, true, f);
                    }
                }
                RegionClass::Mixed => {
                    applied += walk(&mut l.body, arrays, threshold, num_vars, num_loops, false, f);
                }
                RegionClass::Uniform(Preference::Hardware) => {}
            }
        }
    }
    applied
}

/// Applies a loop transformation to every software-classified region,
/// descending through imperfect outer loops (e.g. time loops) to the
/// transformable nests inside. Returns how many loops changed.
pub fn apply_to_software_loops(
    program: &mut Program,
    threshold: f64,
    f: &mut LoopTransform<'_>,
) -> usize {
    let mut items = std::mem::take(&mut program.items);
    let mut nv = program.num_vars;
    let mut nl = program.num_loops;
    let n = walk(&mut items, &program.arrays, threshold, &mut nv, &mut nl, false, f);
    program.items = items;
    program.num_vars = nv;
    program.num_loops = nl;
    n
}

/// Runs the full software locality optimization (Section 3.2): interchange,
/// data-layout selection (then interchange again under the new layouts),
/// tiling, and scalar replacement — on software-classified regions only.
pub fn optimize(program: &Program, cfg: &OptConfig) -> Program {
    let mut p = program.clone();
    if cfg.pad {
        pad_arrays(&mut p, &cfg.padding);
    }
    if cfg.fusion {
        crate::fusion::fuse_loops(&mut p, cfg.threshold);
    }
    if cfg.distribute {
        crate::distribution::distribute_loops(&mut p, cfg.threshold);
    }
    if cfg.interchange {
        apply_to_software_loops(&mut p, cfg.threshold, &mut |arrays, _ids, l| {
            interchange_nest(arrays, l, cfg.block_bytes)
        });
    }
    if cfg.layout {
        let changed = select_layouts(&mut p, cfg.threshold);
        if changed > 0 && cfg.interchange {
            apply_to_software_loops(&mut p, cfg.threshold, &mut |arrays, _ids, l| {
                interchange_nest(arrays, l, cfg.block_bytes)
            });
        }
    }
    if cfg.tile {
        let tcfg = cfg.tiling;
        apply_to_software_loops(&mut p, cfg.threshold, &mut |arrays, ids, l| {
            tile_nest(ids, arrays, l, &tcfg)
        });
    }
    if cfg.unroll_jam {
        let ucfg = cfg.unroll;
        apply_to_software_loops(&mut p, cfg.threshold, &mut |_arrays, _ids, l| {
            crate::unroll::unroll_and_jam(l, &ucfg)
        });
    }
    if cfg.scalar_replacement {
        apply_to_software_loops(&mut p, cfg.threshold, &mut |arrays, _ids, l| {
            scalar_replace(arrays, l)
        });
    }
    debug_assert!(p.validate().is_ok(), "optimizer produced invalid program");
    p
}

/// Runs region detection, inserts ON/OFF markers, and eliminates the
/// redundant ones (the selective scheme's compile-time half).
pub fn insert_markers(program: &Program, threshold: f64) -> Program {
    eliminate_redundant_markers(&detect_and_mark(program, threshold))
}

/// Produces the *selective* binary: software-optimized code plus ON/OFF
/// markers around the hardware regions.
pub fn selective(program: &Program, cfg: &OptConfig) -> Program {
    insert_markers(&optimize(program, cfg), cfg.threshold)
}

/// [`selective`] under an explicit [`crate::AssistPolicy`]:
/// software-optimized code with the per-region markers chosen by `policy`
/// instead of the paper's irregular-regions rule. With
/// [`crate::AssistPolicy::Dynamic`] this is the preparation the runtime
/// controller executes — every region marked ON, decisions deferred to
/// hardware.
pub fn selective_for(program: &Program, cfg: &OptConfig, policy: crate::AssistPolicy) -> Program {
    crate::insert_markers_for(&optimize(program, cfg), cfg.threshold, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{AffineExpr, Interp, OpKind, ProgramBuilder, Subscript};

    /// Mixed program: a big regular reduction nest plus an irregular gather
    /// loop.
    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new("mixed");
        let u = b.array("U", &[128], 8);
        let v = b.array("V", &[128, 128], 8);
        let w = b.array("W", &[128, 128], 8);
        let x = b.array("X", &[4096], 8);
        let ip = b.data_array("IP", (0..4096).map(|i| (i * 7) % 4096).collect(), 4);
        // Regular: the paper's Section 3.2 example,
        // for i { for j { U[j] += V[i][j] * W[j][i] } }: interchange puts i
        // innermost, then U[j] becomes innermost-invariant and is promoted.
        b.nest2(128, 128, |b, i, j| {
            b.stmt(|s| {
                s.read(u, vec![Subscript::var(j)])
                    .read(v, vec![Subscript::var(i), Subscript::var(j)])
                    .read(w, vec![Subscript::var(j), Subscript::var(i)])
                    .fp(2)
                    .write(u, vec![Subscript::var(j)]);
            });
        });
        // Irregular: gathers.
        b.loop_(4096, |b, k| {
            b.stmt(|s| {
                s.gather(x, ip, AffineExpr::var(k), 0).int(1);
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn optimize_keeps_program_valid_and_semantics_sized() {
        let p = mixed_program();
        let o = optimize(&p, &OptConfig::default());
        assert!(o.validate().is_ok());
        // The irregular loop is untouched: same gather count.
        let gathers =
            |p: &Program| Interp::new(p).filter(|o| matches!(o.kind, OpKind::Load(_))).count();
        // FP work unchanged (reductions all performed).
        let fp = |p: &Program| Interp::new(p).filter(|o| o.kind == OpKind::FpAlu).count();
        assert_eq!(fp(&p), fp(&o));
        let _ = gathers(&o); // loads may shrink via scalar replacement
    }

    #[test]
    fn optimize_reduces_memory_traffic() {
        let p = mixed_program();
        let o = optimize(&p, &OptConfig::default());
        let mem_ops = |p: &Program| Interp::new(p).filter(|op| op.kind.is_mem()).count();
        assert!(mem_ops(&o) < mem_ops(&p), "optimized {} >= base {}", mem_ops(&o), mem_ops(&p));
    }

    #[test]
    fn selective_adds_markers_only_around_hardware() {
        let p = mixed_program();
        let s = selective(&p, &OptConfig::default());
        assert!(s.validate().is_ok());
        // One ON before the gather loop; the leading OFF (initial state) is
        // eliminated.
        assert_eq!(s.marker_count(), 1);
        let kinds: Vec<_> = Interp::new(&s)
            .filter(|o| matches!(o.kind, OpKind::AssistOn | OpKind::AssistOff))
            .map(|o| o.kind)
            .collect();
        assert_eq!(kinds, vec![OpKind::AssistOn]);
    }

    #[test]
    fn markers_alternate_in_alternating_program() {
        let mut b = ProgramBuilder::new("alt");
        let a = b.array("A", &[256], 8);
        let x = b.array("X", &[4096], 8);
        let ip = b.data_array("IP", (0..4096).rev().collect(), 4);
        for _ in 0..2 {
            b.loop_(256, |b, i| {
                b.stmt(|s| {
                    s.read(a, vec![Subscript::var(i)]).fp(1);
                });
            });
            b.loop_(512, |b, k| {
                b.stmt(|s| {
                    s.gather(x, ip, AffineExpr::var(k), 0);
                });
            });
        }
        let p = b.finish().unwrap();
        let s = insert_markers(&p, 0.5);
        // ON (hw1) OFF (sw2) ON (hw2); leading OFF eliminated.
        assert_eq!(s.marker_count(), 3);
    }

    #[test]
    fn disabled_passes_do_nothing() {
        let p = mixed_program();
        let cfg = OptConfig {
            interchange: false,
            tile: false,
            layout: false,
            scalar_replacement: false,
            pad: false,
            fusion: false,
            ..OptConfig::default()
        };
        let o = optimize(&p, &cfg);
        assert_eq!(p, o);
    }

    #[test]
    fn apply_counts_transformed_loops() {
        let mut p = mixed_program();
        // Interchange first (puts i innermost), then promotion applies to
        // exactly the regular nest.
        let ni = apply_to_software_loops(&mut p, 0.5, &mut |arrays, _ids, l| {
            crate::interchange::interchange_nest(arrays, l, 32)
        });
        assert_eq!(ni, 1);
        let n =
            apply_to_software_loops(&mut p, 0.5, &mut |arrays, _ids, l| scalar_replace(arrays, l));
        assert_eq!(n, 1); // only the regular nest
    }
}
