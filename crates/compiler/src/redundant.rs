//! Elimination of redundant activate/deactivate instructions.
//!
//! The naive region-marking pass brackets *every* region header with a
//! marker (Figure 2(b) of the paper). This pass removes every marker that
//! provably re-establishes the state already in force on all paths reaching
//! it, producing the structure of Figure 2(c). The analysis is a small
//! abstract interpretation over the assist flag: `Some(true)`/`Some(false)`
//! when the flag is known, `None` at merge points where it is not.

use selcache_ir::{Item, Loop, Marker, Program, Trip};

/// Net effect of executing a sequence of items on the assist flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Effect {
    /// Flag unchanged (exit state = entry state).
    Transparent,
    /// Flag definitely set to the given value on exit.
    Sets(bool),
    /// Exit state unknown.
    Unknown,
}

fn definitely_executes(trip: Trip) -> bool {
    match trip {
        Trip::Const(n) => n > 0,
        // A tile-tail loop runs `min(tile, total)` iterations on the first
        // controller iteration; conservatively unknown.
        Trip::TileTail { .. } => false,
    }
}

fn seq_effect(items: &[Item]) -> Effect {
    let mut eff = Effect::Transparent;
    for item in items {
        match item {
            Item::Marker(m) => eff = Effect::Sets(*m == Marker::On),
            Item::Block(_) => {}
            Item::Loop(l) => {
                let body = seq_effect(&l.body);
                match body {
                    Effect::Transparent => {}
                    Effect::Sets(s) => {
                        if definitely_executes(l.trip) {
                            eff = Effect::Sets(s);
                        } else {
                            // The loop may not run: exit is `s` or the prior
                            // state.
                            eff = match eff {
                                Effect::Sets(prev) if prev == s => Effect::Sets(s),
                                _ => Effect::Unknown,
                            };
                        }
                    }
                    Effect::Unknown => eff = Effect::Unknown,
                }
            }
        }
    }
    eff
}

fn eliminate_items(items: &[Item], mut state: Option<bool>) -> (Vec<Item>, Option<bool>) {
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Item::Marker(m) => {
                let v = *m == Marker::On;
                if state == Some(v) {
                    // Redundant: the flag already has this value.
                } else {
                    out.push(Item::Marker(*m));
                    state = Some(v);
                }
            }
            Item::Block(stmts) => out.push(Item::Block(stmts.clone())),
            Item::Loop(l) => {
                let eff = seq_effect(&l.body);
                // Entry state of the body must hold on the first iteration
                // (`state`) and on every back edge (body exit).
                let entry = match eff {
                    Effect::Transparent => state,
                    Effect::Sets(s) if state == Some(s) => state,
                    _ => None,
                };
                let (body, _) = eliminate_items(&l.body, entry);
                out.push(Item::Loop(Loop { id: l.id, var: l.var, trip: l.trip, body }));
                state = match eff {
                    Effect::Transparent => state,
                    Effect::Sets(s) => {
                        if definitely_executes(l.trip) || state == Some(s) {
                            Some(s)
                        } else {
                            None
                        }
                    }
                    Effect::Unknown => None,
                };
            }
        }
    }
    (out, state)
}

/// Removes provably redundant ON/OFF markers. The assist flag is assumed
/// **off** on entry (the selective scheme starts as if the whole program
/// were software-optimized).
pub fn eliminate_redundant_markers(program: &Program) -> Program {
    let (items, _) = eliminate_items(&program.items, Some(false));
    Program { items, ..program.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{ProgramBuilder, Subscript};

    fn count_markers(items: &[Item]) -> usize {
        items
            .iter()
            .map(|i| match i {
                Item::Loop(l) => count_markers(&l.body),
                Item::Marker(_) => 1,
                Item::Block(_) => 0,
            })
            .sum()
    }

    #[test]
    fn leading_off_is_redundant() {
        let mut b = ProgramBuilder::new("t");
        b.marker(Marker::Off);
        b.stmt(|s| {
            s.int(1);
        });
        b.marker(Marker::On);
        let p = b.finish().unwrap();
        let e = eliminate_redundant_markers(&p);
        assert_eq!(count_markers(&e.items), 1);
        assert!(matches!(e.items[0], Item::Block(_)));
    }

    #[test]
    fn consecutive_duplicates_collapse() {
        let mut b = ProgramBuilder::new("t");
        b.marker(Marker::On);
        b.stmt(|s| {
            s.int(1);
        });
        b.marker(Marker::On);
        b.stmt(|s| {
            s.int(1);
        });
        b.marker(Marker::Off);
        let p = b.finish().unwrap();
        let e = eliminate_redundant_markers(&p);
        assert_eq!(count_markers(&e.items), 2); // On ... Off
    }

    #[test]
    fn loop_body_marker_survives_when_state_cycles() {
        // for t { ON hw-ish; OFF sw-ish }  — entry state of the body is Off
        // on iteration 1 but... the body ends Off, so ON must stay and the
        // trailing OFF must stay.
        let mut b = ProgramBuilder::new("t");
        b.loop_(4, |b, _| {
            b.marker(Marker::On);
            b.stmt(|s| {
                s.int(1);
            });
            b.marker(Marker::Off);
            b.stmt(|s| {
                s.int(1);
            });
        });
        let p = b.finish().unwrap();
        let e = eliminate_redundant_markers(&p);
        assert_eq!(count_markers(&e.items), 2);
    }

    #[test]
    fn loop_leading_marker_dropped_when_body_reestablishes_it() {
        // Program state on entry is Off; body is [OFF stmt] -> exit Off on
        // every path, so the leading OFF inside the loop is redundant.
        let mut b = ProgramBuilder::new("t");
        b.loop_(4, |b, _| {
            b.marker(Marker::Off);
            b.stmt(|s| {
                s.int(1);
            });
        });
        let p = b.finish().unwrap();
        let e = eliminate_redundant_markers(&p);
        assert_eq!(count_markers(&e.items), 0);
    }

    #[test]
    fn figure2_shape_keeps_three_markers_in_loop() {
        // for t { ON n1; OFF n2; ON n3 } with entry Off: iteration 2 enters
        // with On (from n3), so the leading ON is *not* removable... entry
        // merge = None -> all three markers stay, matching Figure 2(c).
        let mut b = ProgramBuilder::new("t");
        b.loop_(4, |b, _| {
            b.marker(Marker::On);
            b.stmt(|s| {
                s.int(1);
            });
            b.marker(Marker::Off);
            b.stmt(|s| {
                s.int(1);
            });
            b.marker(Marker::On);
            b.stmt(|s| {
                s.int(1);
            });
        });
        let p = b.finish().unwrap();
        let e = eliminate_redundant_markers(&p);
        assert_eq!(count_markers(&e.items), 3);
    }

    #[test]
    fn marker_after_definitely_executing_loop_uses_loop_exit_state() {
        // for t>0 { ... ON } ; ON  -> trailing ON redundant.
        let mut b = ProgramBuilder::new("t");
        b.loop_(4, |b, _| {
            b.stmt(|s| {
                s.int(1);
            });
            b.marker(Marker::On);
        });
        b.marker(Marker::On);
        let p = b.finish().unwrap();
        let e = eliminate_redundant_markers(&p);
        // Loop keeps one On (entry may be Off on iter 1... entry = merge(Off, On) = None,
        // so the in-loop On stays); the trailing On is dropped.
        assert_eq!(count_markers(&e.items), 1);
        assert!(matches!(e.items.last(), Some(Item::Loop(_))));
    }

    #[test]
    fn zero_trip_loop_does_not_define_state() {
        let mut b = ProgramBuilder::new("t");
        b.loop_(0, |b, _| {
            b.marker(Marker::On);
            b.stmt(|s| {
                s.int(1);
            });
        });
        b.marker(Marker::Off); // must survive: state after loop is unknown
        let p = b.finish().unwrap();
        let e = eliminate_redundant_markers(&p);
        assert_eq!(count_markers(&e.items), 2);
    }

    #[test]
    fn end_to_end_with_region_detection() {
        use crate::region::detect_and_mark;
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64], 8);
        // Two consecutive software nests: the second OFF is redundant and
        // the first is too (initial state Off).
        for _ in 0..2 {
            b.loop_(64, |b, i| {
                b.stmt(|s| {
                    s.read(a, vec![Subscript::var(i)]);
                });
            });
        }
        let p = b.finish().unwrap();
        let marked = detect_and_mark(&p, 0.5);
        assert_eq!(marked.marker_count(), 2);
        let e = eliminate_redundant_markers(&marked);
        assert_eq!(count_markers(&e.items), 0);
    }
}
