//! Region detection and ON/OFF instruction insertion (Section 2.2).
//!
//! The algorithm walks each loop nest from the innermost loop outward. An
//! innermost loop's method comes from its analyzable-reference ratio
//! ([`crate::classify`]); a loop whose nested loops all agree inherits their
//! method (statements outside the children inherit it too); a loop whose
//! children disagree is *mixed* — the scheme switches methods at the child
//! boundaries, and statements between children are classified by their own
//! references as if in an imaginary single-iteration loop.
//!
//! The naive pass marks every region header with an activate (ON) or
//! deactivate (OFF) instruction, exactly as in Figure 2(b); the redundancy
//! elimination of [`crate::redundant`] then produces Figure 2(c).

use crate::classify::{items_counts, stmt_counts, Preference, RefCounts};
use selcache_ir::{site_count, Item, Loop, Marker, Program, RegionMap, RegionMapBuilder};

/// Classification of a loop region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionClass {
    /// The whole subtree prefers one method.
    Uniform(Preference),
    /// Nested loops disagree; methods switch inside this loop.
    Mixed,
}

/// Analyzes a loop bottom-up, returning its region class.
pub fn analyze_loop(l: &Loop, threshold: f64) -> RegionClass {
    let child_loops: Vec<&Loop> = l
        .body
        .iter()
        .filter_map(|i| match i {
            Item::Loop(inner) => Some(inner),
            _ => None,
        })
        .collect();
    if child_loops.is_empty() {
        return RegionClass::Uniform(items_counts(&l.body).preference(threshold));
    }
    let mut prefs = Vec::new();
    for c in &child_loops {
        match analyze_loop(c, threshold) {
            RegionClass::Uniform(p) => prefs.push(p),
            RegionClass::Mixed => return RegionClass::Mixed,
        }
    }
    if prefs.windows(2).all(|w| w[0] == w[1]) {
        // All children agree: propagate to the whole loop (including any
        // statements outside the child nests).
        RegionClass::Uniform(prefs[0])
    } else {
        RegionClass::Mixed
    }
}

fn marker_for(p: Preference) -> Marker {
    match p {
        Preference::Hardware => Marker::On,
        Preference::Software => Marker::Off,
    }
}

/// Minimum dynamic statement executions for a region to warrant its own
/// ON/OFF bracket. A mixed loop whose child regions are all smaller than
/// this is classified as a whole by its volume-weighted reference mix —
/// switching the assist every few iterations would cost more than it saves.
pub const MIN_REGION_VOLUME: f64 = 256.0;

/// Estimated dynamic statement executions of an item list.
fn dyn_stmts(items: &[Item], mult: f64) -> f64 {
    items
        .iter()
        .map(|it| match it {
            Item::Loop(l) => dyn_stmts(&l.body, mult * l.trip.max().max(0) as f64),
            Item::Block(stmts) => mult * stmts.len() as f64,
            Item::Marker(_) => 0.0,
        })
        .sum()
}

/// Volume-weighted (analyzable, total) reference counts.
fn weighted_counts(items: &[Item], mult: f64) -> (f64, f64) {
    let mut ana = 0.0;
    let mut tot = 0.0;
    for it in items {
        match it {
            Item::Loop(l) => {
                let (a, t) = weighted_counts(&l.body, mult * l.trip.max().max(0) as f64);
                ana += a;
                tot += t;
            }
            Item::Block(stmts) => {
                for s in stmts {
                    let c = stmt_counts(s);
                    ana += mult * c.analyzable as f64;
                    tot += mult * c.total as f64;
                }
            }
            Item::Marker(_) => {}
        }
    }
    (ana, tot)
}

fn mark_items(items: &[Item], threshold: f64, min_volume: f64, out: &mut Vec<Item>) {
    for item in items {
        match item {
            Item::Loop(l) => match analyze_loop(l, threshold) {
                RegionClass::Uniform(p) => {
                    out.push(Item::Marker(marker_for(p)));
                    out.push(Item::Loop(l.clone()));
                }
                RegionClass::Mixed => {
                    // Fine-grained mixed loop: every child region is too
                    // small to bracket individually. Classify the whole loop
                    // by its volume-weighted reference mix.
                    let fine_grained = l.body.iter().all(|it| match it {
                        Item::Loop(inner) => {
                            dyn_stmts(&inner.body, inner.trip.max().max(0) as f64) < min_volume
                        }
                        _ => true,
                    });
                    if fine_grained {
                        let (ana, tot) = weighted_counts(&l.body, 1.0);
                        let p = if tot == 0.0 || ana / tot > threshold {
                            Preference::Software
                        } else {
                            Preference::Hardware
                        };
                        out.push(Item::Marker(marker_for(p)));
                        out.push(Item::Loop(l.clone()));
                    } else {
                        // Recurse: children get their own markers.
                        let mut body = Vec::new();
                        mark_items(&l.body, threshold, min_volume, &mut body);
                        out.push(Item::Loop(Loop { id: l.id, var: l.var, trip: l.trip, body }));
                    }
                }
            },
            Item::Block(stmts) => {
                // Statements sandwiched between nests: an imaginary loop
                // that iterates once, classified by its own references.
                let c = stmts.iter().fold(RefCounts::default(), |acc, s| acc.merge(stmt_counts(s)));
                out.push(Item::Marker(marker_for(c.preference(threshold))));
                out.push(Item::Block(stmts.clone()));
            }
            Item::Marker(m) => out.push(Item::Marker(*m)),
        }
    }
}

/// Runs region detection and inserts the naive (per-region-header) ON/OFF
/// markers, returning a new program. Use
/// [`crate::redundant::eliminate_redundant_markers`] afterwards, or call
/// [`crate::insert_markers`] which does both.
pub fn detect_and_mark(program: &Program, threshold: f64) -> Program {
    detect_and_mark_with(program, threshold, MIN_REGION_VOLUME)
}

/// [`detect_and_mark`] with an explicit fine-grained-region threshold
/// (exposed for ablation studies; 0 disables coalescing).
pub fn detect_and_mark_with(program: &Program, threshold: f64, min_volume: f64) -> Program {
    let mut items = Vec::new();
    mark_items(&program.items, threshold, min_volume, &mut items);
    Program { items, ..program.clone() }
}

fn pref_tag(p: Preference) -> &'static str {
    match p {
        Preference::Hardware => "hw",
        Preference::Software => "sw",
    }
}

fn partition_items(items: &[Item], threshold: f64, min_volume: f64, b: &mut RegionMapBuilder) {
    for item in items {
        match item {
            Item::Loop(l) => match analyze_loop(l, threshold) {
                RegionClass::Uniform(p) => {
                    b.open(format!("L{}:{}", l.id.0, pref_tag(p)));
                    b.sites(site_count(std::slice::from_ref(item)));
                }
                RegionClass::Mixed => {
                    let fine_grained = l.body.iter().all(|it| match it {
                        Item::Loop(inner) => {
                            dyn_stmts(&inner.body, inner.trip.max().max(0) as f64) < min_volume
                        }
                        _ => true,
                    });
                    if fine_grained {
                        let (ana, tot) = weighted_counts(&l.body, 1.0);
                        let p = if tot == 0.0 || ana / tot > threshold {
                            Preference::Software
                        } else {
                            Preference::Hardware
                        };
                        b.open(format!("L{}:mix-{}", l.id.0, pref_tag(p)));
                        b.sites(site_count(std::slice::from_ref(item)));
                    } else {
                        // Coarse mixed loop: the header/latch is control
                        // overhead outside any child region; children open
                        // their own regions.
                        b.open(format!("L{}:ctl", l.id.0));
                        b.site();
                        partition_items(&l.body, threshold, min_volume, b);
                    }
                }
            },
            Item::Block(stmts) => {
                let c = stmts.iter().fold(RefCounts::default(), |acc, s| acc.merge(stmt_counts(s)));
                b.open(format!("stmts:{}", pref_tag(c.preference(threshold))));
                b.sites(stmts.len());
            }
            Item::Marker(_) => b.pending_site(),
        }
    }
}

/// Partitions a program into the uniform regions the Section 2.2 algorithm
/// distinguishes, returning a site-indexed [`RegionMap`] for trace
/// attribution.
///
/// The partition mirrors [`detect_and_mark`]'s marker granularity exactly —
/// a uniform loop nest is one region, a fine-grained mixed loop is one
/// region, a coarse mixed loop contributes a control region for its
/// header/latch and recurses — so per-region statistics line up with the
/// ON/OFF brackets the selective scheme inserts. Marker items already in
/// the program attach to the region that follows them (the paper places
/// markers immediately before the region they control).
pub fn region_partition(program: &Program, threshold: f64) -> RegionMap {
    region_partition_with(program, threshold, MIN_REGION_VOLUME)
}

/// [`region_partition`] with an explicit fine-grained-region threshold.
pub fn region_partition_with(program: &Program, threshold: f64, min_volume: f64) -> RegionMap {
    let mut b = RegionMapBuilder::new();
    partition_items(&program.items, threshold, min_volume, &mut b);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{AffineExpr, ProgramBuilder, Subscript};

    /// A program shaped like Figure 2(a): one outer loop with three level-2
    /// nests — hardware, software, hardware.
    fn figure2_like() -> Program {
        let mut b = ProgramBuilder::new("fig2");
        let a = b.array("A", &[32, 32], 8);
        let x = b.array("X", &[1024], 8);
        let ip = b.data_array("IP", (0..1024).rev().collect(), 4);
        b.loop_(4, |b, _t| {
            // Nest 1 (levels 2-4): irregular gathers -> hardware.
            b.loop_(8, |b, _i| {
                b.loop_(8, |b, _j| {
                    b.loop_(8, |b, k| {
                        b.stmt(|s| {
                            s.gather(x, ip, AffineExpr::var(k), 0).int(1);
                        });
                    });
                });
            });
            // Nest 2 (level 2): affine -> software.
            b.loop_(32, |b, i| {
                b.stmt(|s| {
                    s.read(a, vec![Subscript::var(i), Subscript::constant(0)]).fp(1);
                });
            });
            // Nest 3 (levels 2-3): irregular -> hardware.
            b.loop_(8, |b, _i| {
                b.loop_(8, |b, k| {
                    b.stmt(|s| {
                        s.gather(x, ip, AffineExpr::var(k), 2).int(1);
                    });
                });
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn outer_loop_is_mixed() {
        let p = figure2_like();
        let l = p.items[0].as_loop().unwrap();
        assert_eq!(analyze_loop(l, 0.5), RegionClass::Mixed);
    }

    #[test]
    fn inner_nests_classify_and_propagate() {
        let p = figure2_like();
        let outer = p.items[0].as_loop().unwrap();
        let nests: Vec<&Loop> = outer.body.iter().filter_map(|i| i.as_loop()).collect();
        assert_eq!(nests.len(), 3);
        assert_eq!(analyze_loop(nests[0], 0.5), RegionClass::Uniform(Preference::Hardware));
        assert_eq!(analyze_loop(nests[1], 0.5), RegionClass::Uniform(Preference::Software));
        assert_eq!(analyze_loop(nests[2], 0.5), RegionClass::Uniform(Preference::Hardware));
    }

    #[test]
    fn naive_marking_brackets_each_region() {
        let p = figure2_like();
        let marked = detect_and_mark(&p, 0.5);
        let outer = marked.items[0].as_loop().unwrap();
        // ON nest1 OFF nest2 ON nest3 — one marker before each child nest.
        let kinds: Vec<_> = outer
            .body
            .iter()
            .filter_map(|i| match i {
                Item::Marker(m) => Some(*m),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![Marker::On, Marker::Off, Marker::On]);
        assert_eq!(marked.marker_count(), 3);
    }

    #[test]
    fn uniform_program_gets_single_header_marker() {
        let mut b = ProgramBuilder::new("u");
        let a = b.array("A", &[16, 16], 8);
        b.nest2(16, 16, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j)]);
            });
        });
        let p = b.finish().unwrap();
        let marked = detect_and_mark(&p, 0.5);
        assert_eq!(marked.marker_count(), 1);
        assert!(matches!(marked.items[0], Item::Marker(Marker::Off)));
    }

    #[test]
    fn sandwiched_statements_use_own_refs() {
        let mut b = ProgramBuilder::new("s");
        let h = b.array("H", &[512], 16);
        let n = b.data_array("N", (0..512).collect(), 8);
        let a = b.array("A", &[512], 8);
        b.loop_(4, |b, _| {
            b.loop_(512, |b, i| {
                b.stmt(|s| {
                    s.read(a, vec![Subscript::var(i)]);
                });
            });
            // Pointer-chasing statements between the two nests.
            b.stmt(|s| {
                s.chase(h, n, 0);
            });
            b.loop_(512, |b, _| {
                b.stmt(|s| {
                    s.chase(h, n, 8);
                });
            });
        });
        let p = b.finish().unwrap();
        let marked = detect_and_mark(&p, 0.5);
        let outer = marked.items[0].as_loop().unwrap();
        let kinds: Vec<_> = outer
            .body
            .iter()
            .filter_map(|i| match i {
                Item::Marker(m) => Some(*m),
                _ => None,
            })
            .collect();
        // Software nest, hardware statements, hardware nest.
        assert_eq!(kinds, vec![Marker::Off, Marker::On, Marker::On]);
    }

    #[test]
    fn validated_after_marking() {
        let marked = detect_and_mark(&figure2_like(), 0.5);
        assert!(marked.validate().is_ok());
    }

    #[test]
    fn partition_covers_every_site() {
        let p = figure2_like();
        let map = region_partition(&p, 0.5);
        assert_eq!(map.num_sites(), site_count(&p.items));
        for site in 0..map.num_sites() {
            assert!(!map.region_of_site(site).is_none(), "site {site} uncovered");
        }
    }

    #[test]
    fn partition_mirrors_marker_granularity() {
        // The marked figure-2 program: outer ctl region + three child-nest
        // regions (hw, sw, hw), each owning its preceding marker site.
        let marked = detect_and_mark(&figure2_like(), 0.5);
        let map = region_partition(&marked, 0.5);
        assert_eq!(map.num_sites(), site_count(&marked.items));
        let labels = map.labels();
        assert!(labels[0].ends_with(":ctl"), "outer loop is control: {labels:?}");
        let tags: Vec<&str> = labels[1..].iter().map(|l| l.rsplit(':').next().unwrap()).collect();
        assert_eq!(tags, vec!["hw", "sw", "hw"]);
    }

    #[test]
    fn partition_attributes_markers_to_following_region() {
        let marked = detect_and_mark(&figure2_like(), 0.5);
        let map = region_partition(&marked, 0.5);
        // Site walk: outer loop (ctl), then [marker, nest...] x3. The first
        // marker site (index 1) belongs to the first child region, not ctl.
        assert_eq!(map.region_of_site(0), map.region_of_site(0));
        assert_ne!(map.region_of_site(1), map.region_of_site(0));
        assert_eq!(map.region_of_site(1), map.region_of_site(2));
    }

    #[test]
    fn every_traced_op_lands_in_a_region() {
        use selcache_ir::Interp;
        let marked = detect_and_mark(&figure2_like(), 0.5);
        let map = region_partition(&marked, 0.5);
        let mut per_region = vec![0u64; map.num_regions()];
        for op in Interp::with_regions(&marked, &map) {
            assert!(!op.region.is_none(), "op at {:#x} outside all regions", op.pc);
            per_region[op.region.index()] += 1;
        }
        assert!(per_region.iter().all(|&n| n > 0), "empty region: {per_region:?}");
    }
}
