//! Reuse analysis and the innermost-loop cost model (after Wolf & Lam).
//!
//! For each loop of a nest we estimate the per-iteration memory cost of
//! running that loop innermost: a reference that does not use the loop
//! variable costs nothing (temporal reuse / register-resident), a reference
//! striding within a cache block costs `stride/block` (spatial reuse), and
//! anything else costs a full miss opportunity (1.0).

use selcache_ir::{ArrayDecl, Ref, RefPattern, Stmt, VarId};

/// Per-element storage strides of an array under its current layout,
/// indexed by source dimension.
pub fn dim_strides(decl: &ArrayDecl) -> Vec<i64> {
    let order = decl.layout.order(decl.dims.len());
    let mut strides = vec![0i64; decl.dims.len()];
    let mut acc = 1i64;
    for &src in order.iter().rev() {
        strides[src] = acc;
        acc *= decl.dims[src];
    }
    strides
}

/// Byte stride of an affine array reference with respect to loop `v`
/// (how far the address moves when `v` advances by one). `None` when the
/// reference is not affine.
pub fn ref_stride(arrays: &[ArrayDecl], r: &Ref, v: VarId) -> Option<i64> {
    match &r.pattern {
        RefPattern::Scalar(_) => Some(0),
        RefPattern::Array { array, subscripts } => {
            let decl = &arrays[array.index()];
            let strides = dim_strides(decl);
            let mut elems = 0i64;
            for (d, s) in subscripts.iter().enumerate() {
                let e = s.as_affine()?;
                elems += e.coeff(v) * strides[d];
            }
            Some(elems * decl.elem_size as i64)
        }
        RefPattern::StructField { array, index, .. } => {
            let decl = &arrays[array.index()];
            Some(index.coeff(v) * decl.elem_size as i64)
        }
        RefPattern::Pointer { .. } => None,
    }
}

/// Per-iteration cost of one reference when loop `v` runs innermost.
pub fn ref_cost(arrays: &[ArrayDecl], r: &Ref, v: VarId, block_bytes: u64) -> f64 {
    match ref_stride(arrays, r, v) {
        Some(0) => 0.0, // temporal reuse (or scalar)
        Some(s) => {
            let s = s.unsigned_abs();
            if s < block_bytes {
                s as f64 / block_bytes as f64 // spatial reuse
            } else {
                1.0
            }
        }
        None => 1.0, // unanalyzable: assume a miss opportunity
    }
}

/// Total per-iteration cost of a nest body when `v` runs innermost.
pub fn innermost_cost(arrays: &[ArrayDecl], stmts: &[&Stmt], v: VarId, block_bytes: u64) -> f64 {
    stmts.iter().flat_map(|s| s.refs.iter()).map(|r| ref_cost(arrays, r, v, block_bytes)).sum()
}

/// Chooses the loop ordering for a nest: loops sorted so the cheapest
/// (most reuse when innermost) is innermost. Returns the permutation as
/// indices into the original order (outermost first). Stable for ties.
pub fn preferred_permutation(
    arrays: &[ArrayDecl],
    vars: &[VarId],
    stmts: &[&Stmt],
    block_bytes: u64,
) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = vars
        .iter()
        .enumerate()
        .map(|(k, &v)| (k, innermost_cost(arrays, stmts, v, block_bytes)))
        .collect();
    // Outermost = highest cost; ties keep original relative order.
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().map(|(k, _)| k).collect()
}

/// True if some reference in the nest carries temporal reuse on a
/// non-innermost loop — i.e. tiling could turn that reuse into locality.
pub fn has_outer_temporal_reuse(arrays: &[ArrayDecl], vars: &[VarId], stmts: &[&Stmt]) -> bool {
    if vars.len() < 2 {
        return false;
    }
    let outer = &vars[..vars.len() - 1];
    stmts.iter().flat_map(|s| s.refs.iter()).any(|r| {
        outer.iter().any(|&v| {
            matches!(ref_stride(arrays, r, v), Some(0))
                && !matches!(r.pattern, RefPattern::Scalar(_))
        })
    })
}

/// Approximate data footprint of one traversal of the nest body, in bytes:
/// the sum over distinct arrays touched of min(array size, touched extent).
pub fn nest_footprint(arrays: &[ArrayDecl], stmts: &[&Stmt]) -> u64 {
    let mut touched: Vec<bool> = vec![false; arrays.len()];
    for s in stmts {
        for r in &s.refs {
            if let Some(a) = r.pattern.array() {
                touched[a.index()] = true;
            }
        }
    }
    touched.iter().zip(arrays).filter(|(t, _)| **t).map(|(_, d)| d.size_bytes()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{Layout, ProgramBuilder, Subscript};

    fn build() -> (Vec<ArrayDecl>, Vec<Stmt>, Vec<VarId>) {
        // for i (v0) { for j (v1) { U[j] += V[i][j] * W[j][i] } }
        // (the paper's running example from Section 3.2).
        let mut b = ProgramBuilder::new("ex");
        let u = b.array("U", &[64], 8);
        let vv = b.array("V", &[64, 64], 8);
        let w = b.array("W", &[64, 64], 8);
        let mut stmts = Vec::new();
        let mut vars = Vec::new();
        b.nest2(64, 64, |b, i, j| {
            vars.push(i);
            vars.push(j);
            b.stmt(|s| {
                s.read(u, vec![Subscript::var(j)])
                    .read(vv, vec![Subscript::var(i), Subscript::var(j)])
                    .read(w, vec![Subscript::var(j), Subscript::var(i)])
                    .fp(2)
                    .write(u, vec![Subscript::var(j)]);
            });
        });
        let p = b.finish().unwrap();
        p.for_each_stmt(|s| stmts.push(s.clone()));
        (p.arrays, stmts, vars)
    }

    #[test]
    fn strides_row_major() {
        let (arrays, stmts, vars) = build();
        let (i, j) = (vars[0], vars[1]);
        // V[i][j] row-major: stride 8 w.r.t. j, 512 w.r.t. i.
        let v_ref = &stmts[0].refs[1];
        assert_eq!(ref_stride(&arrays, v_ref, j), Some(8));
        assert_eq!(ref_stride(&arrays, v_ref, i), Some(64 * 8));
        // U[j]: stride 0 w.r.t. i (temporal reuse carried by i).
        let u_ref = &stmts[0].refs[0];
        assert_eq!(ref_stride(&arrays, u_ref, i), Some(0));
    }

    #[test]
    fn column_major_swaps_strides() {
        let (mut arrays, stmts, vars) = build();
        arrays[2].layout = Layout::ColMajor; // W
        let w_ref = &stmts[0].refs[2]; // W[j][i]
        assert_eq!(ref_stride(&arrays, w_ref, vars[0]), Some(64 * 8)); // i: dim 1 now strided
                                                                       // Actually ColMajor: dim 0 is unit stride; W[j][i]: j in dim 0.
        assert_eq!(ref_stride(&arrays, w_ref, vars[1]), Some(8));
    }

    #[test]
    fn paper_example_prefers_i_innermost() {
        // With row-major layouts: innermost j cost = U spatial (8/32) + V
        // spatial (8/32) + W column (1.0) + U store (8/32) = 1.75.
        // Innermost i cost = U temporal (0) + V column (1.0) + W row... W[j][i]
        // w.r.t. i strides 8 (0.25) + U store 0 = 1.25 -> i innermost wins,
        // matching the paper (interchange makes i innermost).
        let (arrays, stmts, vars) = build();
        let stmt_refs: Vec<&Stmt> = stmts.iter().collect();
        let ci = innermost_cost(&arrays, &stmt_refs, vars[0], 32);
        let cj = innermost_cost(&arrays, &stmt_refs, vars[1], 32);
        assert!(ci < cj, "i cost {ci} should beat j cost {cj}");
        let perm = preferred_permutation(&arrays, &vars, &stmt_refs, 32);
        assert_eq!(perm, vec![1, 0]); // j outermost, i innermost
    }

    #[test]
    fn outer_temporal_reuse_detected() {
        let (arrays, stmts, vars) = build();
        let stmt_refs: Vec<&Stmt> = stmts.iter().collect();
        // U[j] is invariant in i (outer loop) -> tiling candidate.
        assert!(has_outer_temporal_reuse(&arrays, &vars, &stmt_refs));
    }

    #[test]
    fn footprint_sums_touched_arrays() {
        let (arrays, stmts, _) = build();
        let stmt_refs: Vec<&Stmt> = stmts.iter().collect();
        // U (64*8) + V (64*64*8) + W (64*64*8)
        assert_eq!(nest_footprint(&arrays, &stmt_refs), 512 + 32768 + 32768);
    }

    #[test]
    fn pointer_ref_costs_full_miss() {
        let mut b = ProgramBuilder::new("p");
        let h = b.array("H", &[8], 16);
        let n = b.data_array("N", (0..8).collect(), 8);
        let mut captured = None;
        b.loop_(8, |b, i| {
            captured = Some(i);
            b.stmt(|s| {
                s.chase(h, n, 0);
            });
        });
        let p = b.finish().unwrap();
        let mut stmts = Vec::new();
        p.for_each_stmt(|s| stmts.push(s.clone()));
        let c = ref_cost(&p.arrays, &stmts[0].refs[0], captured.unwrap(), 32);
        assert_eq!(c, 1.0);
    }
}
