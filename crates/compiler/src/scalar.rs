//! Scalar replacement (register promotion) of loop-invariant references.
//!
//! References that are invariant in the innermost loop (the paper's `U[j]`
//! in Section 3.2 after interchange) are promoted to registers: one load in
//! a preheader before the innermost loop, the in-loop references removed,
//! and — for written references — one store in a postheader. This captures
//! the register-usage benefit of the paper's unroll-and-jam + scalar
//! replacement step without modelling register allocation explicitly.

use crate::nest::PerfectNest;
use crate::reuse::ref_stride;
use selcache_ir::{ArrayDecl, Item, Loop, Ref, RefPattern, Stmt, VarId};

/// Maximum number of distinct references promoted per loop (register
/// pressure bound).
pub const MAX_PROMOTED: usize = 8;

fn pattern_key(p: &RefPattern) -> Option<String> {
    // Structural key for equality grouping; only affine array refs qualify.
    match p {
        RefPattern::Array { array, subscripts } => {
            if subscripts.iter().all(|s| s.is_affine()) {
                Some(format!("{array:?}:{subscripts:?}"))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Promotes innermost-invariant references of the perfect nest rooted at
/// `l`. Returns the transformed loop, or `None` if nothing was promoted.
pub fn scalar_replace(arrays: &[ArrayDecl], l: &Loop) -> Option<Loop> {
    let nest = PerfectNest::extract(l);
    if !nest.is_flat() {
        return None;
    }
    let inner_var: VarId = nest.levels.last().expect("nest has a level").var;
    let stmts = nest.stmts();

    // Group candidate refs by structural pattern.
    #[derive(Default)]
    struct Cand {
        pattern: Option<RefPattern>,
        reads: usize,
        writes: usize,
    }
    let mut cands: std::collections::BTreeMap<String, Cand> = Default::default();
    // Arrays with any non-promotable (differently-subscripted) ref in the
    // body: promotion of any ref to them would be unsound under aliasing.
    let mut keys_per_array: std::collections::HashMap<u32, std::collections::BTreeSet<String>> =
        Default::default();
    for s in &stmts {
        for r in &s.refs {
            let Some(a) = r.pattern.array() else { continue };
            match pattern_key(&r.pattern) {
                Some(k) => {
                    keys_per_array.entry(a.0).or_default().insert(k.clone());
                    let c = cands.entry(k).or_default();
                    c.pattern.get_or_insert_with(|| r.pattern.clone());
                    if r.write {
                        c.writes += 1;
                    } else {
                        c.reads += 1;
                    }
                }
                None => {
                    // Unanalyzable ref: poison the array.
                    keys_per_array.entry(a.0).or_default().insert("<poison>".into());
                    keys_per_array.entry(a.0).or_default().insert("<poison2>".into());
                }
            }
        }
    }

    let mut promoted: Vec<(String, RefPattern, bool)> = Vec::new();
    for (k, c) in &cands {
        let Some(p) = &c.pattern else { continue };
        // Invariant in the innermost loop?
        let r = Ref::load(p.clone());
        if ref_stride(arrays, &r, inner_var) != Some(0) {
            continue;
        }
        // Sole access pattern to its array (no aliasing risk)?
        let a = p.array().expect("array refs have arrays");
        if keys_per_array.get(&a.0).map_or(0, |s| s.len()) != 1 {
            continue;
        }
        // Worth promoting: more than one dynamic access per innermost
        // iteration set (a read+write pair or repeated reads).
        if c.reads + c.writes < 2 && c.writes == 0 {
            continue;
        }
        promoted.push((k.clone(), p.clone(), c.writes > 0));
        if promoted.len() == MAX_PROMOTED {
            break;
        }
    }
    if promoted.is_empty() {
        return None;
    }

    // Remove promoted refs from the body.
    let strip = |stmt: &Stmt| -> Stmt {
        let mut s = stmt.clone();
        s.refs.retain(|r| match pattern_key(&r.pattern) {
            Some(k) => !promoted.iter().any(|(pk, _, _)| *pk == k),
            None => true,
        });
        s
    };
    let new_body: Vec<Item> = nest
        .body
        .iter()
        .map(|item| match item {
            Item::Block(stmts) => Item::Block(stmts.iter().map(strip).collect()),
            other => other.clone(),
        })
        .collect();

    // Preheader loads and postheader stores.
    let pre = Stmt::new(
        promoted.iter().map(|(_, p, _)| Ref::load(p.clone())).collect(),
        promoted.len() as u16,
        0,
    );
    let post_refs: Vec<Ref> = promoted
        .iter()
        .filter(|(_, _, written)| *written)
        .map(|(_, p, _)| Ref::store(p.clone()))
        .collect();

    let innermost = *nest.levels.last().expect("nest has a level");
    let inner_loop =
        Loop { id: innermost.id, var: innermost.var, trip: innermost.trip, body: new_body };
    let mut wrapped = vec![Item::Block(vec![pre]), Item::Loop(inner_loop)];
    if !post_refs.is_empty() {
        wrapped.push(Item::Block(vec![Stmt::new(post_refs, 0, 0)]));
    }

    // Rebuild outer levels around the wrapped innermost loop.
    let mut current = wrapped;
    for lv in nest.levels[..nest.levels.len() - 1].iter().rev() {
        current = vec![Item::Loop(Loop { id: lv.id, var: lv.var, trip: lv.trip, body: current })];
    }
    match current.into_iter().next() {
        Some(Item::Loop(l)) => Some(l),
        // Depth-1 nest: the wrapping produced [pre, loop, post]; callers need
        // a Loop, so wrap-around is not expressible — skip promotion there.
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{Interp, OpKind, Program, ProgramBuilder, Subscript};

    /// for j { for i { U[j] += V[i][j] } } — U[j] invariant in i.
    fn reduction(n: i64) -> Program {
        let mut b = ProgramBuilder::new("red");
        let u = b.array("U", &[n], 8);
        let v = b.array("V", &[n, n], 8);
        b.nest2(n, n, |b, j, i| {
            b.stmt(|s| {
                s.read(u, vec![Subscript::var(j)])
                    .read(v, vec![Subscript::var(i), Subscript::var(j)])
                    .fp(1)
                    .write(u, vec![Subscript::var(j)]);
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn promotes_reduction_target() {
        let p = reduction(16);
        let l = p.items[0].as_loop().unwrap();
        let new = scalar_replace(&p.arrays, l).expect("promotes");
        let mut p2 = p.clone();
        p2.items[0] = Item::Loop(new);
        assert!(p2.validate().is_ok());
        // Loads drop from 2/iter (U + V) to 1/iter (V) + 1 per outer iter.
        let count_loads =
            |p: &Program| Interp::new(p).filter(|o| matches!(o.kind, OpKind::Load(_))).count();
        let before = count_loads(&p);
        let after = count_loads(&p2);
        assert_eq!(before, 16 * 16 * 2);
        assert_eq!(after, 16 * 16 + 16);
        // Stores drop from 1/iter to 1 per outer iteration.
        let count_stores =
            |p: &Program| Interp::new(p).filter(|o| matches!(o.kind, OpKind::Store(_))).count();
        assert_eq!(count_stores(&p), 16 * 16);
        assert_eq!(count_stores(&p2), 16);
    }

    #[test]
    fn variant_ref_not_promoted() {
        // A[i] varies with the innermost loop: nothing to promote.
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[64], 8);
        b.loop_(4, |b, _j| {
            b.loop_(64, |b, i| {
                b.stmt(|s| {
                    s.read(a, vec![Subscript::var(i)]).fp(1);
                });
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        assert!(scalar_replace(&p.arrays, l).is_none());
    }

    #[test]
    fn aliasing_subscripts_block_promotion() {
        // U[j] and U[j+1] both appear: promotion would be unsound.
        let mut b = ProgramBuilder::new("t");
        let u = b.array("U", &[65], 8);
        let v = b.array("V", &[64, 64], 8);
        b.nest2(64, 64, |b, j, i| {
            b.stmt(|s| {
                s.read(u, vec![Subscript::var(j)])
                    .read(u, vec![Subscript::linear(j, 1, 1)])
                    .read(v, vec![Subscript::var(i), Subscript::var(j)])
                    .fp(1)
                    .write(u, vec![Subscript::var(j)]);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        assert!(scalar_replace(&p.arrays, l).is_none());
    }

    #[test]
    fn read_only_invariant_promoted_without_postheader() {
        // Scale factor S[j] read repeatedly in the i loop.
        let mut b = ProgramBuilder::new("t");
        let sarr = b.array("S", &[64], 8);
        let v = b.array("V", &[64, 64], 8);
        b.nest2(64, 64, |b, j, i| {
            b.stmt(|s| {
                s.read(sarr, vec![Subscript::var(j)])
                    .read(sarr, vec![Subscript::var(j)])
                    .fp(1)
                    .write(v, vec![Subscript::var(i), Subscript::var(j)]);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        let new = scalar_replace(&p.arrays, l).expect("promotes");
        let mut p2 = p.clone();
        p2.items[0] = Item::Loop(new);
        let stores = Interp::new(&p2).filter(|o| matches!(o.kind, OpKind::Store(_))).count();
        // Only the V stores remain: no postheader stores for read-only S.
        assert_eq!(stores, 64 * 64);
    }

    #[test]
    fn depth_one_nest_skipped() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[4], 8);
        b.loop_(64, |b, _i| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::constant(0)]).write(a, vec![Subscript::constant(0)]);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        assert!(scalar_replace(&p.arrays, l).is_none());
    }
}
