//! Iteration-space tiling.
//!
//! A fully permutable perfect nest whose data footprint exceeds the cache
//! and whose body carries outer-loop temporal reuse is strip-mined and
//! permuted: every tiled loop `for v in 0..N` becomes a controller
//! `for u in 0..ceil(N/T)` plus an intra-tile loop of `min(T, N-u*T)`
//! iterations, with `v := T*u + v'` substituted into all subscripts. The
//! controllers run outermost, turning outer reuse into in-cache reuse.

use crate::depend::{band_fully_permutable, nest_dependences};
use crate::nest::{NestLevel, PerfectNest};
use crate::reuse::{has_outer_temporal_reuse, nest_footprint};
use selcache_ir::{AffineExpr, ArrayDecl, Item, Loop, LoopId, RefPattern, Stmt, Trip, VarId};

/// Fresh-id allocator handed to transformations that create loops/vars.
#[derive(Debug)]
pub struct IdAlloc<'a> {
    /// Program variable counter.
    pub num_vars: &'a mut u32,
    /// Program loop counter.
    pub num_loops: &'a mut u32,
}

impl IdAlloc<'_> {
    fn fresh_var(&mut self) -> VarId {
        *self.num_vars += 1;
        VarId(*self.num_vars - 1)
    }

    fn fresh_loop(&mut self) -> LoopId {
        *self.num_loops += 1;
        LoopId(*self.num_loops - 1)
    }
}

/// Tiling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilingConfig {
    /// Tile size in iterations.
    pub tile: i64,
    /// Cache capacity that the nest footprint must exceed for tiling to pay.
    pub cache_bytes: u64,
    /// Only loops with at least `min_trip` iterations are tiled.
    pub min_trip: i64,
}

impl Default for TilingConfig {
    fn default() -> Self {
        TilingConfig { tile: 32, cache_bytes: 32 * 1024, min_trip: 64 }
    }
}

fn substitute_stmt(stmt: &Stmt, v: VarId, repl: &AffineExpr) -> Stmt {
    let mut s = stmt.clone();
    for r in &mut s.refs {
        match &mut r.pattern {
            RefPattern::Array { subscripts, .. } => {
                for sub in subscripts.iter_mut() {
                    *sub = sub.substitute_affine(v, repl);
                }
            }
            RefPattern::StructField { index, .. } => {
                *index = index.substitute(v, repl);
            }
            RefPattern::Scalar(_) | RefPattern::Pointer { .. } => {}
        }
    }
    s
}

fn substitute_items(items: &[Item], v: VarId, repl: &AffineExpr) -> Vec<Item> {
    items
        .iter()
        .map(|item| match item {
            Item::Block(stmts) => {
                Item::Block(stmts.iter().map(|s| substitute_stmt(s, v, repl)).collect())
            }
            Item::Marker(m) => Item::Marker(*m),
            Item::Loop(l) => Item::Loop(Loop {
                id: l.id,
                var: l.var,
                trip: l.trip,
                body: substitute_items(&l.body, v, repl),
            }),
        })
        .collect()
}

/// Attempts to tile the perfect nest rooted at `l`. Returns the transformed
/// loop, or `None` when tiling does not apply (imperfect or shallow nest,
/// dynamic trips, no outer reuse, footprint fits in cache, dependences
/// prevent it, or no loop is long enough to tile).
pub fn tile_nest(
    ids: &mut IdAlloc<'_>,
    arrays: &[ArrayDecl],
    l: &Loop,
    cfg: &TilingConfig,
) -> Option<Loop> {
    let nest = PerfectNest::extract(l);
    if nest.levels.len() < 2 || !nest.is_flat() || !nest.all_const_trips() {
        return None;
    }
    let stmts = nest.stmts();
    if !has_outer_temporal_reuse(arrays, &nest.vars(), &stmts) {
        return None;
    }
    if nest_footprint(arrays, &stmts) <= cfg.cache_bytes {
        return None;
    }
    let deps = nest_dependences(&nest.vars(), &stmts);
    if !band_fully_permutable(&deps, 0..nest.levels.len()) {
        return None;
    }

    // Strip-mine every sufficiently long loop.
    let mut controllers: Vec<NestLevel> = Vec::new();
    let mut inner: Vec<NestLevel> = Vec::new();
    let mut body = nest.body.clone();
    for lv in &nest.levels {
        let n = match lv.trip {
            Trip::Const(n) => n,
            Trip::TileTail { .. } => unreachable!("checked all_const_trips"),
        };
        if n >= cfg.min_trip {
            let u = ids.fresh_var();
            let cid = ids.fresh_loop();
            controllers.push(NestLevel {
                id: cid,
                var: u,
                trip: Trip::Const((n + cfg.tile - 1) / cfg.tile),
            });
            inner.push(NestLevel {
                id: lv.id,
                var: lv.var,
                trip: Trip::TileTail { total: n, tile: cfg.tile, outer: u },
            });
            // v := tile*u + v
            let repl = AffineExpr::from_terms([(u, cfg.tile), (lv.var, 1)], 0);
            body = substitute_items(&body, lv.var, &repl);
        } else {
            inner.push(*lv);
        }
    }
    if controllers.is_empty() {
        return None;
    }
    controllers.extend(inner);
    Some(PerfectNest { levels: controllers, body }.rebuild())
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{trace_len, Interp, OpKind, Program, ProgramBuilder, Subscript};

    /// for i in 0..N { for j in 0..N { C[i] += A[i][j]*B[j][i]... } } with a
    /// B access pattern that carries outer reuse (B row reused across i).
    fn big_nest(n: i64) -> Program {
        let mut b = ProgramBuilder::new("mm");
        let a = b.array("A", &[n, n], 8);
        let c = b.array("C", &[n], 8);
        b.nest2(n, n, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j)])
                    .read(c, vec![Subscript::var(j)]) // reused across i
                    .fp(2)
                    .write(c, vec![Subscript::var(j)]);
            });
        });
        b.finish().unwrap()
    }

    fn tile(p: &mut Program, cfg: &TilingConfig) -> Option<Loop> {
        let l = match &p.items[0] {
            Item::Loop(l) => l.clone(),
            _ => panic!("expected loop"),
        };
        let mut nv = p.num_vars;
        let mut nl = p.num_loops;
        let out = {
            let mut ids = IdAlloc { num_vars: &mut nv, num_loops: &mut nl };
            tile_nest(&mut ids, &p.arrays, &l, cfg)
        };
        p.num_vars = nv;
        p.num_loops = nl;
        out
    }

    #[test]
    fn tiling_preserves_iteration_count_and_addresses() {
        let mut p = big_nest(100);
        let base_ops: Vec<_> = Interp::new(&p).filter_map(|o| o.kind.addr()).collect();
        let cfg = TilingConfig { tile: 16, cache_bytes: 1024, min_trip: 32 };
        let tiled = tile(&mut p, &cfg).expect("tiles");
        p.items[0] = Item::Loop(tiled);
        assert!(p.validate().is_ok());
        let mut tiled_addrs: Vec<_> = Interp::new(&p).filter_map(|o| o.kind.addr()).collect();
        let mut base_sorted = base_ops.clone();
        base_sorted.sort();
        tiled_addrs.sort();
        // Same multiset of data addresses, different order.
        assert_eq!(base_sorted, tiled_addrs);
    }

    #[test]
    fn tiling_changes_access_order() {
        let mut p = big_nest(100);
        let base: Vec<_> = Interp::new(&p)
            .filter_map(|o| match o.kind {
                OpKind::Load(a) => Some(a),
                _ => None,
            })
            .take(200)
            .collect();
        let cfg = TilingConfig { tile: 16, cache_bytes: 1024, min_trip: 32 };
        let tiled = tile(&mut p, &cfg).expect("tiles");
        p.items[0] = Item::Loop(tiled);
        let after: Vec<_> = Interp::new(&p)
            .filter_map(|o| match o.kind {
                OpKind::Load(a) => Some(a),
                _ => None,
            })
            .take(200)
            .collect();
        assert_ne!(base, after);
    }

    #[test]
    fn small_footprint_not_tiled() {
        let mut p = big_nest(100);
        let cfg = TilingConfig { tile: 16, cache_bytes: 1 << 30, min_trip: 32 };
        assert!(tile(&mut p, &cfg).is_none());
    }

    #[test]
    fn short_loops_not_tiled() {
        let mut p = big_nest(100);
        let cfg = TilingConfig { tile: 16, cache_bytes: 1024, min_trip: 512 };
        assert!(tile(&mut p, &cfg).is_none());
    }

    #[test]
    fn no_outer_reuse_not_tiled() {
        let mut b = ProgramBuilder::new("stream");
        let a = b.array("A", &[256, 256], 8);
        b.nest2(256, 256, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j)]).fp(1);
            });
        });
        let mut p = b.finish().unwrap();
        let cfg = TilingConfig::default();
        assert!(tile(&mut p, &cfg).is_none());
    }

    #[test]
    fn tile_structure_has_controllers() {
        let mut p = big_nest(128);
        let cfg = TilingConfig { tile: 32, cache_bytes: 1024, min_trip: 64 };
        let tiled = tile(&mut p, &cfg).expect("tiles");
        let nest = PerfectNest::extract(&tiled);
        assert_eq!(nest.levels.len(), 4); // 2 controllers + 2 tile loops
        assert!(matches!(nest.levels[0].trip, Trip::Const(4)));
        assert!(matches!(nest.levels[2].trip, Trip::TileTail { tile: 32, .. }));
    }

    #[test]
    fn non_divisible_extent_keeps_total_trips() {
        // 100 iterations, tile 16 -> 7 tiles, last of 4.
        let mut p = big_nest(100);
        let cfg = TilingConfig { tile: 16, cache_bytes: 1024, min_trip: 32 };
        let tiled = tile(&mut p, &cfg).expect("tiles");
        p.items[0] = Item::Loop(tiled);
        // fp ops count = iterations * 2.
        let fp = Interp::new(&p).filter(|o| o.kind == OpKind::FpAlu).count();
        assert_eq!(fp, 100 * 100 * 2);
        let _ = trace_len(&p);
    }
}
