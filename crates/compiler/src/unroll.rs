//! Unroll-and-jam (register blocking).
//!
//! The paper's second software step: "we then optimize register usage
//! through unroll-and-jam and scalar replacement" (§3.2, after Callahan,
//! Carr & Kennedy). The *outer* loop of a nest is unrolled by a factor `U`
//! and the copies are jammed into the inner loop body, so references that
//! vary only with the outer loop appear `U` times per inner iteration with
//! small constant offsets — multiplying register-level reuse and inner-loop
//! ILP.
//!
//! Legality matches loop interchange for the unrolled band: jamming
//! interleaves outer iterations, which is safe when every dependence
//! carried by the outer loop remains forward after interleaving — we
//! require the (outer, inner) band to be fully permutable, the standard
//! sufficient condition.

use crate::depend::{band_fully_permutable, nest_dependences};
use crate::nest::{NestLevel, PerfectNest};
use selcache_ir::{AffineExpr, Item, Loop, Program, RefPattern, Trip, VarId};

/// Unroll-and-jam parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnrollConfig {
    /// Unroll factor for the outer loop.
    pub factor: i64,
    /// Only unroll when the outer trip count is at least this.
    pub min_trip: i64,
    /// Maximum statements in the innermost body after jamming (code-size
    /// bound, a proxy for register pressure).
    pub max_body_stmts: usize,
}

impl Default for UnrollConfig {
    fn default() -> Self {
        UnrollConfig { factor: 4, min_trip: 16, max_body_stmts: 16 }
    }
}

/// Applies unroll-and-jam to the outermost two levels of the perfect nest
/// rooted at `l`. Returns the transformed loop, or `None` when it does not
/// apply (shallow/imperfect nest, dynamic or short trips, non-divisible
/// trip count, dependence constraints, body-size bound, or the outer loop
/// carries no reuse worth blocking).
pub fn unroll_and_jam(l: &Loop, cfg: &UnrollConfig) -> Option<Loop> {
    if cfg.factor < 2 {
        return None;
    }
    let nest = PerfectNest::extract(l);
    if nest.levels.len() < 2 || !nest.is_flat() || !nest.all_const_trips() {
        return None;
    }
    let outer = nest.levels[0];
    let n = match outer.trip {
        Trip::Const(n) => n,
        Trip::TileTail { .. } => return None,
    };
    // Keep the transformation exact: require divisibility (a remainder loop
    // would complicate the region structure the markers rely on).
    if n < cfg.min_trip || n % cfg.factor != 0 {
        return None;
    }
    let stmts = nest.stmts();
    if stmts.len() * cfg.factor as usize > cfg.max_body_stmts {
        return None;
    }
    // Only profitable when some reference ignores the inner loops but uses
    // the outer one is NOT required — classic profitability is references
    // invariant in the *outer* loop (they become shared registers across
    // the jammed copies). Require at least one.
    let inner_vars: Vec<VarId> = nest.levels[1..].iter().map(|lv| lv.var).collect();
    let has_outer_invariant = stmts.iter().flat_map(|s| s.refs.iter()).any(|r| {
        if let RefPattern::Array { subscripts, .. } = &r.pattern {
            subscripts.iter().all(|s| !s.uses(outer.var))
                && subscripts.iter().any(|s| inner_vars.iter().any(|&v| s.uses(v)))
        } else {
            false
        }
    });
    if !has_outer_invariant {
        return None;
    }
    // Legality: jamming interleaves outer iterations with inner ones.
    let vars = nest.vars();
    let deps = nest_dependences(&vars, &stmts);
    if !band_fully_permutable(&deps, 0..2) {
        return None;
    }

    // Rebuild: outer trip n/U, each statement cloned U times with
    // i := U*i + k. (The outer variable keeps its id; subscripts absorb the
    // scaling.)
    let factor = cfg.factor;
    let mut body_stmts = Vec::with_capacity(stmts.len() * factor as usize);
    for k in 0..factor {
        for s in &stmts {
            // First substitute i -> factor*i, then add the copy offset k.
            let scaled = {
                let mut t = (*s).clone();
                let repl = AffineExpr::linear(outer.var, factor, k);
                for r in &mut t.refs {
                    match &mut r.pattern {
                        RefPattern::Array { subscripts, .. } => {
                            for sub in subscripts.iter_mut() {
                                *sub = sub.substitute_affine(outer.var, &repl);
                            }
                        }
                        RefPattern::StructField { index, .. } => {
                            *index = index.substitute(outer.var, &repl);
                        }
                        RefPattern::Scalar(_) | RefPattern::Pointer { .. } => {}
                    }
                }
                t
            };
            body_stmts.push(scaled);
        }
    }
    let mut levels: Vec<NestLevel> = nest.levels.clone();
    levels[0] = NestLevel { id: outer.id, var: outer.var, trip: Trip::Const(n / factor) };
    Some(PerfectNest { levels, body: vec![Item::Block(body_stmts)] }.rebuild())
}

/// Applies unroll-and-jam across all software regions of a program;
/// returns how many nests changed.
pub fn unroll_and_jam_program(program: &mut Program, threshold: f64, cfg: &UnrollConfig) -> usize {
    crate::passes::apply_to_software_loops(program, threshold, &mut |_arrays, _ids, l| {
        unroll_and_jam(l, cfg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{Interp, OpKind, Program, ProgramBuilder, Subscript};

    /// The classic candidate: for i { for j { C[j] += A[i][j] } } — A varies
    /// with i, C is outer-invariant per j.
    fn candidate(n: i64, m: i64) -> Program {
        let mut b = ProgramBuilder::new("uaj");
        let a = b.array("A", &[n, m], 8);
        let c = b.array("C", &[m], 8);
        b.nest2(n, m, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j)])
                    .read(c, vec![Subscript::var(j)])
                    .fp(1)
                    .write(c, vec![Subscript::var(j)]);
            });
        });
        b.finish().unwrap()
    }

    fn addrs(p: &Program) -> Vec<u64> {
        let mut v: Vec<u64> = Interp::new(p).filter_map(|o| o.kind.addr().map(|a| a.0)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn unrolls_and_preserves_address_multiset() {
        let p = candidate(32, 64);
        let l = p.items[0].as_loop().unwrap();
        let new = unroll_and_jam(l, &UnrollConfig::default()).expect("applies");
        let mut p2 = p.clone();
        p2.items[0] = Item::Loop(new);
        assert!(p2.validate().is_ok());
        assert_eq!(addrs(&p), addrs(&p2), "same memory work in a different order");
        // Outer trip shrank by the factor.
        let nest = PerfectNest::extract(p2.items[0].as_loop().unwrap());
        assert_eq!(nest.levels[0].trip, Trip::Const(8));
        // Body has 4 jammed copies.
        assert_eq!(nest.stmts().len(), 4);
    }

    #[test]
    fn fp_work_is_preserved() {
        let p = candidate(32, 64);
        let l = p.items[0].as_loop().unwrap();
        let new = unroll_and_jam(l, &UnrollConfig::default()).expect("applies");
        let mut p2 = p.clone();
        p2.items[0] = Item::Loop(new);
        let fp = |p: &Program| Interp::new(p).filter(|o| o.kind == OpKind::FpAlu).count();
        assert_eq!(fp(&p), fp(&p2));
        // But fewer loop latches execute.
        let branches = |p: &Program| {
            Interp::new(p).filter(|o| matches!(o.kind, OpKind::Branch { .. })).count()
        };
        assert!(branches(&p2) < branches(&p));
    }

    #[test]
    fn non_divisible_trip_rejected() {
        let p = candidate(30, 64);
        let l = p.items[0].as_loop().unwrap();
        assert!(unroll_and_jam(l, &UnrollConfig::default()).is_none());
    }

    #[test]
    fn short_trip_rejected() {
        let p = candidate(8, 64);
        let l = p.items[0].as_loop().unwrap();
        assert!(unroll_and_jam(l, &UnrollConfig::default()).is_none());
    }

    #[test]
    fn no_outer_invariant_reuse_rejected() {
        // Pure streaming: nothing to block.
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[32, 64], 8);
        b.nest2(32, 64, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j)]).fp(1);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        assert!(unroll_and_jam(l, &UnrollConfig::default()).is_none());
    }

    #[test]
    fn crossing_dependence_rejected() {
        // A[i][j] = A[i-1][j+1]: band not fully permutable -> no jam.
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[32, 65], 8);
        let c = b.array("C", &[65], 8);
        b.nest2(32, 64, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::linear(i, 1, -1), Subscript::linear(j, 1, 1)])
                    .read(c, vec![Subscript::var(j)])
                    .fp(1)
                    .write(a, vec![Subscript::var(i), Subscript::var(j)]);
            });
        });
        let p = b.finish().unwrap();
        let l = p.items[0].as_loop().unwrap();
        assert!(unroll_and_jam(l, &UnrollConfig::default()).is_none());
    }

    #[test]
    fn body_size_bound_respected() {
        let p = candidate(32, 64);
        let l = p.items[0].as_loop().unwrap();
        let cfg = UnrollConfig { max_body_stmts: 2, ..UnrollConfig::default() };
        assert!(unroll_and_jam(l, &cfg).is_none());
    }

    #[test]
    fn jam_improves_register_reuse_with_scalar_replacement() {
        // After unroll-and-jam, C[j] appears 4x per inner iteration; scalar
        // replacement then loads it once: loads drop.
        use crate::scalar::scalar_replace;
        let p = candidate(32, 64);
        let l = p.items[0].as_loop().unwrap();
        let jammed = unroll_and_jam(l, &UnrollConfig::default()).expect("applies");
        // The inner loop still varies C[j] with j, so promotion applies to
        // the A-row references only after interchange; instead verify the
        // jam multiplied the C[j] references per iteration:
        let nest = PerfectNest::extract(&jammed);
        let c_reads: usize = nest
            .stmts()
            .iter()
            .flat_map(|s| s.refs.iter())
            .filter(|r| {
                matches!(&r.pattern, RefPattern::Array { array, .. } if array.index() == 1 )
                    && !r.write
            })
            .count();
        assert_eq!(c_reads, 4);
        let _ = scalar_replace;
    }
}
