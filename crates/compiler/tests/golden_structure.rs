//! Golden-structure tests: the compiler's output shape for the paper's own
//! examples, pinned so pipeline changes that alter the produced structure
//! are caught deliberately.

use selcache_compiler::{optimize, selective, OptConfig};
use selcache_ir::{pretty, Program, ProgramBuilder, Subscript};

/// The paper's Section 3.2 example at a size where padding/tiling stay out
/// of the way: `for i { for j { U[j] += V[i][j] * W[j][i] } }`.
fn section32() -> Program {
    let n = 64;
    let mut b = ProgramBuilder::new("s32");
    let u = b.array("U", &[n], 8);
    let v = b.array("V", &[n, n], 8);
    let w = b.array("W", &[n, n], 8);
    b.nest2(n, n, |b, i, j| {
        b.stmt(|s| {
            s.read(u, vec![Subscript::var(j)])
                .read(v, vec![Subscript::var(i), Subscript::var(j)])
                .read(w, vec![Subscript::var(j), Subscript::var(i)])
                .fp(2)
                .write(u, vec![Subscript::var(j)]);
        });
    });
    b.finish().unwrap()
}

#[test]
fn section_3_2_structure_is_pinned() {
    let cfg = OptConfig { pad: false, tile: false, ..OptConfig::default() };
    let o = optimize(&section32(), &cfg);
    let text = pretty(&o);
    // Interchange: j is now the outer loop, i inner.
    assert!(text.contains("for v1 in 0..64 {"), "expected j (v1) outermost:\n{text}");
    // Scalar replacement: U[j] hoisted — a preheader load and a postheader
    // store around the inner loop.
    assert!(text.contains("ld a0[v1], int*1;"), "preheader load missing:\n{text}");
    assert!(text.contains("st a0[v1];"), "postheader store missing:\n{text}");
    // The inner loop body holds only the streaming V/W reads + fp work.
    assert!(text.contains("ld a1[v0][v1], ld a2[v1][v0], fp*2;"), "inner body wrong:\n{text}");
    // Layout: V was column-accessed after interchange -> permuted storage.
    assert!(
        text.contains(r#"array a1 "V" dims=[64, 64] elem=8 layout=Permuted([1, 0])"#),
        "V layout wrong:\n{text}"
    );
    // W is row-accessed after interchange: stays row-major.
    assert!(
        text.contains(r#"array a2 "W" dims=[64, 64] elem=8 layout=RowMajor"#),
        "W layout wrong:\n{text}"
    );
}

#[test]
fn figure_2_marker_structure_is_pinned() {
    // The Figure 2(a) shape: outer loop with hw, sw, hw nests.
    let mut b = ProgramBuilder::new("fig2");
    let dense = b.array("D", &[512, 16], 8);
    let tab = b.array("T", &[4096], 8);
    let ip = b.data_array("IP", (0..4096).rev().collect(), 4);
    b.loop_(4, |b, _| {
        b.loop_(512, |b, k| {
            b.stmt(|s| {
                s.gather(tab, ip, selcache_ir::AffineExpr::var(k), 0);
            });
        });
        b.nest2(512, 16, |b, i, j| {
            b.stmt(|s| {
                s.read(dense, vec![Subscript::var(i), Subscript::var(j)]).fp(1);
            });
        });
        b.loop_(512, |b, k| {
            b.stmt(|s| {
                s.gather(tab, ip, selcache_ir::AffineExpr::var(k), 1);
            });
        });
    });
    let p = b.finish().unwrap();
    let s = selective(&p, &OptConfig::default());
    let text = pretty(&s);
    // Figure 2(c): ON nest1, OFF nest2, ON nest3 — all inside the outer
    // loop, exactly three markers.
    assert_eq!(s.marker_count(), 3, "{text}");
    let on_count = text.matches("ASSIST_ON").count();
    let off_count = text.matches("ASSIST_OFF").count();
    assert_eq!((on_count, off_count), (2, 1), "{text}");
    // Ordering within the loop body.
    let on1 = text.find("ASSIST_ON").unwrap();
    let off = text.find("ASSIST_OFF").unwrap();
    let on2 = text.rfind("ASSIST_ON").unwrap();
    assert!(on1 < off && off < on2, "marker order wrong:\n{text}");
}

#[test]
fn hardware_only_program_gets_one_leading_on() {
    let mut b = ProgramBuilder::new("hw");
    let tab = b.array("T", &[4096], 8);
    let ip = b.data_array("IP", (0..4096).collect(), 4);
    b.loop_(4096, |b, k| {
        b.stmt(|s| {
            s.gather(tab, ip, selcache_ir::AffineExpr::var(k), 0);
        });
    });
    let p = b.finish().unwrap();
    let s = selective(&p, &OptConfig::default());
    assert_eq!(s.marker_count(), 1);
    assert!(matches!(s.items.first(), Some(selcache_ir::Item::Marker(selcache_ir::Marker::On))));
}

#[test]
fn software_only_program_gets_no_markers() {
    let mut b = ProgramBuilder::new("sw");
    let a = b.array("A", &[4096], 8);
    b.loop_(4096, |b, i| {
        b.stmt(|s| {
            s.read(a, vec![Subscript::var(i)]).fp(1);
        });
    });
    let p = b.finish().unwrap();
    let s = selective(&p, &OptConfig::default());
    assert_eq!(s.marker_count(), 0);
}
