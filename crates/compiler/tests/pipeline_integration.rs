//! Whole-compiler integration tests: the paper's Figure 1 flow on
//! realistic program shapes.

use selcache_compiler::{
    analyze_loop, detect_and_mark_with, eliminate_redundant_markers, fuse_loops, insert_markers,
    optimize, selective, OptConfig, Preference, RegionClass,
};
use selcache_ir::{
    trace_len, AffineExpr, Interp, Item, Marker, OpKind, Program, ProgramBuilder, Subscript,
};

/// A program with every reference class the paper lists in §2.3.
fn kitchen_sink() -> Program {
    let mut b = ProgramBuilder::new("sink");
    let a = b.array("A", &[512, 16], 8);
    let d = b.array("D", &[64, 16], 8);
    let e = b.array("E", &[64], 8);
    let f = b.array("F", &[3, 64], 8);
    let g = b.array("G", &[1024], 8);
    let ip = b.data_array("IP", (0..1024).map(|i| (i * 13) % 1024).collect(), 4);
    let heap = b.array("H", &[256], 16);
    let next = b.data_array("N", (0..256).map(|i| (i * 7 + 1) % 256).collect(), 8);
    let structs = b.array("J", &[128], 32);
    let sc = b.scalar();

    // Regular nest: scalars + affine refs.
    b.nest2(512, 16, |b, i, j| {
        b.stmt(|s| {
            s.read(a, vec![Subscript::var(i), Subscript::var(j)])
                .read_scalar(sc)
                .fp(1)
                .write(a, vec![Subscript::var(i), Subscript::var(j)]);
        });
    });
    // Irregular nest: every non-analyzable shape.
    b.nest2(64, 16, |b, i, j| {
        b.stmt(|s| {
            s.read(d, vec![Subscript::Square(i), Subscript::var(j)]) // D[i²][j]
                .read(e, vec![Subscript::Quotient(i, j)]) // E[i/j]
                .read(f, vec![Subscript::constant(2), Subscript::Product(i, j)]) // F[3][i*j]
                .gather(g, ip, AffineExpr::var(j), 2) // G[IP[j]+2]
                .chase(heap, next, 8) // *H
                .field(structs, AffineExpr::var(i), 16) // J.field
                .int(4);
        });
    });
    b.finish().unwrap()
}

#[test]
fn classification_matches_paper_section_2_3() {
    let p = kitchen_sink();
    let regular = p.items[0].as_loop().unwrap();
    let irregular = p.items[1].as_loop().unwrap();
    assert_eq!(analyze_loop(regular, 0.5), RegionClass::Uniform(Preference::Software));
    assert_eq!(analyze_loop(irregular, 0.5), RegionClass::Uniform(Preference::Hardware));
}

#[test]
fn full_flow_produces_single_on_marker() {
    let p = kitchen_sink();
    let s = selective(&p, &OptConfig::default());
    assert!(s.validate().is_ok());
    // SW nest first (no marker after elimination: initial state is off),
    // then one ON before the irregular nest.
    assert_eq!(s.marker_count(), 1);
    let markers: Vec<_> = Interp::new(&s)
        .filter(|o| matches!(o.kind, OpKind::AssistOn | OpKind::AssistOff))
        .collect();
    assert_eq!(markers.len(), 1);
    assert_eq!(markers[0].kind, OpKind::AssistOn);
}

#[test]
fn hardware_regions_are_never_transformed() {
    let p = kitchen_sink();
    let o = optimize(&p, &OptConfig::default());
    // The irregular nest must be byte-identical (modulo nothing: same item).
    assert_eq!(p.items[1], o.items[1], "hardware region was modified");
}

#[test]
fn markers_bracket_exactly_the_hardware_work() {
    let p = kitchen_sink();
    let s = selective(&p, &OptConfig::default());
    // Simulate the flag over the trace: every gather/chase/struct access
    // must execute with the assist on; every access to array A with it off.
    let map = s.address_map();
    let a_base = map.array_base(selcache_ir::ArrayId(0)).0;
    let a_end = a_base + s.arrays[0].size_bytes();
    let g_base = map.array_base(selcache_ir::ArrayId(4)).0;
    let g_end = g_base + s.arrays[4].size_bytes();
    let mut on = false;
    for op in Interp::new(&s) {
        match op.kind {
            OpKind::AssistOn => on = true,
            OpKind::AssistOff => on = false,
            OpKind::Load(addr) | OpKind::Store(addr) => {
                if addr.0 >= a_base && addr.0 < a_end {
                    assert!(!on, "regular array accessed with assist on");
                }
                if addr.0 >= g_base && addr.0 < g_end {
                    assert!(on, "gather target accessed with assist off");
                }
            }
            _ => {}
        }
    }
}

#[test]
fn naive_vs_eliminated_markers_agree_dynamically() {
    let p = kitchen_sink();
    let o = optimize(&p, &OptConfig::default());
    let naive = detect_and_mark_with(&o, 0.5, 256.0);
    let clean = eliminate_redundant_markers(&naive);
    // The flag state before every memory access must be identical.
    let states = |prog: &Program| -> Vec<bool> {
        let mut on = false;
        let mut v = Vec::new();
        for op in Interp::new(prog) {
            match op.kind {
                OpKind::AssistOn => on = true,
                OpKind::AssistOff => on = false,
                OpKind::Load(_) | OpKind::Store(_) => v.push(on),
                _ => {}
            }
        }
        v
    };
    assert_eq!(states(&naive), states(&clean));
}

#[test]
fn fusion_then_selective_is_consistent() {
    let mut b = ProgramBuilder::new("fuse");
    let a = b.array("A", &[2048], 8);
    let c = b.array("C", &[2048], 8);
    let g = b.array("G", &[2048], 8);
    let ip = b.data_array("IP", (0..2048).rev().collect(), 4);
    b.loop_(2048, |b, i| {
        b.stmt(|s| {
            s.fp(1).write(a, vec![Subscript::var(i)]);
        });
    });
    b.loop_(2048, |b, i| {
        b.stmt(|s| {
            s.read(a, vec![Subscript::var(i)]).fp(1).write(c, vec![Subscript::var(i)]);
        });
    });
    b.loop_(2048, |b, i| {
        b.stmt(|s| {
            s.gather(g, ip, AffineExpr::var(i), 0);
        });
    });
    let mut p = b.finish().unwrap();
    let before_ops = trace_len(&p);
    let stats = fuse_loops(&mut p, 0.5);
    assert_eq!(stats.fused, 1, "the two software loops fuse; the gather loop does not");
    assert!(trace_len(&p) < before_ops);
    let marked = insert_markers(&p, 0.5);
    assert_eq!(marked.marker_count(), 1); // single ON before the gather loop
    assert!(matches!(
        marked.items.last(),
        Some(Item::Loop(_)) // gather loop last, preceded by its marker
    ));
    let has_on = marked.items.iter().any(|i| matches!(i, Item::Marker(Marker::On)));
    assert!(has_on);
}

#[test]
fn optimizer_is_idempotent_on_its_own_output() {
    let p = kitchen_sink();
    let cfg = OptConfig::default();
    let once = optimize(&p, &cfg);
    let twice = optimize(&once, &cfg);
    // Second run may re-pad (cursor already staggered: no change) but must
    // not change the code structure.
    assert_eq!(once.items, twice.items);
    assert_eq!(
        trace_len(&once),
        trace_len(&twice),
        "second optimization changed the dynamic shape"
    );
}
