//! Machine configurations: the paper's base machine (Table 1) and the five
//! sensitivity variants of Section 5 / Table 3.

use selcache_cpu::CpuConfig;
use selcache_mem::{AssistKind, CacheConfig, HierarchyConfig};
use std::fmt;

/// A complete machine description: core plus memory hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Processor-core parameters.
    pub cpu: CpuConfig,
    /// Memory-hierarchy parameters (assist kind is substituted per run).
    pub mem: HierarchyConfig,
    /// Human-readable name.
    pub name: &'static str,
}

impl MachineConfig {
    /// The base configuration of Table 1.
    pub fn base() -> Self {
        MachineConfig {
            cpu: CpuConfig::paper_base(),
            mem: HierarchyConfig::paper_base(AssistKind::None),
            name: "Base Confg.",
        }
    }

    /// Base with main-memory latency raised to 200 cycles (Figure 5).
    pub fn higher_mem_latency() -> Self {
        let mut c = Self::base();
        c.mem.mem_latency = 200;
        c.name = "Higher Mem. Lat.";
        c
    }

    /// Base with a 1 MiB L2 (Figure 6).
    pub fn larger_l2() -> Self {
        let mut c = Self::base();
        c.mem.l2 = CacheConfig::kib(1024, 4, 128);
        c.name = "Larger L2 Size";
        c
    }

    /// Base with 64 KiB L1 caches (Figure 7).
    pub fn larger_l1() -> Self {
        let mut c = Self::base();
        c.mem.l1d = CacheConfig::kib(64, 4, 32);
        c.mem.l1i = CacheConfig::kib(64, 4, 32);
        c.name = "Larger L1 Size";
        c
    }

    /// Base with 8-way L2 (Figure 8).
    pub fn higher_l2_assoc() -> Self {
        let mut c = Self::base();
        c.mem.l2 = CacheConfig::kib(512, 8, 128);
        c.name = "Higher L2 Asc.";
        c
    }

    /// Base with 8-way L1 (Figure 9).
    pub fn higher_l1_assoc() -> Self {
        let mut c = Self::base();
        c.mem.l1d = CacheConfig::kib(32, 8, 32);
        c.mem.l1i = CacheConfig::kib(32, 8, 32);
        c.name = "Higher L1 Asc.";
        c
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::base()
    }
}

/// The six experiment configurations of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigVariant {
    /// Table 1 base machine.
    Base,
    /// 200-cycle memory latency.
    HigherMemLatency,
    /// 1 MiB L2.
    LargerL2,
    /// 64 KiB L1.
    LargerL1,
    /// 8-way L2.
    HigherL2Assoc,
    /// 8-way L1.
    HigherL1Assoc,
}

impl ConfigVariant {
    /// All six variants, in Table 3 row order.
    pub const ALL: [ConfigVariant; 6] = [
        ConfigVariant::Base,
        ConfigVariant::HigherMemLatency,
        ConfigVariant::LargerL2,
        ConfigVariant::LargerL1,
        ConfigVariant::HigherL2Assoc,
        ConfigVariant::HigherL1Assoc,
    ];

    /// The machine configuration for this variant.
    pub fn machine(&self) -> MachineConfig {
        match self {
            ConfigVariant::Base => MachineConfig::base(),
            ConfigVariant::HigherMemLatency => MachineConfig::higher_mem_latency(),
            ConfigVariant::LargerL2 => MachineConfig::larger_l2(),
            ConfigVariant::LargerL1 => MachineConfig::larger_l1(),
            ConfigVariant::HigherL2Assoc => MachineConfig::higher_l2_assoc(),
            ConfigVariant::HigherL1Assoc => MachineConfig::higher_l1_assoc(),
        }
    }

    /// The figure this variant corresponds to (None for the base, which is
    /// Figure 4).
    pub fn figure(&self) -> u32 {
        match self {
            ConfigVariant::Base => 4,
            ConfigVariant::HigherMemLatency => 5,
            ConfigVariant::LargerL2 => 6,
            ConfigVariant::LargerL1 => 7,
            ConfigVariant::HigherL2Assoc => 8,
            ConfigVariant::HigherL1Assoc => 9,
        }
    }
}

impl fmt::Display for ConfigVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.machine().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matches_table1() {
        let c = MachineConfig::base();
        assert_eq!(c.cpu.issue_width, 4);
        assert_eq!(c.mem.l1d.size, 32 * 1024);
        assert_eq!(c.mem.l1d.assoc, 4);
        assert_eq!(c.mem.l1d.block_size, 32);
        assert_eq!(c.mem.l2.size, 512 * 1024);
        assert_eq!(c.mem.l2.block_size, 128);
        assert_eq!(c.mem.l1_latency, 2);
        assert_eq!(c.mem.l2_latency, 10);
        assert_eq!(c.mem.mem_latency, 100);
        assert_eq!(c.mem.bus_bytes, 8);
    }

    #[test]
    fn variants_differ_in_exactly_the_right_knob() {
        assert_eq!(MachineConfig::higher_mem_latency().mem.mem_latency, 200);
        assert_eq!(MachineConfig::larger_l2().mem.l2.size, 1024 * 1024);
        assert_eq!(MachineConfig::larger_l1().mem.l1d.size, 64 * 1024);
        assert_eq!(MachineConfig::higher_l2_assoc().mem.l2.assoc, 8);
        assert_eq!(MachineConfig::higher_l1_assoc().mem.l1d.assoc, 8);
    }

    #[test]
    fn six_variants_map_to_figures() {
        let figs: Vec<_> = ConfigVariant::ALL.iter().map(|v| v.figure()).collect();
        assert_eq!(figs, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn display_names_match_table3() {
        assert_eq!(ConfigVariant::Base.to_string(), "Base Confg.");
        assert_eq!(ConfigVariant::HigherL1Assoc.to_string(), "Higher L1 Asc.");
    }
}
