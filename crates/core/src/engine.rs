//! The job engine: deduplicated, parallel execution of simulation jobs.
//!
//! Every paper artifact (Table 2/3, Figures 4–9, the sweeps, the
//! ablations) reduces to a *set* of independent simulations. A [`SimJob`]
//! names one of them — `(benchmark, scale, machine, assist, version,
//! compiler config)` — and a [`JobEngine`] executes a job set:
//!
//! 1. **Dedup.** Jobs are normalized to their *execution identity*: the
//!    prepared program (raw, optimized, or selectively marked), the
//!    machine, the assist actually attached for the version, and the
//!    assist's initial state. Two jobs with the same identity are simulated
//!    once — e.g. the `Base` run a bypass suite and a victim suite both
//!    need, or the `Base` runs the four improvement computations share.
//! 2. **Prepare once.** Each distinct `(benchmark, scale, preparation,
//!    opt-config)` program is built and compiled exactly once, shared by
//!    all jobs that execute it.
//! 3. **Execute in parallel.** Unique jobs run on the engine's shared
//!    [`Executor`](crate::Executor) budget (self-scheduling workers claim
//!    the next unstarted job, so long simulations never serialize behind
//!    short ones). Sampled jobs fan their representative intervals out
//!    over the *same* budget — one global thread cap covers both levels.
//!    `threads == 1` runs inline with no pool at all.
//! 4. **Reassemble deterministically.** Results come back in submission
//!    order. Every simulation is itself deterministic, so output is
//!    bit-identical for every thread count.
//!
//! ```
//! use selcache_core::{JobEngine, MachineConfig, SimJob, Version};
//! use selcache_mem::AssistKind;
//! use selcache_workloads::{Benchmark, Scale};
//!
//! let engine = JobEngine::new(2);
//! let machine = MachineConfig::base();
//! let jobs = vec![
//!     SimJob::new(Benchmark::Adi, Scale::Tiny, machine.clone(), AssistKind::Bypass, Version::Base),
//!     SimJob::new(Benchmark::Adi, Scale::Tiny, machine, AssistKind::Bypass, Version::Selective),
//! ];
//! let results = engine.run(&jobs);
//! assert!(results[1].improvement_over(&results[0]) > 0.0);
//! ```

use crate::config::MachineConfig;
use crate::executor::Executor;
use crate::identity::{Canon, CanonWriter, JobId};
use crate::runner::{default_opt, simulate, simulate_profiled, SimResult, Version};
use crate::sampled::{simulate_sampled, SimMode};
use crate::store::Store;
use selcache_compiler::{optimize, region_partition, selective, selective_for, OptConfig};
use selcache_ir::Program;
use selcache_mem::{AssistKind, ControllerConfig};
use selcache_workloads::{Benchmark, Scale};
use std::collections::HashMap;
use std::time::Instant;

/// One simulation request: a program source, the machine it runs on, the
/// assist under study, and the simulated version (Section 4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct SimJob {
    /// Program source.
    pub benchmark: Benchmark,
    /// Workload scale.
    pub scale: Scale,
    /// Machine under test.
    pub machine: MachineConfig,
    /// Hardware assist under study. Versions that run without the assist
    /// (`Base`, `PureSoftware`) ignore this field — the engine's dedup key
    /// does too, so such jobs unify across assist studies.
    pub assist: AssistKind,
    /// Simulated version.
    pub version: Version,
    /// Compiler configuration used to prepare the code for the
    /// software-optimized versions.
    pub opt: OptConfig,
    /// Simulation mode: exact whole-trace simulation (the default) or
    /// SimPoint-style interval sampling. Part of the execution identity —
    /// sampled and exact runs of the same job hash to distinct ids.
    pub mode: SimMode,
}

impl SimJob {
    /// A job with the compiler configuration derived from the machine
    /// (block size and L1 capacity), exactly as [`crate::Experiment::new`]
    /// derives it.
    pub fn new(
        benchmark: Benchmark,
        scale: Scale,
        machine: MachineConfig,
        assist: AssistKind,
        version: Version,
    ) -> SimJob {
        let opt = default_opt(&machine);
        SimJob { benchmark, scale, machine, assist, version, opt, mode: SimMode::Exact }
    }

    /// Replaces the compiler configuration.
    pub fn with_opt(mut self, opt: OptConfig) -> SimJob {
        self.opt = opt;
        self
    }

    /// Replaces the simulation mode.
    pub fn with_mode(mut self, mode: SimMode) -> SimJob {
        self.mode = mode;
        self
    }

    /// Attaches the online assist controller to the job's machine. A
    /// [`Version::Selective`] job then prepares its program with
    /// [`selcache_compiler::AssistPolicy::Dynamic`] (every region marked
    /// ON) and the hardware picks {off, bypass, victim} per region at run
    /// time; the `assist` field still selects any additional static
    /// stream assist. Part of the execution identity — dynamic and static
    /// runs of the same job hash to distinct ids.
    pub fn with_controller(mut self, ctl: ControllerConfig) -> SimJob {
        self.machine.mem.controller = Some(ctl);
        self
    }

    /// The job's stable 128-bit execution-identity hash: the engine's
    /// dedup key, the [`Store`] address, and the `job_id` echoed in
    /// results and reports. Two jobs share an id exactly when
    /// [`SimJob::same_execution`] holds.
    pub fn job_id(&self) -> JobId {
        JobId::of_bytes(&ExecKey::of(self).canonical_bytes())
    }

    /// Structural execution-identity equality: whether the engine would
    /// answer both jobs from one simulation (same prepared program,
    /// machine, effective assist, and initial assist state).
    pub fn same_execution(&self, other: &SimJob) -> bool {
        ExecKey::of(self) == ExecKey::of(other)
    }
}

/// How a version's code is prepared (Section 4.4's software flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PrepKind {
    /// Unmodified source (`Base`, `PureHardware`).
    Raw,
    /// Locality-optimized (`PureSoftware`, `Combined`).
    Optimized,
    /// Locality-optimized plus ON/OFF markers (`Selective`).
    Selective,
    /// Locality-optimized with every region marked ON for the run-time
    /// controller (`Selective` on a machine with a
    /// [`ControllerConfig`] attached).
    Dynamic,
}

impl Version {
    fn prep_kind(self) -> PrepKind {
        match self {
            Version::Base | Version::PureHardware => PrepKind::Raw,
            Version::PureSoftware | Version::Combined => PrepKind::Optimized,
            Version::Selective => PrepKind::Selective,
        }
    }

    /// The assist actually attached to the hierarchy for this version under
    /// `assist`-study experiments.
    pub(crate) fn effective_assist(self, assist: AssistKind) -> AssistKind {
        match self {
            Version::Base | Version::PureSoftware => AssistKind::None,
            _ => assist,
        }
    }

    /// Whether the assist flag starts enabled. The selective version starts
    /// *off* (code is assumed software-optimized until an ON instruction
    /// runs); the always-on versions start on.
    pub(crate) fn initially_enabled(self) -> bool {
        !matches!(self, Version::Selective)
    }
}

/// Identity of a prepared program: the source, the preparation, and (for
/// compiler-prepared versions only) the compiler configuration.
#[derive(Debug, Clone, PartialEq)]
struct ProgramKey {
    benchmark: Benchmark,
    scale: Scale,
    prep: PrepKind,
    /// `None` for [`PrepKind::Raw`] — raw code does not depend on the
    /// compiler configuration, so raw jobs unify across opt configs.
    opt: Option<OptConfig>,
}

impl ProgramKey {
    fn of(job: &SimJob) -> ProgramKey {
        let mut prep = job.version.prep_kind();
        if prep == PrepKind::Selective && job.machine.mem.controller.is_some() {
            prep = PrepKind::Dynamic;
        }
        ProgramKey {
            benchmark: job.benchmark,
            scale: job.scale,
            prep,
            opt: match prep {
                PrepKind::Raw => None,
                _ => Some(job.opt),
            },
        }
    }

    fn build(&self) -> Program {
        let base = self.benchmark.build(self.scale);
        match (self.prep, &self.opt) {
            (PrepKind::Raw, _) => base,
            (PrepKind::Optimized, Some(opt)) => optimize(&base, opt),
            (PrepKind::Selective, Some(opt)) => selective(&base, opt),
            (PrepKind::Dynamic, Some(opt)) => {
                selective_for(&base, opt, selcache_compiler::AssistPolicy::Dynamic)
            }
            _ => unreachable!("compiler-prepared key without an opt config"),
        }
    }
}

/// A job's full execution identity: the prepared program plus everything
/// the simulator reads. Jobs with equal keys produce equal results, so the
/// engine runs each key once.
#[derive(Debug, Clone, PartialEq)]
struct ExecKey {
    program: ProgramKey,
    machine: MachineConfig,
    assist: AssistKind,
    assist_enabled: bool,
    mode: SimMode,
}

impl ExecKey {
    fn of(job: &SimJob) -> ExecKey {
        ExecKey {
            program: ProgramKey::of(job),
            machine: job.machine.clone(),
            assist: job.version.effective_assist(job.assist),
            assist_enabled: job.version.initially_enabled(),
            mode: job.mode,
        }
    }

    /// The key's canonical byte serialization: a schema-tagged, injective
    /// encoding of every field this type's `PartialEq` compares. Hashing
    /// it yields the job's [`JobId`]; the bytes themselves are echoed into
    /// store envelopes so a (vanishingly unlikely) hash collision degrades
    /// to a store miss instead of a wrong result.
    fn canonical_bytes(&self) -> Vec<u8> {
        let mut w = CanonWriter::new();
        // ProgramKey, in declaration order.
        self.program.benchmark.canon(&mut w);
        self.program.scale.canon(&mut w);
        w.u8(match self.program.prep {
            PrepKind::Raw => 0,
            PrepKind::Optimized => 1,
            PrepKind::Selective => 2,
            PrepKind::Dynamic => 3,
        });
        w.opt(&self.program.opt);
        // MachineConfig: cpu, mem, and the name (its `PartialEq` compares
        // the name too, and the old structural dedup inherited that).
        self.machine.cpu.canon(&mut w);
        self.machine.mem.canon(&mut w);
        w.str(self.machine.name);
        self.assist.canon(&mut w);
        w.bool(self.assist_enabled);
        // Simulation mode, tag + parameters (exact runs and sampled runs
        // of the same job are different results).
        match self.mode {
            SimMode::Exact => w.u8(0),
            SimMode::Sampled { interval_ops, max_intervals, warmup } => {
                w.u8(1);
                w.u64(interval_ops);
                w.usize(max_intervals);
                w.u64(warmup);
            }
        }
        w.finish()
    }
}

/// Process-wide selection-cache key for a sampled run: a stable hash of
/// the prepared-program identity plus the interval geometry. Everything
/// that executes the same prepared program with the same interval size and
/// representative budget shares one profile pass and one checkpoint set —
/// warmup length is deliberately excluded (it only affects pass 2).
pub(crate) fn selection_key(
    benchmark: Benchmark,
    scale: Scale,
    version: Version,
    opt: &OptConfig,
    dynamic: bool,
    interval_ops: u64,
    max_intervals: usize,
) -> u128 {
    let mut prep = version.prep_kind();
    if dynamic && prep == PrepKind::Selective {
        prep = PrepKind::Dynamic;
    }
    let program = ProgramKey {
        benchmark,
        scale,
        prep,
        opt: match prep {
            PrepKind::Raw => None,
            _ => Some(*opt),
        },
    };
    selection_key_of(&program, interval_ops, max_intervals)
}

fn selection_key_of(program: &ProgramKey, interval_ops: u64, max_intervals: usize) -> u128 {
    let mut w = CanonWriter::new();
    // Domain-separate from job ids so a selection key can never alias a
    // store address.
    w.str("selection-key");
    program.benchmark.canon(&mut w);
    program.scale.canon(&mut w);
    w.u8(match program.prep {
        PrepKind::Raw => 0,
        PrepKind::Optimized => 1,
        PrepKind::Selective => 2,
        PrepKind::Dynamic => 3,
    });
    w.opt(&program.opt);
    w.u64(interval_ops);
    w.usize(max_intervals);
    JobId::of_bytes(&w.finish()).as_u128()
}

/// A normalized job set: the dedup work [`JobEngine`] does before any
/// simulation starts, shared by execution and [`JobEngine::dry_run`].
struct ExecPlan {
    /// Distinct execution identities, in first-appearance order.
    unique: Vec<ExecKey>,
    /// For each submitted job, the index of its identity in `unique`.
    slot: Vec<usize>,
    /// For each unique identity, its canonical byte serialization (the
    /// hash preimage, echoed into store envelopes).
    identities: Vec<Vec<u8>>,
    /// For each unique identity, its stable 128-bit id.
    ids: Vec<JobId>,
    /// Distinct programs to prepare, in first-appearance order.
    prog_keys: Vec<ProgramKey>,
    /// For each unique identity, the index of its program in `prog_keys`.
    prog_of: Vec<usize>,
}

impl ExecPlan {
    fn of(jobs: &[SimJob]) -> ExecPlan {
        // Normalize and deduplicate on the canonical-identity hash. The
        // hash doubles as the on-disk store address, so dedup and the
        // persistent cache agree by construction; the debug assert (and
        // the identity-agreement property test) pin the hash to the
        // structural equality it replaced.
        let mut by_id: HashMap<u128, usize> = HashMap::with_capacity(jobs.len());
        let mut unique: Vec<ExecKey> = Vec::new();
        let mut identities: Vec<Vec<u8>> = Vec::new();
        let mut ids: Vec<JobId> = Vec::new();
        let mut slot: Vec<usize> = Vec::with_capacity(jobs.len());
        for job in jobs {
            let key = ExecKey::of(job);
            let bytes = key.canonical_bytes();
            let id = JobId::of_bytes(&bytes);
            match by_id.get(&id.as_u128()) {
                Some(&k) => {
                    debug_assert_eq!(unique[k], key, "hash dedup must agree with structural dedup");
                    slot.push(k);
                }
                None => {
                    by_id.insert(id.as_u128(), unique.len());
                    slot.push(unique.len());
                    unique.push(key);
                    identities.push(bytes);
                    ids.push(id);
                }
            }
        }
        let mut prog_keys: Vec<ProgramKey> = Vec::new();
        let prog_of: Vec<usize> = unique
            .iter()
            .map(|key| match prog_keys.iter().position(|p| *p == key.program) {
                Some(k) => k,
                None => {
                    prog_keys.push(key.program.clone());
                    prog_keys.len() - 1
                }
            })
            .collect();
        ExecPlan { unique, slot, identities, ids, prog_keys, prog_of }
    }
}

/// Counters describing what one [`JobEngine::run_with_stats`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs submitted.
    pub submitted: usize,
    /// Simulations actually executed (unique identities minus store hits —
    /// a fully warm store runs zero).
    pub executed: usize,
    /// Jobs answered from another job's execution in the same set.
    pub dedup_hits: usize,
    /// Distinct programs built and compiled.
    pub programs_prepared: usize,
    /// Unique identities answered from the persistent result store
    /// (always 0 without a store).
    pub store_hits: usize,
    /// Unique identities the store was consulted for and did not have
    /// (always 0 without a store).
    pub store_misses: usize,
    /// Bytes of new store entries written by this run.
    pub bytes_written: u64,
    /// Worker threads the engine was configured with.
    pub threads: usize,
}

/// Executes [`SimJob`] sets with deduplication on a shared-budget
/// [`Executor`], optionally backed by a persistent [`Store`].
///
/// Results are returned in submission order and are bit-identical for
/// every thread count and any store state (each simulation is
/// deterministic, jobs share no mutable state, and stored results echo
/// the simulation that produced them exactly).
///
/// The engine's thread budget is *global*: job-level fan-out and the
/// interval-level fan-out inside each [`SimMode::Sampled`] job lease
/// workers from the same pool, so a single sampled job spreads its
/// representative intervals across every configured thread while a full
/// suite parallelizes across jobs first and lets long sampled jobs steal
/// workers their finished siblings release.
#[derive(Debug, Clone)]
pub struct JobEngine {
    executor: Executor,
    store: Option<Store>,
}

impl PartialEq for JobEngine {
    /// Engines compare by configuration (thread budget and store), not by
    /// pool identity — two `JobEngine::new(4)` instances are equal even
    /// though they lease from distinct budgets.
    fn eq(&self, other: &JobEngine) -> bool {
        self.threads() == other.threads() && self.store == other.store
    }
}

impl Eq for JobEngine {}

impl JobEngine {
    /// An engine with a thread budget of `threads`. `threads == 1` executes
    /// inline on the calling thread (exactly the historical serial
    /// behavior); `threads == 0` is promoted to
    /// [`JobEngine::default_parallelism`].
    pub fn new(threads: usize) -> JobEngine {
        JobEngine { executor: Executor::new(threads), store: None }
    }

    /// An engine running on an existing [`Executor`], sharing its thread
    /// budget with whatever else uses that executor (other engines, direct
    /// [`Experiment`](crate::Experiment) runs) instead of adding a pool.
    pub fn with_executor(executor: Executor) -> JobEngine {
        JobEngine { executor, store: None }
    }

    /// An engine backed by a persistent result store: unique identities
    /// already in the store are answered without simulating (or even
    /// preparing their programs), and everything newly simulated is
    /// written back. Output is byte-identical to a store-less engine.
    pub fn with_store(threads: usize, store: Store) -> JobEngine {
        let mut engine = JobEngine::new(threads);
        engine.store = Some(store);
        engine
    }

    /// The attached result store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// A single-threaded engine.
    pub fn serial() -> JobEngine {
        JobEngine { executor: Executor::serial(), store: None }
    }

    /// The machine's available parallelism (1 if it cannot be queried).
    pub fn default_parallelism() -> usize {
        Executor::default_parallelism()
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// The engine's executor — the shared thread budget every fan-out in
    /// this engine (jobs, program preparation, sampled intervals) leases
    /// workers from. Clone it to make other work share the same budget.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Runs a job set; `results[k]` answers `jobs[k]`.
    pub fn run(&self, jobs: &[SimJob]) -> Vec<SimResult> {
        self.run_with_stats(jobs).0
    }

    /// Runs a job set with region profiling: every result carries a
    /// populated `regions` profile, attributed with the partition derived
    /// from each job's compiler configuration (raw programs use the default
    /// threshold). Dedup and ordering behave exactly like [`JobEngine::run`].
    /// Jobs in [`SimMode::Sampled`] still run sampled and return without
    /// regions — per-region attribution requires exact execution.
    pub fn run_profiled(&self, jobs: &[SimJob]) -> Vec<SimResult> {
        self.execute(jobs, true).0
    }

    /// Runs a job set and reports dedup/executions counters.
    pub fn run_with_stats(&self, jobs: &[SimJob]) -> (Vec<SimResult>, EngineStats) {
        self.execute(jobs, false)
    }

    /// Like [`JobEngine::run_profiled`], additionally reporting the same
    /// counters as [`JobEngine::run_with_stats`].
    pub fn run_profiled_with_stats(&self, jobs: &[SimJob]) -> (Vec<SimResult>, EngineStats) {
        self.execute(jobs, true)
    }

    /// Normalizes a job set without executing anything: the counters
    /// [`JobEngine::run_with_stats`] would report on a cold (or absent)
    /// store — how many unique simulations and distinct prepared programs
    /// the set needs. The store is not consulted.
    pub fn dry_run(&self, jobs: &[SimJob]) -> EngineStats {
        let plan = ExecPlan::of(jobs);
        EngineStats {
            submitted: jobs.len(),
            executed: plan.unique.len(),
            dedup_hits: jobs.len() - plan.unique.len(),
            programs_prepared: plan.prog_keys.len(),
            threads: self.threads(),
            ..EngineStats::default()
        }
    }

    fn execute(&self, jobs: &[SimJob], profiled: bool) -> (Vec<SimResult>, EngineStats) {
        let ExecPlan { unique, slot, identities, ids, prog_keys, prog_of } = ExecPlan::of(jobs);

        // Consult the store first: a hit answers the identity without
        // preparing or simulating anything. Profiled runs need region
        // attribution, so region-less entries are misses (re-simulated and
        // overwritten with regions); plain runs strip any stored regions
        // so output stays byte-identical with the store-less engine.
        let mut cached: Vec<Option<SimResult>> = Vec::with_capacity(unique.len());
        if let Some(store) = &self.store {
            for k in 0..unique.len() {
                // Sampled results never carry regions, so a profiled run
                // accepts them as-is rather than re-simulating forever.
                let needs_regions = profiled && !unique[k].mode.is_sampled();
                cached.push(store.get(ids[k], &identities[k]).and_then(|mut r| {
                    if needs_regions && r.regions.is_none() {
                        return None;
                    }
                    if !profiled {
                        r.regions = None;
                    }
                    Some(r)
                }));
            }
        } else {
            cached.resize_with(unique.len(), || None);
        }
        let store_hits = cached.iter().filter(|c| c.is_some()).count();

        // Prepare only the programs that store-missing identities execute
        // (a fully warm store prepares none).
        let needed: Vec<usize> = (0..unique.len()).filter(|&k| cached[k].is_none()).collect();
        let mut prog_needed = vec![false; prog_keys.len()];
        for &k in &needed {
            prog_needed[prog_of[k]] = true;
        }
        let to_build: Vec<usize> = (0..prog_keys.len()).filter(|&p| prog_needed[p]).collect();
        let built = self.executor.map(&to_build, |&p| prog_keys[p].build());
        let mut programs: Vec<Option<Program>> = (0..prog_keys.len()).map(|_| None).collect();
        for (&p, program) in to_build.iter().zip(built) {
            programs[p] = Some(program);
        }

        // Execute each store-missing unique job once, in parallel, timing
        // every simulation for the store's envelope metadata. Sampled jobs
        // receive the engine's executor so their per-representative
        // fan-out leases from the same budget as the job-level fan-out.
        let simulated = self.executor.map(&needed, |&k| {
            let key = &unique[k];
            let program = programs[prog_of[k]].as_ref().expect("prepared above");
            let start = Instant::now();
            let result = match key.mode {
                SimMode::Sampled { interval_ops, max_intervals, warmup } => {
                    let skey = selection_key_of(&key.program, interval_ops, max_intervals);
                    simulate_sampled(
                        &key.machine,
                        key.assist,
                        key.assist_enabled,
                        program,
                        interval_ops,
                        max_intervals,
                        warmup,
                        Some(skey),
                        &self.executor,
                    )
                }
                // Dynamic (controller-attached) jobs always run with the
                // region partition attached, profiled or not: the
                // controller's per-region decisions need region identities,
                // so a dynamic run without regions would be a *different*
                // simulation. Non-profiled callers get the regions stripped
                // after the store write below.
                SimMode::Exact if profiled || key.machine.mem.controller.is_some() => {
                    let threshold = key
                        .program
                        .opt
                        .as_ref()
                        .map(|o| o.threshold)
                        .unwrap_or_else(|| OptConfig::default().threshold);
                    let map = region_partition(program, threshold);
                    simulate_profiled(&key.machine, key.assist, key.assist_enabled, program, &map)
                }
                SimMode::Exact => simulate(&key.machine, key.assist, key.assist_enabled, program),
            };
            (result, start.elapsed().as_secs_f64() * 1e3)
        });

        // Publish fresh results to the store and fill the remaining slots.
        // A failed put (disk full, permissions) loses only persistence —
        // the in-memory result is still returned.
        let executed = needed.len();
        let mut bytes_written = 0u64;
        let mut per_unique = cached;
        for (&k, (mut result, wall_ms)) in needed.iter().zip(simulated) {
            if let Some(store) = &self.store {
                if let Ok(bytes) = store.put(ids[k], &identities[k], &result, wall_ms) {
                    bytes_written += bytes;
                }
            }
            // Dynamic jobs simulate with regions attached even on plain
            // runs; persist the profile (so a later profiled run hits the
            // store) but return the result region-less, keeping plain-run
            // output byte-identical between cold and warm stores.
            if !profiled {
                result.regions = None;
            }
            per_unique[k] = Some(result);
        }
        let mut results: Vec<SimResult> =
            per_unique.into_iter().map(|r| r.expect("every identity answered")).collect();
        for (result, &id) in results.iter_mut().zip(&ids) {
            result.job_id = Some(id);
        }

        let stats = EngineStats {
            submitted: jobs.len(),
            executed,
            dedup_hits: jobs.len() - unique.len(),
            programs_prepared: to_build.len(),
            store_hits,
            store_misses: if self.store.is_some() { executed } else { 0 },
            bytes_written,
            threads: self.threads(),
        };
        (slot.into_iter().map(|k| results[k].clone()).collect(), stats)
    }
}

impl Default for JobEngine {
    /// An engine sized to [`JobEngine::default_parallelism`].
    fn default() -> JobEngine {
        JobEngine::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite_jobs(assist: AssistKind) -> Vec<SimJob> {
        let machine = MachineConfig::base();
        let mut jobs = Vec::new();
        for version in
            [Version::Base, Version::PureHardware, Version::PureSoftware, Version::Selective]
        {
            jobs.push(SimJob::new(Benchmark::Adi, Scale::Tiny, machine.clone(), assist, version));
        }
        jobs
    }

    #[test]
    fn duplicate_jobs_execute_once() {
        let mut jobs = suite_jobs(AssistKind::Bypass);
        jobs.extend(suite_jobs(AssistKind::Bypass));
        let (results, stats) = JobEngine::serial().run_with_stats(&jobs);
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.executed, 4);
        assert_eq!(stats.dedup_hits, 4);
        assert_eq!(results[0], results[4]);
        assert_eq!(results[3], results[7]);
    }

    #[test]
    fn assist_free_versions_unify_across_assists() {
        let mut jobs = suite_jobs(AssistKind::Bypass);
        jobs.extend(suite_jobs(AssistKind::Victim));
        let (results, stats) = JobEngine::new(2).run_with_stats(&jobs);
        // Base and PureSoftware are assist-free: one execution each.
        // PureHardware and Selective differ per assist: two each.
        assert_eq!(stats.executed, 6);
        assert_eq!(stats.dedup_hits, 2);
        assert_eq!(results[0], results[4], "Base shared across assists");
        assert_eq!(results[2], results[6], "PureSoftware shared across assists");
        assert_ne!(results[1], results[5], "PureHardware differs per assist");
    }

    #[test]
    fn raw_versions_share_programs_across_opt_configs() {
        let machine = MachineConfig::base();
        let mut loose = default_opt(&machine);
        loose.threshold = 0.9;
        let jobs = vec![
            SimJob::new(
                Benchmark::Li,
                Scale::Tiny,
                machine.clone(),
                AssistKind::Bypass,
                Version::Base,
            ),
            SimJob::new(Benchmark::Li, Scale::Tiny, machine, AssistKind::Bypass, Version::Base)
                .with_opt(loose),
        ];
        let (results, stats) = JobEngine::serial().run_with_stats(&jobs);
        assert_eq!(stats.executed, 1, "raw code ignores the opt config");
        assert_eq!(stats.programs_prepared, 1);
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn parallel_results_match_serial_in_submission_order() {
        let mut jobs = suite_jobs(AssistKind::Bypass);
        jobs.extend(suite_jobs(AssistKind::Victim));
        let serial = JobEngine::serial().run(&jobs);
        let parallel = JobEngine::new(4).run(&jobs);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn profiled_runs_match_plain_aggregates() {
        let jobs = suite_jobs(AssistKind::Bypass);
        let plain = JobEngine::new(2).run(&jobs);
        let profiled = JobEngine::new(2).run_profiled(&jobs);
        for (p, q) in plain.iter().zip(&profiled) {
            assert_eq!(p.cycles, q.cycles, "profiling must not perturb results");
            assert_eq!(p.cpu, q.cpu);
            assert_eq!(p.mem, q.mem);
            let total = q.regions.as_ref().expect("profiled run").total();
            assert_eq!(total.cycles, q.cycles);
            assert_eq!(total.committed, q.instructions);
        }
    }

    #[test]
    fn sampled_mode_is_part_of_the_identity() {
        let exact = SimJob::new(
            Benchmark::Vpenta,
            Scale::Small,
            MachineConfig::base(),
            AssistKind::None,
            Version::Base,
        );
        let sampled = exact.clone().with_mode(SimMode::Sampled {
            interval_ops: 4096,
            max_intervals: 4,
            warmup: 1024,
        });
        assert_ne!(exact.job_id(), sampled.job_id(), "mode must split the identity");
        assert!(!exact.same_execution(&sampled));
        // Different sampling parameters are different identities too.
        let wider = exact.clone().with_mode(SimMode::Sampled {
            interval_ops: 8192,
            max_intervals: 4,
            warmup: 1024,
        });
        assert_ne!(sampled.job_id(), wider.job_id());
    }

    #[test]
    fn sampled_results_are_thread_count_invariant() {
        let machine = MachineConfig::base();
        let mode = SimMode::Sampled { interval_ops: 4096, max_intervals: 4, warmup: 1024 };
        let jobs: Vec<SimJob> = [Version::Base, Version::PureHardware, Version::Selective]
            .into_iter()
            .map(|v| {
                SimJob::new(Benchmark::Vpenta, Scale::Small, machine.clone(), AssistKind::Bypass, v)
                    .with_mode(mode)
            })
            .collect();
        let serial = JobEngine::serial().run(&jobs);
        let parallel = JobEngine::new(4).run(&jobs);
        assert_eq!(serial, parallel, "sampled results must be bit-identical across threads");
        assert!(serial.iter().all(|r| r.sampled.is_some()));
    }

    #[test]
    fn controller_splits_the_identity() {
        let base = SimJob::new(
            Benchmark::Adi,
            Scale::Tiny,
            MachineConfig::base(),
            AssistKind::None,
            Version::Selective,
        );
        let dynamic = base.clone().with_controller(ControllerConfig::default());
        assert_ne!(base.job_id(), dynamic.job_id(), "controller must split the identity");
        assert!(!base.same_execution(&dynamic));
        // Different controller parameters are different identities too.
        let tuned = ControllerConfig { interval_accesses: 128, ..ControllerConfig::default() };
        assert_ne!(dynamic.job_id(), base.with_controller(tuned).job_id());
    }

    #[test]
    fn dynamic_jobs_are_thread_invariant_and_region_less_when_plain() {
        let machine = MachineConfig::base();
        let ctl = ControllerConfig { interval_accesses: 128, ..ControllerConfig::default() };
        let jobs: Vec<SimJob> = [Benchmark::Adi, Benchmark::Li]
            .into_iter()
            .map(|b| {
                SimJob::new(b, Scale::Tiny, machine.clone(), AssistKind::None, Version::Selective)
                    .with_controller(ctl)
            })
            .collect();
        let serial = JobEngine::serial().run(&jobs);
        let parallel = JobEngine::new(4).run(&jobs);
        assert_eq!(serial, parallel, "dynamic results must be bit-identical across threads");
        assert!(serial.iter().all(|r| r.regions.is_none()), "plain runs stay region-less");
        // Profiled runs of the same jobs attach the per-region profile
        // without perturbing the aggregate counters.
        let profiled = JobEngine::new(2).run_profiled(&jobs);
        for (p, q) in serial.iter().zip(&profiled) {
            assert_eq!(p.cycles, q.cycles, "profiling must not perturb dynamic results");
            assert!(q.regions.is_some());
        }
    }

    #[test]
    fn zero_threads_promotes_to_available_parallelism() {
        assert_eq!(JobEngine::new(0).threads(), JobEngine::default_parallelism());
        assert_eq!(JobEngine::serial().threads(), 1);
        assert!(JobEngine::default().threads() >= 1);
    }

    #[test]
    fn empty_job_set_is_fine() {
        let (results, stats) = JobEngine::default().run_with_stats(&[]);
        assert!(results.is_empty());
        assert_eq!(stats, EngineStats { threads: stats.threads, ..EngineStats::default() });
    }
}
