//! A reusable self-scheduling executor with a shared thread budget.
//!
//! Every parallel surface in the framework has the same shape: a slice of
//! independent work items, a pure function per item, and a result vector
//! that must come back in *slot order* so output is bit-identical at every
//! thread count. [`Executor::map`] is that shape, extracted from the
//! [`JobEngine`](crate::JobEngine)'s original inline pool so job-level
//! execution and interval-level sampled simulation can share it.
//!
//! # Budget sharing
//!
//! The executor is cheap to clone; clones share one *budget* — a global
//! cap on worker threads leased across every concurrent [`Executor::map`]
//! call. Callers always participate in their own map (a lease of zero
//! degrades to inline execution, never deadlock), and each leased worker
//! returns its permit the moment it runs out of work. Nested maps draw
//! from the same pool:
//!
//! - **Single sampled job.** The job-level map has one item, so it leases
//!   nothing; the interval-level map inside the job finds the whole budget
//!   free and fans representatives out across every thread.
//! - **Full suite.** The job-level map leases the budget first; inner
//!   interval maps start inline. As jobs drain and their workers release
//!   permits, still-running maps *steal* them — each participant re-leases
//!   opportunistically after every item it finishes — so a long sampled
//!   job inherits the pool its finished siblings vacated instead of the
//!   two levels oversubscribing the machine.
//!
//! # Determinism
//!
//! Work item `k` is claimed by exactly one participant (a shared atomic
//! cursor), computed by a caller-supplied `Fn(&T) -> R`, and written to
//! slot `k` of the output. Which thread computes an item is racy; *what*
//! it computes and *where* it lands are not, so `map` returns the same
//! vector as `items.iter().map(f).collect()` for every thread count and
//! every interleaving — the property the engine's thread-invariance tests
//! pin end to end.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

/// The shared lease pool: how many extra worker threads may exist beyond
/// the callers themselves, across every map running on this budget.
#[derive(Debug)]
struct Budget {
    /// Total thread budget, counting the calling thread.
    threads: usize,
    /// Worker threads currently leased by in-flight maps.
    leased: AtomicUsize,
}

impl Budget {
    /// Tries to lease up to `want` workers; returns how many were granted
    /// (possibly zero). The cap is `threads - 1`: the calling thread always
    /// works for free, so a budget of N yields at most N concurrent
    /// threads per top-level caller.
    fn lease(&self, want: usize) -> usize {
        let cap = self.threads.saturating_sub(1);
        let mut granted = 0;
        let _ = self.leased.fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
            granted = want.min(cap.saturating_sub(cur));
            if granted == 0 {
                None
            } else {
                Some(cur + granted)
            }
        });
        granted
    }

    fn release(&self, n: usize) {
        self.leased.fetch_sub(n, Ordering::AcqRel);
    }
}

/// A handle to a shared thread budget (see the module-level docs above
/// for the budget-sharing and determinism arguments).
///
/// Clones share the budget, so handing a clone (or a reference) to nested
/// work keeps the whole process inside one global thread cap.
#[derive(Debug, Clone)]
pub struct Executor {
    budget: Arc<Budget>,
}

impl Executor {
    /// An executor with a budget of `threads` (the calling thread plus up
    /// to `threads - 1` leased workers). `threads == 0` is promoted to
    /// [`Executor::default_parallelism`]; `threads == 1` makes every map
    /// run inline on the caller, exactly the historical serial behavior.
    pub fn new(threads: usize) -> Executor {
        let threads = if threads == 0 { Self::default_parallelism() } else { threads };
        Executor { budget: Arc::new(Budget { threads, leased: AtomicUsize::new(0) }) }
    }

    /// A strictly serial executor (budget of one).
    pub fn serial() -> Executor {
        Executor::new(1)
    }

    /// The machine's available parallelism (1 if it cannot be queried).
    pub fn default_parallelism() -> usize {
        thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.budget.threads
    }

    /// Worker threads currently leased from this budget (a point-in-time
    /// observation; useful for saturation reporting, not for control flow).
    pub fn leased(&self) -> usize {
        self.budget.leased.load(Ordering::Acquire)
    }

    /// Applies `f` to every item, fanning out across leased workers, and
    /// returns the results in item order regardless of completion order.
    ///
    /// The caller participates; workers are leased from the shared budget
    /// up front and re-leased opportunistically after every caller-computed
    /// item, so a map that started inline (budget exhausted by siblings)
    /// picks up threads as they free. See the module docs for the
    /// determinism argument.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        if n <= 1 || self.budget.threads <= 1 {
            return items.iter().map(f).collect();
        }
        // A zero grant is fine: the caller-participation loop below re-leases
        // after every item, so a map that starts inline still picks up
        // workers the moment sibling maps release them.
        let initial = self.budget.lease(n - 1);
        let next = AtomicUsize::new(0);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        thread::scope(|scope| {
            let budget = &*self.budget;
            let next = &next;
            let f = &f;
            // A leased worker: claim indexed items until none remain, then
            // return the permit so sibling maps can steal it.
            let worker = |tx: mpsc::Sender<(usize, R)>| {
                move || {
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= n || tx.send((k, f(&items[k]))).is_err() {
                            break;
                        }
                    }
                    budget.release(1);
                }
            };
            for _ in 0..initial {
                scope.spawn(worker(tx.clone()));
            }
            // The caller works too, growing the pool whenever budget frees
            // up while unclaimed items remain.
            loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                out[k] = Some(f(&items[k]));
                if next.load(Ordering::Relaxed) < n && budget.lease(1) == 1 {
                    scope.spawn(worker(tx.clone()));
                }
            }
            drop(tx);
            for (k, r) in rx {
                out[k] = Some(r);
            }
        });
        out.into_iter().map(|r| r.expect("every item produced a result")).collect()
    }
}

impl Default for Executor {
    /// An executor sized to [`Executor::default_parallelism`].
    fn default() -> Executor {
        Executor::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 16] {
            let ex = Executor::new(threads);
            assert_eq!(ex.map(&items, |&x| x * x), expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_degenerate_inputs() {
        let ex = Executor::new(4);
        assert_eq!(ex.map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(ex.map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_promotes_to_available_parallelism() {
        assert_eq!(Executor::new(0).threads(), Executor::default_parallelism());
        assert_eq!(Executor::serial().threads(), 1);
        assert!(Executor::default().threads() >= 1);
    }

    #[test]
    fn nested_maps_share_one_budget() {
        // An outer map over 4 items, each running an inner map over 8, on a
        // budget of 3: total leased workers must never exceed 2 (budget
        // minus the caller), no matter how the levels interleave.
        let ex = Executor::new(3);
        let peak = AtomicU64::new(0);
        let outer: Vec<usize> = (0..4).collect();
        let sums = ex.map(&outer, |&o| {
            let inner: Vec<u64> = (0..8).map(|i| (o as u64) * 8 + i).collect();
            let inner_sums = ex.map(&inner, |&x| {
                let leased = ex.leased() as u64;
                peak.fetch_max(leased, Ordering::Relaxed);
                x
            });
            inner_sums.iter().sum::<u64>()
        });
        assert_eq!(sums.iter().sum::<u64>(), (0..32).sum());
        assert!(peak.load(Ordering::Relaxed) <= 2, "leased beyond the budget");
    }

    #[test]
    fn leases_drain_back_to_zero() {
        let ex = Executor::new(8);
        let items: Vec<u64> = (0..100).collect();
        let total: u64 = ex.map(&items, |&x| x).iter().sum();
        assert_eq!(total, 4950);
        assert_eq!(ex.leased(), 0, "all permits must be returned");
    }

    #[test]
    fn clones_share_the_budget() {
        let a = Executor::new(5);
        let b = a.clone();
        assert_eq!(b.threads(), 5);
        assert!(Arc::ptr_eq(&a.budget, &b.budget));
    }
}
