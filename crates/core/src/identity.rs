//! Canonical execution-identity serialization and stable 128-bit job ids.
//!
//! The engine's dedup key — a job's full *execution identity* (prepared
//! program, machine, effective assist, initial assist state) — is
//! serialized to a canonical byte string and hashed with SipHash-2-4
//! (128-bit output, fixed keys). The resulting [`JobId`] is stable across
//! processes and platforms, so it serves three roles at once:
//!
//! 1. the in-process dedup key (replacing the old linear-scan identity
//!    maps),
//! 2. the on-disk address of a [`Store`](crate::Store) entry, and
//! 3. the `job_id` field reports and the `selcached` protocol expose.
//!
//! The canonical encoding is versioned (it starts with a schema tag) and
//! mirrors the structural `PartialEq` of the identity exactly: every field
//! compared by equality is written, in declaration order, with fixed-width
//! little-endian encodings and length-prefixed strings. Floats are written
//! as IEEE bits with `-0.0` normalized to `+0.0` so the encoding agrees
//! with `==`. A property test (`tests/identity_props.rs` at the workspace
//! root of `selcache-core`) pins the agreement between hash identity and
//! structural identity over arbitrary job sets.

use selcache_compiler::OptConfig;
use selcache_cpu::{CpuConfig, CpuModel, PredictorKind};
use selcache_mem::{
    AssistKind, BypassConfig, CacheConfig, ControllerConfig, HierarchyConfig, Replacement,
    StreamConfig, TlbConfig,
};
use selcache_workloads::{Benchmark, Scale};
use std::fmt;
use std::str::FromStr;

/// Schema tag leading every canonical identity encoding. Bump the suffix
/// whenever the encoding changes shape — stored results keyed by the old
/// encoding then become clean misses instead of silent aliases.
pub const IDENTITY_SCHEMA: &str = "selcache-exec/3";

/// A stable 128-bit content hash of one execution identity.
///
/// Displays as 32 lowercase hex digits; parses back with [`FromStr`].
///
/// ```
/// use selcache_core::JobId;
///
/// let id: JobId = "000000000000000000000000000002a5".parse().unwrap();
/// assert_eq!(id.as_u128(), 0x2a5);
/// assert_eq!(id.to_string().len(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u128);

impl JobId {
    /// The id of a canonical identity byte string.
    pub fn of_bytes(canonical: &[u8]) -> JobId {
        JobId(siphash_2_4_128(SIP_KEY_0, SIP_KEY_1, canonical))
    }

    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Constructs an id from a raw value (useful for tests and tools that
    /// read ids back out of reports).
    pub fn from_u128(v: u128) -> JobId {
        JobId(v)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Failed to parse a [`JobId`] from hex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJobIdError;

impl fmt::Display for ParseJobIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("job ids are 1..=32 hex digits")
    }
}

impl std::error::Error for ParseJobIdError {}

impl FromStr for JobId {
    type Err = ParseJobIdError;

    fn from_str(s: &str) -> Result<JobId, ParseJobIdError> {
        if s.is_empty() || s.len() > 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(ParseJobIdError);
        }
        u128::from_str_radix(s, 16).map(JobId).map_err(|_| ParseJobIdError)
    }
}

/// Renders bytes as lowercase hex (the identity echo stored in result
/// envelopes).
pub(crate) fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = fmt::Write::write_fmt(&mut s, format_args!("{b:02x}"));
    }
    s
}

// Fixed SipHash keys: arbitrary but permanent. Changing them (like
// changing the encoding) re-keys every store.
const SIP_KEY_0: u64 = 0x7365_6c63_6163_6865; // "selcache"
const SIP_KEY_1: u64 = 0x6578_6563_2d69_6431; // "exec-id1"

/// SipHash-2-4 with 128-bit output (the reference `siphash128` variant).
fn siphash_2_4_128(k0: u64, k1: u64, data: &[u8]) -> u128 {
    #[inline]
    fn round(v: &mut [u64; 4]) {
        v[0] = v[0].wrapping_add(v[1]);
        v[1] = v[1].rotate_left(13);
        v[1] ^= v[0];
        v[0] = v[0].rotate_left(32);
        v[2] = v[2].wrapping_add(v[3]);
        v[3] = v[3].rotate_left(16);
        v[3] ^= v[2];
        v[0] = v[0].wrapping_add(v[3]);
        v[3] = v[3].rotate_left(21);
        v[3] ^= v[0];
        v[2] = v[2].wrapping_add(v[1]);
        v[1] = v[1].rotate_left(17);
        v[1] ^= v[2];
        v[2] = v[2].rotate_left(32);
    }

    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];
    v[1] ^= 0xee; // 128-bit output domain separation

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        round(&mut v);
        round(&mut v);
        v[0] ^= m;
    }
    let rest = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rest.len()].copy_from_slice(rest);
    let mut m = u64::from_le_bytes(last);
    m |= (data.len() as u64) << 56;
    v[3] ^= m;
    round(&mut v);
    round(&mut v);
    v[0] ^= m;

    v[2] ^= 0xee;
    for _ in 0..4 {
        round(&mut v);
    }
    let lo = v[0] ^ v[1] ^ v[2] ^ v[3];
    v[1] ^= 0xdd;
    for _ in 0..4 {
        round(&mut v);
    }
    let hi = v[0] ^ v[1] ^ v[2] ^ v[3];
    (u128::from(hi) << 64) | u128::from(lo)
}

/// Canonical byte writer: fixed-width little-endian scalars, length-
/// prefixed strings. Injective as long as callers write a statically-known
/// field sequence (which the [`Canon`] impls below do).
pub(crate) struct CanonWriter {
    buf: Vec<u8>,
}

impl CanonWriter {
    pub(crate) fn new() -> CanonWriter {
        let mut w = CanonWriter { buf: Vec::with_capacity(256) };
        w.str(IDENTITY_SCHEMA);
        w
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// IEEE bits, with `-0.0` normalized to `+0.0` so the encoding agrees
    /// with `f64::eq` (the structural dedup this replaces compared floats
    /// with `==`).
    pub(crate) fn f64(&mut self, v: f64) {
        let v = if v == 0.0 { 0.0 } else { v };
        self.u64(v.to_bits());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn opt<T: Canon>(&mut self, v: &Option<T>) {
        match v {
            None => self.u8(0),
            Some(inner) => {
                self.u8(1);
                inner.canon(self);
            }
        }
    }
}

/// Canonical serialization of one identity component. Implementations
/// must write every field that participates in the type's `PartialEq`, in
/// a fixed order.
pub(crate) trait Canon {
    fn canon(&self, w: &mut CanonWriter);
}

impl Canon for Benchmark {
    fn canon(&self, w: &mut CanonWriter) {
        w.str(self.name());
    }
}

impl Canon for Scale {
    fn canon(&self, w: &mut CanonWriter) {
        w.u8(match self {
            Scale::Tiny => 0,
            Scale::Small => 1,
            Scale::Medium => 2,
            Scale::Large => 3,
        });
    }
}

impl Canon for AssistKind {
    fn canon(&self, w: &mut CanonWriter) {
        w.u8(match self {
            AssistKind::None => 0,
            AssistKind::Bypass => 1,
            AssistKind::Victim => 2,
            AssistKind::Stream => 3,
        });
    }
}

impl Canon for Replacement {
    fn canon(&self, w: &mut CanonWriter) {
        w.u8(match self {
            Replacement::Lru => 0,
            Replacement::Fifo => 1,
            Replacement::Random => 2,
            Replacement::Plru => 3,
        });
    }
}

impl Canon for PredictorKind {
    fn canon(&self, w: &mut CanonWriter) {
        w.u8(match self {
            PredictorKind::Bimodal => 0,
            PredictorKind::Gshare => 1,
        });
    }
}

impl Canon for CpuModel {
    fn canon(&self, w: &mut CanonWriter) {
        w.u8(match self {
            CpuModel::OutOfOrder => 0,
            CpuModel::InOrder => 1,
        });
    }
}

impl Canon for CpuConfig {
    fn canon(&self, w: &mut CanonWriter) {
        w.u32(self.issue_width);
        w.u32(self.fetch_width);
        w.u32(self.commit_width);
        w.u32(self.ruu_entries);
        w.u32(self.lsq_entries);
        w.u32(self.mem_ports);
        w.u32(self.int_units);
        w.u32(self.fp_units);
        w.usize(self.predictor_entries);
        self.predictor.canon(w);
        w.u64(self.mispredict_penalty);
        w.u64(self.int_latency);
        w.u64(self.fp_latency);
        w.u64(self.fetch_block);
        self.model.canon(w);
    }
}

impl Canon for CacheConfig {
    fn canon(&self, w: &mut CanonWriter) {
        w.u64(self.size);
        w.u32(self.assoc);
        w.u64(self.block_size);
        self.replacement.canon(w);
    }
}

impl Canon for TlbConfig {
    fn canon(&self, w: &mut CanonWriter) {
        w.u32(self.entries);
        w.u32(self.assoc);
        w.u64(self.page_size);
        w.u64(self.miss_penalty);
    }
}

impl Canon for BypassConfig {
    fn canon(&self, w: &mut CanonWriter) {
        w.u64(self.buffer_bytes);
        w.u64(self.block_size);
        w.usize(self.mat.entries);
        w.u64(self.mat.macro_block);
        w.u32(self.mat.max_count);
        w.u64(self.mat.decay_interval);
        w.usize(self.sldt.entries);
        w.u64(self.sldt.macro_block);
        w.u64(self.sldt.block_size);
        w.i32(self.sldt.threshold);
        w.i32(self.sldt.max);
        w.i32(self.sldt.min);
    }
}

impl Canon for StreamConfig {
    fn canon(&self, w: &mut CanonWriter) {
        w.usize(self.buffers);
        w.u8(self.depth);
    }
}

impl Canon for ControllerConfig {
    fn canon(&self, w: &mut CanonWriter) {
        w.u32(self.interval_accesses);
        w.u32(self.trial_intervals);
        w.u32(self.hysteresis_pct);
        w.u32(self.hysteresis_intervals);
        w.usize(self.max_regions);
        w.bool(self.way_partition);
        w.u32(self.min_ways);
        w.u32(self.duel_accesses);
    }
}

impl Canon for HierarchyConfig {
    fn canon(&self, w: &mut CanonWriter) {
        self.l1d.canon(w);
        self.l1i.canon(w);
        self.l2.canon(w);
        w.u64(self.l1_latency);
        w.u64(self.l2_latency);
        w.u64(self.mem_latency);
        w.u64(self.bus_bytes);
        w.u64(self.l2_occupancy);
        w.u64(self.dram_page_bytes);
        w.u64(self.dram_hit_latency);
        w.u64(self.dram_banks);
        self.dtlb.canon(w);
        self.itlb.canon(w);
        self.assist.canon(w);
        self.bypass.canon(w);
        w.usize(self.l1_victim_entries);
        w.usize(self.l2_victim_entries);
        self.stream.canon(w);
        w.bool(self.classify_misses);
        w.opt(&self.controller);
    }
}

impl Canon for OptConfig {
    fn canon(&self, w: &mut CanonWriter) {
        w.f64(self.threshold);
        w.u64(self.block_bytes);
        w.i64(self.tiling.tile);
        w.u64(self.tiling.cache_bytes);
        w.i64(self.tiling.min_trip);
        w.u64(self.padding.set_span);
        w.u64(self.padding.stagger);
        w.bool(self.interchange);
        w.bool(self.tile);
        w.bool(self.layout);
        w.bool(self.scalar_replacement);
        w.bool(self.pad);
        w.bool(self.fusion);
        w.bool(self.distribute);
        w.bool(self.unroll_jam);
        w.i64(self.unroll.factor);
        w.i64(self.unroll.min_trip);
        w.usize(self.unroll.max_body_stmts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn siphash128_matches_reference_vectors() {
        // Reference test vectors for SipHash-2-4-128 with key
        // 000102...0f over inputs 00, 0001, 000102, ... (from the
        // SipHash reference implementation's vectors_128 table).
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        let expect: [[u8; 16]; 4] = [
            [
                0xa3, 0x81, 0x7f, 0x04, 0xba, 0x25, 0xa8, 0xe6, 0x6d, 0xf6, 0x72, 0x14, 0xc7, 0x55,
                0x02, 0x93,
            ],
            [
                0xda, 0x87, 0xc1, 0xd8, 0x6b, 0x99, 0xaf, 0x44, 0x34, 0x76, 0x59, 0x11, 0x9b, 0x22,
                0xfc, 0x45,
            ],
            [
                0x81, 0x77, 0x22, 0x8d, 0xa4, 0xa4, 0x5d, 0xc7, 0xfc, 0xa3, 0x8b, 0xde, 0xf6, 0x0a,
                0xff, 0xe4,
            ],
            [
                0x9c, 0x70, 0xb6, 0x0c, 0x52, 0x67, 0xa9, 0x4e, 0x5f, 0x33, 0xb6, 0xb0, 0x29, 0x85,
                0xed, 0x51,
            ],
        ];
        for (len, want) in expect.iter().enumerate() {
            let data: Vec<u8> = (0..len as u8).collect();
            let h = siphash_2_4_128(k0, k1, &data);
            let mut got = [0u8; 16];
            got[..8].copy_from_slice(&(h as u64).to_le_bytes());
            got[8..].copy_from_slice(&((h >> 64) as u64).to_le_bytes());
            assert_eq!(&got, want, "vector length {len}");
        }
    }

    #[test]
    fn job_id_hex_round_trips() {
        let id = JobId::of_bytes(b"some canonical identity");
        let hex = id.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(hex.parse::<JobId>().unwrap(), id);
        assert!("".parse::<JobId>().is_err());
        assert!("xyz".parse::<JobId>().is_err());
        assert!("0".repeat(33).parse::<JobId>().is_err());
    }

    #[test]
    fn writer_is_prefix_tagged_and_distinguishes_values() {
        let enc = |f: &dyn Fn(&mut CanonWriter)| {
            let mut w = CanonWriter::new();
            f(&mut w);
            w.finish()
        };
        let a = enc(&|w| w.u64(1));
        let b = enc(&|w| w.u64(2));
        assert_ne!(a, b);
        assert!(a.starts_with(&{
            let mut w = CanonWriter::new();
            w.buf.clear();
            w.str(IDENTITY_SCHEMA);
            w.buf
        }));
        // -0.0 normalizes to +0.0 (agreement with f64 equality).
        assert_eq!(enc(&|w| w.f64(0.0)), enc(&|w| w.f64(-0.0)));
        assert_ne!(enc(&|w| w.f64(0.5)), enc(&|w| w.f64(0.25)));
    }

    #[test]
    fn to_hex_renders_lowercase_pairs() {
        assert_eq!(to_hex(&[0x00, 0xab, 0x0f]), "00ab0f");
        assert_eq!(to_hex(&[]), "");
    }
}
