//! A minimal JSON writer and reader for `--format json` output, the
//! perf-baseline artifact, the persistent result store's envelopes, and
//! the `selcached` wire protocol.
//!
//! The framework depends on nothing outside the workspace, so instead of a
//! serde stack this is a tiny value tree with a renderer: enough to emit
//! tables of numbers and strings, with correct string escaping and
//! locale-independent number formatting. [`Json::parse`] is the inverse,
//! used by the `perf` binary to read the checked-in baseline back, by
//! [`Store`](crate::Store) to read result envelopes, and by the
//! `selcached` server to decode requests.
//!
//! Integers round-trip losslessly through the full `u128` range
//! ([`Json::UInt`] / [`Json::U128`]) — 128-bit job ids flow through this
//! parser, so out-of-`u64`-range integers must not silently degrade to
//! floats.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string (escaped on render).
    Str(String),
    /// An unsigned integer, rendered without a fraction.
    UInt(u64),
    /// An unsigned integer too large for `u64` (the parser only produces
    /// this above `u64::MAX`, so `UInt`/`U128` classification is stable).
    U128(u128),
    /// A float, rendered with enough precision to round-trip; non-finite
    /// values render as `null` (JSON has no NaN/Infinity).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parses a JSON document. Integers without fraction or exponent parse
    /// as [`Json::UInt`] when they fit a `u64`, as [`Json::U128`] when
    /// they fit a `u128`, and only beyond that (or when negative) fall
    /// back to [`Json::Num`]. `null` parses as a non-finite [`Json::Num`]
    /// (matching what the renderer emits for NaN).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of a `UInt`, `U128`, or `Num`, if this is one
    /// (lossy above 2^53 by the nature of `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::U128(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The exact `u64` value of a `UInt`, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The exact value of a `UInt` or `U128`, widened to `u128`.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::UInt(n) => Some(u128::from(*n)),
            Json::U128(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Num(f64::NAN)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates are not paired up; the writer never
                            // emits them (it only \u-escapes control chars).
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            // Wider than u64 but still integral: keep it exact — 128-bit
            // job ids must not silently lose precision to a float.
            if let Ok(n) = text.parse::<u128>() {
                return Ok(Json::U128(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { message: format!("invalid number {text:?}"), offset: start })
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(v: &Json, out: &mut String) {
    match v {
        Json::Str(s) => escape(s, out),
        Json::UInt(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Json::U128(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Json::Num(x) if x.is_finite() => {
            let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
        }
        Json::Num(_) => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Arr(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (k, (key, val)) in pairs.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                escape(key, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        render(self, &mut s);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::UInt(42).to_string(), "42");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::str("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn strings_escape_specials() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn nesting_renders_in_order() {
        let v = Json::obj([
            ("name", Json::str("adi")),
            ("vals", Json::Arr(vec![Json::UInt(1), Json::Num(0.5)])),
        ]);
        assert_eq!(v.to_string(), r#"{"name":"adi","vals":[1,0.5]}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::obj([
            ("name", Json::str("q6 \"quoted\"\n")),
            ("ok", Json::Bool(true)),
            ("count", Json::UInt(12345678901234)),
            ("rate", Json::Num(-0.125)),
            ("nan", Json::Num(f64::NAN)),
            ("rows", Json::Arr(vec![Json::UInt(1), Json::Num(2.5), Json::str("x")])),
        ]);
        let parsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("q6 \"quoted\"\n"));
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("count"), Some(&Json::UInt(12345678901234)));
        assert_eq!(parsed.get("rate").and_then(Json::as_f64), Some(-0.125));
        // NaN renders as null and parses back as a non-finite Num.
        assert!(parsed.get("nan").and_then(Json::as_f64).is_some_and(f64::is_nan));
        assert_eq!(parsed.get("rows").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_garbage() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        let err = Json::parse("nope").unwrap_err();
        assert!(err.to_string().contains("at byte"), "{err}");
    }

    #[test]
    fn parse_numbers_pick_uint_or_float() {
        assert_eq!(Json::parse("7").unwrap(), Json::UInt(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::Num(-7.0));
        assert_eq!(Json::parse("7.5").unwrap(), Json::Num(7.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        // Larger than u64: stays an exact integer instead of rounding to
        // 1e20 (128-bit job ids flow through this parser).
        assert_eq!(
            Json::parse("99999999999999999999").unwrap(),
            Json::U128(99_999_999_999_999_999_999)
        );
        assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(Json::parse("18446744073709551616").unwrap(), Json::U128(1 << 64));
        // Larger than u128: only then fall back to float.
        let huge = "9".repeat(45);
        assert!(matches!(Json::parse(&huge).unwrap(), Json::Num(_)));
    }

    #[test]
    fn u128_round_trips_exactly() {
        let id = u128::MAX - 12345;
        let v = Json::obj([("job_id", Json::U128(id))]);
        let parsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(parsed.get("job_id"), Some(&Json::U128(id)));
        assert_eq!(parsed.get("job_id").and_then(Json::as_u128), Some(id));
        // u64-range values keep their exact accessors too.
        let v = Json::parse("12345678901234567890").unwrap();
        assert_eq!(v.as_u64(), Some(12_345_678_901_234_567_890));
        assert_eq!(v.as_u128(), Some(12_345_678_901_234_567_890));
    }

    #[test]
    fn accessors_are_none_on_wrong_shape() {
        assert_eq!(Json::UInt(1).get("k"), None);
        assert_eq!(Json::str("s").as_f64(), None);
        assert_eq!(Json::UInt(1).as_str(), None);
        assert_eq!(Json::UInt(1).as_arr(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::str("9").as_u128(), None);
    }
}
