//! # selcache-core
//!
//! The integrated selective hardware/compiler cache-optimization framework
//! of Memik et al. (DATE 2003): machine configurations (Table 1 and the
//! sensitivity variants), the four simulated versions of Section 4.3
//! (pure hardware, pure software, combined, selective), the experiment
//! runner, and paper-style report formatting for Table 2, Table 3, and
//! Figures 4–9.
//!
//! ## Example
//!
//! ```
//! use selcache_core::{Experiment, MachineConfig, Version};
//! use selcache_mem::AssistKind;
//! use selcache_workloads::{Benchmark, Scale};
//!
//! let exp = Experiment::new(MachineConfig::base(), AssistKind::Bypass);
//! let base = exp.run(Benchmark::Vpenta, Scale::Tiny, Version::Base);
//! let selective = exp.run(Benchmark::Vpenta, Scale::Tiny, Version::Selective);
//! // The selective scheme improves on the base machine.
//! assert!(selective.improvement_over(&base) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod report;
mod runner;
mod sweep;

pub use config::{ConfigVariant, MachineConfig};
pub use report::{format_table3, table2, table3_row, BenchmarkRow, SuiteResult, Table3Row};
pub use runner::{Experiment, SimResult, Version};
pub use sweep::{l1_assoc_sweep, memory_latency_sweep, Sweep, SweepPoint};

// Re-export the pieces callers need to parameterize experiments.
pub use selcache_mem::AssistKind;
pub use selcache_workloads::{Benchmark, Category, Scale};
