//! # selcache-core
//!
//! The integrated selective hardware/compiler cache-optimization framework
//! of Memik et al. (DATE 2003): machine configurations (Table 1 and the
//! sensitivity variants), the four simulated versions of Section 4.3
//! (pure hardware, pure software, combined, selective), the job engine,
//! and paper-style report formatting for Table 2, Table 3, and
//! Figures 4–9.
//!
//! ## Configuring experiments
//!
//! [`ExperimentBuilder`] is the primary entry point: every knob defaults
//! sensibly (base machine, no assist, compiler config derived from the
//! machine's L1, all available cores), so callers state only what they
//! vary. [`Experiment::new`] and [`Experiment::with_opt`] remain as
//! shorthands on top of it.
//!
//! ```
//! use selcache_core::{ExperimentBuilder, MachineConfig, Version};
//! use selcache_mem::AssistKind;
//! use selcache_workloads::{Benchmark, Scale};
//!
//! let exp = ExperimentBuilder::new()
//!     .machine(MachineConfig::base())
//!     .assist(AssistKind::Bypass)
//!     .build();
//! let base = exp.run(Benchmark::Vpenta, Scale::Tiny, Version::Base);
//! let selective = exp.run(Benchmark::Vpenta, Scale::Tiny, Version::Selective);
//! // The selective scheme improves on the base machine.
//! assert!(selective.improvement_over(&base) > 0.0);
//! ```
//!
//! ## Running job sets
//!
//! Whole tables and figures are job *sets*: independent simulations the
//! [`JobEngine`] deduplicates and runs in parallel, returning results in
//! submission order (bit-identical for every thread count). The suite and
//! table entry points ([`SuiteResult::run_with`], [`table2_with`],
//! [`table3_rows`]) are declarative constructors over it; build custom
//! studies from [`SimJob`] directly.
//!
//! ## Design-space sweeps
//!
//! [`SweepSpec`] declares a parameter grid over one benchmark and runs it
//! either exactly (every point simulated) or analytically — a single
//! reuse-profiling trace pass per program version evaluates the whole
//! `(size, associativity, line)` grid, with a sampled exact cross-check
//! bounding the model error. See the [`sweep`](crate::SweepSpec) types.
//!
//! ## Persistent results
//!
//! Every job has a stable 128-bit [`JobId`] — the hash of its canonical
//! execution-identity serialization ([`identity`]) — and a
//! [`JobEngine::with_store`] engine persists results to a
//! content-addressed [`Store`] keyed by it, so warm reruns of any table,
//! figure, or sweep execute zero simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod executor;
pub mod identity;
pub mod json;
mod profile;
mod report;
mod runner;
mod sampled;
pub mod store;
mod sweep;

pub use config::{ConfigVariant, MachineConfig};
pub use engine::{EngineStats, JobEngine, SimJob};
pub use executor::Executor;
pub use identity::JobId;
pub use profile::{RegionProfile, RegionProfileProbe, RegionStats};
pub use report::{
    format_region_report, format_table3, table2, table2_with, table3_csv, table3_row, table3_rows,
    table3_rows_with_stats, table3_rows_with_stats_in_mode, BenchmarkRow, SuiteResult, Table3Row,
};
pub use runner::{Experiment, ExperimentBuilder, SimResult, Version};
pub use sampled::{SampledInfo, SimMode};
pub use store::{GcReport, Store, StoreStats};
pub use sweep::{
    l1_assoc_sweep, memory_latency_sweep, CheckSummary, PointCheck, PointData, Sweep, SweepAxis,
    SweepError, SweepMode, SweepPoint, SweepSpec, SweepWork, VersionedMiss,
};

// Re-export the pieces callers need to parameterize experiments.
pub use selcache_mem::{AssistChoice, AssistKind, ControllerConfig};
pub use selcache_workloads::{Benchmark, Category, Scale};
