//! Per-region attribution of simulation statistics.
//!
//! The probe layer ([`selcache_mem::Probe`]) delivers every event with the
//! static *site* that issued it, and the interpreter stamps each trace op
//! with the compiler's region partition
//! ([`selcache_compiler::region_partition`]). A [`RegionProfileProbe`]
//! folds that event stream into one [`RegionStats`] bucket per region —
//! cycles, commits, cache traffic, and assist coverage — so a single run
//! answers "which loop nest pays for these misses, and is the assist on
//! there?".
//!
//! Events whose site carries no region (library glue, markers before the
//! first region opens) land in a trailing *(outside)* bucket, so the
//! per-region columns always sum exactly to the aggregate
//! [`SimResult`](crate::SimResult) counters.

use selcache_ir::{RegionId, RegionMap};
use selcache_mem::{AssistChoice, AssistEvent, CacheLevel, Lookup, Probe, Site};
use std::fmt::Write as _;

/// Counters attributed to one uniform region.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionStats {
    /// The region's label from the compiler partition (e.g. `"L3:hw"`).
    pub label: String,
    /// Cycles during which this region's op headed the RUU (held over
    /// across empty-RUU gaps, so cycles sum to the run's total).
    pub cycles: u64,
    /// Committed instructions issued from this region.
    pub committed: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// L1 data-cache accesses issued from this region.
    pub l1d_accesses: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L2 accesses (data refills and instruction-fetch refills alike).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Data accesses observed while the assist was active.
    pub assisted_accesses: u64,
    /// Accesses the assist answered (buffer, victim, or stream hits).
    pub assist_hits: u64,
    /// Assist ON/OFF instructions committed from this region.
    pub toggles: u64,
    /// Adaptive-controller policy switches applied in this region (0 for
    /// static runs).
    pub policy_switches: u64,
    /// The controller's last decision for this region (`"off"`,
    /// `"bypass"`, or `"victim"`; `"static"` when no controller ran).
    pub final_policy: String,
}

impl RegionStats {
    /// Fraction of this region's L1d accesses observed under an active
    /// assist, in percent (0 when the region made no accesses).
    pub fn assist_coverage_pct(&self) -> f64 {
        if self.l1d_accesses == 0 {
            0.0
        } else {
            self.assisted_accesses as f64 / self.l1d_accesses as f64 * 100.0
        }
    }

    /// L1d miss rate in percent (0 when the region made no accesses).
    pub fn l1d_miss_pct(&self) -> f64 {
        if self.l1d_accesses == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / self.l1d_accesses as f64 * 100.0
        }
    }

    fn add(&mut self, other: &RegionStats) {
        self.cycles += other.cycles;
        self.committed += other.committed;
        self.loads += other.loads;
        self.stores += other.stores;
        self.l1d_accesses += other.l1d_accesses;
        self.l1d_misses += other.l1d_misses;
        self.l2_accesses += other.l2_accesses;
        self.l2_misses += other.l2_misses;
        self.assisted_accesses += other.assisted_accesses;
        self.assist_hits += other.assist_hits;
        self.toggles += other.toggles;
        self.policy_switches += other.policy_switches;
    }
}

/// Statistics of one run broken down by the compiler's region partition.
///
/// One bucket per region in partition order, plus a trailing *(outside)*
/// bucket for events with no region attribution; the buckets partition the
/// aggregate counters exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionProfile {
    regions: Vec<RegionStats>,
}

impl RegionProfile {
    /// Reassembles a profile from its buckets (used by the result store
    /// when deserializing a profiled entry; the buckets must be in the
    /// order [`RegionProfile::regions`] reported them).
    pub fn from_regions(regions: Vec<RegionStats>) -> RegionProfile {
        RegionProfile { regions }
    }

    /// The per-region buckets (the last entry is the *(outside)* bucket).
    pub fn regions(&self) -> &[RegionStats] {
        &self.regions
    }

    /// Sum of every bucket — equals the run's aggregate counters.
    pub fn total(&self) -> RegionStats {
        let mut t = RegionStats { label: "TOTAL".into(), ..RegionStats::default() };
        for r in &self.regions {
            t.add(r);
        }
        t
    }

    /// Renders the profile as an aligned table with a TOTAL row.
    pub fn format_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>12} {:>10} {:>8} {:>8} {:>8}",
            "Region", "Cycles", "Insts", "L1dAcc", "L1dMiss", "L2Miss", "Assist%"
        );
        for r in self.regions.iter().chain(std::iter::once(&self.total())) {
            let _ = writeln!(
                out,
                "{:<14} {:>12} {:>12} {:>10} {:>8} {:>8} {:>7.1}%",
                r.label,
                r.cycles,
                r.committed,
                r.l1d_accesses,
                r.l1d_misses,
                r.l2_misses,
                r.assist_coverage_pct()
            );
        }
        out
    }
}

/// A [`Probe`] that attributes every event to the region of its issuing
/// site.
///
/// ```
/// use selcache_compiler::{region_partition, selective, OptConfig};
/// use selcache_core::RegionProfileProbe;
/// use selcache_cpu::{CpuConfig, Pipeline};
/// use selcache_ir::Interp;
/// use selcache_mem::{AssistKind, HierarchyConfig, MemoryHierarchy};
/// use selcache_workloads::{Benchmark, Scale};
///
/// let opt = OptConfig::default();
/// let program = selective(&Benchmark::Vpenta.build(Scale::Tiny), &opt);
/// let map = region_partition(&program, opt.threshold);
/// let mut probe = RegionProfileProbe::new(&map);
/// let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::Bypass));
/// mem.set_assist_enabled(false);
/// let stats = Pipeline::new(CpuConfig::paper_base()).run_probed(
///     Interp::with_regions(&program, &map),
///     &mut mem,
///     &mut probe,
/// );
/// let profile = probe.finish();
/// assert_eq!(profile.total().committed, stats.committed);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegionProfileProbe {
    regions: Vec<RegionStats>,
}

impl RegionProfileProbe {
    /// A probe with one empty bucket per region of `map`, plus the
    /// *(outside)* bucket.
    pub fn new(map: &RegionMap) -> RegionProfileProbe {
        let fresh = |label: &str| RegionStats {
            label: label.into(),
            final_policy: "static".into(),
            ..RegionStats::default()
        };
        let mut regions: Vec<RegionStats> = map.labels().iter().map(|l| fresh(l)).collect();
        regions.push(fresh("(outside)"));
        RegionProfileProbe { regions }
    }

    fn bucket(&mut self, region: RegionId) -> &mut RegionStats {
        let outside = self.regions.len() - 1;
        let k = if region.is_none() { outside } else { region.index().min(outside) };
        &mut self.regions[k]
    }

    /// Consumes the probe, yielding the accumulated profile.
    pub fn finish(self) -> RegionProfile {
        RegionProfile { regions: self.regions }
    }
}

impl Probe for RegionProfileProbe {
    fn cycle(&mut self, region: RegionId) {
        self.bucket(region).cycles += 1;
    }

    fn commit(&mut self, site: Site, kind: selcache_ir::OpKind) {
        let b = self.bucket(site.region);
        b.committed += 1;
        match kind {
            selcache_ir::OpKind::Load(_) => b.loads += 1,
            selcache_ir::OpKind::Store(_) => b.stores += 1,
            _ => {}
        }
    }

    fn cache_access(
        &mut self,
        level: CacheLevel,
        site: Site,
        _addr: selcache_ir::Addr,
        _write: bool,
        lookup: Lookup,
    ) {
        let b = self.bucket(site.region);
        match level {
            CacheLevel::L1d => {
                b.l1d_accesses += 1;
                if matches!(lookup, Lookup::Miss(_)) {
                    b.l1d_misses += 1;
                }
            }
            CacheLevel::L2 => {
                b.l2_accesses += 1;
                if matches!(lookup, Lookup::Miss(_)) {
                    b.l2_misses += 1;
                }
            }
            CacheLevel::L1i => {}
        }
    }

    fn assist(&mut self, site: Site, _addr: selcache_ir::Addr, event: AssistEvent) {
        let b = self.bucket(site.region);
        match event {
            AssistEvent::Observed => b.assisted_accesses += 1,
            AssistEvent::BufferHit
            | AssistEvent::L1VictimHit
            | AssistEvent::L2VictimHit
            | AssistEvent::StreamHit => b.assist_hits += 1,
            _ => {}
        }
    }

    fn assist_toggle(&mut self, site: Site, _on: bool) {
        self.bucket(site.region).toggles += 1;
    }

    fn adapt_decision(&mut self, site: Site, choice: AssistChoice, switched: bool) {
        let b = self.bucket(site.region);
        b.policy_switches += u64::from(switched);
        b.final_policy = choice.name().into();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::{Addr, OpKind, RegionMapBuilder};
    use selcache_mem::MissClass;

    fn two_region_map() -> RegionMap {
        let mut b = RegionMapBuilder::new();
        b.open("alpha");
        b.sites(2);
        b.open("beta");
        b.sites(2);
        b.finish()
    }

    #[test]
    fn events_land_in_their_region() {
        let map = two_region_map();
        let mut p = RegionProfileProbe::new(&map);
        let alpha = Site::new(0, RegionId(0));
        let beta = Site::new(0, RegionId(1));
        p.cycle(RegionId(0));
        p.commit(alpha, OpKind::Load(Addr(0)));
        p.cache_access(CacheLevel::L1d, alpha, Addr(0), false, Lookup::Miss(MissClass::Compulsory));
        p.cache_access(CacheLevel::L2, beta, Addr(0), false, Lookup::Hit);
        p.assist(beta, Addr(0), AssistEvent::Observed);
        p.assist(beta, Addr(0), AssistEvent::BufferHit);
        p.assist_toggle(Site::UNKNOWN, true);
        let prof = p.finish();
        let [a, b, outside] = prof.regions() else { panic!("3 buckets") };
        assert_eq!((a.cycles, a.committed, a.loads, a.l1d_accesses, a.l1d_misses), (1, 1, 1, 1, 1));
        assert_eq!((b.l2_accesses, b.l2_misses, b.assisted_accesses, b.assist_hits), (1, 0, 1, 1));
        assert_eq!(outside.toggles, 1);
        assert_eq!(prof.total().committed, 1);
    }

    #[test]
    fn controller_decisions_attribute_per_region() {
        let map = two_region_map();
        let mut p = RegionProfileProbe::new(&map);
        let alpha = Site::new(0, RegionId(0));
        p.adapt_decision(alpha, AssistChoice::Bypass, true);
        p.adapt_decision(alpha, AssistChoice::Victim, true);
        p.adapt_decision(alpha, AssistChoice::Victim, false);
        let prof = p.finish();
        let a = &prof.regions()[0];
        assert_eq!(a.policy_switches, 2, "only actual switches count");
        assert_eq!(a.final_policy, "victim");
        assert_eq!(prof.regions()[1].final_policy, "static", "untouched regions stay static");
        assert_eq!(prof.total().policy_switches, 2);
    }

    #[test]
    fn rate_helpers_guard_zero_denominators() {
        let empty = RegionStats::default();
        assert_eq!(empty.assist_coverage_pct(), 0.0);
        assert_eq!(empty.l1d_miss_pct(), 0.0);
    }

    #[test]
    fn table_has_total_row() {
        let map = two_region_map();
        let text = RegionProfileProbe::new(&map).finish().format_table();
        assert!(text.contains("alpha"));
        assert!(text.contains("(outside)"));
        assert!(text.contains("TOTAL"));
    }
}
