//! Suite execution and paper-style report formatting (Table 2, Table 3,
//! Figures 4–9).
//!
//! The run functions here are thin declarative layers: each one names its
//! job set ([`SuiteResult::jobs`] and friends), hands it to a
//! [`JobEngine`], and folds the results back into rows. Batched entry
//! points ([`table3_rows`]) submit every constituent suite as one job set
//! so shared runs (Base, PureSoftware) are simulated once.

use crate::config::MachineConfig;
use crate::engine::{EngineStats, JobEngine, SimJob};
use crate::runner::{SimResult, Version};
use crate::sampled::SimMode;
use selcache_mem::AssistKind;
use selcache_workloads::{Benchmark, Category, Scale};
use std::fmt::Write as _;

/// Results for one benchmark: the base run and the percent improvement of
/// each reported version.
#[derive(Debug, Clone)]
pub struct BenchmarkRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Base-version result (the 100% reference).
    pub base: SimResult,
    /// Percent improvements, indexed like [`Version::REPORTED`]:
    /// `[PureHardware, PureSoftware, Combined, Selective]`.
    pub improvements: [f64; 4],
}

impl BenchmarkRow {
    /// Improvement of one reported version.
    pub fn improvement(&self, version: Version) -> f64 {
        let idx = Version::REPORTED.iter().position(|&v| v == version).expect("reported version");
        self.improvements[idx]
    }
}

/// Jobs per benchmark in a suite job set: the base run plus the four
/// reported versions.
const JOBS_PER_BENCHMARK: usize = 1 + Version::REPORTED.len();

/// A full suite sweep under one machine configuration and assist.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Machine name (Table 3 row label).
    pub machine_name: &'static str,
    /// Assist under study.
    pub assist: AssistKind,
    /// One row per benchmark.
    pub rows: Vec<BenchmarkRow>,
}

impl SuiteResult {
    /// The suite's job set: for each benchmark, the base run followed by
    /// the four reported versions (`JOBS_PER_BENCHMARK` jobs each).
    /// Feed the engine's results back through [`SuiteResult::from_results`].
    pub fn jobs(
        machine: &MachineConfig,
        assist: AssistKind,
        scale: Scale,
        benchmarks: &[Benchmark],
    ) -> Vec<SimJob> {
        Self::jobs_in_mode(machine, assist, scale, benchmarks, SimMode::Exact)
    }

    /// [`SuiteResult::jobs`] with an explicit simulation mode: every job in
    /// the set (base and reported versions alike) runs exact or sampled, so
    /// improvements compare like against like.
    pub fn jobs_in_mode(
        machine: &MachineConfig,
        assist: AssistKind,
        scale: Scale,
        benchmarks: &[Benchmark],
        mode: SimMode,
    ) -> Vec<SimJob> {
        let mut jobs = Vec::with_capacity(benchmarks.len() * JOBS_PER_BENCHMARK);
        for &bm in benchmarks {
            jobs.push(
                SimJob::new(bm, scale, machine.clone(), assist, Version::Base).with_mode(mode),
            );
            for &v in &Version::REPORTED {
                jobs.push(SimJob::new(bm, scale, machine.clone(), assist, v).with_mode(mode));
            }
        }
        jobs
    }

    /// Folds engine results (ordered as [`SuiteResult::jobs`] produced
    /// them) into suite rows.
    ///
    /// # Panics
    ///
    /// If `results` is not exactly `JOBS_PER_BENCHMARK` entries per
    /// benchmark.
    pub fn from_results(
        machine_name: &'static str,
        assist: AssistKind,
        benchmarks: &[Benchmark],
        results: &[SimResult],
    ) -> SuiteResult {
        assert_eq!(
            results.len(),
            benchmarks.len() * JOBS_PER_BENCHMARK,
            "one base + four reported results per benchmark"
        );
        let rows = benchmarks
            .iter()
            .zip(results.chunks_exact(JOBS_PER_BENCHMARK))
            .map(|(&benchmark, chunk)| {
                let base = chunk[0].clone();
                let mut improvements = [0.0; 4];
                for (imp, r) in improvements.iter_mut().zip(&chunk[1..]) {
                    *imp = r.improvement_over(&base);
                }
                BenchmarkRow { benchmark, base, improvements }
            })
            .collect();
        SuiteResult { machine_name, assist, rows }
    }

    /// Runs a suite on an explicit engine.
    pub fn run_with(
        engine: &JobEngine,
        machine: MachineConfig,
        assist: AssistKind,
        scale: Scale,
        benchmarks: &[Benchmark],
    ) -> SuiteResult {
        Self::run_in_mode(engine, machine, assist, scale, benchmarks, SimMode::Exact)
    }

    /// Runs a suite on an explicit engine in an explicit simulation mode
    /// (the figure binaries' `--mode sampled` path).
    pub fn run_in_mode(
        engine: &JobEngine,
        machine: MachineConfig,
        assist: AssistKind,
        scale: Scale,
        benchmarks: &[Benchmark],
        mode: SimMode,
    ) -> SuiteResult {
        let name = machine.name;
        let jobs = Self::jobs_in_mode(&machine, assist, scale, benchmarks, mode);
        let results = engine.run(&jobs);
        Self::from_results(name, assist, benchmarks, &results)
    }

    /// Runs the full 13-benchmark suite on a default-sized engine.
    pub fn run(machine: MachineConfig, assist: AssistKind, scale: Scale) -> SuiteResult {
        Self::run_with(&JobEngine::default(), machine, assist, scale, &Benchmark::ALL)
    }

    /// Runs a subset of the suite (used by tests and quick sweeps).
    pub fn run_subset(
        machine: MachineConfig,
        assist: AssistKind,
        scale: Scale,
        benchmarks: &[Benchmark],
    ) -> SuiteResult {
        Self::run_with(&JobEngine::default(), machine, assist, scale, benchmarks)
    }

    /// Suite-wide average improvement of a version.
    pub fn average(&self, version: Version) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.improvement(version)).sum::<f64>() / self.rows.len() as f64
    }

    /// Average improvement over one access-pattern category.
    pub fn average_by_category(&self, cat: Category, version: Version) -> f64 {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.benchmark.category() == cat)
            .map(|r| r.improvement(version))
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Formats the suite as one of the paper's figures: percent improvement
    /// in execution cycles per benchmark for the four versions.
    pub fn format_figure(&self, figure_no: u32) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure {figure_no}. {} ({} assist). % improvement in execution cycles vs. base.",
            self.machine_name,
            assist_name(self.assist)
        );
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>9} {:>9} {:>9}",
            "Benchmark", "PureHW", "PureSW", "Combined", "Selective"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<10} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
                r.benchmark.name(),
                r.improvements[0],
                r.improvements[1],
                r.improvements[2],
                r.improvements[3]
            );
        }
        let _ = writeln!(
            out,
            "{:<10} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            "AVERAGE",
            self.average(Version::PureHardware),
            self.average(Version::PureSoftware),
            self.average(Version::Combined),
            self.average(Version::Selective)
        );
        for cat in [Category::Regular, Category::Irregular, Category::Mixed] {
            let _ = writeln!(
                out,
                "{:<10} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
                format!("avg:{cat}"),
                self.average_by_category(cat, Version::PureHardware),
                self.average_by_category(cat, Version::PureSoftware),
                self.average_by_category(cat, Version::Combined),
                self.average_by_category(cat, Version::Selective)
            );
        }
        out
    }

    /// Renders the suite as CSV (benchmark, category, base cycles, and the
    /// four improvements) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("benchmark,category,base_cycles,pure_hw,pure_sw,combined,selective\n");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{:.4},{:.4},{:.4},{:.4}",
                r.benchmark.name(),
                r.benchmark.category(),
                r.base.cycles,
                r.improvements[0],
                r.improvements[1],
                r.improvements[2],
                r.improvements[3]
            );
        }
        out
    }
}

fn assist_name(a: AssistKind) -> &'static str {
    match a {
        AssistKind::None => "no",
        AssistKind::Bypass => "cache bypassing",
        AssistKind::Victim => "victim cache",
        AssistKind::Stream => "stream buffer",
    }
}

/// Table 2 on an explicit engine: benchmark characteristics under the base
/// configuration.
pub fn table2_with(engine: &JobEngine, scale: Scale) -> String {
    let machine = MachineConfig::base();
    let jobs: Vec<SimJob> = Benchmark::ALL
        .iter()
        .map(|&bm| SimJob::new(bm, scale, machine.clone(), AssistKind::None, Version::Base))
        .collect();
    let results = engine.run(&jobs);

    let mut out = String::new();
    let _ = writeln!(out, "Table 2. Benchmark characteristics (scale: {scale}).");
    let _ = writeln!(
        out,
        "{:<10} {:<26} {:>14} {:>9} {:>9}",
        "Benchmark", "Input", "Instructions", "L1 Miss%", "L2 Miss%"
    );
    for (bm, r) in Benchmark::ALL.iter().zip(&results) {
        let _ = writeln!(
            out,
            "{:<10} {:<26} {:>14} {:>8.2} {:>8.2}",
            bm.name(),
            bm.input(),
            format_count(r.instructions),
            r.l1_miss_pct(),
            r.l2_miss_pct()
        );
    }
    out
}

/// Table 2 on a default-sized engine.
pub fn table2(scale: Scale) -> String {
    table2_with(&JobEngine::default(), scale)
}

fn format_count(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// One row of Table 3: average improvements under one machine variant.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Variant name.
    pub machine_name: &'static str,
    /// Pure software average.
    pub pure_software: f64,
    /// Cache-bypassing (pure hardware) average.
    pub cache_bypass: f64,
    /// Combined (bypass + software) average.
    pub combined_bypass: f64,
    /// Selective (bypass + software) average.
    pub selective_bypass: f64,
    /// Victim-cache (pure hardware) average.
    pub victim: f64,
    /// Combined (victim + software) average.
    pub combined_victim: f64,
    /// Selective (victim + software) average.
    pub selective_victim: f64,
}

impl Table3Row {
    fn from_suites(bypass: &SuiteResult, victim: &SuiteResult) -> Table3Row {
        Table3Row {
            machine_name: bypass.machine_name,
            pure_software: bypass.average(Version::PureSoftware),
            cache_bypass: bypass.average(Version::PureHardware),
            combined_bypass: bypass.average(Version::Combined),
            selective_bypass: bypass.average(Version::Selective),
            victim: victim.average(Version::PureHardware),
            combined_victim: victim.average(Version::Combined),
            selective_victim: victim.average(Version::Selective),
        }
    }
}

/// Computes every Table 3 row as one batched job set: all machines, both
/// assist sweeps. The engine deduplicates the runs the sweeps share — each
/// machine's Base and PureSoftware simulations serve both its bypass and
/// victim suites.
pub fn table3_rows(
    engine: &JobEngine,
    machines: &[MachineConfig],
    scale: Scale,
    benchmarks: &[Benchmark],
) -> Vec<Table3Row> {
    table3_rows_with_stats(engine, machines, scale, benchmarks).0
}

/// [`table3_rows`] plus the engine counters for the batched job set —
/// dedup and (for store-backed engines) store hit/miss accounting.
pub fn table3_rows_with_stats(
    engine: &JobEngine,
    machines: &[MachineConfig],
    scale: Scale,
    benchmarks: &[Benchmark],
) -> (Vec<Table3Row>, EngineStats) {
    table3_rows_with_stats_in_mode(engine, machines, scale, benchmarks, SimMode::Exact)
}

/// [`table3_rows_with_stats`] in an explicit simulation mode: every suite
/// job in the batch runs exact or sampled, so each machine's averages
/// compare like against like.
pub fn table3_rows_with_stats_in_mode(
    engine: &JobEngine,
    machines: &[MachineConfig],
    scale: Scale,
    benchmarks: &[Benchmark],
    mode: SimMode,
) -> (Vec<Table3Row>, EngineStats) {
    let mut jobs = Vec::new();
    for machine in machines {
        jobs.extend(SuiteResult::jobs_in_mode(
            machine,
            AssistKind::Bypass,
            scale,
            benchmarks,
            mode,
        ));
        jobs.extend(SuiteResult::jobs_in_mode(
            machine,
            AssistKind::Victim,
            scale,
            benchmarks,
            mode,
        ));
    }
    let (results, stats) = engine.run_with_stats(&jobs);

    let per_suite = benchmarks.len() * JOBS_PER_BENCHMARK;
    let rows = machines
        .iter()
        .zip(results.chunks_exact(2 * per_suite))
        .map(|(machine, chunk)| {
            let bypass = SuiteResult::from_results(
                machine.name,
                AssistKind::Bypass,
                benchmarks,
                &chunk[..per_suite],
            );
            let victim = SuiteResult::from_results(
                machine.name,
                AssistKind::Victim,
                benchmarks,
                &chunk[per_suite..],
            );
            Table3Row::from_suites(&bypass, &victim)
        })
        .collect();
    (rows, stats)
}

/// Computes one Table 3 row from the two assist sweeps of a machine.
pub fn table3_row(machine: MachineConfig, scale: Scale, benchmarks: &[Benchmark]) -> Table3Row {
    table3_rows(&JobEngine::default(), &[machine], scale, benchmarks)
        .pop()
        .expect("one machine in, one row out")
}

/// Formats a profiled run as a per-region report: one line per uniform
/// region (cycles, instructions, cache traffic, assist coverage) plus the
/// *(outside)* bucket and a TOTAL row that equals the aggregate counters.
///
/// Returns a one-line note instead when the result carries no profile
/// (i.e. it came from an unprofiled run).
pub fn format_region_report(title: &str, result: &SimResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Per-region profile: {title}");
    match &result.regions {
        Some(profile) => out.push_str(&profile.format_table()),
        None => out.push_str("(run was not profiled — use run_profiled)\n"),
    }
    out
}

/// Formats Table 3 from precomputed rows.
pub fn format_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3. Average improvements (%).");
    let _ = writeln!(
        out,
        "{:<17} {:>8} {:>8} {:>9} {:>10} {:>8} {:>9} {:>10}",
        "Experiment",
        "PureSW",
        "Bypass",
        "Comb(byp)",
        "Sel(byp)",
        "Victim",
        "Comb(vic)",
        "Sel(vic)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<17} {:>8.2} {:>8.2} {:>9.2} {:>10.2} {:>8.2} {:>9.2} {:>10.2}",
            r.machine_name,
            r.pure_software,
            r.cache_bypass,
            r.combined_bypass,
            r.selective_bypass,
            r.victim,
            r.combined_victim,
            r.selective_victim
        );
    }
    out
}

/// Renders Table 3 rows as CSV (machine name plus the seven improvement
/// averages) for external plotting, matching [`SuiteResult::to_csv`]'s
/// style.
pub fn table3_csv(rows: &[Table3Row]) -> String {
    let mut out = String::from(
        "machine,pure_sw,cache_bypass,combined_bypass,selective_bypass,\
         victim,combined_victim,selective_victim\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            r.machine_name,
            r.pure_software,
            r.cache_bypass,
            r.combined_bypass,
            r.selective_bypass,
            r.victim,
            r.combined_victim,
            r.selective_victim
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_suite_runs_and_formats() {
        let s = SuiteResult::run_subset(
            MachineConfig::base(),
            AssistKind::Victim,
            Scale::Tiny,
            &[Benchmark::Adi, Benchmark::Li],
        );
        assert_eq!(s.rows.len(), 2);
        let text = s.format_figure(4);
        assert!(text.contains("Adi"));
        assert!(text.contains("Li"));
        assert!(text.contains("AVERAGE"));
        assert!(text.contains("avg:regular"));
    }

    #[test]
    fn averages_are_consistent() {
        let s = SuiteResult::run_subset(
            MachineConfig::base(),
            AssistKind::Victim,
            Scale::Tiny,
            &[Benchmark::Adi],
        );
        assert!(
            (s.average(Version::Selective)
                - s.average_by_category(Category::Regular, Version::Selective))
            .abs()
                < 1e-9
        );
        assert_eq!(s.average_by_category(Category::Irregular, Version::Selective), 0.0);
    }

    #[test]
    fn csv_roundtrips_fields() {
        let s = SuiteResult::run_subset(
            MachineConfig::base(),
            AssistKind::Victim,
            Scale::Tiny,
            &[Benchmark::TpcDQ6],
        );
        let csv = s.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "benchmark,category,base_cycles,pure_hw,pure_sw,combined,selective"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("TPC-D,Q6,mixed,"), "row: {row}");
        assert_eq!(row.split(',').count(), 8); // benchmark name contains one comma
    }

    #[test]
    fn format_count_units() {
        assert_eq!(format_count(999), "999");
        assert_eq!(format_count(58_200), "58.2K");
        assert_eq!(format_count(11_200_000), "11.2M");
    }

    #[test]
    fn region_report_formats_profile() {
        use crate::runner::Experiment;
        let e = Experiment::new(MachineConfig::base(), AssistKind::Bypass);
        let r = e.run_profiled(Benchmark::Adi, Scale::Tiny, Version::Selective);
        let text = format_region_report("adi/selective", &r);
        assert!(text.contains("TOTAL"), "report: {text}");
        assert!(text.contains("(outside)"));
        let plain = e.run(Benchmark::Adi, Scale::Tiny, Version::Base);
        assert!(format_region_report("adi/base", &plain).contains("not profiled"));
    }

    #[test]
    fn table3_row_has_all_columns() {
        let r = table3_row(MachineConfig::base(), Scale::Tiny, &[Benchmark::Adi, Benchmark::Perl]);
        let text = format_table3(&[r]);
        assert!(text.contains("Base Confg."));
        assert!(text.contains("Sel(vic)"));
    }

    #[test]
    fn batched_table3_matches_per_row_runs() {
        let benchmarks = [Benchmark::Adi, Benchmark::Li];
        let machines = [MachineConfig::base(), MachineConfig::higher_mem_latency()];
        let batched = table3_rows(&JobEngine::serial(), &machines, Scale::Tiny, &benchmarks);
        assert_eq!(batched.len(), 2);
        for (machine, row) in machines.iter().zip(&batched) {
            let single = table3_row(machine.clone(), Scale::Tiny, &benchmarks);
            assert_eq!(row.machine_name, single.machine_name);
            assert_eq!(row.selective_bypass, single.selective_bypass);
            assert_eq!(row.selective_victim, single.selective_victim);
            assert_eq!(row.pure_software, single.pure_software);
        }
    }
}
