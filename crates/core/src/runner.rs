//! The experiment runner: builds a benchmark, prepares the code for one of
//! the paper's simulated versions (Section 4.3), and runs it through the
//! processor + memory-hierarchy simulator.

use crate::config::MachineConfig;
use selcache_compiler::{optimize, selective, OptConfig};
use selcache_cpu::{CpuStats, Pipeline};
use selcache_ir::{Interp, Program};
use selcache_mem::{AssistKind, HierarchyStats, MemoryHierarchy};
use selcache_workloads::{Benchmark, Scale};
use std::fmt;

/// The four simulated versions of Section 4.3, plus the base run that
/// improvements are measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// Base code on the base machine (the 100% reference).
    Base,
    /// Base code with the hardware assist always on.
    PureHardware,
    /// Compiler-optimized code, no hardware assist.
    PureSoftware,
    /// Compiler-optimized code with the assist always on.
    Combined,
    /// Compiler-optimized code with compiler-inserted ON/OFF instructions
    /// driving the assist (this paper's approach).
    Selective,
}

impl Version {
    /// The four versions the paper's figures report (everything but
    /// [`Version::Base`]).
    pub const REPORTED: [Version; 4] = [
        Version::PureHardware,
        Version::PureSoftware,
        Version::Combined,
        Version::Selective,
    ];
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Version::Base => "Base",
            Version::PureHardware => "Pure Hardware",
            Version::PureSoftware => "Pure Software",
            Version::Combined => "Combined",
            Version::Selective => "Selective",
        };
        f.write_str(s)
    }
}

/// Outcome of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Total execution cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Core statistics.
    pub cpu: CpuStats,
    /// Memory-hierarchy statistics.
    pub mem: HierarchyStats,
}

impl SimResult {
    /// L1 data-cache miss rate in percent.
    pub fn l1_miss_pct(&self) -> f64 {
        self.mem.l1d.miss_rate() * 100.0
    }

    /// L2 miss rate in percent.
    pub fn l2_miss_pct(&self) -> f64 {
        self.mem.l2.miss_rate() * 100.0
    }

    /// Percent improvement of `self` relative to a base run (positive =
    /// faster).
    pub fn improvement_over(&self, base: &SimResult) -> f64 {
        if base.cycles == 0 {
            return 0.0;
        }
        (base.cycles as f64 - self.cycles as f64) / base.cycles as f64 * 100.0
    }
}

/// An experiment: a machine configuration plus the hardware assist under
/// study.
///
/// ```
/// use selcache_core::{Experiment, MachineConfig, Version};
/// use selcache_mem::AssistKind;
/// use selcache_workloads::{Benchmark, Scale};
///
/// let exp = Experiment::new(MachineConfig::base(), AssistKind::Victim);
/// let base = exp.run(Benchmark::Adi, Scale::Tiny, Version::Base);
/// let sel = exp.run(Benchmark::Adi, Scale::Tiny, Version::Selective);
/// assert!(sel.cycles > 0 && base.cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    machine: MachineConfig,
    assist: AssistKind,
    opt: OptConfig,
}

impl Experiment {
    /// Creates an experiment with the default compiler configuration.
    pub fn new(machine: MachineConfig, assist: AssistKind) -> Self {
        let mut opt = OptConfig {
            block_bytes: machine.mem.l1d.block_size,
            ..OptConfig::default()
        };
        opt.tiling.cache_bytes = machine.mem.l1d.size;
        Experiment { machine, assist, opt }
    }

    /// Creates an experiment with an explicit compiler configuration.
    pub fn with_opt(machine: MachineConfig, assist: AssistKind, opt: OptConfig) -> Self {
        Experiment { machine, assist, opt }
    }

    /// The machine under test.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The assist under study.
    pub fn assist(&self) -> AssistKind {
        self.assist
    }

    /// The compiler configuration.
    pub fn opt(&self) -> &OptConfig {
        &self.opt
    }

    /// Prepares the program a version executes (Section 4.4's software
    /// development flow).
    pub fn prepare(&self, program: &Program, version: Version) -> Program {
        match version {
            Version::Base | Version::PureHardware => program.clone(),
            Version::PureSoftware | Version::Combined => optimize(program, &self.opt),
            Version::Selective => selective(program, &self.opt),
        }
    }

    /// The assist attached to the hierarchy for a version.
    fn assist_for(&self, version: Version) -> AssistKind {
        match version {
            Version::Base | Version::PureSoftware => AssistKind::None,
            _ => self.assist,
        }
    }

    /// Whether the assist flag starts enabled for a version. The selective
    /// version starts *off* (the code is assumed software-optimized until an
    /// ON instruction runs); the always-on versions start on.
    fn initially_enabled(&self, version: Version) -> bool {
        !matches!(version, Version::Selective)
    }

    /// Runs a prepared program.
    pub fn run_program(&self, program: &Program, version: Version) -> SimResult {
        let mut hier_cfg = self.machine.mem.clone();
        hier_cfg.assist = self.assist_for(version);
        let mut mem = MemoryHierarchy::new(hier_cfg);
        mem.set_assist_enabled(self.initially_enabled(version));
        let stats = Pipeline::new(self.machine.cpu).run(Interp::new(program), &mut mem);
        SimResult {
            cycles: stats.cycles,
            instructions: stats.committed,
            cpu: stats,
            mem: mem.stats(),
        }
    }

    /// Builds, prepares, and runs a benchmark under a version.
    pub fn run(&self, benchmark: Benchmark, scale: Scale, version: Version) -> SimResult {
        let base = benchmark.build(scale);
        let prepared = self.prepare(&base, version);
        self.run_program(&prepared, version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(assist: AssistKind) -> Experiment {
        Experiment::new(MachineConfig::base(), assist)
    }

    #[test]
    fn base_and_versions_commit_same_work() {
        // Base and PureHardware run identical code; Selective adds only the
        // ON/OFF instructions.
        let e = exp(AssistKind::Bypass);
        let base = e.run(Benchmark::Chaos, Scale::Tiny, Version::Base);
        let hw = e.run(Benchmark::Chaos, Scale::Tiny, Version::PureHardware);
        assert_eq!(base.instructions, hw.instructions);
        let sel = e.run(Benchmark::Chaos, Scale::Tiny, Version::Selective);
        assert!(sel.cpu.assist_toggles > 0, "selective must toggle the assist");
    }

    #[test]
    fn software_helps_regular_code() {
        let e = exp(AssistKind::Bypass);
        let base = e.run(Benchmark::Vpenta, Scale::Tiny, Version::Base);
        let sw = e.run(Benchmark::Vpenta, Scale::Tiny, Version::PureSoftware);
        assert!(
            sw.improvement_over(&base) > 5.0,
            "vpenta software improvement {:.2}%",
            sw.improvement_over(&base)
        );
    }

    #[test]
    fn software_cannot_help_irregular_code() {
        let e = exp(AssistKind::Bypass);
        let base = e.run(Benchmark::Li, Scale::Tiny, Version::Base);
        let sw = e.run(Benchmark::Li, Scale::Tiny, Version::PureSoftware);
        let imp = sw.improvement_over(&base).abs();
        assert!(imp < 3.0, "li software improvement should be tiny, got {imp:.2}%");
    }

    #[test]
    fn miss_rates_reported() {
        let e = exp(AssistKind::None);
        let r = e.run(Benchmark::Vpenta, Scale::Tiny, Version::Base);
        assert!(r.l1_miss_pct() > 5.0, "vpenta base L1 miss {:.1}%", r.l1_miss_pct());
        assert!(r.l2_miss_pct() >= 0.0);
    }

    #[test]
    fn prepare_is_deterministic() {
        let e = exp(AssistKind::Victim);
        let p = Benchmark::Swim.build(Scale::Tiny);
        assert_eq!(e.prepare(&p, Version::Selective), e.prepare(&p, Version::Selective));
    }
}
