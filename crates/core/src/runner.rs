//! The experiment runner: builds a benchmark, prepares the code for one of
//! the paper's simulated versions (Section 4.3), and runs it through the
//! processor + memory-hierarchy simulator.

use crate::config::MachineConfig;
use crate::engine::{selection_key, JobEngine};
use crate::executor::Executor;
use crate::profile::{RegionProfile, RegionProfileProbe};
use crate::sampled::{simulate_sampled, SampledInfo, SimMode};
use selcache_compiler::{optimize, region_partition, selective, selective_for, OptConfig};
use selcache_cpu::{CpuStats, Pipeline};
use selcache_ir::{Interp, Program, RegionMap};
use selcache_mem::{AssistKind, ControllerConfig, HierarchyStats, MemoryHierarchy};
use selcache_workloads::{Benchmark, Scale};
use std::fmt;

/// The four simulated versions of Section 4.3, plus the base run that
/// improvements are measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// Base code on the base machine (the 100% reference).
    Base,
    /// Base code with the hardware assist always on.
    PureHardware,
    /// Compiler-optimized code, no hardware assist.
    PureSoftware,
    /// Compiler-optimized code with the assist always on.
    Combined,
    /// Compiler-optimized code with compiler-inserted ON/OFF instructions
    /// driving the assist (this paper's approach).
    Selective,
}

impl Version {
    /// The four versions the paper's figures report (everything but
    /// [`Version::Base`]).
    pub const REPORTED: [Version; 4] =
        [Version::PureHardware, Version::PureSoftware, Version::Combined, Version::Selective];
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Version::Base => "Base",
            Version::PureHardware => "Pure Hardware",
            Version::PureSoftware => "Pure Software",
            Version::Combined => "Combined",
            Version::Selective => "Selective",
        };
        f.write_str(s)
    }
}

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Total execution cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Core statistics.
    pub cpu: CpuStats,
    /// Memory-hierarchy statistics.
    pub mem: HierarchyStats,
    /// Per-region attribution, present when the run was profiled
    /// ([`Experiment::run_profiled`], [`JobEngine::run_profiled`]).
    pub regions: Option<RegionProfile>,
    /// Sampling coverage, present when the run used [`SimMode::Sampled`]
    /// (cycles and miss counters are then weighted extrapolations from the
    /// representative intervals; `instructions` stays exact).
    pub sampled: Option<SampledInfo>,
    /// The stable execution-identity hash of the job that produced this
    /// result. Populated by the [`JobEngine`] (which uses it as its dedup
    /// key and store address); `None` for direct [`Experiment`] runs.
    pub job_id: Option<crate::identity::JobId>,
}

impl SimResult {
    /// L1 data-cache miss rate in percent (0 when no access was made, so
    /// an empty run never reports NaN).
    pub fn l1_miss_pct(&self) -> f64 {
        self.mem.l1d.miss_rate() * 100.0
    }

    /// L2 miss rate in percent (0 when no access was made).
    pub fn l2_miss_pct(&self) -> f64 {
        self.mem.l2.miss_rate() * 100.0
    }

    /// Percent improvement of `self` relative to a base run (positive =
    /// faster).
    pub fn improvement_over(&self, base: &SimResult) -> f64 {
        if base.cycles == 0 {
            return 0.0;
        }
        (base.cycles as f64 - self.cycles as f64) / base.cycles as f64 * 100.0
    }
}

/// The compiler configuration an experiment derives from its machine: the
/// locality passes target the L1 data cache's block size and capacity.
pub(crate) fn default_opt(machine: &MachineConfig) -> OptConfig {
    let mut opt = OptConfig { block_bytes: machine.mem.l1d.block_size, ..OptConfig::default() };
    opt.tiling.cache_bytes = machine.mem.l1d.size;
    opt
}

/// Runs one prepared program on one machine — the single simulation
/// primitive both [`Experiment::run_program`] and the
/// [`JobEngine`](crate::JobEngine) bottom out in.
pub(crate) fn simulate(
    machine: &MachineConfig,
    assist: AssistKind,
    assist_enabled: bool,
    program: &Program,
) -> SimResult {
    let mut hier_cfg = machine.mem.clone();
    hier_cfg.assist = assist;
    let mut mem = MemoryHierarchy::new(hier_cfg);
    mem.set_assist_enabled(assist_enabled);
    let stats = Pipeline::new(machine.cpu).run(Interp::new(program), &mut mem);
    SimResult {
        cycles: stats.cycles,
        instructions: stats.committed,
        cpu: stats,
        mem: mem.stats(),
        regions: None,
        sampled: None,
        job_id: None,
    }
}

/// [`simulate`] with a [`RegionProfileProbe`] attached: identical aggregate
/// counters, plus per-region attribution over `regions`.
pub(crate) fn simulate_profiled(
    machine: &MachineConfig,
    assist: AssistKind,
    assist_enabled: bool,
    program: &Program,
    regions: &RegionMap,
) -> SimResult {
    let mut hier_cfg = machine.mem.clone();
    hier_cfg.assist = assist;
    let mut mem = MemoryHierarchy::new(hier_cfg);
    mem.set_assist_enabled(assist_enabled);
    let mut probe = RegionProfileProbe::new(regions);
    let stats = Pipeline::new(machine.cpu).run_probed(
        Interp::with_regions(program, regions),
        &mut mem,
        &mut probe,
    );
    SimResult {
        cycles: stats.cycles,
        instructions: stats.committed,
        cpu: stats,
        mem: mem.stats(),
        regions: Some(probe.finish()),
        sampled: None,
        job_id: None,
    }
}

/// Fluent constructor for [`Experiment`] — the primary way to configure a
/// run.
///
/// Every knob has a sensible default (base machine, no assist, compiler
/// config derived from the machine, all available cores), so callers state
/// only what they vary:
///
/// ```
/// use selcache_core::{ExperimentBuilder, MachineConfig};
/// use selcache_mem::AssistKind;
///
/// let exp = ExperimentBuilder::new()
///     .machine(MachineConfig::base())
///     .assist(AssistKind::Victim)
///     .threads(2)
///     .build();
/// assert_eq!(exp.threads(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExperimentBuilder {
    machine: Option<MachineConfig>,
    assist: AssistKind,
    opt: Option<OptConfig>,
    threads: usize,
    mode: SimMode,
    controller: Option<ControllerConfig>,
}

impl ExperimentBuilder {
    /// A builder with every knob at its default.
    pub fn new() -> Self {
        ExperimentBuilder::default()
    }

    /// Sets the machine under test (default: [`MachineConfig::base`]).
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = Some(machine);
        self
    }

    /// Sets the hardware assist under study (default: [`AssistKind::None`]).
    pub fn assist(mut self, assist: AssistKind) -> Self {
        self.assist = assist;
        self
    }

    /// Overrides the compiler configuration (default: derived from the
    /// machine's L1 block size and capacity).
    pub fn opt(mut self, opt: OptConfig) -> Self {
        self.opt = Some(opt);
        self
    }

    /// Sets the worker-thread count for suite execution. `0` (the default)
    /// means [`JobEngine::default_parallelism`]; `1` reproduces the
    /// historical serial execution exactly.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the simulation mode (default [`SimMode::Exact`]). Pass
    /// [`SimMode::sampled`] (or a hand-tuned [`SimMode::Sampled`]) to
    /// replace detailed whole-trace simulation with interval sampling.
    pub fn mode(mut self, mode: SimMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attaches the online assist controller to the machine under test
    /// (default: none — fully static assist selection). With a controller,
    /// [`Version::Selective`] prepares its code with every region marked
    /// ON and the hardware picks {off, bypass, victim} per region at run
    /// time.
    pub fn controller(mut self, ctl: ControllerConfig) -> Self {
        self.controller = Some(ctl);
        self
    }

    /// Builds the experiment.
    pub fn build(self) -> Experiment {
        let mut machine = self.machine.unwrap_or_else(MachineConfig::base);
        if let Some(ctl) = self.controller {
            machine.mem.controller = Some(ctl);
        }
        let opt = self.opt.unwrap_or_else(|| default_opt(&machine));
        Experiment {
            machine,
            assist: self.assist,
            opt,
            threads: self.threads,
            mode: self.mode,
            executor: Executor::new(self.threads),
        }
    }
}

/// An experiment: a machine configuration plus the hardware assist under
/// study.
///
/// Construct one with [`ExperimentBuilder`] (or the [`Experiment::new`] /
/// [`Experiment::with_opt`] shorthands).
///
/// ```
/// use selcache_core::{Experiment, MachineConfig, Version};
/// use selcache_mem::AssistKind;
/// use selcache_workloads::{Benchmark, Scale};
///
/// let exp = Experiment::new(MachineConfig::base(), AssistKind::Victim);
/// let base = exp.run(Benchmark::Adi, Scale::Tiny, Version::Base);
/// let sel = exp.run(Benchmark::Adi, Scale::Tiny, Version::Selective);
/// assert!(sel.cycles > 0 && base.cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    machine: MachineConfig,
    assist: AssistKind,
    opt: OptConfig,
    threads: usize,
    mode: SimMode,
    executor: Executor,
}

impl Experiment {
    /// Creates an experiment with the default compiler configuration.
    pub fn new(machine: MachineConfig, assist: AssistKind) -> Self {
        ExperimentBuilder::new().machine(machine).assist(assist).build()
    }

    /// Creates an experiment with an explicit compiler configuration.
    pub fn with_opt(machine: MachineConfig, assist: AssistKind, opt: OptConfig) -> Self {
        ExperimentBuilder::new().machine(machine).assist(assist).opt(opt).build()
    }

    /// The machine under test.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The assist under study.
    pub fn assist(&self) -> AssistKind {
        self.assist
    }

    /// The compiler configuration.
    pub fn opt(&self) -> &OptConfig {
        &self.opt
    }

    /// The configured worker-thread count (`0` = all available cores).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The simulation mode.
    pub fn mode(&self) -> SimMode {
        self.mode
    }

    /// A [`JobEngine`] sharing this experiment's thread budget: jobs run
    /// through the engine and sampled intervals run through
    /// [`Experiment::run`] lease workers from one pool.
    pub fn engine(&self) -> JobEngine {
        JobEngine::with_executor(self.executor.clone())
    }

    /// Prepares the program a version executes (Section 4.4's software
    /// development flow).
    pub fn prepare(&self, program: &Program, version: Version) -> Program {
        match version {
            Version::Base | Version::PureHardware => program.clone(),
            Version::PureSoftware | Version::Combined => optimize(program, &self.opt),
            // Under a controller every region is marked ON (the hardware
            // decides); statically, the paper's irregular-regions rule.
            Version::Selective if self.machine.mem.controller.is_some() => {
                selective_for(program, &self.opt, selcache_compiler::AssistPolicy::Dynamic)
            }
            Version::Selective => selective(program, &self.opt),
        }
    }

    /// Runs a prepared program under the experiment's [`SimMode`]. Ad-hoc
    /// programs carry no stable identity, so sampled runs through this
    /// entry point profile the trace afresh each call; [`Experiment::run`]
    /// and the [`JobEngine`] share profile passes process-wide.
    pub fn run_program(&self, program: &Program, version: Version) -> SimResult {
        self.dispatch(program, version, None)
    }

    /// Builds, prepares, and runs a benchmark under a version.
    pub fn run(&self, benchmark: Benchmark, scale: Scale, version: Version) -> SimResult {
        let base = benchmark.build(scale);
        let prepared = self.prepare(&base, version);
        let key = match self.mode {
            SimMode::Exact => None,
            SimMode::Sampled { interval_ops, max_intervals, .. } => Some(selection_key(
                benchmark,
                scale,
                version,
                &self.opt,
                self.machine.mem.controller.is_some(),
                interval_ops,
                max_intervals,
            )),
        };
        self.dispatch(&prepared, version, key)
    }

    fn dispatch(&self, program: &Program, version: Version, key: Option<u128>) -> SimResult {
        let assist = version.effective_assist(self.assist);
        let enabled = version.initially_enabled();
        match self.mode {
            // Controller-attached exact runs always simulate with the
            // region partition: the controller's per-region decisions need
            // region identities. The profile itself is dropped — plain runs
            // stay region-less, exactly like the engine's plain path.
            SimMode::Exact if self.machine.mem.controller.is_some() => {
                let map = region_partition(program, self.opt.threshold);
                let mut r = simulate_profiled(&self.machine, assist, enabled, program, &map);
                r.regions = None;
                r
            }
            SimMode::Exact => simulate(&self.machine, assist, enabled, program),
            SimMode::Sampled { interval_ops, max_intervals, warmup } => simulate_sampled(
                &self.machine,
                assist,
                enabled,
                program,
                interval_ops,
                max_intervals,
                warmup,
                key,
                &self.executor,
            ),
        }
    }

    /// [`Experiment::run`] with region profiling: partitions the prepared
    /// program with the experiment's threshold and attributes every cycle,
    /// commit, cache access, and assist event to its region. The result's
    /// `regions` field is populated; aggregate counters are unchanged.
    /// Profiled runs are always exact — attribution needs every op through
    /// the detailed pipeline, so [`SimMode::Sampled`] does not apply here.
    pub fn run_profiled(&self, benchmark: Benchmark, scale: Scale, version: Version) -> SimResult {
        let base = benchmark.build(scale);
        let prepared = self.prepare(&base, version);
        let map = region_partition(&prepared, self.opt.threshold);
        simulate_profiled(
            &self.machine,
            version.effective_assist(self.assist),
            version.initially_enabled(),
            &prepared,
            &map,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(assist: AssistKind) -> Experiment {
        Experiment::new(MachineConfig::base(), assist)
    }

    #[test]
    fn base_and_versions_commit_same_work() {
        // Base and PureHardware run identical code; Selective adds only the
        // ON/OFF instructions.
        let e = exp(AssistKind::Bypass);
        let base = e.run(Benchmark::Chaos, Scale::Tiny, Version::Base);
        let hw = e.run(Benchmark::Chaos, Scale::Tiny, Version::PureHardware);
        assert_eq!(base.instructions, hw.instructions);
        let sel = e.run(Benchmark::Chaos, Scale::Tiny, Version::Selective);
        assert!(sel.cpu.assist_toggles > 0, "selective must toggle the assist");
    }

    #[test]
    fn software_helps_regular_code() {
        let e = exp(AssistKind::Bypass);
        let base = e.run(Benchmark::Vpenta, Scale::Tiny, Version::Base);
        let sw = e.run(Benchmark::Vpenta, Scale::Tiny, Version::PureSoftware);
        assert!(
            sw.improvement_over(&base) > 5.0,
            "vpenta software improvement {:.2}%",
            sw.improvement_over(&base)
        );
    }

    #[test]
    fn software_cannot_help_irregular_code() {
        let e = exp(AssistKind::Bypass);
        let base = e.run(Benchmark::Li, Scale::Tiny, Version::Base);
        let sw = e.run(Benchmark::Li, Scale::Tiny, Version::PureSoftware);
        let imp = sw.improvement_over(&base).abs();
        assert!(imp < 3.0, "li software improvement should be tiny, got {imp:.2}%");
    }

    #[test]
    fn miss_rates_reported() {
        let e = exp(AssistKind::None);
        let r = e.run(Benchmark::Vpenta, Scale::Tiny, Version::Base);
        assert!(r.l1_miss_pct() > 5.0, "vpenta base L1 miss {:.1}%", r.l1_miss_pct());
        assert!(r.l2_miss_pct() >= 0.0);
    }

    #[test]
    fn prepare_is_deterministic() {
        let e = exp(AssistKind::Victim);
        let p = Benchmark::Swim.build(Scale::Tiny);
        assert_eq!(e.prepare(&p, Version::Selective), e.prepare(&p, Version::Selective));
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let d = ExperimentBuilder::new().build();
        assert_eq!(*d.machine(), MachineConfig::base());
        assert_eq!(d.assist(), AssistKind::None);
        assert_eq!(d.threads(), 0);
        assert!(d.engine().threads() >= 1);

        let machine = MachineConfig::base();
        let derived = default_opt(&machine);
        let e =
            ExperimentBuilder::new().machine(machine).assist(AssistKind::Stream).threads(1).build();
        assert_eq!(*e.opt(), derived);
        assert_eq!(e.assist(), AssistKind::Stream);
        assert_eq!(e.engine().threads(), 1);
    }

    #[test]
    fn profiled_run_matches_unprofiled_aggregates() {
        let e = exp(AssistKind::Bypass);
        let plain = e.run(Benchmark::Li, Scale::Tiny, Version::Selective);
        let prof = e.run_profiled(Benchmark::Li, Scale::Tiny, Version::Selective);
        assert_eq!(plain.cycles, prof.cycles, "the probe must not perturb the run");
        assert_eq!(plain.cpu, prof.cpu);
        assert_eq!(plain.mem, prof.mem);
        let total = prof.regions.as_ref().expect("profiled").total();
        assert_eq!(total.cycles, prof.cycles);
        assert_eq!(total.committed, prof.instructions);
        assert_eq!(total.l1d_accesses, prof.mem.l1d.accesses);
        assert_eq!(total.l1d_misses, prof.mem.l1d.misses);
    }

    #[test]
    fn dynamic_experiment_runs_and_profiles_consistently() {
        let e = ExperimentBuilder::new()
            .controller(ControllerConfig { interval_accesses: 128, ..ControllerConfig::default() })
            .threads(1)
            .build();
        assert!(e.machine().mem.controller.is_some());
        let plain = e.run(Benchmark::Li, Scale::Tiny, Version::Selective);
        assert!(plain.regions.is_none(), "plain dynamic runs stay region-less");
        let prof = e.run_profiled(Benchmark::Li, Scale::Tiny, Version::Selective);
        assert_eq!(plain.cycles, prof.cycles, "profiling must not perturb dynamic runs");
        assert_eq!(plain.mem, prof.mem);
        assert!(prof.regions.is_some());
    }

    #[test]
    fn builder_matches_legacy_constructors() {
        let m = MachineConfig::larger_l1();
        let a = Experiment::new(m.clone(), AssistKind::Victim);
        let b = ExperimentBuilder::new().machine(m).assist(AssistKind::Victim).build();
        assert_eq!(a.opt(), b.opt());
        assert_eq!(a.machine(), b.machine());
    }
}
