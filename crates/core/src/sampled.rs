//! Sampled simulation: SimPoint-style interval selection with
//! checkpointed functional warmup.
//!
//! Detailed simulation cost grows linearly with trace length, which makes
//! the large workload scales (tens of millions of ops) painful to iterate
//! on. Sampled mode replaces the detailed run with:
//!
//! 1. **Profile pass.** One cheap functional pass over the trace
//!    fingerprints every fixed-size interval
//!    ([`selcache_analysis::IntervalProfiler`]) and captures an
//!    interpreter checkpoint ([`selcache_ir::InterpCheckpoint`]) at every
//!    interval boundary, along with the last assist ON/OFF marker seen.
//! 2. **Selection.** K-medoids clustering over the fingerprints
//!    ([`selcache_analysis::select`]) picks one representative interval
//!    per cluster with a weight proportional to the work its cluster
//!    covers.
//! 3. **Checkpointed warmup + detailed measurement.** For each
//!    representative the interpreter is restored from the nearest
//!    checkpoint, fast-forwarded to the warmup window, and the memory
//!    hierarchy and branch predictor are warmed *functionally* (state
//!    transitions only, no timing). Timing state is then reset, a stats
//!    baseline is taken, and only the representative interval runs through
//!    the full out-of-order pipeline.
//! 4. **Weighted reconstruction.** Per-interval counter deltas are scaled
//!    by the representative weights and summed, reconstructing whole-trace
//!    cycles and miss counts.
//!
//! Functional warmup is exact here, not an approximation: the hierarchy's
//! timed path affects only returned latencies, never which blocks fill or
//! evict, so warming with `now = 0` accesses leaves bit-identical
//! functional state (pinned by `warm_access_matches_timed_state` in
//! `selcache-mem`).
//!
//! The profile pass and its checkpoints depend only on the prepared
//! program, so they are shared process-wide across machine variants,
//! assists, and the Base/Selective version pair whenever the preparation
//! coincides (see [`selection`]'s cache).

use crate::config::MachineConfig;
use crate::executor::Executor;
use crate::runner::SimResult;
use selcache_analysis::{select, IntervalConfig, IntervalProfiler, Representative};
use selcache_cpu::{CpuStats, Pipeline, Predictor};
use selcache_ir::{Interp, InterpCheckpoint, OpKind, Plan, Program};
use selcache_mem::{AssistKind, HierarchyStats, MemoryHierarchy};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// How a job is simulated: exactly (every op through the detailed
/// pipeline) or sampled (representative intervals only, extrapolated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SimMode {
    /// Detailed simulation of the whole trace (the default).
    #[default]
    Exact,
    /// SimPoint-style sampled simulation.
    Sampled {
        /// Ops per interval (the sampling unit).
        interval_ops: u64,
        /// Maximum number of representative intervals simulated in detail.
        max_intervals: usize,
        /// Ops of functional cache/predictor warmup before each measured
        /// interval.
        warmup: u64,
    },
}

impl SimMode {
    /// Sampled mode with the default parameters: 128 Ki-op intervals, at
    /// most 6 representatives, 64 Ki-op warmup. Tuned so the large scales
    /// sample well under a tenth of the trace while keeping CPI and
    /// miss-rate errors within a few percent.
    pub fn sampled() -> SimMode {
        SimMode::Sampled { interval_ops: 1 << 17, max_intervals: 6, warmup: 1 << 16 }
    }

    /// True for [`SimMode::Sampled`].
    pub fn is_sampled(&self) -> bool {
        matches!(self, SimMode::Sampled { .. })
    }
}

/// How a sampled result was produced — attached to
/// [`SimResult::sampled`](crate::SimResult) so consumers can see the
/// coverage behind the extrapolated counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledInfo {
    /// Exact dynamic op count of the full trace (from the profile pass).
    pub total_ops: u64,
    /// Intervals the trace was cut into.
    pub intervals: usize,
    /// Representatives simulated in detail.
    pub representatives: usize,
    /// Ops that went through the detailed pipeline.
    pub detailed_ops: u64,
    /// Ops of functional warmup executed across all representatives.
    pub warmup_ops: u64,
}

impl SampledInfo {
    /// Fraction of the trace simulated in detail, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.detailed_ops as f64 / self.total_ops as f64
        }
    }
}

/// One interval-boundary checkpoint from the profile pass.
#[derive(Debug, Clone)]
struct Ckpt {
    /// Trace position (ops emitted before this point).
    pos: u64,
    /// Last assist marker seen before this point (`None`: no marker yet).
    assist: Option<bool>,
    state: InterpCheckpoint,
}

/// The reusable product of the profile pass: everything pass 2 needs that
/// depends only on the prepared program and the interval geometry.
#[derive(Debug)]
pub(crate) struct Selection {
    total_ops: u64,
    intervals: usize,
    interval_ops: u64,
    reps: Vec<Representative>,
    checkpoints: Vec<Ckpt>,
}

/// Upper bound on retained checkpoints; boundaries beyond it are thinned
/// to a uniform stride (warmup then fast-forwards a little further).
const CKPT_CAP: usize = 512;

/// Runs the profile pass: fingerprints every interval, selects the
/// representatives, and captures boundary checkpoints.
fn profile(program: &Program, plan: &Plan, interval_ops: u64, max_intervals: usize) -> Selection {
    let mut interp = Interp::with_plan(program, plan);
    let mut profiler = IntervalProfiler::new(IntervalConfig {
        interval_ops,
        max_intervals,
        ..IntervalConfig::default()
    });
    let mut checkpoints = vec![Ckpt { pos: 0, assist: None, state: interp.checkpoint() }];
    let mut cur_assist = None;
    let mut emitted = 0u64;
    let mut until_boundary = interval_ops;
    while let Some(op) = interp.next() {
        match op.kind {
            OpKind::AssistOn => cur_assist = Some(true),
            OpKind::AssistOff => cur_assist = Some(false),
            _ => {}
        }
        profiler.record(op.pc, op.kind.addr());
        emitted += 1;
        // Countdown instead of `emitted % interval_ops`: this runs once per
        // op of the whole trace, and the division is measurable there.
        until_boundary -= 1;
        if until_boundary == 0 {
            until_boundary = interval_ops;
            checkpoints.push(Ckpt { pos: emitted, assist: cur_assist, state: interp.checkpoint() });
        }
    }
    if checkpoints.len() > CKPT_CAP {
        let stride = checkpoints.len().div_ceil(CKPT_CAP);
        checkpoints = checkpoints
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % stride == 0)
            .map(|(_, c)| c)
            .collect();
    }
    let fps = profiler.finish();
    let reps = select(&fps, max_intervals);
    Selection { total_ops: emitted, intervals: fps.len(), interval_ops, reps, checkpoints }
}

/// Process-wide cache of profile passes, keyed by the caller-provided
/// selection key (a hash of the prepared-program identity and the interval
/// geometry). Lets the Base/PureHardware pair, assist variants, and sweep
/// points that execute the same prepared program share one profile pass
/// and one set of checkpoints.
fn selection_cache() -> &'static Mutex<HashMap<u128, Arc<Selection>>> {
    static CACHE: OnceLock<Mutex<HashMap<u128, Arc<Selection>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The profile pass for `program`, answered from the process-wide cache
/// when `key` is provided and already profiled.
pub(crate) fn selection(
    program: &Program,
    plan: &Plan,
    interval_ops: u64,
    max_intervals: usize,
    key: Option<u128>,
) -> Arc<Selection> {
    if let Some(key) = key {
        if let Some(sel) = selection_cache().lock().expect("selection cache").get(&key) {
            return Arc::clone(sel);
        }
    }
    let sel = Arc::new(profile(program, plan, interval_ops, max_intervals));
    if let Some(key) = key {
        // A concurrent profiler of the same key computed an identical
        // selection (the pass is deterministic); either insert is fine.
        selection_cache().lock().expect("selection cache").insert(key, Arc::clone(&sel));
    }
    sel
}

/// Adds `w`-scaled counters of `src` into `dst`, rounding to nearest —
/// the [`CpuStats`] analogue of [`HierarchyStats::add_scaled`].
fn add_scaled_cpu(dst: &mut CpuStats, src: &CpuStats, w: f64) {
    let s = |x: u64| (x as f64 * w).round().max(0.0) as u64;
    dst.cycles += s(src.cycles);
    dst.committed += s(src.committed);
    dst.loads += s(src.loads);
    dst.stores += s(src.stores);
    dst.branches += s(src.branches);
    dst.int_ops += s(src.int_ops);
    dst.fp_ops += s(src.fp_ops);
    dst.assist_toggles += s(src.assist_toggles);
    dst.mispredicts += s(src.mispredicts);
    dst.fetch_stall_cycles += s(src.fetch_stall_cycles);
    dst.issue_stall_cycles += s(src.issue_stall_cycles);
}

/// What one representative's detailed run measured, before weighting:
/// integer counter deltas, so the parallel fan-out stays bit-exact.
struct RepMeasure {
    cpu: CpuStats,
    mem: HierarchyStats,
    rep_len: u64,
    warm_ops: u64,
}

/// Restores, warms, and measures one representative interval — the
/// independent unit the executor fans out. Everything it touches is
/// per-call state (fresh interpreter, hierarchy, and predictor per
/// representative), so representatives never share mutable state.
#[allow(clippy::too_many_arguments)]
fn measure_rep(
    machine: &MachineConfig,
    assist: AssistKind,
    assist_enabled: bool,
    program: &Program,
    plan: &Plan,
    sel: &Selection,
    warmup: u64,
    rep: &Representative,
) -> RepMeasure {
    let start = rep.interval as u64 * sel.interval_ops;
    let rep_len = sel.interval_ops.min(sel.total_ops - start);
    let warm_start = start.saturating_sub(warmup);

    // Restore the nearest checkpoint at or before the warmup window
    // and fast-forward to its start, tracking assist markers skipped.
    let ckpt = sel
        .checkpoints
        .iter()
        .take_while(|c| c.pos <= warm_start)
        .last()
        .expect("checkpoint 0 is always present");
    let mut interp = Interp::with_plan(program, plan);
    interp.restore(&ckpt.state);
    let (_, skipped_marker) = interp.advance(warm_start - ckpt.pos);
    let assist_state = skipped_marker.or(ckpt.assist).unwrap_or(assist_enabled);

    // Functional warmup: caches, TLB, and predictor see every access
    // of the warmup window, but no timing accumulates.
    let mut hier_cfg = machine.mem.clone();
    hier_cfg.assist = assist;
    let mut mem = MemoryHierarchy::new(hier_cfg);
    mem.set_assist_enabled(assist_state);
    let mut predictor = Predictor::from_config(&machine.cpu);
    let mut last_fetch_block = u64::MAX;
    for _ in 0..start - warm_start {
        let Some(op) = interp.next() else { break };
        let fb = op.pc / machine.cpu.fetch_block;
        if fb != last_fetch_block {
            last_fetch_block = fb;
            mem.warm_fetch(op.pc);
        }
        match op.kind {
            OpKind::Load(a) => mem.warm_access(a, false),
            OpKind::Store(a) => mem.warm_access(a, true),
            OpKind::Branch { taken } => {
                predictor.update(op.pc, taken);
            }
            OpKind::AssistOn => mem.set_assist_enabled(true),
            OpKind::AssistOff => mem.set_assist_enabled(false),
            OpKind::IntAlu | OpKind::FpAlu => {}
        }
    }

    // Detailed measurement of the representative interval, isolated
    // from warmup via timing reset and a stats baseline.
    mem.reset_timing();
    let baseline = mem.stats();
    let stats = Pipeline::with_predictor(machine.cpu, predictor)
        .run((&mut interp).take(rep_len as usize), &mut mem);
    let mem_delta = mem.stats().since(&baseline);
    RepMeasure { cpu: stats, mem: mem_delta, rep_len, warm_ops: start - warm_start }
}

/// Runs one prepared program in sampled mode. The drop-in sampled
/// counterpart of [`crate::runner::simulate`]: same inputs plus the
/// sampling parameters, an optional process-wide selection-cache key, and
/// the executor whose thread budget the per-representative fan-out leases
/// workers from.
///
/// Each representative (checkpoint restore → functional warmup → detailed
/// interval) is fully independent, so they run concurrently; the weighted
/// reconstruction then folds the integer deltas in representative order,
/// which keeps the floating-point accumulation order — and therefore the
/// output — bit-identical to a serial run at every thread count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_sampled(
    machine: &MachineConfig,
    assist: AssistKind,
    assist_enabled: bool,
    program: &Program,
    interval_ops: u64,
    max_intervals: usize,
    warmup: u64,
    selection_key: Option<u128>,
    executor: &Executor,
) -> SimResult {
    let plan = Plan::compile(program);
    let sel = selection(program, &plan, interval_ops, max_intervals, selection_key);

    let measures = executor.map(&sel.reps, |rep| {
        measure_rep(machine, assist, assist_enabled, program, &plan, &sel, warmup, rep)
    });

    // Slot-ordered reconstruction: identical accumulation order (and thus
    // identical rounding) to the historical serial loop.
    let mut cpu = CpuStats::default();
    let mut mem_total = HierarchyStats::default();
    let mut detailed_ops = 0u64;
    let mut warmup_ops = 0u64;
    for (rep, m) in sel.reps.iter().zip(&measures) {
        add_scaled_cpu(&mut cpu, &m.cpu, rep.weight);
        mem_total.add_scaled(&m.mem, rep.weight);
        detailed_ops += m.rep_len;
        warmup_ops += m.warm_ops;
    }

    SimResult {
        cycles: cpu.cycles,
        // The profile pass counts every committed op exactly; only cycles
        // and miss counters are extrapolated.
        instructions: sel.total_ops,
        cpu,
        mem: mem_total,
        regions: None,
        sampled: Some(SampledInfo {
            total_ops: sel.total_ops,
            intervals: sel.intervals,
            representatives: sel.reps.len(),
            detailed_ops,
            warmup_ops,
        }),
        job_id: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::simulate;
    use selcache_workloads::{Benchmark, Scale};

    fn base() -> MachineConfig {
        MachineConfig::base()
    }

    #[test]
    fn single_interval_trace_matches_exact_simulation() {
        // A trace shorter than one interval has exactly one representative
        // with weight 1 and no warmup to skip: the sampled path degenerates
        // to the exact pipeline run and must agree bit-for-bit.
        let program = Benchmark::Adi.build(Scale::Tiny);
        let exact = simulate(&base(), AssistKind::None, true, &program);
        let sampled = simulate_sampled(
            &base(),
            AssistKind::None,
            true,
            &program,
            u64::MAX,
            4,
            1 << 16,
            None,
            &Executor::serial(),
        );
        assert_eq!(sampled.cycles, exact.cycles);
        assert_eq!(sampled.instructions, exact.instructions);
        assert_eq!(sampled.cpu, exact.cpu);
        assert_eq!(sampled.mem, exact.mem);
        let info = sampled.sampled.expect("sampled info");
        assert_eq!(info.intervals, 1);
        assert_eq!(info.representatives, 1);
        assert_eq!(info.detailed_ops, info.total_ops);
        assert!((info.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_is_deterministic_and_cache_transparent() {
        let program = Benchmark::Vpenta.build(Scale::Small);
        let ex = Executor::new(4);
        let run = |key| {
            simulate_sampled(&base(), AssistKind::None, true, &program, 4096, 4, 1024, key, &ex)
        };
        let fresh = run(None);
        let a = run(Some(0xfeed_beef));
        let b = run(Some(0xfeed_beef)); // answered from the cache
        assert_eq!(fresh, a, "cache key must not change the result");
        assert_eq!(a, b);
        let info = a.sampled.expect("sampled info");
        assert!(info.representatives <= 4);
        assert!(info.detailed_ops < info.total_ops, "must actually sample");
    }

    #[test]
    fn sampled_tracks_exact_within_tolerance() {
        // Accuracy smoke at a scale that exercises selection, warmup, and
        // extrapolation; the strict 3% gate at Scale::Large lives in the
        // sampled_run example (wired into CI).
        let program = Benchmark::Vpenta.build(Scale::Medium);
        let exact = simulate(&base(), AssistKind::None, true, &program);
        let sampled = simulate_sampled(
            &base(),
            AssistKind::None,
            true,
            &program,
            1 << 16,
            6,
            1 << 14,
            None,
            &Executor::new(4),
        );
        assert_eq!(sampled.instructions, exact.instructions, "op counts are exact");
        let cpi = |r: &SimResult| r.cycles as f64 / r.instructions as f64;
        let cpi_err = (cpi(&sampled) - cpi(&exact)).abs() / cpi(&exact);
        assert!(cpi_err < 0.05, "CPI error {:.2}% too large", cpi_err * 100.0);
        let miss_err = (sampled.l1_miss_pct() - exact.l1_miss_pct()).abs();
        assert!(miss_err < 2.0, "L1 miss-rate error {miss_err:.2} points too large");
    }

    #[test]
    fn selective_version_warms_assist_state_from_markers() {
        // A selectively-marked program starts with the assist off and
        // toggles it mid-trace; the sampled run must reproduce toggles and
        // assisted accesses in proportion.
        let opt = crate::runner::default_opt(&base());
        let program = selcache_compiler::selective(&Benchmark::Chaos.build(Scale::Small), &opt);
        let exact = simulate(&base(), AssistKind::Bypass, false, &program);
        let sampled = simulate_sampled(
            &base(),
            AssistKind::Bypass,
            false,
            &program,
            4096,
            6,
            2048,
            None,
            &Executor::new(2),
        );
        assert!(exact.cpu.assist_toggles > 0);
        assert!(sampled.cpu.assist_toggles > 0, "markers must survive sampling");
        let share = |r: &SimResult| {
            r.mem.assist.assisted_accesses as f64 / r.mem.l1d.accesses.max(1) as f64
        };
        assert!(
            (share(&sampled) - share(&exact)).abs() < 0.15,
            "assisted-access share: sampled {:.3} vs exact {:.3}",
            share(&sampled),
            share(&exact)
        );
    }

    #[test]
    fn parallel_fanout_is_bit_identical_to_serial() {
        // The executor only changes which thread measures a representative;
        // the slot-ordered reconstruction makes the totals bit-identical.
        let program = Benchmark::Vpenta.build(Scale::Small);
        let run = |threads| {
            simulate_sampled(
                &base(),
                AssistKind::None,
                true,
                &program,
                4096,
                4,
                1024,
                None,
                &Executor::new(threads),
            )
        };
        let serial = run(1);
        assert!(serial.sampled.expect("sampled info").representatives > 1);
        for threads in [2, 8] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn mode_constructors() {
        assert_eq!(SimMode::default(), SimMode::Exact);
        assert!(!SimMode::Exact.is_sampled());
        let s = SimMode::sampled();
        assert!(s.is_sampled());
        let SimMode::Sampled { interval_ops, max_intervals, warmup } = s else {
            panic!("sampled() must be Sampled");
        };
        assert!(interval_ops > warmup);
        assert!(max_intervals > 0);
    }
}
