//! Persistent content-addressed result store.
//!
//! Results are addressed by [`JobId`] — the stable 128-bit hash of a
//! job's canonical execution identity (see [`crate::identity`]) — and
//! live at `<root>/<hex[..2]>/<hex>.json`. Each entry is a versioned JSON
//! envelope:
//!
//! ```json
//! {
//!   "schema": "selcache-store/1",
//!   "job_id": "c0ffee…(32 hex digits)",
//!   "identity": "<canonical identity bytes, hex>",
//!   "created_unix_ms": 1754610000000,
//!   "sim_wall_ms": 12.5,
//!   "result": { "cycles": …, "instructions": …, "cpu": {…}, "mem": {…} }
//! }
//! ```
//!
//! Robustness rules:
//!
//! - **Writes are atomic**: entries are written to a `.tmp-` sibling and
//!   `rename`d into place, so readers never observe a torn file and
//!   concurrent writers of the same id settle on one complete entry.
//! - **Corrupt or stale entries are misses**: unparsable JSON, an
//!   unknown `schema`, or an `identity` echo that does not match the
//!   canonical bytes of the requesting job all make [`Store::get`] return
//!   `None` (the engine then re-simulates and overwrites the entry).
//!   A 128-bit hash makes collisions implausible, but the identity echo
//!   turns even one into a re-simulation instead of a wrong answer.
//! - **`gc` repairs the tree**: it deletes corrupt and stale-schema
//!   entries, abandoned temp files, and (optionally) entries older than a
//!   cutoff.

use crate::identity::{to_hex, JobId};
use crate::json::Json;
use crate::profile::{RegionProfile, RegionStats};
use crate::runner::SimResult;
use crate::sampled::SampledInfo;
use selcache_cpu::CpuStats;
use selcache_mem::{AssistStats, CacheStats, HierarchyStats};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Envelope schema tag. Entries carrying any other tag are treated as
/// misses and reclaimed by [`Store::gc`].
pub const STORE_SCHEMA: &str = "selcache-store/1";

/// A content-addressed result store rooted at one directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Store {
    root: PathBuf,
}

/// Aggregate size of a store ([`Store::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Valid-looking entry files (`*.json` under a shard directory).
    pub entries: usize,
    /// Total bytes across those entries.
    pub bytes: u64,
}

/// What one [`Store::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries kept.
    pub kept: usize,
    /// Entries removed (corrupt, stale-schema, or past the age cutoff).
    pub removed: usize,
    /// Abandoned temp files removed.
    pub tmp_removed: usize,
    /// Bytes freed by removals.
    pub bytes_freed: u64,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, id: JobId) -> PathBuf {
        let hex = id.to_string();
        self.root.join(&hex[..2]).join(format!("{hex}.json"))
    }

    /// Looks up a stored result. `identity` is the job's canonical
    /// identity byte string; an entry whose echo does not match is a miss.
    /// Every failure mode (absent, unreadable, corrupt, stale schema) is a
    /// miss — the store never turns disk trouble into an error on the read
    /// path.
    pub fn get(&self, id: JobId, identity: &[u8]) -> Option<SimResult> {
        let text = fs::read_to_string(self.entry_path(id)).ok()?;
        let env = Json::parse(&text).ok()?;
        if env.get("schema")?.as_str()? != STORE_SCHEMA {
            return None;
        }
        if env.get("job_id")?.as_str()? != id.to_string() {
            return None;
        }
        if env.get("identity")?.as_str()? != to_hex(identity) {
            return None;
        }
        result_from_json(env.get("result")?)
    }

    /// Stores a result, overwriting any previous entry for `id`. Returns
    /// the entry's size in bytes. `sim_wall_ms` is the wall-clock cost of
    /// the simulation that produced it (timing metadata for consumers;
    /// the engine's warm-vs-cold accounting reads it back out of
    /// envelopes only informally).
    pub fn put(
        &self,
        id: JobId,
        identity: &[u8],
        result: &SimResult,
        sim_wall_ms: f64,
    ) -> io::Result<u64> {
        let created =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
        let env = Json::obj([
            ("schema", Json::str(STORE_SCHEMA)),
            ("job_id", Json::str(id.to_string())),
            ("identity", Json::str(to_hex(identity))),
            ("created_unix_ms", Json::UInt(created)),
            ("sim_wall_ms", Json::Num(sim_wall_ms)),
            ("result", result_to_json(result)),
        ]);
        let mut text = env.to_string();
        text.push('\n');

        let path = self.entry_path(id);
        let dir = path.parent().expect("entry paths always have a shard directory");
        fs::create_dir_all(dir)?;
        // Atomic publish: write a unique temp sibling, then rename over
        // the final name. Concurrent writers of the same id each publish a
        // complete entry; the last rename wins.
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dir.join(format!(".tmp-{}-{seq}", std::process::id()));
        fs::write(&tmp, &text)?;
        fs::rename(&tmp, &path)?;
        Ok(text.len() as u64)
    }

    /// Walks the store: deletes abandoned temp files and entries that are
    /// corrupt, carry a stale schema, or (when `max_age` is given) were
    /// created more than `max_age` ago.
    pub fn gc(&self, max_age: Option<Duration>) -> io::Result<GcReport> {
        let cutoff_ms = max_age.map(|age| {
            let now = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
            now.saturating_sub(age.as_millis() as u64)
        });
        let mut report = GcReport::default();
        for shard in read_dir_sorted(&self.root)? {
            if !shard.is_dir() {
                continue;
            }
            for path in read_dir_sorted(&shard)? {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                let size = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                if name.starts_with(".tmp-") {
                    fs::remove_file(&path)?;
                    report.tmp_removed += 1;
                    report.bytes_freed += size;
                    continue;
                }
                if !name.ends_with(".json") {
                    continue;
                }
                if entry_live(&path, cutoff_ms) {
                    report.kept += 1;
                } else {
                    fs::remove_file(&path)?;
                    report.removed += 1;
                    report.bytes_freed += size;
                }
            }
        }
        Ok(report)
    }

    /// Counts entries and bytes currently in the store.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        let Ok(shards) = read_dir_sorted(&self.root) else {
            return stats;
        };
        for shard in shards {
            if !shard.is_dir() {
                continue;
            }
            let Ok(entries) = read_dir_sorted(&shard) else {
                continue;
            };
            for path in entries {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name.ends_with(".json") {
                    stats.entries += 1;
                    stats.bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                }
            }
        }
        stats
    }
}

/// Whether an entry parses, carries the current schema, and is newer than
/// the optional cutoff.
fn entry_live(path: &Path, cutoff_ms: Option<u64>) -> bool {
    let Ok(text) = fs::read_to_string(path) else {
        return false;
    };
    let Ok(env) = Json::parse(&text) else {
        return false;
    };
    if env.get("schema").and_then(Json::as_str) != Some(STORE_SCHEMA) {
        return false;
    }
    if env.get("result").and_then(result_from_json).is_none() {
        return false;
    }
    match cutoff_ms {
        None => true,
        Some(cutoff) => {
            env.get("created_unix_ms").and_then(Json::as_u64).is_some_and(|ms| ms >= cutoff)
        }
    }
}

/// Directory listing in sorted order (deterministic gc/stats walks).
fn read_dir_sorted(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    Ok(paths)
}

// --- SimResult <-> Json -------------------------------------------------
//
// Hand-rolled, field-by-field. Every counter is a u64 and round-trips
// exactly (the parser keeps u64-range integers lossless). Adding a field
// to the stats structs will fail compilation here via the exhaustive
// struct literals in `*_from_json`, forcing the schema tag to be revisited.

pub(crate) fn result_to_json(r: &SimResult) -> Json {
    let mut pairs = vec![
        ("cycles", Json::UInt(r.cycles)),
        ("instructions", Json::UInt(r.instructions)),
        ("cpu", cpu_to_json(&r.cpu)),
        ("mem", mem_to_json(&r.mem)),
    ];
    if let Some(profile) = &r.regions {
        pairs.push(("regions", Json::Arr(profile.regions().iter().map(region_to_json).collect())));
    }
    if let Some(s) = &r.sampled {
        pairs.push((
            "sampled",
            Json::obj([
                ("total_ops", Json::UInt(s.total_ops)),
                ("intervals", Json::UInt(s.intervals as u64)),
                ("representatives", Json::UInt(s.representatives as u64)),
                ("detailed_ops", Json::UInt(s.detailed_ops)),
                ("warmup_ops", Json::UInt(s.warmup_ops)),
            ]),
        ));
    }
    Json::obj(pairs)
}

pub(crate) fn result_from_json(j: &Json) -> Option<SimResult> {
    let regions = match j.get("regions") {
        None => None,
        Some(arr) => {
            let buckets: Option<Vec<RegionStats>> =
                arr.as_arr()?.iter().map(region_from_json).collect();
            Some(RegionProfile::from_regions(buckets?))
        }
    };
    let sampled = match j.get("sampled") {
        None => None,
        Some(s) => {
            let f = |key| s.get(key).and_then(Json::as_u64);
            Some(SampledInfo {
                total_ops: f("total_ops")?,
                intervals: f("intervals")? as usize,
                representatives: f("representatives")? as usize,
                detailed_ops: f("detailed_ops")?,
                warmup_ops: f("warmup_ops")?,
            })
        }
    };
    Some(SimResult {
        cycles: j.get("cycles")?.as_u64()?,
        instructions: j.get("instructions")?.as_u64()?,
        cpu: cpu_from_json(j.get("cpu")?)?,
        mem: mem_from_json(j.get("mem")?)?,
        regions,
        sampled,
        job_id: None,
    })
}

fn cpu_to_json(c: &CpuStats) -> Json {
    Json::obj([
        ("cycles", Json::UInt(c.cycles)),
        ("committed", Json::UInt(c.committed)),
        ("loads", Json::UInt(c.loads)),
        ("stores", Json::UInt(c.stores)),
        ("branches", Json::UInt(c.branches)),
        ("int_ops", Json::UInt(c.int_ops)),
        ("fp_ops", Json::UInt(c.fp_ops)),
        ("assist_toggles", Json::UInt(c.assist_toggles)),
        ("mispredicts", Json::UInt(c.mispredicts)),
        ("fetch_stall_cycles", Json::UInt(c.fetch_stall_cycles)),
        ("issue_stall_cycles", Json::UInt(c.issue_stall_cycles)),
    ])
}

fn cpu_from_json(j: &Json) -> Option<CpuStats> {
    let f = |key| j.get(key).and_then(Json::as_u64);
    Some(CpuStats {
        cycles: f("cycles")?,
        committed: f("committed")?,
        loads: f("loads")?,
        stores: f("stores")?,
        branches: f("branches")?,
        int_ops: f("int_ops")?,
        fp_ops: f("fp_ops")?,
        assist_toggles: f("assist_toggles")?,
        mispredicts: f("mispredicts")?,
        fetch_stall_cycles: f("fetch_stall_cycles")?,
        issue_stall_cycles: f("issue_stall_cycles")?,
    })
}

fn cache_to_json(c: &CacheStats) -> Json {
    Json::obj([
        ("accesses", Json::UInt(c.accesses)),
        ("hits", Json::UInt(c.hits)),
        ("misses", Json::UInt(c.misses)),
        ("compulsory", Json::UInt(c.compulsory)),
        ("capacity", Json::UInt(c.capacity)),
        ("conflict", Json::UInt(c.conflict)),
        ("writebacks", Json::UInt(c.writebacks)),
    ])
}

fn cache_from_json(j: &Json) -> Option<CacheStats> {
    let f = |key| j.get(key).and_then(Json::as_u64);
    Some(CacheStats {
        accesses: f("accesses")?,
        hits: f("hits")?,
        misses: f("misses")?,
        compulsory: f("compulsory")?,
        capacity: f("capacity")?,
        conflict: f("conflict")?,
        writebacks: f("writebacks")?,
    })
}

fn mem_to_json(m: &HierarchyStats) -> Json {
    Json::obj([
        ("l1d", cache_to_json(&m.l1d)),
        ("l1i", cache_to_json(&m.l1i)),
        ("l2", cache_to_json(&m.l2)),
        ("dtlb_misses", Json::UInt(m.dtlb_misses)),
        ("itlb_misses", Json::UInt(m.itlb_misses)),
        (
            "assist",
            Json::obj([
                ("bypass_buffer_hits", Json::UInt(m.assist.bypass_buffer_hits)),
                ("bypassed_fills", Json::UInt(m.assist.bypassed_fills)),
                ("l2_bypassed_fills", Json::UInt(m.assist.l2_bypassed_fills)),
                ("spatial_prefetches", Json::UInt(m.assist.spatial_prefetches)),
                ("l1_victim_hits", Json::UInt(m.assist.l1_victim_hits)),
                ("l2_victim_hits", Json::UInt(m.assist.l2_victim_hits)),
                ("stream_hits", Json::UInt(m.assist.stream_hits)),
                ("assisted_accesses", Json::UInt(m.assist.assisted_accesses)),
                ("adapt_switches", Json::UInt(m.assist.adapt_switches)),
            ]),
        ),
    ])
}

fn mem_from_json(j: &Json) -> Option<HierarchyStats> {
    let a = j.get("assist")?;
    let f = |key| a.get(key).and_then(Json::as_u64);
    Some(HierarchyStats {
        l1d: cache_from_json(j.get("l1d")?)?,
        l1i: cache_from_json(j.get("l1i")?)?,
        l2: cache_from_json(j.get("l2")?)?,
        dtlb_misses: j.get("dtlb_misses")?.as_u64()?,
        itlb_misses: j.get("itlb_misses")?.as_u64()?,
        assist: AssistStats {
            bypass_buffer_hits: f("bypass_buffer_hits")?,
            bypassed_fills: f("bypassed_fills")?,
            l2_bypassed_fills: f("l2_bypassed_fills")?,
            spatial_prefetches: f("spatial_prefetches")?,
            l1_victim_hits: f("l1_victim_hits")?,
            l2_victim_hits: f("l2_victim_hits")?,
            stream_hits: f("stream_hits")?,
            assisted_accesses: f("assisted_accesses")?,
            adapt_switches: f("adapt_switches")?,
        },
    })
}

fn region_to_json(r: &RegionStats) -> Json {
    Json::obj([
        ("label", Json::str(r.label.clone())),
        ("cycles", Json::UInt(r.cycles)),
        ("committed", Json::UInt(r.committed)),
        ("loads", Json::UInt(r.loads)),
        ("stores", Json::UInt(r.stores)),
        ("l1d_accesses", Json::UInt(r.l1d_accesses)),
        ("l1d_misses", Json::UInt(r.l1d_misses)),
        ("l2_accesses", Json::UInt(r.l2_accesses)),
        ("l2_misses", Json::UInt(r.l2_misses)),
        ("assisted_accesses", Json::UInt(r.assisted_accesses)),
        ("assist_hits", Json::UInt(r.assist_hits)),
        ("toggles", Json::UInt(r.toggles)),
        ("policy_switches", Json::UInt(r.policy_switches)),
        ("final_policy", Json::str(r.final_policy.clone())),
    ])
}

fn region_from_json(j: &Json) -> Option<RegionStats> {
    let f = |key| j.get(key).and_then(Json::as_u64);
    Some(RegionStats {
        label: j.get("label")?.as_str()?.to_string(),
        cycles: f("cycles")?,
        committed: f("committed")?,
        loads: f("loads")?,
        stores: f("stores")?,
        l1d_accesses: f("l1d_accesses")?,
        l1d_misses: f("l1d_misses")?,
        l2_accesses: f("l2_accesses")?,
        l2_misses: f("l2_misses")?,
        assisted_accesses: f("assisted_accesses")?,
        assist_hits: f("assist_hits")?,
        toggles: f("toggles")?,
        policy_switches: f("policy_switches")?,
        final_policy: j.get("final_policy")?.as_str()?.to_string(),
    })
}
