//! Parameter sweeps: run the four versions across a family of machine
//! configurations and collect the improvement series (the data behind the
//! paper's sensitivity discussion in Section 5.1).

use crate::config::MachineConfig;
use crate::engine::{JobEngine, SimJob};
use crate::runner::Version;
use selcache_mem::AssistKind;
use selcache_workloads::{Benchmark, Scale};
use std::fmt::Write as _;

/// One sweep point: a parameter value and the four version improvements.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub value: u64,
    /// Improvements indexed like [`Version::REPORTED`].
    pub improvements: [f64; 4],
}

/// A named sweep over one machine parameter for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Parameter name (e.g. `"mem_latency"`).
    pub parameter: &'static str,
    /// Benchmark under test.
    pub benchmark: Benchmark,
    /// Points, in the order swept.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Runs a sweep on an explicit engine: `configure` maps each value to a
    /// machine.
    ///
    /// The whole sweep is one job set, so work the points share is done
    /// once: the benchmark's prepared programs (raw, optimized, selective)
    /// are reused across every point whose machine derives the same
    /// compiler configuration — previously each point rebuilt all of them.
    pub fn run_with(
        engine: &JobEngine,
        parameter: &'static str,
        benchmark: Benchmark,
        scale: Scale,
        assist: AssistKind,
        values: &[u64],
        mut configure: impl FnMut(u64) -> MachineConfig,
    ) -> Sweep {
        let mut jobs = Vec::with_capacity(values.len() * (1 + Version::REPORTED.len()));
        for &value in values {
            let machine = configure(value);
            jobs.push(SimJob::new(benchmark, scale, machine.clone(), assist, Version::Base));
            for &v in &Version::REPORTED {
                jobs.push(SimJob::new(benchmark, scale, machine.clone(), assist, v));
            }
        }
        let results = engine.run(&jobs);
        let points = values
            .iter()
            .zip(results.chunks_exact(1 + Version::REPORTED.len()))
            .map(|(&value, chunk)| {
                let mut improvements = [0.0; 4];
                for (imp, r) in improvements.iter_mut().zip(&chunk[1..]) {
                    *imp = r.improvement_over(&chunk[0]);
                }
                SweepPoint { value, improvements }
            })
            .collect();
        Sweep { parameter, benchmark, points }
    }

    /// Runs a sweep on a default-sized engine.
    pub fn run(
        parameter: &'static str,
        benchmark: Benchmark,
        scale: Scale,
        assist: AssistKind,
        values: &[u64],
        configure: impl FnMut(u64) -> MachineConfig,
    ) -> Sweep {
        Self::run_with(
            &JobEngine::default(),
            parameter,
            benchmark,
            scale,
            assist,
            values,
            configure,
        )
    }

    /// The selective-version series.
    pub fn selective_series(&self) -> Vec<(u64, f64)> {
        self.points.iter().map(|p| (p.value, p.improvements[3])).collect()
    }

    /// CSV rendering (`value,pure_hw,pure_sw,combined,selective`).
    pub fn to_csv(&self) -> String {
        let mut out = format!("{},pure_hw,pure_sw,combined,selective\n", self.parameter);
        for p in &self.points {
            let _ = writeln!(
                out,
                "{},{:.4},{:.4},{:.4},{:.4}",
                p.value, p.improvements[0], p.improvements[1], p.improvements[2], p.improvements[3]
            );
        }
        out
    }
}

/// Convenience: sweep the main-memory latency.
pub fn memory_latency_sweep(
    benchmark: Benchmark,
    scale: Scale,
    assist: AssistKind,
    latencies: &[u64],
) -> Sweep {
    Sweep::run("mem_latency", benchmark, scale, assist, latencies, |v| {
        let mut m = MachineConfig::base();
        m.mem.mem_latency = v;
        m
    })
}

/// Convenience: sweep the L1 associativity.
pub fn l1_assoc_sweep(
    benchmark: Benchmark,
    scale: Scale,
    assist: AssistKind,
    ways: &[u64],
) -> Sweep {
    Sweep::run("l1_assoc", benchmark, scale, assist, ways, |v| {
        let mut m = MachineConfig::base();
        m.mem.l1d.assoc = v as u32;
        m.mem.l1i.assoc = v as u32;
        m
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sweep_produces_points() {
        let s =
            memory_latency_sweep(Benchmark::TpcDQ6, Scale::Tiny, AssistKind::Bypass, &[100, 200]);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].value, 100);
        assert_eq!(s.selective_series().len(), 2);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = l1_assoc_sweep(Benchmark::TpcDQ6, Scale::Tiny, AssistKind::Victim, &[2, 4]);
        let csv = s.to_csv();
        assert!(csv.starts_with("l1_assoc,pure_hw,pure_sw,combined,selective\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn sweep_points_share_prepared_programs() {
        // Neither latency value changes the L1 geometry, so the sweep needs
        // only one raw + one optimized + one selective program for both
        // points (the historical implementation rebuilt them per point).
        let engine = JobEngine::serial();
        let jobs_probe = |values: &[u64]| {
            let mut jobs = Vec::new();
            for &v in values {
                let mut m = MachineConfig::base();
                m.mem.mem_latency = v;
                jobs.push(SimJob::new(
                    Benchmark::Adi,
                    Scale::Tiny,
                    m.clone(),
                    AssistKind::Bypass,
                    Version::Base,
                ));
                for &ver in &Version::REPORTED {
                    jobs.push(SimJob::new(
                        Benchmark::Adi,
                        Scale::Tiny,
                        m.clone(),
                        AssistKind::Bypass,
                        ver,
                    ));
                }
            }
            engine.run_with_stats(&jobs).1
        };
        let stats = jobs_probe(&[100, 200]);
        assert_eq!(stats.programs_prepared, 3, "raw, optimized, selective");
        assert_eq!(stats.executed, 10, "machines differ, so all runs execute");
    }
}
