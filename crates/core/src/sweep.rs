//! Design-space sweeps behind the unified [`SweepSpec`] API.
//!
//! A sweep evaluates one benchmark across a grid of machine parameters —
//! the data behind the paper's sensitivity discussion (Section 5.1) and
//! behind any "what if the cache were shaped differently" exploration.
//! [`SweepSpec`] is the single entry point: declare the parameter axes,
//! the benchmark, and the evaluation mode, then [`SweepSpec::run`].
//!
//! Two modes share one result shape ([`Sweep`]):
//!
//! - [`SweepMode::Exact`] normalizes the grid into a [`JobEngine`] job
//!   set — every point simulates the base run plus the four reported
//!   versions, and the point carries their % improvements. This is the
//!   historical sweep, with the engine deduplicating the work points
//!   share (prepared programs, identical runs).
//! - [`SweepMode::Analytical`] runs a **single trace pass** per program
//!   version — one compiled access plan ([`Interp::with_plan`]) streamed
//!   through an exact LRU reuse-distance profiler per line size — and
//!   then evaluates every `(size, associativity, line)` grid point from
//!   the resulting [`CacheModel`]s: fully-associative miss ratios are
//!   exact (Mattson), set-associative ones use the binomial projection.
//!   A configurable fraction of grid points is cross-checked against
//!   exact simulation, and the sweep reports the max/mean absolute
//!   error alongside each estimate. A 100-point grid costs two trace
//!   passes plus a handful of verification sims instead of 100 full
//!   simulations.
//!
//! ```
//! use selcache_core::{SweepAxis, SweepMode, SweepSpec};
//! use selcache_workloads::{Benchmark, Scale};
//!
//! let sweep = SweepSpec::new(Benchmark::TpcDQ6)
//!     .scale(Scale::Tiny)
//!     .mode(SweepMode::Analytical { check_fraction: 0.1 })
//!     .axis(SweepAxis::L1Size, [8 * 1024, 16 * 1024, 32 * 1024])
//!     .axis(SweepAxis::L1Assoc, [1, 2, 4])
//!     .run()
//!     .unwrap();
//! assert_eq!(sweep.points.len(), 9);
//! assert!(sweep.check.unwrap().max_abs_error < 0.25);
//! ```

use crate::config::MachineConfig;
use crate::engine::{EngineStats, JobEngine, SimJob};
use crate::runner::{default_opt, Version};
use selcache_analysis::{CacheModel, ReuseProfiler, ReuseSpectrum};
use selcache_compiler::optimize;
use selcache_ir::{Interp, Plan};
use selcache_mem::AssistKind;
use selcache_workloads::{Benchmark, Scale};
use std::fmt;
use std::fmt::Write as _;

/// A machine parameter a sweep can vary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    /// Main-memory latency in cycles.
    MemLatency,
    /// L1 capacity in bytes (data and instruction, like the paper's
    /// "Larger L1" variant).
    L1Size,
    /// L1 associativity in ways (data and instruction).
    L1Assoc,
    /// L1 line (block) size in bytes (data and instruction).
    L1Line,
    /// L2 capacity in bytes.
    L2Size,
    /// L2 associativity in ways.
    L2Assoc,
}

impl SweepAxis {
    /// The axis's column/parameter name.
    pub fn name(self) -> &'static str {
        match self {
            SweepAxis::MemLatency => "mem_latency",
            SweepAxis::L1Size => "l1_size",
            SweepAxis::L1Assoc => "l1_assoc",
            SweepAxis::L1Line => "l1_line",
            SweepAxis::L2Size => "l2_size",
            SweepAxis::L2Assoc => "l2_assoc",
        }
    }

    /// Whether the analytical engine can evaluate this axis (it models
    /// the L1 data cache's geometry; latency and L2 axes need exact
    /// simulation).
    pub fn is_analytical(self) -> bool {
        matches!(self, SweepAxis::L1Size | SweepAxis::L1Assoc | SweepAxis::L1Line)
    }

    /// Applies one swept value to a machine configuration.
    pub fn apply(self, machine: &mut MachineConfig, value: u64) {
        match self {
            SweepAxis::MemLatency => machine.mem.mem_latency = value,
            SweepAxis::L1Size => {
                machine.mem.l1d.size = value;
                machine.mem.l1i.size = value;
            }
            SweepAxis::L1Assoc => {
                machine.mem.l1d.assoc = value as u32;
                machine.mem.l1i.assoc = value as u32;
            }
            SweepAxis::L1Line => {
                machine.mem.l1d.block_size = value;
                machine.mem.l1i.block_size = value;
            }
            SweepAxis::L2Size => machine.mem.l2.size = value,
            SweepAxis::L2Assoc => machine.mem.l2.assoc = value as u32,
        }
    }
}

impl fmt::Display for SweepAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a sweep evaluates its grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SweepMode {
    /// Simulate every grid point exactly (base + four versions each).
    Exact,
    /// One reuse-profiling trace pass per program version, analytical
    /// evaluation of every grid point, and an exact-simulation
    /// cross-check of `check_fraction` of the points (0 disables the
    /// check, 1 checks everything).
    Analytical {
        /// Fraction of grid points verified against exact simulation.
        check_fraction: f64,
    },
}

/// Why a [`SweepSpec`] could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The spec declared no axes.
    NoAxes,
    /// An axis was declared with no values.
    EmptyAxis(&'static str),
    /// An axis value was zero or (for line sizes) not a power of two.
    InvalidValue {
        /// The offending axis.
        axis: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The analytical engine cannot evaluate this axis.
    UnsupportedAnalyticalAxis(&'static str),
    /// `check_fraction` was outside `[0, 1]` or not finite.
    InvalidCheckFraction(f64),
    /// A grid point's L1 geometry is infeasible
    /// (`assoc × line` must divide `size`).
    InfeasiblePoint {
        /// The point's coordinates, in axis order.
        values: Vec<u64>,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::NoAxes => write!(f, "sweep spec has no axes"),
            SweepError::EmptyAxis(a) => write!(f, "axis {a} has no values"),
            SweepError::InvalidValue { axis, value } => {
                write!(f, "invalid value {value} for axis {axis}")
            }
            SweepError::UnsupportedAnalyticalAxis(a) => {
                write!(f, "axis {a} needs exact simulation (analytical mode models L1 geometry)")
            }
            SweepError::InvalidCheckFraction(v) => {
                write!(f, "check fraction {v} is outside [0, 1]")
            }
            SweepError::InfeasiblePoint { values } => {
                write!(f, "grid point {values:?} has infeasible L1 geometry")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Declarative description of a design-space sweep: the single entry
/// point that replaced the per-parameter sweep constructors.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    benchmark: Benchmark,
    scale: Scale,
    assist: AssistKind,
    mode: SweepMode,
    axes: Vec<(SweepAxis, Vec<u64>)>,
}

impl SweepSpec {
    /// A spec for `benchmark` with defaults: tiny scale, bypass assist,
    /// exact mode, no axes.
    pub fn new(benchmark: Benchmark) -> SweepSpec {
        SweepSpec {
            benchmark,
            scale: Scale::Tiny,
            assist: AssistKind::Bypass,
            mode: SweepMode::Exact,
            axes: Vec::new(),
        }
    }

    /// Sets the workload scale (default [`Scale::Tiny`]).
    pub fn scale(mut self, scale: Scale) -> SweepSpec {
        self.scale = scale;
        self
    }

    /// Sets the assist under study for exact-mode versions (default
    /// [`AssistKind::Bypass`]). The analytical model is assist-free.
    pub fn assist(mut self, assist: AssistKind) -> SweepSpec {
        self.assist = assist;
        self
    }

    /// Sets the evaluation mode (default [`SweepMode::Exact`]).
    pub fn mode(mut self, mode: SweepMode) -> SweepSpec {
        self.mode = mode;
        self
    }

    /// Appends a parameter axis. The grid is the cartesian product of
    /// all axes, last axis fastest; declaring the same axis twice keeps
    /// the later declaration.
    pub fn axis(mut self, axis: SweepAxis, values: impl IntoIterator<Item = u64>) -> SweepSpec {
        self.axes.retain(|(a, _)| *a != axis);
        self.axes.push((axis, values.into_iter().collect()));
        self
    }

    /// The benchmark under test.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The declared axes, in declaration order.
    pub fn axes(&self) -> &[(SweepAxis, Vec<u64>)] {
        &self.axes
    }

    /// Number of grid points (product of axis lengths).
    pub fn points(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product()
    }

    /// The grid: every point's coordinates, in axis order, last axis
    /// fastest.
    pub fn grid(&self) -> Vec<Vec<u64>> {
        let mut out = vec![Vec::new()];
        for (_, values) in &self.axes {
            out = out
                .into_iter()
                .flat_map(|prefix| {
                    values.iter().map(move |&v| {
                        let mut p = prefix.clone();
                        p.push(v);
                        p
                    })
                })
                .collect();
        }
        out
    }

    /// The machine configuration of one grid point: the base machine
    /// with each axis value applied.
    pub fn machine_at(&self, values: &[u64]) -> MachineConfig {
        let mut m = MachineConfig::base();
        for ((axis, _), &v) in self.axes.iter().zip(values) {
            axis.apply(&mut m, v);
        }
        m
    }

    /// The job set this spec normalizes to: what the engine would
    /// execute. Exact mode submits the base run plus the four reported
    /// versions per grid point; analytical mode submits the
    /// cross-check sample (base + pure-software per sampled point, with
    /// the compiler configuration pinned to the base machine so every
    /// point shares the same two prepared programs).
    pub fn jobs(&self) -> Vec<SimJob> {
        match self.mode {
            SweepMode::Exact => {
                let mut jobs = Vec::with_capacity(self.points() * (1 + Version::REPORTED.len()));
                for values in self.grid() {
                    let machine = self.machine_at(&values);
                    jobs.push(SimJob::new(
                        self.benchmark,
                        self.scale,
                        machine.clone(),
                        self.assist,
                        Version::Base,
                    ));
                    for &v in &Version::REPORTED {
                        jobs.push(SimJob::new(
                            self.benchmark,
                            self.scale,
                            machine.clone(),
                            self.assist,
                            v,
                        ));
                    }
                }
                jobs
            }
            SweepMode::Analytical { check_fraction } => {
                let grid = self.grid();
                let opt = default_opt(&MachineConfig::base());
                let mut jobs = Vec::new();
                for k in sample_indices(grid.len(), check_fraction) {
                    let machine = self.machine_at(&grid[k]);
                    for version in [Version::Base, Version::PureSoftware] {
                        jobs.push(
                            SimJob::new(
                                self.benchmark,
                                self.scale,
                                machine.clone(),
                                AssistKind::None,
                                version,
                            )
                            .with_opt(opt),
                        );
                    }
                }
                jobs
            }
        }
    }

    /// Runs the sweep on a default-sized engine.
    pub fn run(&self) -> Result<Sweep, SweepError> {
        self.run_with(&JobEngine::default())
    }

    /// Runs the sweep on an explicit engine.
    pub fn run_with(&self, engine: &JobEngine) -> Result<Sweep, SweepError> {
        self.validate()?;
        match self.mode {
            SweepMode::Exact => Ok(self.run_exact(engine)),
            SweepMode::Analytical { check_fraction } => {
                Ok(self.run_analytical(engine, check_fraction))
            }
        }
    }

    fn validate(&self) -> Result<(), SweepError> {
        if self.axes.is_empty() {
            return Err(SweepError::NoAxes);
        }
        for (axis, values) in &self.axes {
            if values.is_empty() {
                return Err(SweepError::EmptyAxis(axis.name()));
            }
            for &v in values {
                let bad = v == 0 || (*axis == SweepAxis::L1Line && !v.is_power_of_two());
                if bad {
                    return Err(SweepError::InvalidValue { axis: axis.name(), value: v });
                }
            }
        }
        if let SweepMode::Analytical { check_fraction } = self.mode {
            if !(0.0..=1.0).contains(&check_fraction) {
                return Err(SweepError::InvalidCheckFraction(check_fraction));
            }
            for (axis, _) in &self.axes {
                if !axis.is_analytical() {
                    return Err(SweepError::UnsupportedAnalyticalAxis(axis.name()));
                }
            }
            for values in self.grid() {
                let (size, assoc, line) = self.l1_geometry(&values);
                if size % (assoc * line) != 0 {
                    return Err(SweepError::InfeasiblePoint { values });
                }
            }
        }
        Ok(())
    }

    /// The `(size, assoc, line)` L1 data geometry of one point, axes
    /// not swept defaulting to the base machine.
    fn l1_geometry(&self, values: &[u64]) -> (u64, u64, u64) {
        let base = MachineConfig::base();
        let mut size = base.mem.l1d.size;
        let mut assoc = base.mem.l1d.assoc as u64;
        let mut line = base.mem.l1d.block_size;
        for ((axis, _), &v) in self.axes.iter().zip(values) {
            match axis {
                SweepAxis::L1Size => size = v,
                SweepAxis::L1Assoc => assoc = v,
                SweepAxis::L1Line => line = v,
                _ => {}
            }
        }
        (size, assoc, line)
    }

    fn run_exact(&self, engine: &JobEngine) -> Sweep {
        let grid = self.grid();
        let jobs = self.jobs();
        let (results, stats) = engine.run_with_stats(&jobs);
        let stride = 1 + Version::REPORTED.len();
        let points = grid
            .into_iter()
            .zip(results.chunks_exact(stride))
            .map(|(values, chunk)| {
                let mut improvements = [0.0; 4];
                for (imp, r) in improvements.iter_mut().zip(&chunk[1..]) {
                    *imp = r.improvement_over(&chunk[0]);
                }
                SweepPoint { values, data: PointData::Exact { improvements } }
            })
            .collect();
        Sweep {
            benchmark: self.benchmark,
            scale: self.scale,
            mode: self.mode,
            axes: self.axes.iter().map(|(a, _)| *a).collect(),
            points,
            check: None,
            work: SweepWork {
                grid_points: self.points(),
                trace_passes: 0,
                exact_sims: stats.executed,
            },
            engine: stats,
        }
    }

    fn run_analytical(&self, engine: &JobEngine, check_fraction: f64) -> Sweep {
        let grid = self.grid();
        let opt = default_opt(&MachineConfig::base());

        // One trace pass per program version, feeding an exact
        // reuse-distance profiler per distinct line size: the single
        // traversal that replaces per-point simulation.
        let raw = self.benchmark.build(self.scale);
        let optimized = optimize(&raw, &opt);
        let mut lines: Vec<u64> = grid.iter().map(|v| self.l1_geometry(v).2).collect();
        lines.sort_unstable();
        lines.dedup();
        let versions = [&raw, &optimized];
        let models: Vec<Vec<CacheModel>> = versions
            .iter()
            .map(|program| {
                let plan = Plan::compile(program);
                let mut profs: Vec<(ReuseProfiler, ReuseSpectrum)> = lines
                    .iter()
                    .map(|&line| (ReuseProfiler::new(line), ReuseSpectrum::new()))
                    .collect();
                for op in Interp::with_plan(program, &plan) {
                    if let Some(addr) = op.kind.addr() {
                        for (prof, spec) in &mut profs {
                            spec.record(prof.record(addr));
                        }
                    }
                }
                profs.iter().map(|(_, spec)| spec.model()).collect()
            })
            .collect();
        let model_at = |version: usize, line: u64| {
            let k = lines.binary_search(&line).expect("line size was profiled");
            &models[version][k]
        };

        // Evaluate every grid point from the profiles.
        let mut points: Vec<SweepPoint> = grid
            .iter()
            .map(|values| {
                let (size, assoc, line) = self.l1_geometry(values);
                let sets = size / (assoc * line);
                let est = VersionedMiss {
                    base: model_at(0, line).miss_ratio(sets, assoc as u32),
                    optimized: model_at(1, line).miss_ratio(sets, assoc as u32),
                };
                SweepPoint {
                    values: values.clone(),
                    data: PointData::Analytical { est, check: None },
                }
            })
            .collect();

        // Cross-check a sample of points against exact simulation.
        let sample = sample_indices(grid.len(), check_fraction);
        let jobs = self.jobs();
        let (results, stats) = engine.run_with_stats(&jobs);
        let mut max_err = 0.0f64;
        let mut err_sum = 0.0f64;
        for (s, chunk) in sample.iter().zip(results.chunks_exact(2)) {
            let exact = VersionedMiss {
                base: chunk[0].mem.l1d.miss_rate(),
                optimized: chunk[1].mem.l1d.miss_rate(),
            };
            let PointData::Analytical { est, check } = &mut points[*s].data else {
                unreachable!("analytical sweeps hold analytical points")
            };
            let abs_error =
                (est.base - exact.base).abs().max((est.optimized - exact.optimized).abs());
            max_err = max_err.max(abs_error);
            err_sum += abs_error;
            *check = Some(PointCheck { exact, abs_error });
        }
        let check = (!sample.is_empty()).then(|| CheckSummary {
            checked: sample.len(),
            max_abs_error: max_err,
            mean_abs_error: err_sum / sample.len() as f64,
        });
        Sweep {
            benchmark: self.benchmark,
            scale: self.scale,
            mode: self.mode,
            axes: self.axes.iter().map(|(a, _)| *a).collect(),
            points,
            check,
            work: SweepWork {
                grid_points: grid.len(),
                trace_passes: versions.len(),
                exact_sims: stats.executed,
            },
            engine: stats,
        }
    }
}

/// Evenly spread sample of `count` indices out of `n`, deterministic.
fn sample_indices(n: usize, fraction: f64) -> Vec<usize> {
    if n == 0 || fraction <= 0.0 {
        return Vec::new();
    }
    let count = ((fraction * n as f64).round() as usize).clamp(1, n);
    (0..count).map(|i| i * n / count).collect()
}

/// Estimated (or simulated) L1 data miss ratios of the two analytical
/// versions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VersionedMiss {
    /// Unmodified (base) code.
    pub base: f64,
    /// Locality-optimized (pure-software) code.
    pub optimized: f64,
}

/// Exact-simulation verification attached to a cross-checked point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointCheck {
    /// Simulated miss ratios.
    pub exact: VersionedMiss,
    /// Largest absolute estimate error across the versions.
    pub abs_error: f64,
}

/// What one grid point measured.
#[derive(Debug, Clone, PartialEq)]
pub enum PointData {
    /// Exact mode: % improvements indexed like [`Version::REPORTED`].
    Exact {
        /// Improvements over the point's base run.
        improvements: [f64; 4],
    },
    /// Analytical mode: estimated miss ratios, plus the exact
    /// verification when this point was sampled.
    Analytical {
        /// Model estimates.
        est: VersionedMiss,
        /// Present when this point was cross-checked.
        check: Option<PointCheck>,
    },
}

/// One grid point: its coordinates (axis order) and its measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Coordinates along each axis, in spec order.
    pub values: Vec<u64>,
    /// The point's measurements.
    pub data: PointData,
}

impl SweepPoint {
    /// Exact-mode improvements, if this point has them.
    pub fn improvements(&self) -> Option<&[f64; 4]> {
        match &self.data {
            PointData::Exact { improvements } => Some(improvements),
            PointData::Analytical { .. } => None,
        }
    }

    /// Analytical estimates, if this point has them.
    pub fn estimate(&self) -> Option<&VersionedMiss> {
        match &self.data {
            PointData::Analytical { est, .. } => Some(est),
            PointData::Exact { .. } => None,
        }
    }

    /// The exact cross-check, if this point was sampled.
    pub fn check(&self) -> Option<&PointCheck> {
        match &self.data {
            PointData::Analytical { check, .. } => check.as_ref(),
            PointData::Exact { .. } => None,
        }
    }
}

/// Aggregate cross-check error of an analytical sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckSummary {
    /// Grid points verified by exact simulation.
    pub checked: usize,
    /// Largest absolute miss-ratio error over the checked points.
    pub max_abs_error: f64,
    /// Mean absolute miss-ratio error over the checked points.
    pub mean_abs_error: f64,
}

/// What a sweep actually executed — the single-pass claim, checkable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepWork {
    /// Grid points evaluated.
    pub grid_points: usize,
    /// Trace traversals (one per program version in analytical mode; 0
    /// in exact mode, which simulates instead).
    pub trace_passes: usize,
    /// Unique exact simulations executed (after engine dedup).
    pub exact_sims: usize,
}

/// The unified sweep result: every mode produces this one shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Benchmark under test.
    pub benchmark: Benchmark,
    /// Workload scale.
    pub scale: Scale,
    /// Evaluation mode the sweep ran under.
    pub mode: SweepMode,
    /// Swept axes, in declaration order.
    pub axes: Vec<SweepAxis>,
    /// Points, last axis fastest.
    pub points: Vec<SweepPoint>,
    /// Cross-check error summary (analytical mode with a non-zero
    /// check fraction).
    pub check: Option<CheckSummary>,
    /// Work accounting: passes and simulations executed.
    pub work: SweepWork,
    /// Engine counters for the sweep's job set (dedup and, for
    /// store-backed engines, store hit/miss accounting).
    pub engine: EngineStats,
}

impl Sweep {
    /// The sweep's parameter name: axis names joined with `x`.
    pub fn parameter(&self) -> String {
        let names: Vec<&str> = self.axes.iter().map(|a| a.name()).collect();
        names.join("x")
    }

    /// The selective-version series of an exact sweep, keyed by the
    /// first axis: `(value, improvement)`. Empty for analytical sweeps
    /// (the model is assist-free and has no selective version).
    pub fn selective_series(&self) -> Vec<(u64, f64)> {
        self.points
            .iter()
            .filter_map(|p| p.improvements().map(|imp| (p.values[0], imp[3])))
            .collect()
    }

    /// CSV rendering. Exact sweeps keep the historical
    /// `value,pure_hw,pure_sw,combined,selective` shape (one leading
    /// column per axis); analytical sweeps emit estimates, exact
    /// checks (blank when unsampled), and the absolute error.
    pub fn to_csv(&self) -> String {
        let axis_names: Vec<&str> = self.axes.iter().map(|a| a.name()).collect();
        let mut out = axis_names.join(",");
        match self.mode {
            SweepMode::Exact => {
                out.push_str(",pure_hw,pure_sw,combined,selective\n");
                for p in &self.points {
                    let imp = p.improvements().expect("exact sweep point");
                    let _ = writeln!(
                        out,
                        "{},{:.4},{:.4},{:.4},{:.4}",
                        join_values(&p.values),
                        imp[0],
                        imp[1],
                        imp[2],
                        imp[3]
                    );
                }
            }
            SweepMode::Analytical { .. } => {
                out.push_str(
                    ",est_base_miss,est_optimized_miss,exact_base_miss,exact_optimized_miss,\
                     abs_error\n",
                );
                for p in &self.points {
                    let est = p.estimate().expect("analytical sweep point");
                    let _ = write!(
                        out,
                        "{},{:.6},{:.6}",
                        join_values(&p.values),
                        est.base,
                        est.optimized
                    );
                    match p.check() {
                        Some(c) => {
                            let _ = writeln!(
                                out,
                                ",{:.6},{:.6},{:.6}",
                                c.exact.base, c.exact.optimized, c.abs_error
                            );
                        }
                        None => out.push_str(",,,\n"),
                    }
                }
            }
        }
        out
    }
}

fn join_values(values: &[u64]) -> String {
    let strs: Vec<String> = values.iter().map(u64::to_string).collect();
    strs.join(",")
}

/// Convenience: an exact sweep of the main-memory latency, routed
/// through [`SweepSpec`].
pub fn memory_latency_sweep(
    benchmark: Benchmark,
    scale: Scale,
    assist: AssistKind,
    latencies: &[u64],
) -> Sweep {
    SweepSpec::new(benchmark)
        .scale(scale)
        .assist(assist)
        .axis(SweepAxis::MemLatency, latencies.iter().copied())
        .run()
        .expect("a non-empty latency axis is always valid")
}

/// Convenience: an exact sweep of the L1 associativity, routed through
/// [`SweepSpec`].
pub fn l1_assoc_sweep(
    benchmark: Benchmark,
    scale: Scale,
    assist: AssistKind,
    ways: &[u64],
) -> Sweep {
    SweepSpec::new(benchmark)
        .scale(scale)
        .assist(assist)
        .axis(SweepAxis::L1Assoc, ways.iter().copied())
        .run()
        .expect("a non-empty associativity axis is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sweep_produces_points() {
        let s =
            memory_latency_sweep(Benchmark::TpcDQ6, Scale::Tiny, AssistKind::Bypass, &[100, 200]);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].values, vec![100]);
        assert_eq!(s.selective_series().len(), 2);
        assert_eq!(s.parameter(), "mem_latency");
        assert_eq!(s.work.trace_passes, 0);
        assert!(s.work.exact_sims > 0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = l1_assoc_sweep(Benchmark::TpcDQ6, Scale::Tiny, AssistKind::Victim, &[2, 4]);
        let csv = s.to_csv();
        assert!(csv.starts_with("l1_assoc,pure_hw,pure_sw,combined,selective\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn grid_is_cartesian_last_axis_fastest() {
        let spec = SweepSpec::new(Benchmark::Adi)
            .axis(SweepAxis::L1Size, [8192, 16384])
            .axis(SweepAxis::L1Assoc, [1, 2, 4]);
        assert_eq!(spec.points(), 6);
        let grid = spec.grid();
        assert_eq!(grid[0], vec![8192, 1]);
        assert_eq!(grid[1], vec![8192, 2]);
        assert_eq!(grid[3], vec![16384, 1]);
    }

    #[test]
    fn spec_validation_rejects_bad_inputs() {
        let no_axes = SweepSpec::new(Benchmark::Adi);
        assert_eq!(no_axes.run(), Err(SweepError::NoAxes));

        let empty = SweepSpec::new(Benchmark::Adi).axis(SweepAxis::L1Size, []);
        assert_eq!(empty.run(), Err(SweepError::EmptyAxis("l1_size")));

        let zero = SweepSpec::new(Benchmark::Adi).axis(SweepAxis::MemLatency, [0]);
        assert!(matches!(zero.run(), Err(SweepError::InvalidValue { .. })));

        let bad_line = SweepSpec::new(Benchmark::Adi)
            .mode(SweepMode::Analytical { check_fraction: 0.0 })
            .axis(SweepAxis::L1Line, [48]);
        assert!(matches!(bad_line.run(), Err(SweepError::InvalidValue { .. })));

        let latency_analytical = SweepSpec::new(Benchmark::Adi)
            .mode(SweepMode::Analytical { check_fraction: 0.0 })
            .axis(SweepAxis::MemLatency, [100]);
        assert_eq!(
            latency_analytical.run(),
            Err(SweepError::UnsupportedAnalyticalAxis("mem_latency"))
        );

        let bad_fraction = SweepSpec::new(Benchmark::Adi)
            .mode(SweepMode::Analytical { check_fraction: 1.5 })
            .axis(SweepAxis::L1Size, [8192]);
        assert_eq!(bad_fraction.run(), Err(SweepError::InvalidCheckFraction(1.5)));

        // 8 KiB with 4-way x 4 KiB lines does not divide.
        let infeasible = SweepSpec::new(Benchmark::Adi)
            .mode(SweepMode::Analytical { check_fraction: 0.0 })
            .axis(SweepAxis::L1Size, [8192])
            .axis(SweepAxis::L1Assoc, [3]);
        assert!(matches!(infeasible.run(), Err(SweepError::InfeasiblePoint { .. })));
    }

    #[test]
    fn redeclaring_an_axis_replaces_it() {
        let spec = SweepSpec::new(Benchmark::Adi)
            .axis(SweepAxis::L1Size, [8192])
            .axis(SweepAxis::L1Size, [16384, 32768]);
        assert_eq!(spec.points(), 2);
        assert_eq!(spec.axes().len(), 1);
    }

    #[test]
    fn analytical_sweep_is_single_pass_per_version() {
        let spec = SweepSpec::new(Benchmark::TpcDQ6)
            .mode(SweepMode::Analytical { check_fraction: 0.1 })
            .axis(SweepAxis::L1Size, (10..15).map(|p| 1u64 << p))
            .axis(SweepAxis::L1Assoc, [1, 2, 4, 8]);
        let sweep = spec.run_with(&JobEngine::serial()).unwrap();
        assert_eq!(sweep.points.len(), 20);
        // Two trace passes (base + optimized) regardless of grid size,
        // and only the sampled points were simulated.
        assert_eq!(sweep.work.trace_passes, 2);
        assert_eq!(sweep.work.exact_sims, 2 * 2, "two versions x two sampled points");
        let summary = sweep.check.expect("cross-check ran");
        assert_eq!(summary.checked, 2);
        assert!(summary.max_abs_error >= summary.mean_abs_error);
        // Estimates are ratios and monotone in size along each assoc.
        for p in &sweep.points {
            let est = p.estimate().unwrap();
            assert!((0.0..=1.0).contains(&est.base), "{est:?}");
            assert!((0.0..=1.0).contains(&est.optimized), "{est:?}");
        }
        assert!(sweep.selective_series().is_empty());
    }

    #[test]
    fn analytical_estimates_shrink_with_cache_size() {
        let sweep = SweepSpec::new(Benchmark::Vpenta)
            .mode(SweepMode::Analytical { check_fraction: 0.0 })
            .axis(SweepAxis::L1Size, (10..18).map(|p| 1u64 << p))
            .run_with(&JobEngine::serial())
            .unwrap();
        assert!(sweep.check.is_none());
        assert_eq!(sweep.work.exact_sims, 0);
        let series: Vec<f64> = sweep.points.iter().map(|p| p.estimate().unwrap().base).collect();
        for w in series.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "miss ratio must not grow with size: {series:?}");
        }
    }

    #[test]
    fn analytical_csv_reports_error_columns() {
        let sweep = SweepSpec::new(Benchmark::TpcDQ6)
            .mode(SweepMode::Analytical { check_fraction: 1.0 })
            .axis(SweepAxis::L1Size, [16 * 1024, 32 * 1024])
            .run_with(&JobEngine::serial())
            .unwrap();
        let csv = sweep.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "l1_size,est_base_miss,est_optimized_miss,exact_base_miss,exact_optimized_miss,\
             abs_error"
        );
        // Every point was checked, so no blank cells.
        for line in lines {
            assert_eq!(line.split(',').count(), 6);
            assert!(!line.ends_with(",,,"), "{line}");
        }
    }

    #[test]
    fn sample_indices_spread_and_clamp() {
        assert!(sample_indices(10, 0.0).is_empty());
        assert!(sample_indices(0, 0.5).is_empty());
        assert_eq!(sample_indices(10, 1.0), (0..10).collect::<Vec<_>>());
        let s = sample_indices(100, 0.05);
        assert_eq!(s, vec![0, 20, 40, 60, 80]);
        // A tiny fraction still checks at least one point.
        assert_eq!(sample_indices(10, 1e-6), vec![0]);
    }

    #[test]
    fn sweep_points_share_prepared_programs() {
        // Neither latency value changes the L1 geometry, so the sweep
        // needs only one raw + one optimized + one selective program for
        // both points (the historical implementation rebuilt them per
        // point).
        let spec = SweepSpec::new(Benchmark::Adi)
            .assist(AssistKind::Bypass)
            .axis(SweepAxis::MemLatency, [100, 200]);
        let stats = JobEngine::serial().dry_run(&spec.jobs());
        assert_eq!(stats.programs_prepared, 3, "raw, optimized, selective");
        assert_eq!(stats.executed, 10, "machines differ, so all runs execute");
    }
}
