//! Engine-level guarantees the unified run API is built on: thread-count
//! independence (byte-identical reports) and job deduplication.

use selcache_core::{
    AssistKind, Benchmark, JobEngine, MachineConfig, Scale, SimJob, SuiteResult, Version,
};

const BENCHMARKS: [Benchmark; 2] = [Benchmark::Vpenta, Benchmark::Compress];

/// Runs the same two-benchmark suite serially and on an 8-worker pool and
/// demands identical results row by row — and byte-identical formatted
/// output, the acceptance bar for the parallel engine.
#[test]
fn parallel_suite_is_deterministic() {
    let suite = |threads: usize| {
        SuiteResult::run_with(
            &JobEngine::new(threads),
            MachineConfig::base(),
            AssistKind::Bypass,
            Scale::Tiny,
            &BENCHMARKS,
        )
    };
    let serial = suite(1);
    let parallel = suite(8);

    assert_eq!(serial.rows.len(), parallel.rows.len());
    for (s, p) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(s.benchmark, p.benchmark);
        assert_eq!(s.base.cycles, p.base.cycles);
        assert_eq!(s.base.instructions, p.base.instructions);
        assert_eq!(s.base.l1_miss_pct(), p.base.l1_miss_pct());
        assert_eq!(s.improvements, p.improvements);
    }
    assert_eq!(serial.format_figure(4), parallel.format_figure(4));
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

/// One benchmark studied under two assists submits 10 jobs but only 8
/// distinct simulations: Base and PureSoftware never touch the assist, so
/// each executes exactly once per machine and serves both studies.
#[test]
fn base_runs_are_shared_across_assist_studies() {
    let machine = MachineConfig::base();
    let mut jobs = Vec::new();
    for assist in [AssistKind::Bypass, AssistKind::Victim] {
        jobs.push(SimJob::new(Benchmark::Li, Scale::Tiny, machine.clone(), assist, Version::Base));
        for &v in &Version::REPORTED {
            jobs.push(SimJob::new(Benchmark::Li, Scale::Tiny, machine.clone(), assist, v));
        }
    }
    let (results, stats) = JobEngine::default().run_with_stats(&jobs);

    assert_eq!(stats.submitted, 10);
    assert_eq!(stats.executed, 8, "Base and PureSoftware unify across assists");
    assert_eq!(stats.dedup_hits, 2);
    assert_eq!(stats.programs_prepared, 3, "raw, optimized, selective");

    // The deduplicated slots still answer with full, identical results.
    assert_eq!(results[0], results[5], "Base slot answered by the shared run");
    assert_eq!(results[2], results[7], "PureSoftware slot answered by the shared run");
    assert_ne!(results[1], results[6], "assist-dependent runs stay distinct");
}
