//! Property tests pinning the canonical-hash job identity to the
//! structural execution-identity it replaced: over arbitrary job sets,
//! two jobs share a [`selcache_core::JobId`] exactly when the old
//! linear-scan `ExecPlan` dedup would have merged them. A hash that
//! silently merged distinct jobs (collision or an under-serialized
//! field) or split equal ones (an over-serialized field, e.g. `-0.0`
//! vs `0.0`) fails here.

use proptest::prelude::*;
use selcache_core::{AssistKind, Benchmark, ConfigVariant, JobEngine, Scale, SimJob, Version};

const BENCHMARKS: [Benchmark; 3] = [Benchmark::Adi, Benchmark::Li, Benchmark::Vpenta];
const SCALES: [Scale; 2] = [Scale::Tiny, Scale::Small];
const ASSISTS: [AssistKind; 4] =
    [AssistKind::None, AssistKind::Bypass, AssistKind::Victim, AssistKind::Stream];
const VERSIONS: [Version; 5] = [
    Version::Base,
    Version::PureHardware,
    Version::PureSoftware,
    Version::Combined,
    Version::Selective,
];

/// One generated job: indices into the small axes plus machine/opt knob
/// tweaks that exercise every field class the canonical encoding covers
/// (u64 latencies, u32 associativities, f64 thresholds, bools).
#[allow(clippy::too_many_arguments)]
fn job(
    bench: usize,
    scale: usize,
    variant: usize,
    assist: usize,
    version: usize,
    mem_latency: u64,
    threshold_pct: u32,
    tweak_tile: bool,
) -> SimJob {
    let mut machine = ConfigVariant::ALL[variant % ConfigVariant::ALL.len()].machine();
    machine.mem.mem_latency = mem_latency;
    let mut job = SimJob::new(
        BENCHMARKS[bench % BENCHMARKS.len()],
        SCALES[scale % SCALES.len()],
        machine,
        ASSISTS[assist % ASSISTS.len()],
        VERSIONS[version % VERSIONS.len()],
    );
    job.opt.threshold = threshold_pct as f64 / 100.0;
    job.opt.tile = tweak_tile;
    job
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pairwise over a generated job set: hash identity ⇔ structural
    /// identity, and the engine's dedup counters agree with the
    /// structural partition.
    #[test]
    fn job_id_partition_matches_structural_dedup(
        raw in proptest::collection::vec(
            ((0usize..3, 0usize..2, 0usize..6, 0usize..4),
             (0usize..5, 50u64..=200, 0u32..=100, proptest::bool::weighted(0.5))),
            1..12,
        ),
    ) {
        let jobs: Vec<SimJob> = raw
            .iter()
            .map(|&((b, s, m, a), (v, lat, thr, tile))| job(b, s, m, a, v, lat, thr, tile))
            .collect();

        // Hash equality must coincide with structural equality for every
        // pair, including i == j (reflexivity).
        for i in 0..jobs.len() {
            for j in 0..jobs.len() {
                let same_hash = jobs[i].job_id() == jobs[j].job_id();
                let same_struct = jobs[i].same_execution(&jobs[j]);
                prop_assert_eq!(
                    same_hash, same_struct,
                    "jobs {} and {} disagree: hash {} vs structural {}",
                    i, j, same_hash, same_struct
                );
            }
        }

        // The engine's plan (now hash-keyed) must count exactly the
        // structural partition's classes.
        let mut reps: Vec<&SimJob> = Vec::new();
        for j in &jobs {
            if !reps.iter().any(|r| r.same_execution(j)) {
                reps.push(j);
            }
        }
        let stats = JobEngine::serial().dry_run(&jobs);
        prop_assert_eq!(stats.executed, reps.len());
        prop_assert_eq!(stats.dedup_hits, jobs.len() - reps.len());
    }

    /// `-0.0` and `+0.0` thresholds are structurally equal (f64 `==`), so
    /// they must hash identically too.
    #[test]
    fn negative_zero_threshold_unifies(seed in 0usize..6) {
        let mut a = job(seed, seed, seed, 1, 3, 100, 0, false);
        let mut b = a.clone();
        a.opt.threshold = 0.0;
        b.opt.threshold = -0.0;
        prop_assert!(a.same_execution(&b));
        prop_assert_eq!(a.job_id(), b.job_id());
    }
}

/// The id is stable across processes: a literal value pinned here breaks
/// only when the canonical encoding (or the hash) changes, which must come
/// with an identity-schema bump.
#[test]
fn job_id_is_deterministic_across_engines() {
    let j = job(0, 0, 0, 1, 4, 100, 50, false);
    assert_eq!(j.job_id(), j.clone().job_id());
    let again = job(0, 0, 0, 1, 4, 100, 50, false);
    assert_eq!(j.job_id(), again.job_id());
    assert_eq!(j.job_id().to_string().len(), 32);
}
