//! Integration tests of the persistent result store: envelope round-trip
//! (with and without region profiles), corrupt-entry recovery, warm-store
//! engine behavior (zero simulations, byte-identical results), and gc.

use selcache_core::{
    AssistKind, Benchmark, ControllerConfig, JobEngine, MachineConfig, Scale, SimJob, SimMode,
    Store, Version,
};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique, self-cleaning store root under the system temp directory
/// (no tempfile crate in the vendored-only workspace).
struct TempRoot(PathBuf);

impl TempRoot {
    fn new(tag: &str) -> TempRoot {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("selcache-store-test-{tag}-{}-{seq}", std::process::id()));
        TempRoot(dir)
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn suite_jobs() -> Vec<SimJob> {
    let machine = MachineConfig::base();
    let mut jobs = Vec::new();
    for bench in [Benchmark::Adi, Benchmark::Li] {
        for version in [Version::Base, Version::PureHardware, Version::Selective] {
            jobs.push(SimJob::new(
                bench,
                Scale::Tiny,
                machine.clone(),
                AssistKind::Bypass,
                version,
            ));
        }
    }
    jobs
}

#[test]
fn warm_store_executes_zero_simulations_with_identical_results() {
    let root = TempRoot::new("warm");
    let jobs = suite_jobs();

    let cold_engine = JobEngine::with_store(1, Store::open(&root.0).unwrap());
    let (cold, cold_stats) = cold_engine.run_with_stats(&jobs);
    assert_eq!(cold_stats.store_hits, 0);
    assert_eq!(cold_stats.store_misses, cold_stats.executed);
    assert!(cold_stats.executed > 0);
    assert!(cold_stats.bytes_written > 0);

    // A fresh engine against the same root answers everything from disk:
    // zero simulations, zero prepared programs, byte-identical results.
    let warm_engine = JobEngine::with_store(1, Store::open(&root.0).unwrap());
    let (warm, warm_stats) = warm_engine.run_with_stats(&jobs);
    assert_eq!(warm_stats.executed, 0, "warm store must simulate nothing");
    assert_eq!(warm_stats.programs_prepared, 0, "warm store must prepare nothing");
    assert_eq!(warm_stats.store_hits, cold_stats.executed, "store_hits == unique jobs");
    assert_eq!(warm_stats.store_misses, 0);
    assert_eq!(warm_stats.bytes_written, 0);
    assert_eq!(cold, warm, "stored results must echo the simulation exactly");

    // And the store-less engine agrees with both.
    let plain = JobEngine::serial().run(&jobs);
    assert_eq!(plain, warm);
}

#[test]
fn profiled_round_trip_preserves_regions() {
    let root = TempRoot::new("profiled");
    let jobs = vec![SimJob::new(
        Benchmark::Adi,
        Scale::Tiny,
        MachineConfig::base(),
        AssistKind::Bypass,
        Version::Selective,
    )];

    let engine = JobEngine::with_store(1, Store::open(&root.0).unwrap());
    // A plain run stores a region-less entry; the profiled run must treat
    // it as a miss, re-simulate, and overwrite it with regions.
    let (_, plain_stats) = engine.run_with_stats(&jobs);
    assert_eq!(plain_stats.store_misses, 1);
    let profiled_cold = engine.run_profiled(&jobs);
    assert!(profiled_cold[0].regions.is_some());

    // Now the entry carries regions: both profiled and plain reruns are
    // pure hits, and the profile round-trips through JSON exactly.
    let profiled_warm = engine.run_profiled(&jobs);
    assert_eq!(profiled_warm, profiled_cold);
    let (plain_warm, plain_warm_stats) = engine.run_with_stats(&jobs);
    assert_eq!(plain_warm_stats.store_hits, 1);
    assert_eq!(plain_warm_stats.executed, 0);
    assert!(plain_warm[0].regions.is_none(), "plain runs never expose stored regions");
}

#[test]
fn corrupt_and_stale_entries_are_misses_and_repaired() {
    let root = TempRoot::new("corrupt");
    let jobs = suite_jobs();
    let engine = JobEngine::with_store(1, Store::open(&root.0).unwrap());
    let (cold, cold_stats) = engine.run_with_stats(&jobs);

    // Mangle one entry into invalid JSON and another into a stale schema.
    let mut entries: Vec<PathBuf> = Vec::new();
    for shard in fs::read_dir(&root.0).unwrap() {
        let shard = shard.unwrap().path();
        if shard.is_dir() {
            for e in fs::read_dir(&shard).unwrap() {
                entries.push(e.unwrap().path());
            }
        }
    }
    entries.sort();
    assert_eq!(entries.len(), cold_stats.executed);
    fs::write(&entries[0], "{ this is not json").unwrap();
    fs::write(&entries[1], "{\"schema\":\"selcache-store/0\",\"result\":{}}\n").unwrap();

    // Both damaged entries read as misses: the engine re-simulates just
    // those two and heals the store, with results still byte-identical.
    let (healed, healed_stats) = engine.run_with_stats(&jobs);
    assert_eq!(healed_stats.executed, 2);
    assert_eq!(healed_stats.store_hits, cold_stats.executed - 2);
    assert_eq!(healed, cold);

    // And a third run is fully warm again.
    let (_, warm_stats) = engine.run_with_stats(&jobs);
    assert_eq!(warm_stats.executed, 0);
}

#[test]
fn gc_reclaims_corrupt_entries_and_temp_files() {
    let root = TempRoot::new("gc");
    let jobs = suite_jobs();
    let engine = JobEngine::with_store(1, Store::open(&root.0).unwrap());
    let (_, stats) = engine.run_with_stats(&jobs);
    let store = engine.store().unwrap();

    let before = store.stats();
    assert_eq!(before.entries, stats.executed);
    assert_eq!(before.bytes, stats.bytes_written);

    // Plant a corrupt entry and an abandoned temp file in one shard.
    let shard =
        fs::read_dir(&root.0).unwrap().map(|e| e.unwrap().path()).find(|p| p.is_dir()).unwrap();
    fs::write(shard.join("deadbeefdeadbeefdeadbeefdeadbeef.json"), "garbage").unwrap();
    fs::write(shard.join(".tmp-999-0"), "partial write").unwrap();

    let report = store.gc(None).unwrap();
    assert_eq!(report.kept, stats.executed);
    assert_eq!(report.removed, 1, "corrupt entry reclaimed");
    assert_eq!(report.tmp_removed, 1, "abandoned temp file reclaimed");
    assert!(report.bytes_freed > 0);

    // An aggressive age cutoff clears everything.
    let report = store.gc(Some(std::time::Duration::ZERO)).unwrap();
    assert_eq!(report.kept + report.removed, stats.executed);
    let after = store.stats();
    assert_eq!(after.entries, report.kept);
}

#[test]
fn sampled_results_roundtrip_through_the_store() {
    let root = TempRoot::new("sampled");
    let mode = SimMode::Sampled { interval_ops: 4096, max_intervals: 4, warmup: 1024 };
    let machine = MachineConfig::base();
    let jobs: Vec<SimJob> = [Version::Base, Version::PureHardware]
        .into_iter()
        .map(|v| {
            SimJob::new(Benchmark::Vpenta, Scale::Small, machine.clone(), AssistKind::Bypass, v)
                .with_mode(mode)
        })
        .collect();

    let engine = JobEngine::with_store(1, Store::open(&root.0).unwrap());
    let (cold, cold_stats) = engine.run_with_stats(&jobs);
    assert_eq!(cold_stats.executed, 2);
    for r in &cold {
        let info = r.sampled.expect("sampled jobs report coverage");
        assert!(info.detailed_ops < info.total_ops, "must actually sample");
        assert_eq!(r.instructions, info.total_ops);
    }

    // A fresh engine answers from disk with the coverage info intact, and
    // a profiled run accepts the region-less sampled entries as hits.
    let warm_engine = JobEngine::with_store(1, Store::open(&root.0).unwrap());
    let (warm, warm_stats) = warm_engine.run_with_stats(&jobs);
    assert_eq!(warm_stats.executed, 0, "sampled entries must be store hits");
    assert_eq!(cold, warm, "sampled coverage info must round-trip exactly");
    let (profiled, profiled_stats) = warm_engine.run_profiled_with_stats(&jobs);
    assert_eq!(profiled_stats.executed, 0, "sampled entries satisfy profiled runs too");
    assert!(profiled[0].regions.is_none(), "sampled results never carry regions");
}

/// Removes one `,"key":<uint>` field from a JSON entry, emulating an
/// envelope written before that counter existed.
fn strip_uint_field(text: &str, key: &str) -> String {
    let pat = format!(",\"{key}\":");
    let start = text.find(&pat).unwrap_or_else(|| panic!("entry should contain {key}"));
    let val = start + pat.len();
    let end = val
        + text[val..]
            .find(|c: char| !c.is_ascii_digit())
            .expect("digits end before the entry does");
    format!("{}{}", &text[..start], &text[end..])
}

fn entry_files(root: &PathBuf) -> Vec<PathBuf> {
    let mut entries: Vec<PathBuf> = Vec::new();
    for shard in fs::read_dir(root).unwrap() {
        let shard = shard.unwrap().path();
        if shard.is_dir() {
            for e in fs::read_dir(&shard).unwrap() {
                entries.push(e.unwrap().path());
            }
        }
    }
    entries.sort();
    entries
}

#[test]
fn pre_upgrade_envelopes_read_as_misses_not_errors() {
    // Schema evolution tolerance: entries written before the adaptive
    // controller added `adapt_switches` (and the per-region policy fields)
    // must degrade to clean misses that the engine re-simulates and heals —
    // never to parse errors or wrong answers.
    let root = TempRoot::new("preupgrade");
    let jobs = suite_jobs();
    let engine = JobEngine::with_store(1, Store::open(&root.0).unwrap());
    let (cold, cold_stats) = engine.run_with_stats(&jobs);

    // Rewrite every entry without the controller counter, mimicking the
    // pre-upgrade result schema.
    for path in entry_files(&root.0) {
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, strip_uint_field(&text, "adapt_switches")).unwrap();
    }

    let (healed, healed_stats) = engine.run_with_stats(&jobs);
    assert_eq!(healed_stats.store_hits, 0, "old envelopes must all read as misses");
    assert_eq!(healed_stats.executed, cold_stats.executed, "every job re-simulates");
    assert_eq!(healed, cold, "healing must reproduce the results exactly");

    // Same for profiled entries missing the per-region policy fields.
    let profiled_jobs = &jobs[..1];
    let profiled_cold = engine.run_profiled(profiled_jobs);
    let path = {
        let id = profiled_jobs[0].job_id().to_string();
        entry_files(&root.0).into_iter().find(|p| p.to_string_lossy().contains(&id)).unwrap()
    };
    let text = fs::read_to_string(&path).unwrap();
    assert!(text.contains("final_policy"), "profiled entries carry the policy fields");
    fs::write(&path, strip_uint_field(&text, "policy_switches")).unwrap();
    let (profiled_healed, stats) = engine.run_profiled_with_stats(profiled_jobs);
    assert_eq!(stats.executed, 1, "region-field-less entry is a miss, not an error");
    assert_eq!(profiled_healed, profiled_cold);
}

#[test]
fn dynamic_results_roundtrip_and_dedup_through_the_store() {
    let root = TempRoot::new("dynamic");
    let ctl = ControllerConfig { interval_accesses: 128, ..ControllerConfig::default() };
    let jobs = vec![SimJob::new(
        Benchmark::Li,
        Scale::Tiny,
        MachineConfig::base(),
        AssistKind::None,
        Version::Selective,
    )
    .with_controller(ctl)];

    let engine = JobEngine::with_store(1, Store::open(&root.0).unwrap());
    let (cold, cold_stats) = engine.run_with_stats(&jobs);
    assert_eq!(cold_stats.executed, 1);
    assert!(cold[0].regions.is_none(), "plain dynamic results stay region-less");

    // A fresh engine (different thread count) answers from disk,
    // byte-identical.
    let warm_engine = JobEngine::with_store(4, Store::open(&root.0).unwrap());
    let (warm, warm_stats) = warm_engine.run_with_stats(&jobs);
    assert_eq!(warm_stats.executed, 0, "dynamic entries must be store hits");
    assert_eq!(cold, warm);

    // A profiled rerun is also a pure hit: dynamic runs always simulate
    // with regions attached, and the store keeps the profile even when the
    // producing run returned it region-less.
    let (profiled, profiled_stats) = warm_engine.run_profiled_with_stats(&jobs);
    assert_eq!(profiled_stats.executed, 0, "the plain dynamic entry satisfies profiled runs");
    let prof = profiled[0].regions.as_ref().expect("dynamic entries carry regions");
    assert!(
        prof.regions().iter().any(|r| r.final_policy != "static"),
        "the controller's per-region decisions must round-trip"
    );
}

#[test]
fn results_carry_their_job_id() {
    let root = TempRoot::new("ids");
    let jobs = suite_jobs();
    let engine = JobEngine::with_store(1, Store::open(&root.0).unwrap());
    for results in [engine.run(&jobs), JobEngine::serial().run(&jobs)] {
        for (job, result) in jobs.iter().zip(&results) {
            assert_eq!(result.job_id, Some(job.job_id()), "engine results echo the job id");
        }
    }
}
