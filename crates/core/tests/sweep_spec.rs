//! Property tests of [`SweepSpec`] job normalization: whatever the grid
//! looks like, the job set it normalizes to must share prepared programs
//! across grid points (the engine-level dedup the sweep API relies on).

use proptest::prelude::*;
use selcache_core::{
    AssistKind, Benchmark, JobEngine, Scale, SweepAxis, SweepMode, SweepSpec, Version,
};

/// Strategy helper: turn raw generated values into a non-empty, distinct,
/// sorted axis value list.
fn distinct(mut values: Vec<u64>) -> Vec<u64> {
    values.sort_unstable();
    values.dedup();
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exact sweeps over axes that leave the L1 geometry alone (latency,
    /// L2 shape) derive the same compiler configuration at every grid
    /// point, so the engine prepares exactly three programs — raw,
    /// optimized, selective — no matter how many points the grid has.
    #[test]
    fn exact_geometry_invariant_sweeps_prepare_three_programs(
        lats in proptest::collection::vec(1u64..=500, 1..5),
        l2_assocs in proptest::collection::vec(1u64..=16, 1..4),
    ) {
        let lats = distinct(lats);
        let l2_assocs = distinct(l2_assocs);
        let spec = SweepSpec::new(Benchmark::Adi)
            .scale(Scale::Tiny)
            .assist(AssistKind::Bypass)
            .axis(SweepAxis::MemLatency, lats.iter().copied())
            .axis(SweepAxis::L2Assoc, l2_assocs.iter().copied());
        let points = lats.len() * l2_assocs.len();
        prop_assert_eq!(spec.points(), points);
        let jobs = spec.jobs();
        prop_assert_eq!(jobs.len(), points * (1 + Version::REPORTED.len()));
        let stats = JobEngine::serial().dry_run(&jobs);
        // One raw + one optimized + one selective program, shared by every
        // grid point; each point's five runs stay distinct (the machines
        // differ), so nothing else collapses.
        prop_assert_eq!(stats.programs_prepared, 3);
        prop_assert_eq!(stats.executed, jobs.len());
        prop_assert_eq!(stats.dedup_hits, 0);
    }

    /// Analytical sweeps pin the compiler configuration to the base
    /// machine, so however many points the cross-check samples, the job
    /// set needs at most two prepared programs (raw + optimized) — the
    /// same two the trace passes profile.
    #[test]
    fn analytical_cross_check_jobs_share_two_programs(
        size_shifts in proptest::collection::vec(13u32..=20, 1..5),
        assocs in proptest::collection::vec(0u32..=3, 1..4),
        check_pct in 0u32..=100,
    ) {
        let sizes = distinct(size_shifts.iter().map(|&p| 1u64 << p).collect());
        let assocs = distinct(assocs.iter().map(|&p| 1u64 << p).collect());
        let frac = check_pct as f64 / 100.0;
        let spec = SweepSpec::new(Benchmark::TpcDQ6)
            .scale(Scale::Tiny)
            .mode(SweepMode::Analytical { check_fraction: frac })
            .axis(SweepAxis::L1Size, sizes.iter().copied())
            .axis(SweepAxis::L1Assoc, assocs.iter().copied());
        let jobs = spec.jobs();
        let stats = JobEngine::serial().dry_run(&jobs);
        if frac > 0.0 {
            // max(1, round(frac * n)) sampled points, two jobs each.
            let n = spec.points();
            let checked = (((frac * n as f64).round() as usize).max(1)).min(n);
            prop_assert_eq!(jobs.len(), 2 * checked);
            // Every sampled point reuses the same two prepared programs
            // regardless of its geometry (the opt config is pinned).
            prop_assert_eq!(stats.programs_prepared, 2);
            // Distinct grid points mean distinct machines: no dedup.
            prop_assert_eq!(stats.executed, jobs.len());
        } else {
            prop_assert!(jobs.is_empty());
            prop_assert_eq!(stats.programs_prepared, 0);
        }
    }

    /// The grid is always the full cartesian product, last axis fastest,
    /// and every machine reflects its point's coordinates.
    #[test]
    fn grid_covers_the_cartesian_product(
        lats in proptest::collection::vec(1u64..=500, 1..4),
        ways in proptest::collection::vec(0u32..=4, 1..4),
    ) {
        let lats = distinct(lats);
        let ways = distinct(ways.iter().map(|&p| 1u64 << p).collect());
        let spec = SweepSpec::new(Benchmark::Li)
            .axis(SweepAxis::MemLatency, lats.iter().copied())
            .axis(SweepAxis::L1Assoc, ways.iter().copied());
        let grid = spec.grid();
        prop_assert_eq!(grid.len(), lats.len() * ways.len());
        for (k, point) in grid.iter().enumerate() {
            prop_assert_eq!(point[0], lats[k / ways.len()]);
            prop_assert_eq!(point[1], ways[k % ways.len()]);
            let m = spec.machine_at(point);
            prop_assert_eq!(m.mem.mem_latency, point[0]);
            prop_assert_eq!(m.mem.l1d.assoc as u64, point[1]);
            prop_assert_eq!(m.mem.l1i.assoc as u64, point[1]);
        }
    }
}
