//! Processor-core configuration.

/// Branch-direction predictor selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PredictorKind {
    /// Bimodal 2-bit counters (the paper's Table 1 configuration).
    #[default]
    Bimodal,
    /// Gshare (global history) — an ablation alternative.
    Gshare,
}

/// Timing model selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CpuModel {
    /// Out-of-order issue from the register update unit (the paper's
    /// SimpleScalar configuration).
    #[default]
    OutOfOrder,
    /// In-order issue (ablation: shows how much latency hiding the OOO core
    /// contributes to the reported improvements).
    InOrder,
}

/// Core parameters (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Instructions fetched/dispatched per cycle.
    pub fetch_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Register update unit (reorder window) entries.
    pub ruu_entries: u32,
    /// Load/store queue entries.
    pub lsq_entries: u32,
    /// Simultaneous memory operations issued per cycle (memory ports).
    pub mem_ports: u32,
    /// Integer ALUs (integer/branch/toggle ops issued per cycle).
    pub int_units: u32,
    /// Floating-point units (FP ops issued per cycle; SimpleScalar's
    /// default configuration has four FP ALUs).
    pub fp_units: u32,
    /// Bimodal predictor entries.
    pub predictor_entries: usize,
    /// Which direction predictor to use.
    pub predictor: PredictorKind,
    /// Front-end refill penalty after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
    /// Integer ALU latency in cycles.
    pub int_latency: u64,
    /// Floating-point latency in cycles.
    pub fp_latency: u64,
    /// Bytes per instruction-fetch block (for I-cache access batching).
    pub fetch_block: u64,
    /// Timing model.
    pub model: CpuModel,
}

impl CpuConfig {
    /// The paper's base configuration: 4-wide issue, 64-entry RUU, 32-entry
    /// LSQ, 2 memory ports, 2048-entry bimodal predictor.
    pub fn paper_base() -> Self {
        CpuConfig {
            issue_width: 4,
            fetch_width: 4,
            commit_width: 4,
            ruu_entries: 64,
            lsq_entries: 32,
            mem_ports: 2,
            int_units: 4,
            fp_units: 4,
            predictor_entries: 2048,
            predictor: PredictorKind::Bimodal,
            mispredict_penalty: 3,
            int_latency: 1,
            fp_latency: 4,
            fetch_block: 32,
            model: CpuModel::OutOfOrder,
        }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::paper_base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matches_table1() {
        let c = CpuConfig::paper_base();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.ruu_entries, 64);
        assert_eq!(c.lsq_entries, 32);
        assert_eq!(c.mem_ports, 2);
        assert_eq!((c.int_units, c.fp_units), (4, 4));
        assert_eq!(c.predictor_entries, 2048);
        assert_eq!(c.model, CpuModel::OutOfOrder);
    }
}
