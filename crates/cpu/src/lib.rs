//! # selcache-cpu
//!
//! Trace-driven out-of-order processor model (SimpleScalar-like) for the
//! *selcache* framework. The pipeline consumes the committed-path
//! instruction stream produced by [`selcache_ir::Interp`], modelling issue
//! width, a register update unit (RUU), a load/store queue, memory ports, a
//! bimodal branch predictor with mispredict recovery, instruction-cache
//! stalls, and the latency of every data access through a
//! [`selcache_mem::MemoryHierarchy`].
//!
//! ## Example
//!
//! ```
//! use selcache_cpu::{CpuConfig, Pipeline};
//! use selcache_ir::{ProgramBuilder, Subscript, Interp};
//! use selcache_mem::{AssistKind, HierarchyConfig, MemoryHierarchy};
//!
//! let mut b = ProgramBuilder::new("sum");
//! let a = b.array("A", &[1024], 8);
//! b.loop_(1024, |b, i| {
//!     b.stmt(|s| { s.read(a, vec![Subscript::var(i)]).fp(1); });
//! });
//! let program = b.finish()?;
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::None));
//! let stats = Pipeline::new(CpuConfig::paper_base()).run(Interp::new(&program), &mut mem);
//! assert_eq!(stats.loads, 1024);
//! # Ok::<(), selcache_ir::ProgramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod pipeline;
mod predictor;
mod stats;

pub use config::{CpuConfig, CpuModel, PredictorKind};
pub use pipeline::Pipeline;
pub use predictor::{Bimodal, Gshare, Predictor, PredictorState};
pub use stats::{CpuStats, CpuStatsProbe};
