//! The trace-driven out-of-order pipeline.
//!
//! Structure per simulated cycle: **commit** (in order, up to the commit
//! width), **issue** (out of order from the RUU, bounded by issue width and
//! memory ports; operands must be complete), **fetch/dispatch** (in order,
//! bounded by fetch width, RUU and LSQ occupancy; branches consult the
//! bimodal predictor and a misprediction blocks fetch until the branch
//! resolves plus a refill penalty; instruction-cache misses stall fetch).
//!
//! Memory operations perform their hierarchy access at issue time; the
//! access latency becomes the op's completion latency. `AssistOn`/`AssistOff`
//! markers toggle the hierarchy's assist flag at dispatch (in program order
//! with respect to all later dispatches) and cost one pipeline slot each —
//! the instruction overhead the paper accounts for.

use crate::config::{CpuConfig, CpuModel, PredictorKind};
use crate::predictor::{Bimodal, Gshare, Predictor};
use crate::stats::{CpuStats, CpuStatsProbe};
use selcache_ir::{OpKind, RegionId, TraceOp};
use selcache_mem::{MemoryHierarchy, NullProbe, Probe, Site};
use std::collections::VecDeque;

/// Completion-time ring size; dependence distances are clamped below this.
const RING: usize = 1024;

#[derive(Debug, Clone, Copy)]
struct Slot {
    seq: u64,
    pc: u64,
    region: RegionId,
    kind: OpKind,
    issued: bool,
    ready_at: u64,
    is_mem: bool,
}

/// Ready-queue record for one unissued op: everything the issue scan needs
/// to decide "can this issue now?" without touching its RUU slot. Three
/// entries fit in a cache line, so fruitless scans over a mostly-blocked
/// window stay cheap.
#[derive(Debug, Clone, Copy)]
struct IssueEntry {
    seq: u64,
    /// Sequence number of the producing op, `u64::MAX` when independent.
    dep_seq: u64,
    class: UnitClass,
}

impl Slot {
    fn site(&self) -> Site {
        Site::new(self.pc, self.region)
    }
}

/// Functional-unit class an op contends for; mirrors the `unit_free` check
/// in [`Pipeline::issue`] exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnitClass {
    Mem,
    Int,
    Fp,
}

impl UnitClass {
    fn of(kind: OpKind) -> UnitClass {
        match kind {
            OpKind::Load(_) | OpKind::Store(_) => UnitClass::Mem,
            OpKind::FpAlu => UnitClass::Fp,
            _ => UnitClass::Int,
        }
    }
}

/// An out-of-order (or in-order, per [`CpuModel`]) processor pipeline.
///
/// ```
/// use selcache_cpu::{CpuConfig, Pipeline};
/// use selcache_ir::{OpKind, TraceOp};
/// use selcache_mem::{AssistKind, HierarchyConfig, MemoryHierarchy};
///
/// let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::None));
/// let trace = (0..2000).map(|i| TraceOp::new(0x40_0000 + (i % 8) * 4, OpKind::IntAlu));
/// let stats = Pipeline::new(CpuConfig::paper_base()).run(trace, &mut mem);
/// assert_eq!(stats.committed, 2000);
/// assert!(stats.ipc() > 1.0);
/// ```
#[derive(Debug)]
pub struct Pipeline {
    cfg: CpuConfig,
    predictor: Predictor,
    stats: CpuStatsProbe,
    ruu: VecDeque<Slot>,
    lsq_used: u32,
    /// The ready queue: exactly the unissued ops, in sequence order. The
    /// issue scan walks this compact array instead of the RUU, so issued
    /// slots cost nothing and blocked candidates are rejected from a
    /// 24-byte record instead of a full [`Slot`].
    unissued_q: Vec<IssueEntry>,
    /// Unissued RUU occupancy per functional-unit class; lets the issue scan
    /// stop as soon as every class is saturated or drained.
    unissued: [u32; 3],
    /// `log2(fetch_block)` when the fetch-block size is a power of two
    /// (`u32::MAX` otherwise): fetch-block numbering shifts instead of
    /// dividing on every dispatched op.
    fetch_shift: u32,
    /// Earliest cycle the issue scan could find work after a fruitless scan:
    /// the minimum completion time of the dependencies that blocked it,
    /// lowered by fetch when it dispatches an op that could be ready sooner.
    /// Until then the scan is skipped — nothing in the window can become
    /// ready earlier, so the skipped scans would provably issue nothing.
    issue_retry_at: u64,
    completion: Vec<u64>,
    cycle: u64,
    seq: u64,
    fetch_resume: u64,
    blocked_on: Option<u64>,
    last_fetch_block: u64,
    staged: Option<TraceOp>,
    done_fetching: bool,
    /// Region the pipeline is currently attributed to: the region of the
    /// oldest in-flight instruction, held over empty-RUU cycles.
    cur_region: RegionId,
}

impl Pipeline {
    /// Creates a pipeline with fresh predictor state.
    pub fn new(cfg: CpuConfig) -> Self {
        let predictor = match cfg.predictor {
            PredictorKind::Bimodal => Predictor::Bimodal(Bimodal::new(cfg.predictor_entries)),
            PredictorKind::Gshare => Predictor::Gshare(Gshare::new(cfg.predictor_entries)),
        };
        Pipeline {
            predictor,
            stats: CpuStatsProbe::default(),
            ruu: VecDeque::with_capacity(cfg.ruu_entries as usize),
            lsq_used: 0,
            unissued_q: Vec::with_capacity(cfg.ruu_entries as usize),
            unissued: [0; 3],
            fetch_shift: if cfg.fetch_block.is_power_of_two() {
                cfg.fetch_block.trailing_zeros()
            } else {
                u32::MAX
            },
            issue_retry_at: 0,
            completion: vec![u64::MAX; RING],
            cycle: 0,
            seq: 0,
            fetch_resume: 0,
            blocked_on: None,
            last_fetch_block: u64::MAX,
            staged: None,
            done_fetching: false,
            cur_region: RegionId::NONE,
            cfg,
        }
    }

    /// Creates a pipeline whose branch predictor starts from `predictor`
    /// (e.g. one warmed functionally by the sampled execution mode via
    /// [`Predictor::update`]) instead of a cold table. The caller is
    /// responsible for sizing the predictor consistently with `cfg`.
    pub fn with_predictor(cfg: CpuConfig, predictor: Predictor) -> Self {
        let mut p = Pipeline::new(cfg);
        p.predictor = predictor;
        p
    }

    /// The pipeline's branch predictor (e.g. to snapshot its learned state
    /// for reuse by a later measured interval).
    pub fn predictor(&self) -> &Predictor {
        &self.predictor
    }

    /// Runs the given trace to completion against `mem` and returns the
    /// accumulated statistics. The pipeline can be reused for another trace;
    /// predictor and statistics carry over (create a new [`Pipeline`] for an
    /// independent run).
    pub fn run(
        &mut self,
        trace: impl IntoIterator<Item = TraceOp>,
        mem: &mut MemoryHierarchy,
    ) -> CpuStats {
        self.run_probed(trace, mem, &mut NullProbe)
    }

    /// [`Pipeline::run`] with event instrumentation: `probe` observes every
    /// cycle, commit, stall, misprediction, assist toggle and memory-system
    /// event, each attributed to the PC and region of the instruction that
    /// caused it. The built-in [`CpuStats`] accounting runs alongside
    /// unconditionally; with [`NullProbe`] this monomorphizes to the plain
    /// [`Pipeline::run`] path.
    pub fn run_probed<P: Probe>(
        &mut self,
        trace: impl IntoIterator<Item = TraceOp>,
        mem: &mut MemoryHierarchy,
        probe: &mut P,
    ) -> CpuStats {
        let mut trace = trace.into_iter();
        self.done_fetching = false;
        // Move the default probe out of `self` so both it and the caller's
        // probe can fan out through one tuple while `self` stays mutable.
        let mut default_probe = std::mem::take(&mut self.stats);
        let mut fan = (&mut default_probe, probe);
        while !(self.done_fetching && self.ruu.is_empty() && self.staged.is_none()) {
            if let Some(front) = self.ruu.front() {
                self.cur_region = front.region;
            }
            fan.cycle(self.cur_region);
            self.commit(&mut fan);
            self.issue(mem, &mut fan);
            self.fetch(&mut trace, mem, &mut fan);
            self.cycle += 1;
        }
        default_probe.stats.cycles = self.cycle;
        self.stats = default_probe;
        self.stats.stats()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CpuStats {
        &self.stats.stats
    }

    /// Branch-predictor accuracy so far (0.0 before any branch executes).
    pub fn predictor_accuracy(&self) -> f64 {
        self.predictor.accuracy()
    }

    fn commit<P: Probe>(&mut self, probe: &mut P) {
        let mut n = 0;
        while n < self.cfg.commit_width {
            let Some(front) = self.ruu.front() else {
                break;
            };
            if !front.issued || front.ready_at > self.cycle {
                break;
            }
            let slot = self.ruu.pop_front().expect("front exists");
            if slot.is_mem {
                self.lsq_used -= 1;
            }
            probe.commit(slot.site(), slot.kind);
            n += 1;
        }
    }

    fn issue<P: Probe>(&mut self, mem: &mut MemoryHierarchy, probe: &mut P) {
        let Some(front_seq) = self.ruu.front().map(|s| s.seq) else {
            return;
        };
        // After a fruitless scan, nothing in the window can become ready
        // before the blocking dependencies complete (fetch lowers the bound
        // when it dispatches an op that could be ready sooner); skip the
        // provably empty rescans until then.
        if self.cycle < self.issue_retry_at {
            probe.issue_stall();
            return;
        }
        let in_order = self.cfg.model == CpuModel::InOrder;
        let mut issued = 0;
        let mut next_ready = u64::MAX;
        let mut unit_used = [0u32; 3];
        let unit_limit = [self.cfg.mem_ports, self.cfg.int_units, self.cfg.fp_units];
        let cycle = self.cycle;
        let mut resolved_block: Option<u64> = None;
        // Stop once every unit class is saturated or has no unissued
        // candidate left anywhere in the window. The predicate only changes
        // when an op issues, so it is re-evaluated there, not per slot.
        let exhausted = |used: &[u32; 3], unissued: &[u32; 3]| {
            (0..3).all(|c| used[c] >= unit_limit[c] || unissued[c] == 0)
        };
        let mut stop = exhausted(&unit_used, &self.unissued);
        // Walk the ready queue in sequence order — the same candidates, in
        // the same order, as a front-to-back RUU scan over unissued slots.
        // Entries whose op issues are dropped by compacting in place; a
        // break leaves the tail untouched for the next scan.
        let mut q = std::mem::take(&mut self.unissued_q);
        let mut read = 0;
        let mut write = 0;
        while read < q.len() {
            if issued == self.cfg.issue_width || stop {
                break;
            }
            let entry = q[read];
            let deps_ready = entry.dep_seq == u64::MAX || {
                let done = self.completion[(entry.dep_seq % RING as u64) as usize];
                if done > cycle {
                    next_ready = next_ready.min(done);
                }
                done <= cycle
            };
            if !deps_ready {
                if in_order {
                    break;
                }
                q[write] = entry;
                write += 1;
                read += 1;
                continue;
            }
            let class = entry.class as usize;
            if unit_used[class] >= unit_limit[class] {
                if in_order {
                    break;
                }
                q[write] = entry;
                write += 1;
                read += 1;
                continue;
            }
            let idx = (entry.seq - front_seq) as usize;
            let (kind, site) = {
                let slot = &self.ruu[idx];
                (slot.kind, slot.site())
            };
            let latency = match kind {
                OpKind::IntAlu | OpKind::AssistOn | OpKind::AssistOff => self.cfg.int_latency,
                OpKind::Branch { .. } => self.cfg.int_latency,
                OpKind::FpAlu => self.cfg.fp_latency,
                OpKind::Load(a) => mem.data_access_probed(a, false, cycle, site, probe),
                OpKind::Store(a) => mem.data_access_probed(a, true, cycle, site, probe),
            };
            let slot = &mut self.ruu[idx];
            slot.issued = true;
            slot.ready_at = cycle + latency;
            self.completion[(entry.seq % RING as u64) as usize] = cycle + latency;
            unit_used[class] += 1;
            self.unissued[class] -= 1;
            stop = exhausted(&unit_used, &self.unissued);
            issued += 1;
            if self.blocked_on == Some(entry.seq) {
                resolved_block = Some(cycle + latency + self.cfg.mispredict_penalty);
            }
            read += 1;
        }
        if write < read {
            q.copy_within(read.., write);
            q.truncate(q.len() - (read - write));
        }
        self.unissued_q = q;
        if let Some(resume) = resolved_block {
            self.blocked_on = None;
            self.fetch_resume = self.fetch_resume.max(resume);
        }
        if issued == 0 {
            probe.issue_stall();
            // Valid until fetch adds ops: every unissued slot waits (possibly
            // transitively) on a dependency whose completion time was seen by
            // this scan, so `next_ready` lower-bounds the next issue.
            self.issue_retry_at = if next_ready == u64::MAX { cycle + 1 } else { next_ready };
        } else {
            self.issue_retry_at = 0;
        }
    }

    fn fetch<P: Probe>(
        &mut self,
        trace: &mut impl Iterator<Item = TraceOp>,
        mem: &mut MemoryHierarchy,
        probe: &mut P,
    ) {
        if self.done_fetching && self.staged.is_none() {
            return;
        }
        if self.blocked_on.is_some() || self.cycle < self.fetch_resume {
            probe.fetch_stall();
            return;
        }
        let mut fetched = 0;
        while fetched < self.cfg.fetch_width {
            if self.ruu.len() == self.cfg.ruu_entries as usize {
                break;
            }
            let op = match self.staged.take().or_else(|| trace.next()) {
                Some(op) => op,
                None => {
                    self.done_fetching = true;
                    break;
                }
            };
            let is_mem = op.kind.is_mem();
            if is_mem && self.lsq_used == self.cfg.lsq_entries {
                self.staged = Some(op);
                break;
            }
            // Instruction fetch for a new fetch block.
            let fb = if self.fetch_shift < 64 {
                op.pc >> self.fetch_shift
            } else {
                op.pc / self.cfg.fetch_block
            };
            if fb != self.last_fetch_block {
                self.last_fetch_block = fb;
                let lat =
                    mem.inst_fetch_probed(op.pc, self.cycle, Site::new(op.pc, op.region), probe);
                if lat > 0 {
                    self.fetch_resume = self.cycle + lat;
                }
            }
            match op.kind {
                OpKind::Branch { taken } => {
                    let correct = self.predictor.update(op.pc, taken);
                    if !correct {
                        probe.mispredict(Site::new(op.pc, op.region));
                        self.blocked_on = Some(self.seq);
                    }
                }
                OpKind::AssistOn => {
                    mem.set_assist_enabled(true);
                    probe.assist_toggle(Site::new(op.pc, op.region), true);
                }
                OpKind::AssistOff => {
                    mem.set_assist_enabled(false);
                    probe.assist_toggle(Site::new(op.pc, op.region), false);
                }
                _ => {}
            }
            let dep_seq = if op.dep == 0 || (op.dep as u64) > self.seq || op.dep as usize >= RING {
                None
            } else {
                Some(self.seq - op.dep as u64)
            };
            self.completion[(self.seq % RING as u64) as usize] = u64::MAX;
            let class = UnitClass::of(op.kind);
            self.unissued[class as usize] += 1;
            self.unissued_q.push(IssueEntry {
                seq: self.seq,
                dep_seq: dep_seq.unwrap_or(u64::MAX),
                class,
            });
            // A dispatched op may be issueable before the current retry
            // bound: immediately if its dependency is absent or complete, at
            // the dependency's completion when that is already known. A dep
            // still waiting to issue cannot complete before the bound (it is
            // itself covered by it), so it leaves the bound unchanged.
            let ready_bound = match dep_seq {
                None => self.cycle + 1,
                Some(d) => {
                    let done = self.completion[(d % RING as u64) as usize];
                    if done == u64::MAX {
                        u64::MAX
                    } else {
                        done.max(self.cycle + 1)
                    }
                }
            };
            self.issue_retry_at = self.issue_retry_at.min(ready_bound);
            self.ruu.push_back(Slot {
                seq: self.seq,
                pc: op.pc,
                region: op.region,
                kind: op.kind,
                issued: false,
                ready_at: 0,
                is_mem,
            });
            if is_mem {
                self.lsq_used += 1;
            }
            self.seq += 1;
            fetched += 1;
            if self.blocked_on.is_some() || self.cycle < self.fetch_resume {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selcache_ir::Addr;
    use selcache_mem::{AssistKind, ControllerConfig, HierarchyConfig};

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::None))
    }

    fn run(ops: Vec<TraceOp>) -> CpuStats {
        let mut m = mem();
        Pipeline::new(CpuConfig::paper_base()).run(ops, &mut m)
    }

    fn alu(pc: u64) -> TraceOp {
        TraceOp::new(pc, OpKind::IntAlu)
    }

    #[test]
    fn empty_trace_finishes() {
        let s = run(vec![]);
        assert_eq!(s.committed, 0);
        assert!(s.cycles <= 2);
    }

    #[test]
    fn independent_alus_reach_issue_width() {
        // 4000 independent ALU ops in one fetch-block neighborhood (long
        // enough to amortize the cold I-cache miss).
        let ops: Vec<_> = (0..4000).map(|i| alu(0x40_0000 + (i % 8) * 4)).collect();
        let s = run(ops);
        assert_eq!(s.committed, 4000);
        // 4-wide machine: should sustain close to 4 IPC after warmup.
        assert!(s.ipc() > 2.5, "ipc {}", s.ipc());
    }

    #[test]
    fn dependent_chain_serializes() {
        let ops: Vec<_> = (0..400)
            .map(|i| TraceOp::with_dep(0x40_0000, OpKind::IntAlu, u16::from(i > 0)))
            .collect();
        let s = run(ops);
        // Fully serial chain: at most ~1 IPC.
        assert!(s.ipc() < 1.2, "ipc {}", s.ipc());
    }

    #[test]
    fn fp_latency_slows_dependent_chain() {
        let int_ops: Vec<_> =
            (0..200).map(|_| TraceOp::with_dep(0x40_0000, OpKind::IntAlu, 1)).collect();
        let fp_ops: Vec<_> =
            (0..200).map(|_| TraceOp::with_dep(0x40_0000, OpKind::FpAlu, 1)).collect();
        let si = run(int_ops);
        let sf = run(fp_ops);
        assert!(sf.cycles > si.cycles * 2, "fp {} int {}", sf.cycles, si.cycles);
    }

    #[test]
    fn independent_loads_overlap_misses() {
        // 8 loads to distinct L2 blocks: independent -> overlapped misses.
        let indep: Vec<_> = (0..8u64)
            .map(|i| TraceOp::new(0x40_0000, OpKind::Load(Addr(0x1000_0000 + i * 4096))))
            .collect();
        let dep: Vec<_> = (0..8u64)
            .map(|i| {
                TraceOp::with_dep(
                    0x40_0000,
                    OpKind::Load(Addr(0x2000_0000 + i * 4096)),
                    u16::from(i > 0),
                )
            })
            .collect();
        let si = run(indep);
        let sd = run(dep);
        assert!(sd.cycles > si.cycles * 2, "dependent {} independent {}", sd.cycles, si.cycles);
    }

    #[test]
    fn mispredicted_branch_costs_cycles() {
        // Alternating branch directions defeat the bimodal predictor.
        let flaky: Vec<_> = (0..200)
            .map(|i| TraceOp::new(0x40_0000, OpKind::Branch { taken: i % 2 == 0 }))
            .collect();
        let steady: Vec<_> =
            (0..200).map(|_| TraceOp::new(0x40_0000, OpKind::Branch { taken: true })).collect();
        let sf = run(flaky);
        let ss = run(steady);
        assert!(sf.mispredicts > 50);
        assert!(ss.mispredicts < 5);
        assert!(sf.cycles > ss.cycles);
        assert!(sf.fetch_stall_cycles > 0);
    }

    #[test]
    fn assist_markers_toggle_hierarchy() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::Victim));
        assert!(m.assist_enabled());
        let ops = vec![TraceOp::new(0x40_0000, OpKind::AssistOff), alu(0x40_0004)];
        let s = Pipeline::new(CpuConfig::paper_base()).run(ops, &mut m);
        assert!(!m.assist_enabled());
        assert_eq!(s.assist_toggles, 1);
        let ops = vec![TraceOp::new(0x40_0000, OpKind::AssistOn)];
        Pipeline::new(CpuConfig::paper_base()).run(ops, &mut m);
        assert!(m.assist_enabled());
    }

    #[test]
    fn assist_markers_freeze_and_thaw_the_controller() {
        // Under the adaptive controller the same ON/OFF markers gate the
        // whole mechanism: an OFF window freezes the controller (no
        // decisions, no switches), ON thaws it again.
        let mut cfg = HierarchyConfig::paper_base(AssistKind::None);
        cfg.controller =
            Some(ControllerConfig { interval_accesses: 8, ..ControllerConfig::default() });
        let mut m = MemoryHierarchy::new(cfg);
        // Conflict traffic (5 blocks cycling one 4-way set) drives the
        // controller through its exploration trials.
        let load =
            |i: u64| TraceOp::new(0x40_0000, OpKind::Load(Addr(0x1000_0000 + (i % 5) * 8192)));
        let mut ops = vec![TraceOp::new(0x40_0000, OpKind::AssistOn)];
        ops.extend((0..64).map(load));
        ops.push(TraceOp::new(0x40_0000, OpKind::AssistOff));
        Pipeline::new(CpuConfig::paper_base()).run(ops, &mut m);
        assert!(!m.assist_enabled());
        let switches = m.stats().assist.adapt_switches;
        assert!(switches > 0, "the ON window must drive controller decisions");
        // OFF window: further traffic changes nothing.
        let ops: Vec<TraceOp> = (0..64).map(load).collect();
        Pipeline::new(CpuConfig::paper_base()).run(ops, &mut m);
        assert_eq!(m.stats().assist.adapt_switches, switches, "frozen while OFF");
        // ON again with streaming traffic the locked-in winner cannot help:
        // the hysteresis trips and the controller re-explores — decisions
        // resume.
        let mut ops = vec![TraceOp::new(0x40_0000, OpKind::AssistOn)];
        ops.extend(
            (0..64u64).map(|i| TraceOp::new(0x40_0000, OpKind::Load(Addr(0x3000_0000 + i * 64)))),
        );
        Pipeline::new(CpuConfig::paper_base()).run(ops, &mut m);
        assert!(m.stats().assist.adapt_switches > switches, "thawed by ON");
    }

    #[test]
    fn lsq_limits_outstanding_memory_ops() {
        // More loads than LSQ entries; all must still commit.
        let ops: Vec<_> = (0..100u64)
            .map(|i| TraceOp::new(0x40_0000, OpKind::Load(Addr(0x1000_0000 + i * 8))))
            .collect();
        let s = run(ops);
        assert_eq!(s.loads, 100);
        assert_eq!(s.committed, 100);
    }

    #[test]
    fn in_order_model_is_slower_on_mixed_trace() {
        // Each load feeds two dependent ALUs: in-order issue blocks on the
        // pending load and cannot overlap the next miss; out-of-order can.
        let mk = || {
            (0..64u64).flat_map(|i| {
                vec![
                    TraceOp::new(0x40_0000, OpKind::Load(Addr(0x1000_0000 + i * 4096))),
                    TraceOp::with_dep(0x40_0004, OpKind::IntAlu, 1),
                    TraceOp::with_dep(0x40_0008, OpKind::IntAlu, 1),
                ]
            })
        };
        let mut m1 = mem();
        let ooo = Pipeline::new(CpuConfig::paper_base()).run(mk(), &mut m1);
        let mut m2 = mem();
        let mut cfg = CpuConfig::paper_base();
        cfg.model = CpuModel::InOrder;
        let ino = Pipeline::new(cfg).run(mk(), &mut m2);
        assert!(ino.cycles > ooo.cycles, "in-order {} ooo {}", ino.cycles, ooo.cycles);
    }

    #[test]
    fn stats_partition_by_kind() {
        let ops = vec![
            alu(0x40_0000),
            TraceOp::new(0x40_0004, OpKind::FpAlu),
            TraceOp::new(0x40_0008, OpKind::Load(Addr(0x1000_0000))),
            TraceOp::new(0x40_000C, OpKind::Store(Addr(0x1000_0008))),
            TraceOp::new(0x40_0010, OpKind::Branch { taken: true }),
        ];
        let s = run(ops);
        assert_eq!(s.committed, 5);
        assert_eq!((s.int_ops, s.fp_ops, s.loads, s.stores, s.branches), (1, 1, 1, 1, 1));
    }
}
