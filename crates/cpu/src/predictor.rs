//! Bimodal branch predictor (2-bit saturating counters).

use crate::config::{CpuConfig, PredictorKind};

/// A bimodal predictor: a table of 2-bit saturating counters indexed by the
/// branch PC (2048 entries in the paper's configuration).
///
/// ```
/// use selcache_cpu::Bimodal;
/// let mut p = Bimodal::new(2048);
/// let pc = 0x40_0000;
/// // Train taken.
/// for _ in 0..4 { p.update(pc, true); }
/// assert!(p.predict(pc));
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    counters: Vec<u8>,
    lookups: u64,
    correct: u64,
}

impl Bimodal {
    /// Creates a predictor with `entries` counters (rounded up to a power of
    /// two), initialized weakly taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "predictor must have entries");
        Bimodal { counters: vec![2; entries.next_power_of_two()], lookups: 0, correct: 0 }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predicted direction for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Updates the counter with the actual outcome and returns whether the
    /// prediction made beforehand was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let i = self.index(pc);
        let predicted = self.counters[i] >= 2;
        if taken {
            self.counters[i] = (self.counters[i] + 1).min(3);
        } else {
            self.counters[i] = self.counters[i].saturating_sub(1);
        }
        self.lookups += 1;
        if predicted == taken {
            self.correct += 1;
        }
        predicted == taken
    }

    /// Fraction of correct predictions so far (0.0 before any update, so an
    /// empty run never reports a NaN-adjacent vacuous 100%).
    pub fn accuracy(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.correct as f64 / self.lookups as f64
        }
    }

    /// Number of predictions made.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

/// A gshare predictor: global history XOR-indexed 2-bit counters
/// (McFarling). Provided as an ablation alternative to the paper's bimodal
/// table.
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    history_bits: u32,
    lookups: u64,
    correct: u64,
}

impl Gshare {
    /// Creates a predictor with `entries` counters (rounded up to a power
    /// of two) and a history register as wide as the index.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "predictor must have entries");
        let n = entries.next_power_of_two();
        Gshare {
            counters: vec![2; n],
            history: 0,
            history_bits: n.trailing_zeros(),
            lookups: 0,
            correct: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) as usize) & (self.counters.len() - 1)
    }

    /// Predicted direction for the branch at `pc` under the current global
    /// history.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Updates counter and history; returns whether the prediction was
    /// correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let i = self.index(pc);
        let predicted = self.counters[i] >= 2;
        if taken {
            self.counters[i] = (self.counters[i] + 1).min(3);
        } else {
            self.counters[i] = self.counters[i].saturating_sub(1);
        }
        self.history =
            ((self.history << 1) | u64::from(taken)) & ((1u64 << self.history_bits.min(63)) - 1);
        self.lookups += 1;
        if predicted == taken {
            self.correct += 1;
        }
        predicted == taken
    }

    /// Fraction of correct predictions so far (0.0 before any update, so an
    /// empty run never reports a NaN-adjacent vacuous 100%).
    pub fn accuracy(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.correct as f64 / self.lookups as f64
        }
    }
}

/// A direction predictor: the paper's bimodal table or the gshare ablation.
#[derive(Debug, Clone)]
pub enum Predictor {
    /// PC-indexed 2-bit counters (the paper's configuration).
    Bimodal(Bimodal),
    /// Global-history XOR-indexed 2-bit counters.
    Gshare(Gshare),
}

impl Predictor {
    /// Builds the predictor selected by a core configuration — the same
    /// construction [`crate::Pipeline::new`] performs internally. Used by the
    /// sampled execution mode to warm a predictor functionally before
    /// injecting it into a timed pipeline.
    pub fn from_config(cfg: &CpuConfig) -> Self {
        match cfg.predictor {
            PredictorKind::Bimodal => Predictor::Bimodal(Bimodal::new(cfg.predictor_entries)),
            PredictorKind::Gshare => Predictor::Gshare(Gshare::new(cfg.predictor_entries)),
        }
    }

    /// Updates with the actual outcome; returns whether the prediction made
    /// beforehand was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        match self {
            Predictor::Bimodal(p) => p.update(pc, taken),
            Predictor::Gshare(p) => p.update(pc, taken),
        }
    }

    /// Prediction accuracy so far.
    pub fn accuracy(&self) -> f64 {
        match self {
            Predictor::Bimodal(p) => p.accuracy(),
            Predictor::Gshare(p) => p.accuracy(),
        }
    }

    /// Captures the learned state: counter tables plus (for gshare) the
    /// global history register. Accuracy counters are not included.
    pub fn snapshot(&self) -> PredictorState {
        let inner = match self {
            Predictor::Bimodal(p) => StateInner::Bimodal { counters: p.counters.clone() },
            Predictor::Gshare(p) => {
                StateInner::Gshare { counters: p.counters.clone(), history: p.history }
            }
        };
        PredictorState { inner }
    }

    /// Restores a snapshot taken from an identically-configured predictor
    /// and resets the accuracy counters, so a restored predictor reports
    /// statistics for the measured run only.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's kind or table size differs.
    pub fn restore(&mut self, snap: &PredictorState) {
        match (self, &snap.inner) {
            (Predictor::Bimodal(p), StateInner::Bimodal { counters }) => {
                assert_eq!(p.counters.len(), counters.len(), "predictor snapshot size mismatch");
                p.counters.copy_from_slice(counters);
                p.lookups = 0;
                p.correct = 0;
            }
            (Predictor::Gshare(p), StateInner::Gshare { counters, history }) => {
                assert_eq!(p.counters.len(), counters.len(), "predictor snapshot size mismatch");
                p.counters.copy_from_slice(counters);
                p.history = *history;
                p.lookups = 0;
                p.correct = 0;
            }
            _ => panic!("predictor snapshot kind mismatch"),
        }
    }
}

#[derive(Debug, Clone)]
enum StateInner {
    Bimodal { counters: Vec<u8> },
    Gshare { counters: Vec<u8>, history: u64 },
}

/// Checkpoint of a [`Predictor`]'s learned state (see
/// [`Predictor::snapshot`]).
#[derive(Debug, Clone)]
pub struct PredictorState {
    inner: StateInner,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_taken_loop_branch() {
        let mut p = Bimodal::new(16);
        let pc = 0x100;
        // Initially weakly taken: predicts taken.
        assert!(p.predict(pc));
        // A loop branch: taken 9 times, not taken once; only the exit (and
        // possibly the first post-exit) mispredicts.
        let mut wrong = 0;
        for _ in 0..3 {
            for i in 0..10 {
                if !p.update(pc, i != 9) {
                    wrong += 1;
                }
            }
        }
        assert!(wrong <= 4, "loop branch should be well predicted, got {wrong} wrong");
    }

    #[test]
    fn learns_not_taken() {
        let mut p = Bimodal::new(16);
        for _ in 0..4 {
            p.update(0x200, false);
        }
        assert!(!p.predict(0x200));
    }

    #[test]
    fn aliasing_uses_low_bits() {
        let mut p = Bimodal::new(4);
        // pc 0 and pc 16 alias with 4 entries (pc>>2 & 3).
        for _ in 0..4 {
            p.update(0, false);
        }
        assert!(!p.predict(16));
    }

    #[test]
    fn accuracy_tracks() {
        let mut p = Bimodal::new(16);
        p.update(0, true); // predicted taken (init 2) -> correct
        p.update(0, true); // correct
        p.update(0, false); // wrong
        assert!((p.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.lookups(), 3);
    }

    #[test]
    fn rounds_to_power_of_two() {
        let p = Bimodal::new(2000);
        assert_eq!(p.counters.len(), 2048);
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // A strictly alternating branch defeats bimodal but is captured by
        // one bit of global history.
        let mut g = Gshare::new(2048);
        let mut b = Bimodal::new(2048);
        let mut g_right = 0;
        let mut b_right = 0;
        for i in 0..2000 {
            let taken = i % 2 == 0;
            if g.update(0x400, taken) {
                g_right += 1;
            }
            if b.update(0x400, taken) {
                b_right += 1;
            }
        }
        assert!(g_right > 1900, "gshare should learn alternation: {g_right}");
        assert!(b_right < 1100, "bimodal cannot: {b_right}");
    }

    #[test]
    fn gshare_accuracy_tracks() {
        let mut g = Gshare::new(64);
        for _ in 0..100 {
            g.update(0, true);
        }
        assert!(g.accuracy() > 0.9);
    }

    #[test]
    fn predictor_enum_dispatches() {
        let mut p = Predictor::Gshare(Gshare::new(64));
        p.update(0, true);
        assert!(p.accuracy() <= 1.0);
        let mut p = Predictor::Bimodal(Bimodal::new(64));
        p.update(0, false);
        assert!(p.accuracy() <= 1.0);
    }

    #[test]
    fn snapshot_restore_transfers_learned_state() {
        for mut warm in [Predictor::Bimodal(Bimodal::new(64)), Predictor::Gshare(Gshare::new(64))] {
            for i in 0..500u64 {
                warm.update(0x400 + (i % 16) * 4, i % 3 != 0);
            }
            let snap = warm.snapshot();
            let mut cold = match warm {
                Predictor::Bimodal(_) => Predictor::Bimodal(Bimodal::new(64)),
                Predictor::Gshare(_) => Predictor::Gshare(Gshare::new(64)),
            };
            cold.restore(&snap);
            assert_eq!(cold.accuracy(), 0.0, "restore must reset accuracy counters");
            // Identical learned state: both predict (and thus mispredict)
            // the same sequence from here on.
            for i in 500..1000u64 {
                let pc = 0x400 + (i % 16) * 4;
                let taken = i % 3 != 0;
                assert_eq!(warm.update(pc, taken), cold.update(pc, taken));
            }
        }
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn restore_rejects_other_kind() {
        let snap = Predictor::Bimodal(Bimodal::new(64)).snapshot();
        Predictor::Gshare(Gshare::new(64)).restore(&snap);
    }

    #[test]
    fn from_config_matches_kind() {
        let mut cfg = CpuConfig::paper_base();
        assert!(matches!(Predictor::from_config(&cfg), Predictor::Bimodal(_)));
        cfg.predictor = PredictorKind::Gshare;
        assert!(matches!(Predictor::from_config(&cfg), Predictor::Gshare(_)));
    }
}
