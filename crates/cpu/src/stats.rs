//! Processor statistics.

use selcache_ir::OpKind;
use selcache_mem::{Probe, Site};
use std::fmt;

/// Counters accumulated by a pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed instructions (all classes).
    pub committed: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed branches.
    pub branches: u64,
    /// Committed integer ALU ops.
    pub int_ops: u64,
    /// Committed floating-point ops.
    pub fp_ops: u64,
    /// Committed assist ON/OFF instructions.
    pub assist_toggles: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Cycles the front end was stalled (mispredict recovery + I-cache
    /// misses).
    pub fetch_stall_cycles: u64,
    /// Cycles no instruction could issue.
    pub issue_stall_cycles: u64,
}

impl CpuStats {
    /// Instructions per cycle; 0 when no cycles elapsed.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate in `[0, 1]`.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// The default pipeline probe: accumulates [`CpuStats`] from commit, stall
/// and misprediction events.
///
/// [`crate::Pipeline`] owns one of these permanently (so statistics carry
/// over across reused runs, as before the probe refactor) and stacks any
/// caller-supplied probe next to it via the tuple fan-out.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CpuStatsProbe {
    pub(crate) stats: CpuStats,
}

impl CpuStatsProbe {
    /// The accumulated statistics.
    pub fn stats(&self) -> CpuStats {
        self.stats
    }
}

impl Probe for CpuStatsProbe {
    fn commit(&mut self, _site: Site, kind: OpKind) {
        self.stats.committed += 1;
        match kind {
            OpKind::IntAlu => self.stats.int_ops += 1,
            OpKind::FpAlu => self.stats.fp_ops += 1,
            OpKind::Load(_) => self.stats.loads += 1,
            OpKind::Store(_) => self.stats.stores += 1,
            OpKind::Branch { .. } => self.stats.branches += 1,
            OpKind::AssistOn | OpKind::AssistOff => self.stats.assist_toggles += 1,
        }
    }

    fn mispredict(&mut self, _site: Site) {
        self.stats.mispredicts += 1;
    }

    fn fetch_stall(&mut self) {
        self.stats.fetch_stall_cycles += 1;
    }

    fn issue_stall(&mut self) {
        self.stats.issue_stall_cycles += 1;
    }
}

impl fmt::Display for CpuStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles={} insts={} ipc={:.3} ld={} st={} br={} (mp {:.2}%) toggles={}",
            self.cycles,
            self.committed,
            self.ipc(),
            self.loads,
            self.stores,
            self.branches,
            self.mispredict_rate() * 100.0,
            self.assist_toggles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_rates() {
        let s = CpuStats {
            cycles: 100,
            committed: 250,
            branches: 10,
            mispredicts: 1,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = CpuStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
    }

    #[test]
    fn display_summarizes() {
        let s = CpuStats { cycles: 10, committed: 20, ..Default::default() };
        assert!(s.to_string().contains("ipc=2.000"));
    }

    #[test]
    fn stats_probe_counts_by_kind() {
        use selcache_ir::Addr;
        let mut p = CpuStatsProbe::default();
        p.commit(Site::UNKNOWN, OpKind::IntAlu);
        p.commit(Site::UNKNOWN, OpKind::Load(Addr(0)));
        p.commit(Site::UNKNOWN, OpKind::AssistOn);
        p.mispredict(Site::UNKNOWN);
        p.fetch_stall();
        p.issue_stall();
        let s = p.stats();
        assert_eq!((s.committed, s.int_ops, s.loads, s.assist_toggles), (3, 1, 1, 1));
        assert_eq!((s.mispredicts, s.fetch_stall_cycles, s.issue_stall_cycles), (1, 1, 1));
    }
}
