//! Structural timing bounds: the pipeline can never beat its widths and
//! never loses instructions, under randomized traces.

use proptest::prelude::*;
use selcache_cpu::{CpuConfig, CpuModel, Pipeline};
use selcache_ir::{Addr, OpKind, TraceOp};
use selcache_mem::{AssistKind, HierarchyConfig, MemoryHierarchy};

fn random_trace(seed: u64, len: usize) -> Vec<TraceOp> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state
    };
    (0..len)
        .map(|k| {
            let r = next();
            let pc = 0x40_0000 + (r % 64) * 4;
            let dep = ((r >> 8) % 4) as u16;
            let kind = match (r >> 16) % 10 {
                0 | 1 => OpKind::Load(Addr((0x1000_0000 + (next() >> 20) % (1 << 20)) & !7)),
                2 => OpKind::Store(Addr((0x1000_0000 + (next() >> 20) % (1 << 20)) & !7)),
                3 => OpKind::FpAlu,
                4 => OpKind::Branch { taken: (r >> 40) % 3 != 0 },
                5 if k % 100 == 7 => OpKind::AssistOn,
                6 if k % 100 == 53 => OpKind::AssistOff,
                _ => OpKind::IntAlu,
            };
            TraceOp::with_dep(pc, kind, dep)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every instruction commits exactly once; IPC never exceeds the issue
    /// width; cycle count is at least ops / width.
    #[test]
    fn commits_everything_within_width_bounds(seed in any::<u64>()) {
        let trace = random_trace(seed, 3000);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::Bypass));
        let cfg = CpuConfig::paper_base();
        let stats = Pipeline::new(cfg).run(trace.iter().copied(), &mut mem);
        prop_assert_eq!(stats.committed, 3000);
        prop_assert!(stats.ipc() <= cfg.issue_width as f64 + 1e-9);
        prop_assert!(stats.cycles >= 3000 / cfg.issue_width as u64);
        let by_kind = stats.int_ops + stats.fp_ops + stats.loads + stats.stores
            + stats.branches + stats.assist_toggles;
        prop_assert_eq!(by_kind, stats.committed);
    }

    /// The in-order model is never faster than out-of-order on the same
    /// trace and memory configuration.
    #[test]
    fn in_order_never_beats_out_of_order(seed in any::<u64>()) {
        let trace = random_trace(seed, 2000);
        let run = |model| {
            let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::None));
            let mut cfg = CpuConfig::paper_base();
            cfg.model = model;
            Pipeline::new(cfg).run(trace.iter().copied(), &mut mem).cycles
        };
        prop_assert!(run(CpuModel::InOrder) >= run(CpuModel::OutOfOrder));
    }

    /// A narrower machine is never faster on compute-only traces. (With
    /// memory in the loop, issue-order changes perturb cache and DRAM
    /// row-buffer state, so classic scheduling anomalies can make the
    /// narrow machine faster — the property is only sound without state.)
    #[test]
    fn narrower_issue_is_never_faster_on_compute(seed in any::<u64>()) {
        let trace: Vec<TraceOp> = random_trace(seed, 2000)
            .into_iter()
            .map(|op| match op.kind {
                OpKind::Load(_) | OpKind::Store(_) => TraceOp::with_dep(op.pc, OpKind::FpAlu, op.dep),
                _ => op,
            })
            .collect();
        let run = |width: u32| {
            let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::None));
            let mut cfg = CpuConfig::paper_base();
            cfg.issue_width = width;
            cfg.fetch_width = width;
            cfg.commit_width = width;
            Pipeline::new(cfg).run(trace.iter().copied(), &mut mem).cycles
        };
        prop_assert!(run(1) >= run(4));
    }

    /// Mispredicts are bounded by branches; the run is deterministic.
    #[test]
    fn deterministic_and_mispredicts_bounded(seed in any::<u64>()) {
        let trace = random_trace(seed, 2000);
        let run = || {
            let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::Victim));
            Pipeline::new(CpuConfig::paper_base()).run(trace.iter().copied(), &mut mem)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
        prop_assert!(a.mispredicts <= a.branches);
    }
}

#[test]
fn assist_toggle_order_is_program_order() {
    // ON at dispatch means a later load in program order always sees the
    // toggled state, even across pipeline boundaries.
    let mut ops = Vec::new();
    for k in 0..50u64 {
        ops.push(TraceOp::new(0x40_0000, OpKind::Load(Addr(0x1000_0000 + k * 8192))));
    }
    ops.push(TraceOp::new(0x40_0100, OpKind::AssistOff));
    for k in 0..50u64 {
        ops.push(TraceOp::new(0x40_0200, OpKind::Load(Addr(0x2000_0000 + k * 8192))));
    }
    let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::Bypass));
    let stats = Pipeline::new(CpuConfig::paper_base()).run(ops, &mut mem);
    assert_eq!(stats.assist_toggles, 1);
    assert!(!mem.assist_enabled());
    // Only the first 50 loads could be observed by the assist.
    assert!(mem.stats().assist.assisted_accesses <= 50 + 4, "assist observed too many accesses");
}
