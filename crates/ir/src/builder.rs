//! Ergonomic construction of [`Program`]s.
//!
//! ```
//! use selcache_ir::{ProgramBuilder, Subscript};
//!
//! let mut b = ProgramBuilder::new("example");
//! let a = b.array("A", &[64, 64], 8);
//! b.nest2(64, 64, |b, i, j| {
//!     b.stmt(|s| {
//!         s.read(a, vec![Subscript::var(i), Subscript::var(j)]);
//!         s.fp(1);
//!         s.write(a, vec![Subscript::var(i), Subscript::var(j)]);
//!     });
//! });
//! let p = b.finish().expect("valid program");
//! assert_eq!(p.loop_count(), 2);
//! ```

use crate::expr::{AffineExpr, Subscript};
use crate::ids::{ArrayId, LoopId, ScalarId, VarId};
use crate::program::{
    ArrayDecl, Item, Layout, Loop, Marker, Program, ProgramError, Ref, RefPattern, Stmt, Trip,
};

/// Builds a [`Program`] with automatically assigned variable and loop ids.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    num_scalars: u32,
    next_var: u32,
    next_loop: u32,
    /// Stack of item lists: index 0 is the program top level, deeper entries
    /// are open loop bodies.
    stack: Vec<Vec<Item>>,
    open_loops: Vec<(LoopId, VarId, Trip)>,
}

impl ProgramBuilder {
    /// Starts a new program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            arrays: Vec::new(),
            num_scalars: 0,
            next_var: 0,
            next_loop: 0,
            stack: vec![Vec::new()],
            open_loops: Vec::new(),
        }
    }

    /// Declares an array with row-major layout and no backing data.
    pub fn array(&mut self, name: impl Into<String>, dims: &[i64], elem_size: u64) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            dims: dims.to_vec(),
            elem_size,
            layout: Layout::RowMajor,
            data: None,
            pad_bytes: 0,
        });
        ArrayId(self.arrays.len() as u32 - 1)
    }

    /// Declares a one-dimensional array carrying backing data (an index table
    /// or pointer next-table).
    pub fn data_array(
        &mut self,
        name: impl Into<String>,
        data: Vec<i64>,
        elem_size: u64,
    ) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            dims: vec![data.len().max(1) as i64],
            elem_size,
            layout: Layout::RowMajor,
            data: Some(data),
            pad_bytes: 0,
        });
        ArrayId(self.arrays.len() as u32 - 1)
    }

    /// Allocates a fresh scalar variable.
    pub fn scalar(&mut self) -> ScalarId {
        self.num_scalars += 1;
        ScalarId(self.num_scalars - 1)
    }

    /// Opens a loop with the given trip count, runs `f` with the new
    /// induction variable, then closes the loop.
    pub fn loop_(&mut self, trip: i64, f: impl FnOnce(&mut Self, VarId)) {
        self.loop_trip(Trip::Const(trip), f)
    }

    /// Opens a loop with an explicit [`Trip`]; see [`ProgramBuilder::loop_`].
    pub fn loop_trip(&mut self, trip: Trip, f: impl FnOnce(&mut Self, VarId)) {
        let var = VarId(self.next_var);
        self.next_var += 1;
        let id = LoopId(self.next_loop);
        self.next_loop += 1;
        self.open_loops.push((id, var, trip));
        self.stack.push(Vec::new());
        f(self, var);
        let body = self.stack.pop().expect("builder stack underflow");
        let (id, var, trip) = self.open_loops.pop().expect("loop stack underflow");
        self.push_item(Item::Loop(Loop { id, var, trip, body }));
    }

    /// Two-deep perfect nest convenience.
    pub fn nest2(&mut self, n: i64, m: i64, f: impl FnOnce(&mut Self, VarId, VarId)) {
        self.loop_(n, |b, i| b.loop_(m, |b, j| f(b, i, j)));
    }

    /// Three-deep perfect nest convenience.
    pub fn nest3(
        &mut self,
        n: i64,
        m: i64,
        k: i64,
        f: impl FnOnce(&mut Self, VarId, VarId, VarId),
    ) {
        self.loop_(n, |b, i| b.loop_(m, |b, j| b.loop_(k, |b, l| f(b, i, j, l))));
    }

    /// Appends a statement built by `f` to the current block.
    pub fn stmt(&mut self, f: impl FnOnce(&mut StmtBuilder)) {
        let mut sb = StmtBuilder::default();
        f(&mut sb);
        let stmt = sb.finish();
        // Coalesce into a trailing block if one is open.
        if let Some(Item::Block(stmts)) = self.current().last_mut() {
            stmts.push(stmt);
        } else {
            self.push_item(Item::Block(vec![stmt]));
        }
    }

    /// Inserts an explicit assist marker (normally done by the compiler).
    pub fn marker(&mut self, m: Marker) {
        self.push_item(Item::Marker(m));
    }

    fn current(&mut self) -> &mut Vec<Item> {
        self.stack.last_mut().expect("builder stack underflow")
    }

    fn push_item(&mut self, item: Item) {
        self.current().push(item);
    }

    /// Finishes the program and validates it.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if validation fails (see
    /// [`Program::validate`]).
    ///
    /// # Panics
    ///
    /// Panics if called while a loop is still open (impossible when loops are
    /// built through [`ProgramBuilder::loop_`]).
    pub fn finish(mut self) -> Result<Program, ProgramError> {
        assert!(self.open_loops.is_empty(), "finish() called with open loops");
        let items = self.stack.pop().expect("builder stack underflow");
        assert!(self.stack.is_empty(), "finish() called with open loops");
        let p = Program {
            name: self.name,
            arrays: self.arrays,
            num_vars: self.next_var,
            num_scalars: self.num_scalars,
            num_loops: self.next_loop,
            items,
        };
        p.validate()?;
        Ok(p)
    }
}

/// Builds a single [`Stmt`]; obtained through [`ProgramBuilder::stmt`].
#[derive(Debug, Default)]
pub struct StmtBuilder {
    refs: Vec<Ref>,
    int_ops: u16,
    fp_ops: u16,
}

impl StmtBuilder {
    /// Adds an array load.
    pub fn read(&mut self, array: ArrayId, subscripts: Vec<Subscript>) -> &mut Self {
        self.refs.push(Ref::load(RefPattern::Array { array, subscripts }));
        self
    }

    /// Adds an array store.
    pub fn write(&mut self, array: ArrayId, subscripts: Vec<Subscript>) -> &mut Self {
        self.refs.push(Ref::store(RefPattern::Array { array, subscripts }));
        self
    }

    /// Adds a scalar load.
    pub fn read_scalar(&mut self, s: ScalarId) -> &mut Self {
        self.refs.push(Ref::load(RefPattern::Scalar(s)));
        self
    }

    /// Adds a scalar store.
    pub fn write_scalar(&mut self, s: ScalarId) -> &mut Self {
        self.refs.push(Ref::store(RefPattern::Scalar(s)));
        self
    }

    /// Adds an indexed (gather) load: `target[index_array[pos] + offset]`.
    pub fn gather(
        &mut self,
        target: ArrayId,
        index_array: ArrayId,
        pos: AffineExpr,
        offset: i64,
    ) -> &mut Self {
        self.refs.push(Ref::load(RefPattern::Array {
            array: target,
            subscripts: vec![Subscript::Indexed { index_array, index: pos, offset }],
        }));
        self
    }

    /// Adds an indexed (scatter) store: `target[index_array[pos] + offset]`.
    pub fn scatter(
        &mut self,
        target: ArrayId,
        index_array: ArrayId,
        pos: AffineExpr,
        offset: i64,
    ) -> &mut Self {
        self.refs.push(Ref::store(RefPattern::Array {
            array: target,
            subscripts: vec![Subscript::Indexed { index_array, index: pos, offset }],
        }));
        self
    }

    /// Adds a pointer-chasing load through `next`, reading a node field.
    pub fn chase(&mut self, heap: ArrayId, next: ArrayId, field_offset: i64) -> &mut Self {
        self.refs.push(Ref::load(RefPattern::Pointer { heap, next, field_offset }));
        self
    }

    /// Adds a pointer-chasing store through `next`, writing a node field.
    pub fn chase_write(&mut self, heap: ArrayId, next: ArrayId, field_offset: i64) -> &mut Self {
        self.refs.push(Ref::store(RefPattern::Pointer { heap, next, field_offset }));
        self
    }

    /// Adds a struct-field load `array[index].field`.
    pub fn field(&mut self, array: ArrayId, index: AffineExpr, field_offset: i64) -> &mut Self {
        self.refs.push(Ref::load(RefPattern::StructField { array, index, field_offset }));
        self
    }

    /// Adds a struct-field store `array[index].field = …`.
    pub fn field_write(
        &mut self,
        array: ArrayId,
        index: AffineExpr,
        field_offset: i64,
    ) -> &mut Self {
        self.refs.push(Ref::store(RefPattern::StructField { array, index, field_offset }));
        self
    }

    /// Adds a raw reference.
    pub fn raw(&mut self, r: Ref) -> &mut Self {
        self.refs.push(r);
        self
    }

    /// Adds `n` integer ALU operations.
    pub fn int(&mut self, n: u16) -> &mut Self {
        self.int_ops += n;
        self
    }

    /// Adds `n` floating-point operations.
    pub fn fp(&mut self, n: u16) -> &mut Self {
        self.fp_ops += n;
        self
    }

    fn finish(self) -> Stmt {
        Stmt { refs: self.refs, int_ops: self.int_ops, fp_ops: self.fp_ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_program() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[8, 8], 8);
        b.nest2(8, 8, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j)]).fp(1);
            });
        });
        let p = b.finish().unwrap();
        assert_eq!(p.loop_count(), 2);
        assert_eq!(p.stmt_count(), 1);
        assert_eq!(p.num_vars, 2);
    }

    #[test]
    fn stmts_coalesce_into_one_block() {
        let mut b = ProgramBuilder::new("t");
        b.loop_(4, |b, _| {
            b.stmt(|s| {
                s.int(1);
            });
            b.stmt(|s| {
                s.int(1);
            });
        });
        let p = b.finish().unwrap();
        let lp = p.items[0].as_loop().unwrap();
        assert_eq!(lp.body.len(), 1);
        assert!(matches!(&lp.body[0], Item::Block(stmts) if stmts.len() == 2));
    }

    #[test]
    fn marker_breaks_blocks() {
        let mut b = ProgramBuilder::new("t");
        b.stmt(|s| {
            s.int(1);
        });
        b.marker(Marker::On);
        b.stmt(|s| {
            s.int(1);
        });
        let p = b.finish().unwrap();
        assert_eq!(p.items.len(), 3);
        assert_eq!(p.marker_count(), 1);
    }

    #[test]
    fn data_array_validates_for_gather() {
        let mut b = ProgramBuilder::new("t");
        let x = b.array("X", &[16], 8);
        let ip = b.data_array("IP", (0..16).collect(), 4);
        b.loop_(16, |b, j| {
            b.stmt(|s| {
                s.gather(x, ip, AffineExpr::var(j), 2);
            });
        });
        assert!(b.finish().is_ok());
    }

    #[test]
    fn gather_without_data_fails_validation() {
        let mut b = ProgramBuilder::new("t");
        let x = b.array("X", &[16], 8);
        let ip = b.array("IP", &[16], 4); // no data
        b.loop_(16, |b, j| {
            b.stmt(|s| {
                s.gather(x, ip, AffineExpr::var(j), 0);
            });
        });
        assert!(matches!(b.finish(), Err(ProgramError::MissingData(_))));
    }

    #[test]
    fn fresh_vars_are_unique() {
        let mut b = ProgramBuilder::new("t");
        let mut vars = Vec::new();
        b.loop_(1, |b, i| {
            vars.push(i);
            b.loop_(1, |b, j| {
                vars.push(j);
                b.stmt(|s| {
                    s.int(1);
                });
            });
        });
        b.loop_(1, |b, k| {
            vars.push(k);
            b.stmt(|s| {
                s.int(1);
            });
        });
        let p = b.finish().unwrap();
        assert_eq!(vars.len(), 3);
        assert_eq!(p.num_vars, 3);
        assert_eq!(p.num_loops, 3);
        vars.sort();
        vars.dedup();
        assert_eq!(vars.len(), 3);
    }
}
