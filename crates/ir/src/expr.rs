//! Affine expressions and array subscripts.
//!
//! Subscript shapes follow the classification in Section 2.3 of the paper:
//! *analyzable* references are scalars and affine array references; everything
//! else (products of induction variables, quotients, indexed/subscripted
//! accesses, pointer dereferences, struct fields) is *non-analyzable*.

use crate::ids::{ArrayId, VarId};
use std::fmt;

/// A linear expression over loop induction variables: `Σ cᵥ·v + c`.
///
/// ```
/// use selcache_ir::{AffineExpr, VarId};
/// let i = VarId(0);
/// let e = AffineExpr::var(i).scaled(2).plus(3); // 2*i + 3
/// assert_eq!(e.eval(&[5]), 13);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    /// `(variable, coefficient)` pairs; variables are unique and coefficients
    /// non-zero (normalized on construction).
    terms: Vec<(VarId, i64)>,
    /// The constant term.
    constant: i64,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        AffineExpr { terms: Vec::new(), constant: c }
    }

    /// The expression `v` (coefficient 1, constant 0).
    pub fn var(v: VarId) -> Self {
        AffineExpr { terms: vec![(v, 1)], constant: 0 }
    }

    /// Builds `coeff * v + constant`.
    pub fn linear(v: VarId, coeff: i64, constant: i64) -> Self {
        let mut e = AffineExpr { terms: vec![(v, coeff)], constant };
        e.normalize();
        e
    }

    /// Builds an expression from raw `(var, coeff)` terms plus a constant.
    pub fn from_terms<I: IntoIterator<Item = (VarId, i64)>>(terms: I, constant: i64) -> Self {
        let mut e = AffineExpr { terms: terms.into_iter().collect(), constant };
        e.normalize();
        e
    }

    fn normalize(&mut self) {
        self.terms.sort_by_key(|&(v, _)| v);
        let mut out: Vec<(VarId, i64)> = Vec::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c != 0);
        self.terms = out;
    }

    /// Adds a constant.
    #[must_use]
    pub fn plus(mut self, c: i64) -> Self {
        self.constant += c;
        self
    }

    /// Multiplies every coefficient and the constant by `k`.
    #[must_use]
    pub fn scaled(mut self, k: i64) -> Self {
        for (_, c) in &mut self.terms {
            *c *= k;
        }
        self.constant *= k;
        self.normalize();
        self
    }

    /// Adds the term `coeff * v`.
    #[must_use]
    pub fn plus_term(mut self, v: VarId, coeff: i64) -> Self {
        self.terms.push((v, coeff));
        self.normalize();
        self
    }

    /// Sum of two affine expressions.
    #[must_use]
    pub fn add(&self, other: &AffineExpr) -> Self {
        let mut e = self.clone();
        e.terms.extend(other.terms.iter().copied());
        e.constant += other.constant;
        e.normalize();
        e
    }

    /// The coefficient of `v` (0 if absent).
    pub fn coeff(&self, v: VarId) -> i64 {
        self.terms.iter().find(|&&(tv, _)| tv == v).map_or(0, |&(_, c)| c)
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// The `(var, coeff)` terms, sorted by variable.
    pub fn terms(&self) -> &[(VarId, i64)] {
        &self.terms
    }

    /// True if the expression references `v`.
    pub fn uses(&self, v: VarId) -> bool {
        self.coeff(v) != 0
    }

    /// True if the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates under an environment mapping `VarId(k)` to `env[k]`.
    ///
    /// Variables beyond `env.len()` evaluate to 0 (they are out of scope).
    pub fn eval(&self, env: &[i64]) -> i64 {
        let mut acc = self.constant;
        for &(v, c) in &self.terms {
            acc += c * env.get(v.index()).copied().unwrap_or(0);
        }
        acc
    }

    /// Substitutes variable `v` with expression `repl`.
    #[must_use]
    pub fn substitute(&self, v: VarId, repl: &AffineExpr) -> Self {
        let c = self.coeff(v);
        if c == 0 {
            return self.clone();
        }
        let mut e = self.clone();
        e.terms.retain(|&(tv, _)| tv != v);
        e = e.add(&repl.clone().scaled(c));
        e
    }

    /// Renames variable `from` to `to` (keeping its coefficient).
    #[must_use]
    pub fn rename(&self, from: VarId, to: VarId) -> Self {
        let mut e = self.clone();
        for (v, _) in &mut e.terms {
            if *v == from {
                *v = to;
            }
        }
        e.normalize();
        e
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "{}", self.constant);
        }
        let mut first = true;
        for &(v, c) in &self.terms {
            if first {
                match c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    _ => write!(f, "{c}*{v}")?,
                }
                first = false;
            } else if c >= 0 {
                if c == 1 {
                    write!(f, "+{v}")?;
                } else {
                    write!(f, "+{c}*{v}")?;
                }
            } else if c == -1 {
                write!(f, "-{v}")?;
            } else {
                write!(f, "{c}*{v}")?;
            }
        }
        match self.constant.cmp(&0) {
            std::cmp::Ordering::Greater => write!(f, "+{}", self.constant)?,
            std::cmp::Ordering::Less => write!(f, "{}", self.constant)?,
            std::cmp::Ordering::Equal => {}
        }
        Ok(())
    }
}

/// One array subscript (one dimension of an array reference).
///
/// The [`Subscript::Affine`] shape is compile-time analyzable; the others
/// model the non-analyzable shapes the paper lists: `D[i*i][j]`, `E[i/j]`,
/// `F[3][i*j]`, `G[IP[j]+2]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Subscript {
    /// An affine function of induction variables, e.g. `C[i+j][k-1]`.
    Affine(AffineExpr),
    /// Product of two induction variables, e.g. `F[3][i*j]`.
    Product(VarId, VarId),
    /// Square of an induction variable, e.g. `D[i²][j]`.
    Square(VarId),
    /// Quotient of two induction variables, e.g. `E[i/j]` (0 when the divisor
    /// evaluates to 0).
    Quotient(VarId, VarId),
    /// An induction variable reduced modulo a constant.
    ///
    /// # Panics
    ///
    /// Evaluation panics in debug builds if the modulus is not positive.
    Modulo(VarId, i64),
    /// An indexed (subscripted) reference, e.g. `G[IP[j]+2]`: the value of
    /// `index_array[index]` plus `offset`.
    Indexed {
        /// The array holding the indices (must carry backing data).
        index_array: ArrayId,
        /// Position within `index_array`, itself affine.
        index: AffineExpr,
        /// Constant added to the fetched index value.
        offset: i64,
    },
}

impl Subscript {
    /// Convenience constructor for an affine subscript in one variable.
    pub fn linear(v: VarId, coeff: i64, constant: i64) -> Self {
        Subscript::Affine(AffineExpr::linear(v, coeff, constant))
    }

    /// Convenience constructor for the subscript `v`.
    pub fn var(v: VarId) -> Self {
        Subscript::Affine(AffineExpr::var(v))
    }

    /// Convenience constructor for a constant subscript.
    pub fn constant(c: i64) -> Self {
        Subscript::Affine(AffineExpr::constant(c))
    }

    /// True if this subscript is compile-time analyzable (affine).
    pub fn is_affine(&self) -> bool {
        matches!(self, Subscript::Affine(_))
    }

    /// The affine expression, if this subscript is affine.
    pub fn as_affine(&self) -> Option<&AffineExpr> {
        match self {
            Subscript::Affine(e) => Some(e),
            _ => None,
        }
    }

    /// True if the subscript mentions variable `v`.
    pub fn uses(&self, v: VarId) -> bool {
        match self {
            Subscript::Affine(e) => e.uses(v),
            Subscript::Product(a, b) | Subscript::Quotient(a, b) => *a == v || *b == v,
            Subscript::Square(a) | Subscript::Modulo(a, _) => *a == v,
            Subscript::Indexed { index, .. } => index.uses(v),
        }
    }

    /// Renames induction variable `from` to `to`.
    #[must_use]
    pub fn rename(&self, from: VarId, to: VarId) -> Self {
        let r = |v: &VarId| if *v == from { to } else { *v };
        match self {
            Subscript::Affine(e) => Subscript::Affine(e.rename(from, to)),
            Subscript::Product(a, b) => Subscript::Product(r(a), r(b)),
            Subscript::Square(a) => Subscript::Square(r(a)),
            Subscript::Quotient(a, b) => Subscript::Quotient(r(a), r(b)),
            Subscript::Modulo(a, m) => Subscript::Modulo(r(a), *m),
            Subscript::Indexed { index_array, index, offset } => Subscript::Indexed {
                index_array: *index_array,
                index: index.rename(from, to),
                offset: *offset,
            },
        }
    }

    /// Substitutes an affine replacement for `v` where the subscript shape
    /// permits it (affine subscripts and indexed positions); other shapes are
    /// returned unchanged.
    #[must_use]
    pub fn substitute_affine(&self, v: VarId, repl: &AffineExpr) -> Self {
        match self {
            Subscript::Affine(e) => Subscript::Affine(e.substitute(v, repl)),
            Subscript::Indexed { index_array, index, offset } => Subscript::Indexed {
                index_array: *index_array,
                index: index.substitute(v, repl),
                offset: *offset,
            },
            other => other.clone(),
        }
    }
}

impl fmt::Display for Subscript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subscript::Affine(e) => write!(f, "{e}"),
            Subscript::Product(a, b) => write!(f, "{a}*{b}"),
            Subscript::Square(a) => write!(f, "{a}^2"),
            Subscript::Quotient(a, b) => write!(f, "{a}/{b}"),
            Subscript::Modulo(a, m) => write!(f, "{a}%{m}"),
            Subscript::Indexed { index_array, index, offset } => {
                if *offset == 0 {
                    write!(f, "{index_array}[{index}]")
                } else {
                    write!(f, "{index_array}[{index}]+{offset}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn eval_linear() {
        let e = AffineExpr::linear(v(0), 2, 3);
        assert_eq!(e.eval(&[5]), 13);
        assert_eq!(e.eval(&[]), 3); // out-of-scope var is 0
    }

    #[test]
    fn normalize_merges_terms() {
        let e = AffineExpr::from_terms([(v(1), 2), (v(0), 1), (v(1), -2)], 4);
        assert_eq!(e.terms(), &[(v(0), 1)]);
        assert_eq!(e.constant_term(), 4);
    }

    #[test]
    fn add_and_scale() {
        let a = AffineExpr::linear(v(0), 1, 1);
        let b = AffineExpr::linear(v(1), 3, -1);
        let s = a.add(&b).scaled(2);
        assert_eq!(s.coeff(v(0)), 2);
        assert_eq!(s.coeff(v(1)), 6);
        assert_eq!(s.constant_term(), 0);
    }

    #[test]
    fn substitute_replaces_var() {
        // 2*i + 1 with i := j + 3  =>  2*j + 7
        let e = AffineExpr::linear(v(0), 2, 1);
        let repl = AffineExpr::linear(v(1), 1, 3);
        let s = e.substitute(v(0), &repl);
        assert_eq!(s.coeff(v(0)), 0);
        assert_eq!(s.coeff(v(1)), 2);
        assert_eq!(s.constant_term(), 7);
    }

    #[test]
    fn rename_keeps_coeff() {
        let e = AffineExpr::linear(v(0), 5, 0).rename(v(0), v(9));
        assert_eq!(e.coeff(v(9)), 5);
        assert_eq!(e.coeff(v(0)), 0);
    }

    #[test]
    fn display_forms() {
        let e = AffineExpr::from_terms([(v(0), 1), (v(1), -2)], 3);
        assert_eq!(e.to_string(), "v0-2*v1+3");
        assert_eq!(AffineExpr::constant(-4).to_string(), "-4");
    }

    #[test]
    fn subscript_classification() {
        assert!(Subscript::var(v(0)).is_affine());
        assert!(!Subscript::Product(v(0), v(1)).is_affine());
        assert!(!Subscript::Indexed {
            index_array: ArrayId(0),
            index: AffineExpr::var(v(0)),
            offset: 2
        }
        .is_affine());
    }

    #[test]
    fn subscript_uses() {
        assert!(Subscript::Square(v(2)).uses(v(2)));
        assert!(!Subscript::Square(v(2)).uses(v(1)));
        let idx =
            Subscript::Indexed { index_array: ArrayId(0), index: AffineExpr::var(v(3)), offset: 0 };
        assert!(idx.uses(v(3)));
    }

    #[test]
    fn subscript_rename() {
        let s = Subscript::Product(v(0), v(1)).rename(v(1), v(5));
        assert_eq!(s, Subscript::Product(v(0), v(5)));
    }

    #[test]
    fn constant_expr_is_constant() {
        assert!(AffineExpr::constant(7).is_constant());
        assert!(!AffineExpr::var(v(0)).is_constant());
    }
}
