//! Typed identifiers and the [`Addr`] newtype used across the framework.

use std::fmt;

/// A byte address in the simulated address space.
///
/// Addresses are produced by the IR interpreter ([`crate::Interp`]) and
/// consumed by the memory-hierarchy simulator. The newtype keeps raw `u64`
/// arithmetic out of API signatures.
///
/// ```
/// use selcache_ir::Addr;
/// let a = Addr(0x1000);
/// assert_eq!(a.block(32), 0x1000 / 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Block number for a given block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `block_size` is zero.
    #[inline]
    pub fn block(self, block_size: u64) -> u64 {
        debug_assert!(block_size > 0);
        self.0 / block_size
    }

    /// Offset within a block of the given size in bytes.
    #[inline]
    pub fn block_offset(self, block_size: u64) -> u64 {
        debug_assert!(block_size > 0);
        self.0 % block_size
    }

    /// The address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The underlying index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", stringify!($name).chars().next().unwrap().to_ascii_lowercase(), self.0)
            }
        }
    };
}

id_type! {
    /// Identifies an array declared in a [`crate::Program`].
    ArrayId
}

id_type! {
    /// Identifies a loop induction variable.
    ///
    /// Variables are numbered densely per program; see
    /// [`crate::Program::num_vars`].
    VarId
}

id_type! {
    /// Identifies a named scalar variable (stack slot).
    ScalarId
}

id_type! {
    /// Identifies a loop in the program tree (dense, assigned by the builder).
    LoopId
}

id_type! {
    /// Identifies a uniform region of the program (dense, assigned by the
    /// region partition in [`crate::RegionMap`] order).
    RegionId
}

impl RegionId {
    /// Sentinel for "no region": trace ops outside any partitioned region
    /// (or produced without a region map) carry this value.
    pub const NONE: RegionId = RegionId(u32::MAX);

    /// True if this is the [`RegionId::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_block_math() {
        let a = Addr(100);
        assert_eq!(a.block(32), 3);
        assert_eq!(a.block_offset(32), 4);
        assert_eq!(a.offset(28).0, 128);
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr(255)), "ff");
    }

    #[test]
    fn addr_conversions_roundtrip() {
        let a: Addr = 42u64.into();
        let v: u64 = a.into();
        assert_eq!(v, 42);
    }

    #[test]
    fn id_display() {
        assert_eq!(ArrayId(3).to_string(), "a3");
        assert_eq!(VarId(0).to_string(), "v0");
        assert_eq!(ScalarId(7).to_string(), "s7");
        assert_eq!(LoopId(2).to_string(), "l2");
        assert_eq!(RegionId(1).to_string(), "r1");
    }

    #[test]
    fn region_none_sentinel() {
        assert!(RegionId::NONE.is_none());
        assert!(!RegionId(0).is_none());
    }

    #[test]
    fn id_index() {
        assert_eq!(ArrayId(9).index(), 9);
    }

    #[test]
    fn addr_ordering() {
        assert!(Addr(1) < Addr(2));
        assert_eq!(Addr::default(), Addr(0));
    }
}
