//! Streaming interpreter: lowers a [`Program`] to its dynamic instruction
//! trace.
//!
//! [`Interp`] is an [`Iterator`] over [`TraceOp`]s, so arbitrarily long
//! executions stream through the processor model in constant memory. PCs are
//! assigned per static site (statement, loop latch, marker), so branch
//! predictors and instruction caches observe a stable, realistic text layout.
//!
//! Statement expansion order is: loads (with any index/pointer resolution
//! loads first), then the ALU chain (first ALU op depends on the last load),
//! then stores (depending on the last ALU op). This dependence shape is what
//! lets the out-of-order model overlap independent misses while serializing
//! pointer chases.
//!
//! Execution runs over a compiled [`Plan`] (see [`crate::plan`]): PCs,
//! dependence distances, and in-bounds affine addresses are precomputed, so
//! the per-op work here is arithmetic and slot reads, not hashing.

use crate::expr::Subscript;
use crate::ids::{Addr, VarId};
use crate::plan::{GeneralRef, OpT, Plan, PlanNode, ROOT_OWNER};
use crate::program::{AddressMap, Program, RefPattern, Trip};
use crate::region::RegionMap;
use crate::trace::{OpKind, TraceOp};
use std::collections::VecDeque;

enum PlanHolder<'p> {
    Owned(Box<Plan>),
    Borrowed(&'p Plan),
}

#[derive(Debug, Clone)]
enum Frame {
    /// Iterating the item list owned by loop node `owner` (or the program
    /// roots when `owner` is [`ROOT_OWNER`]).
    Items {
        owner: u32,
        pos: u32,
    },
    Loop {
        node: u32,
        iter: i64,
        trip: i64,
    },
}

/// Checkpoint of an interpreter's position within its trace: induction
/// variables, affine address slots, pointer-chase cursors, the tree-walk
/// stack, and any ops already generated but not yet yielded. Restoring into
/// an interpreter over the same program and plan resumes the trace at
/// exactly the op after [`Interp::emitted`] at capture time.
///
/// Checkpoints are position markers, not full environments: the sampled
/// execution mode takes one per interval boundary during its selection pass,
/// then jumps each representative's warmup window by restoring the nearest
/// checkpoint instead of re-streaming the prefix.
#[derive(Debug, Clone)]
pub struct InterpCheckpoint {
    env: Vec<i64>,
    slots: Vec<i64>,
    chase: Vec<i64>,
    frames: Vec<Frame>,
    pending: VecDeque<TraceOp>,
    emitted: u64,
}

impl InterpCheckpoint {
    /// Number of ops the interpreter had emitted when this checkpoint was
    /// taken — the trace position it restores to.
    pub fn position(&self) -> u64 {
        self.emitted
    }
}

/// Resolves the plan reference without borrowing any other field of the
/// interpreter (a method receiver would).
macro_rules! plan {
    ($self:expr) => {
        match &$self.plan {
            PlanHolder::Owned(p) => &**p,
            PlanHolder::Borrowed(p) => *p,
        }
    };
}

/// Streaming trace generator over a borrowed [`Program`].
///
/// ```
/// use selcache_ir::{Interp, ProgramBuilder, Subscript};
///
/// let mut b = ProgramBuilder::new("t");
/// let a = b.array("A", &[4], 8);
/// b.loop_(4, |b, i| {
///     b.stmt(|s| { s.read(a, vec![Subscript::var(i)]).int(1); });
/// });
/// let p = b.finish().expect("valid");
/// let loads = Interp::new(&p).filter(|op| op.kind.is_mem()).count();
/// assert_eq!(loads, 4);
/// ```
pub struct Interp<'p> {
    program: &'p Program,
    plan: PlanHolder<'p>,
    env: Vec<i64>,
    /// Current byte address of each affine slot; bumped by per-variable
    /// strides whenever a loop writes its induction variable.
    slots: Vec<i64>,
    /// Pointer-chase cursors in plan-assigned dense slots; a chain's cursor
    /// persists across statements, modelling a walk over a linked structure.
    chase: Vec<i64>,
    frames: Vec<Frame>,
    pending: VecDeque<TraceOp>,
    /// Reusable buffer for resolution-load addresses.
    scratch: Vec<Addr>,
    emitted: u64,
    regions: Option<&'p RegionMap>,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter with the program's default address map.
    pub fn new(program: &'p Program) -> Self {
        Self::from_holder(program, PlanHolder::Owned(Box::new(Plan::compile(program))))
    }

    /// Creates an interpreter with an explicit address map (for experiments
    /// that relocate arrays).
    pub fn with_address_map(program: &'p Program, amap: AddressMap) -> Self {
        Self::from_holder(program, PlanHolder::Owned(Box::new(Plan::compile_with(program, amap))))
    }

    /// Creates an interpreter over a pre-compiled [`Plan`], sharing one
    /// compilation across sizing ([`Plan::trace_len`]) and streaming runs.
    ///
    /// The plan must have been compiled from `program` in its current state.
    pub fn with_plan(program: &'p Program, plan: &'p Plan) -> Self {
        Self::from_holder(program, PlanHolder::Borrowed(plan))
    }

    fn from_holder(program: &'p Program, plan: PlanHolder<'p>) -> Self {
        let p = match &plan {
            PlanHolder::Owned(p) => &**p,
            PlanHolder::Borrowed(p) => *p,
        };
        let slots = p.slot_init.clone();
        let chase = vec![0; p.num_chase as usize];
        Interp {
            program,
            plan,
            env: vec![0; program.num_vars as usize],
            slots,
            chase,
            frames: vec![Frame::Items { owner: ROOT_OWNER, pos: 0 }],
            pending: VecDeque::with_capacity(64),
            scratch: Vec::new(),
            emitted: 0,
            regions: None,
        }
    }

    /// Creates an interpreter that stamps every emitted op with the region
    /// owning its static site, per the given [`RegionMap`].
    pub fn with_regions(program: &'p Program, regions: &'p RegionMap) -> Self {
        let mut interp = Self::new(program);
        interp.regions = Some(regions);
        interp
    }

    /// Number of ops produced so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Captures the current trace position (see [`InterpCheckpoint`]).
    pub fn checkpoint(&self) -> InterpCheckpoint {
        InterpCheckpoint {
            env: self.env.clone(),
            slots: self.slots.clone(),
            chase: self.chase.clone(),
            frames: self.frames.clone(),
            pending: self.pending.clone(),
            emitted: self.emitted,
        }
    }

    /// Rewinds (or fast-forwards) to a checkpoint taken from an interpreter
    /// over the same program and plan. The caller guarantees that pairing;
    /// restoring a foreign checkpoint produces a well-defined but meaningless
    /// trace.
    pub fn restore(&mut self, ck: &InterpCheckpoint) {
        self.env.clone_from(&ck.env);
        self.slots.clone_from(&ck.slots);
        self.chase.clone_from(&ck.chase);
        self.frames.clone_from(&ck.frames);
        self.pending.clone_from(&ck.pending);
        self.emitted = ck.emitted;
    }

    /// Advances the trace by up to `n` ops without yielding them. Returns
    /// the number of ops actually consumed (less than `n` only when the
    /// trace ends) and the direction of the last assist marker passed, if
    /// any — the sampled execution mode uses it to reconstruct the
    /// hierarchy's assist-enabled flag at the point detailed simulation
    /// resumes.
    pub fn advance(&mut self, n: u64) -> (u64, Option<bool>) {
        let mut consumed = 0;
        let mut last_assist = None;
        while consumed < n {
            let Some(op) = self.next() else {
                break;
            };
            match op.kind {
                OpKind::AssistOn => last_assist = Some(true),
                OpKind::AssistOff => last_assist = Some(false),
                _ => {}
            }
            consumed += 1;
        }
        (consumed, last_assist)
    }

    /// Writes an induction variable and bumps every affine slot whose
    /// address depends on it by `delta * stride` — the loop-latch increment
    /// that replaces per-access subscript evaluation.
    fn set_var(&mut self, var: VarId, value: i64) {
        let old = std::mem::replace(&mut self.env[var.index()], value);
        let delta = value - old;
        if delta == 0 {
            return;
        }
        let plan = plan!(self);
        for &(slot, coeff) in &plan.var_slots[var.index()] {
            self.slots[slot as usize] += delta * coeff;
        }
    }

    /// Advances the tree walk until at least one op is pending or the walk is
    /// complete. Returns false when complete and nothing is pending.
    fn refill(&mut self) -> bool {
        while self.pending.is_empty() {
            let plan = plan!(self);
            // Copy out what the next step needs so no frame borrow lives
            // across the emission calls below.
            let next: Option<u32> = match self.frames.last_mut() {
                None => return false,
                Some(Frame::Items { owner, pos }) => {
                    let list: &[u32] = if *owner == ROOT_OWNER {
                        &plan.roots
                    } else {
                        match &plan.nodes[*owner as usize] {
                            PlanNode::Loop { body, .. } => body,
                            _ => unreachable!("items frame owned by non-loop node"),
                        }
                    };
                    if *pos as usize >= list.len() {
                        None
                    } else {
                        let node = list[*pos as usize];
                        *pos += 1;
                        Some(node)
                    }
                }
                // A loop frame is always covered by an Items frame for its
                // body; it can never be on top here.
                Some(Frame::Loop { .. }) => unreachable!("loop frame without body frame"),
            };
            match next {
                None => {
                    self.frames.pop();
                    self.finish_loop_iteration();
                }
                Some(ni) => match &plan.nodes[ni as usize] {
                    PlanNode::Stmt { ops } => exec_stmt(
                        self.program,
                        plan,
                        &self.env,
                        &self.slots,
                        &mut self.chase,
                        &mut self.scratch,
                        &mut self.pending,
                        ops,
                    ),
                    PlanNode::Marker { pc, on } => {
                        let kind = if *on { OpKind::AssistOn } else { OpKind::AssistOff };
                        self.pending.push_back(TraceOp::new(*pc, kind));
                    }
                    PlanNode::Loop { pc, var, trip, .. } => {
                        let (pc, var, trip) = (*pc, *var, *trip);
                        self.enter_loop(ni, pc, var, trip);
                    }
                },
            }
        }
        true
    }

    fn enter_loop(&mut self, node: u32, pc: u64, var: VarId, trip_spec: Trip) {
        let trip = trip_spec.eval(&self.env);
        // Index initialization.
        self.pending.push_back(TraceOp::new(pc, OpKind::IntAlu));
        if trip <= 0 {
            // Loop test fails immediately: one not-taken branch.
            self.pending.push_back(TraceOp::with_dep(pc + 8, OpKind::Branch { taken: false }, 1));
            return;
        }
        self.set_var(var, 0);
        self.frames.push(Frame::Loop { node, iter: 0, trip });
        self.frames.push(Frame::Items { owner: node, pos: 0 });
    }

    /// Called when an `Items` frame is exhausted; if the frame below is a
    /// loop, emit the latch and either restart the body or pop the loop.
    fn finish_loop_iteration(&mut self) {
        let (node, taken, new_iter) = match self.frames.last_mut() {
            Some(Frame::Loop { node, iter, trip }) => {
                *iter += 1;
                (*node, *iter < *trip, *iter)
            }
            _ => return,
        };
        let (pc, var) = match &plan!(self).nodes[node as usize] {
            PlanNode::Loop { pc, var, .. } => (*pc, *var),
            _ => unreachable!("loop frame points at non-loop node"),
        };
        // Index increment + backward branch.
        self.pending.push_back(TraceOp::new(pc + 4, OpKind::IntAlu));
        self.pending.push_back(TraceOp::with_dep(pc + 8, OpKind::Branch { taken }, 1));
        if taken {
            self.set_var(var, new_iter);
            self.frames.push(Frame::Items { owner: node, pos: 0 });
        } else {
            self.frames.pop();
        }
    }
}

/// Emits a compiled statement's ops into the pending buffer.
///
/// A free function over the interpreter's disjoint fields so the plan borrow
/// can live alongside the mutable pending/chase borrows.
#[allow(clippy::too_many_arguments)]
fn exec_stmt(
    program: &Program,
    plan: &Plan,
    env: &[i64],
    slots: &[i64],
    chase: &mut [i64],
    scratch: &mut Vec<Addr>,
    pending: &mut VecDeque<TraceOp>,
    ops: &[OpT],
) {
    for op in ops {
        match *op {
            OpT::Plain { pc, kind, dep } => pending.push_back(TraceOp::with_dep(pc, kind, dep)),
            OpT::LoadSlot { pc, dep, slot } => {
                let addr = Addr(slots[slot as usize] as u64);
                pending.push_back(TraceOp::with_dep(pc, OpKind::Load(addr), dep));
            }
            OpT::StoreSlot { pc, dep, slot } => {
                let addr = Addr(slots[slot as usize] as u64);
                pending.push_back(TraceOp::with_dep(pc, OpKind::Store(addr), dep));
            }
            OpT::General(gi) => {
                let g = &plan.generals[gi as usize];
                scratch.clear();
                let addr = resolve_general(program, &plan.amap, env, chase, g, scratch);
                let n = scratch.len();
                if g.write {
                    for (i, &ra) in scratch.iter().enumerate() {
                        pending.push_back(TraceOp::new(g.pcs[i], OpKind::Load(ra)));
                    }
                    let dep = if n == 0 { g.bare_dep } else { 1 };
                    pending.push_back(TraceOp::with_dep(g.pcs[n], OpKind::Store(addr), dep));
                } else {
                    let mut dep = 0u16;
                    for (i, &ra) in scratch.iter().enumerate() {
                        pending.push_back(TraceOp::with_dep(g.pcs[i], OpKind::Load(ra), dep));
                        dep = 1; // the next access depends on this resolution load
                    }
                    pending.push_back(TraceOp::with_dep(g.pcs[n], OpKind::Load(addr), dep));
                }
            }
        }
    }
}

/// Computes the final data address of a general reference, pushing any
/// resolution-load addresses (index-array reads, pointer next-table reads)
/// into `resolution`.
fn resolve_general(
    program: &Program,
    amap: &AddressMap,
    env: &[i64],
    chase: &mut [i64],
    g: &GeneralRef,
    resolution: &mut Vec<Addr>,
) -> Addr {
    match &g.pattern {
        RefPattern::Scalar(s) => amap.scalar_addr(*s),
        RefPattern::Array { array, subscripts } => {
            let decl = &program.arrays[array.index()];
            let mut coords = Vec::with_capacity(subscripts.len());
            for s in subscripts {
                coords.push(eval_subscript(program, amap, env, s, resolution));
            }
            let off = decl.linearize(&coords);
            amap.array_base(*array).offset(off as u64 * decl.elem_size)
        }
        RefPattern::Pointer { heap, next, field_offset } => {
            let heap_decl = &program.arrays[heap.index()];
            let next_decl = &program.arrays[next.index()];
            let next_data = next_decl.data.as_ref().expect("validated next-table data");
            let cursor = &mut chase[g.chase_slot as usize];
            let node = (*cursor).rem_euclid(heap_decl.len().max(1));
            let next_addr = amap.array_base(*next).offset(
                node.rem_euclid(next_data.len().max(1) as i64) as u64 * next_decl.elem_size,
            );
            let field = (*field_offset).clamp(0, heap_decl.elem_size.saturating_sub(1) as i64);
            let node_addr =
                amap.array_base(*heap).offset(node as u64 * heap_decl.elem_size + field as u64);
            *cursor = next_data[node.rem_euclid(next_data.len().max(1) as i64) as usize];
            resolution.push(next_addr);
            node_addr
        }
        RefPattern::StructField { array, index, field_offset } => {
            let decl = &program.arrays[array.index()];
            let idx = index.eval(env).rem_euclid(decl.len().max(1));
            let field = (*field_offset).clamp(0, decl.elem_size.saturating_sub(1) as i64);
            amap.array_base(*array).offset(idx as u64 * decl.elem_size + field as u64)
        }
    }
}

fn eval_subscript(
    program: &Program,
    amap: &AddressMap,
    env: &[i64],
    s: &Subscript,
    resolution: &mut Vec<Addr>,
) -> i64 {
    let v = |id: crate::ids::VarId| env.get(id.index()).copied().unwrap_or(0);
    match s {
        Subscript::Affine(e) => e.eval(env),
        Subscript::Product(a, b) => v(*a) * v(*b),
        Subscript::Square(a) => v(*a) * v(*a),
        Subscript::Quotient(a, b) => {
            let d = v(*b);
            if d == 0 {
                0
            } else {
                v(*a) / d
            }
        }
        Subscript::Modulo(a, m) => {
            debug_assert!(*m > 0, "modulus must be positive");
            v(*a).rem_euclid((*m).max(1))
        }
        Subscript::Indexed { index_array, index, offset } => {
            let decl = &program.arrays[index_array.index()];
            let data = decl.data.as_ref().expect("validated index data");
            let pos = index.eval(env).rem_euclid(data.len().max(1) as i64);
            resolution.push(amap.array_base(*index_array).offset(pos as u64 * decl.elem_size));
            data[pos as usize] + offset
        }
    }
}

impl Iterator for Interp<'_> {
    type Item = TraceOp;

    // `#[inline]`: every simulation pass calls this once per dynamic op
    // from other crates; the fast path (pop from the pending buffer) is a
    // handful of instructions and must not pay a cross-crate call.
    #[inline]
    fn next(&mut self) -> Option<TraceOp> {
        if self.pending.is_empty() && !self.refill() {
            return None;
        }
        self.emitted += 1;
        let mut op = self.pending.pop_front()?;
        if let Some(map) = self.regions {
            op.region = map.region_of_pc(op.pc);
        }
        Some(op)
    }
}

/// Convenience: the total number of dynamic instructions a program executes.
///
/// Runs the interpreter to completion; intended for tests and sizing, not for
/// hot paths.
pub fn trace_len(program: &Program) -> u64 {
    Interp::new(program).count() as u64
}

// Parallel sampled simulation moves interpreters and checkpoints across
// threads (one restore+warmup+measure per worker), so both must stay
// Send + Sync. Assert it at compile time so a stray Rc/RefCell/raw
// pointer in a future edit fails here, next to the types, rather than in
// a distant executor call site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<InterpCheckpoint>();
    assert_send_sync::<Interp<'static>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::AffineExpr;
    use crate::ids::VarId;
    use crate::program::Marker;

    fn simple_sweep(n: i64) -> Program {
        let mut b = ProgramBuilder::new("sweep");
        let a = b.array("A", &[n], 8);
        b.loop_(n, |b, i| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i)]).fp(1).write(a, vec![Subscript::var(i)]);
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn sweep_op_counts() {
        let p = simple_sweep(4);
        let ops: Vec<_> = Interp::new(&p).collect();
        // per iteration: load, fp, store, incr, branch = 5; plus 1 init.
        assert_eq!(ops.len(), 4 * 5 + 1);
        let loads = ops.iter().filter(|o| matches!(o.kind, OpKind::Load(_))).count();
        let stores = ops.iter().filter(|o| matches!(o.kind, OpKind::Store(_))).count();
        assert_eq!((loads, stores), (4, 4));
    }

    #[test]
    fn sweep_addresses_are_sequential() {
        let p = simple_sweep(4);
        let addrs: Vec<u64> = Interp::new(&p)
            .filter_map(|o| match o.kind {
                OpKind::Load(a) => Some(a.0),
                _ => None,
            })
            .collect();
        assert_eq!(addrs.len(), 4);
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
    }

    #[test]
    fn branch_directions() {
        let p = simple_sweep(3);
        let branches: Vec<bool> = Interp::new(&p)
            .filter_map(|o| match o.kind {
                OpKind::Branch { taken } => Some(taken),
                _ => None,
            })
            .collect();
        assert_eq!(branches, vec![true, true, false]);
    }

    #[test]
    fn zero_trip_loop_emits_init_and_fallthrough() {
        let mut b = ProgramBuilder::new("z");
        b.loop_(0, |b, _| {
            b.stmt(|s| {
                s.int(1);
            });
        });
        let p = b.finish().unwrap();
        let ops: Vec<_> = Interp::new(&p).collect();
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[1].kind, OpKind::Branch { taken: false }));
    }

    #[test]
    fn column_major_changes_stride() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[8, 8], 8);
        b.nest2(2, 2, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j)]);
            });
        });
        let mut p = b.finish().unwrap();
        let row: Vec<u64> = Interp::new(&p).filter_map(|o| o.kind.addr().map(|a| a.0)).collect();
        p.arrays[0].layout = crate::program::Layout::ColMajor;
        let col: Vec<u64> = Interp::new(&p).filter_map(|o| o.kind.addr().map(|a| a.0)).collect();
        // row-major: A[0][0], A[0][1] are 8 bytes apart; col-major: 64 bytes.
        assert_eq!(row[1] - row[0], 8);
        assert_eq!(col[1] - col[0], 64);
    }

    #[test]
    fn gather_emits_index_load_first() {
        let mut b = ProgramBuilder::new("g");
        let x = b.array("X", &[16], 8);
        let ip = b.data_array("IP", vec![5, 3, 9, 1], 4);
        b.loop_(4, |b, j| {
            b.stmt(|s| {
                s.gather(x, ip, AffineExpr::var(j), 0);
            });
        });
        let p = b.finish().unwrap();
        let amap = p.address_map();
        let mem: Vec<_> = Interp::new(&p).filter(|o| o.kind.is_mem()).collect();
        assert_eq!(mem.len(), 8); // index load + gather load, 4 iterations
                                  // First op touches IP, second touches X at IP[0]=5.
        assert_eq!(mem[0].kind.addr().unwrap(), amap.array_base(crate::ids::ArrayId(1)));
        assert_eq!(
            mem[1].kind.addr().unwrap(),
            amap.array_base(crate::ids::ArrayId(0)).offset(5 * 8)
        );
        // The gather depends on the index load.
        assert_eq!(mem[1].dep, 1);
    }

    #[test]
    fn pointer_chase_follows_next_table() {
        let mut b = ProgramBuilder::new("p");
        let heap = b.array("H", &[4], 16);
        let next = b.data_array("N", vec![2, 3, 1, 0], 8);
        b.loop_(4, |b, _| {
            b.stmt(|s| {
                s.chase(heap, next, 8).int(1);
            });
        });
        let p = b.finish().unwrap();
        let amap = p.address_map();
        let heap_base = amap.array_base(crate::ids::ArrayId(0)).0;
        let nodes: Vec<u64> = Interp::new(&p)
            .filter_map(|o| match o.kind {
                OpKind::Load(a) if a.0 >= heap_base && a.0 < heap_base + 64 => {
                    Some((a.0 - heap_base) / 16)
                }
                _ => None,
            })
            .collect();
        // cursor path: 0 -> 2 -> 1 -> 3
        assert_eq!(nodes, vec![0, 2, 1, 3]);
    }

    #[test]
    fn marker_ops_appear_in_order() {
        let mut b = ProgramBuilder::new("m");
        b.marker(Marker::On);
        b.stmt(|s| {
            s.int(1);
        });
        b.marker(Marker::Off);
        let p = b.finish().unwrap();
        let kinds: Vec<_> = Interp::new(&p).map(|o| o.kind).collect();
        assert_eq!(kinds, vec![OpKind::AssistOn, OpKind::IntAlu, OpKind::AssistOff]);
    }

    #[test]
    fn pcs_stable_across_iterations() {
        let p = simple_sweep(3);
        let load_pcs: Vec<u64> = Interp::new(&p)
            .filter_map(|o| match o.kind {
                OpKind::Load(_) => Some(o.pc),
                _ => None,
            })
            .collect();
        assert!(load_pcs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn store_depends_on_alu() {
        let p = simple_sweep(1);
        let ops: Vec<_> = Interp::new(&p).collect();
        let store = ops.iter().find(|o| matches!(o.kind, OpKind::Store(_))).unwrap();
        assert_eq!(store.dep, 1); // directly on the fp op
        let fp = ops.iter().position(|o| o.kind == OpKind::FpAlu).unwrap();
        assert_eq!(ops[fp].dep, 1); // on the load
    }

    #[test]
    fn trace_len_matches_iterator() {
        let p = simple_sweep(10);
        assert_eq!(trace_len(&p), Interp::new(&p).count() as u64);
    }

    #[test]
    fn tile_tail_trip_executes_remainder() {
        use crate::program::Trip;
        let mut b = ProgramBuilder::new("tt");
        let a = b.array("A", &[10], 8);
        // for ii in 0..3 { for i in 0..min(4, 10-4*ii) { A[4*ii + i] } }
        b.loop_(3, |b, ii| {
            b.loop_trip(Trip::TileTail { total: 10, tile: 4, outer: ii }, |b, i| {
                b.stmt(|s| {
                    s.read(
                        a,
                        vec![Subscript::Affine(AffineExpr::from_terms([(ii, 4), (i, 1)], 0))],
                    );
                });
            });
        });
        let p = b.finish().unwrap();
        let loads: Vec<u64> = Interp::new(&p)
            .filter_map(|o| match o.kind {
                OpKind::Load(a) => Some(a.0),
                _ => None,
            })
            .collect();
        assert_eq!(loads.len(), 10);
        // All 10 elements touched exactly once, in order.
        for w in loads.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
    }

    #[test]
    fn var_out_of_scope_evaluates_to_zero() {
        // Defensive behaviour: a subscript can mention VarId(1) while only
        // loop 0 is live; it evaluates to the last value (initially 0).
        let mut b = ProgramBuilder::new("oos");
        let a = b.array("A", &[8], 8);
        b.loop_(2, |b, _| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::Affine(AffineExpr::var(VarId(7)))]);
            });
        });
        let p = b.finish().unwrap();
        let loads = Interp::new(&p).filter(|o| o.kind.is_mem()).count();
        assert_eq!(loads, 2);
    }

    #[test]
    fn checkpoint_restore_resumes_exact_position() {
        let p = simple_sweep(20);
        let full: Vec<_> = Interp::new(&p).collect();
        let mut interp = Interp::new(&p);
        // Take a checkpoint at an awkward mid-statement position.
        for _ in 0..33 {
            interp.next();
        }
        let ck = interp.checkpoint();
        assert_eq!(ck.position(), 33);
        let tail: Vec<_> = interp.by_ref().collect();
        assert_eq!(tail, full[33..].to_vec());
        // Restore into the now-exhausted interpreter: same tail again.
        interp.restore(&ck);
        assert_eq!(interp.emitted(), 33);
        let again: Vec<_> = interp.collect();
        assert_eq!(again, tail);
        // A fresh interpreter restores to the same position too.
        let mut fresh = Interp::new(&p);
        fresh.restore(&ck);
        assert_eq!(fresh.collect::<Vec<_>>(), tail);
    }

    #[test]
    fn advance_skips_and_reports_assist_markers() {
        let mut b = ProgramBuilder::new("adv");
        let a = b.array("A", &[16], 8);
        b.marker(Marker::On);
        b.loop_(16, |b, i| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i)]).int(1);
            });
        });
        b.marker(Marker::Off);
        let p = b.finish().unwrap();
        let full: Vec<_> = Interp::new(&p).collect();
        let mut interp = Interp::new(&p);
        let (n, assist) = interp.advance(10);
        assert_eq!(n, 10);
        assert_eq!(assist, Some(true), "the On marker at op 0 was passed");
        assert_eq!(interp.emitted(), 10);
        assert_eq!(interp.by_ref().collect::<Vec<_>>(), full[10..].to_vec());
        // Advancing past the end reports the shortfall and the Off marker.
        let mut interp = Interp::new(&p);
        let (n, assist) = interp.advance(u64::MAX);
        assert_eq!(n, full.len() as u64);
        assert_eq!(assist, Some(false));
        // No markers inside the window: None.
        let mut interp = Interp::new(&p);
        interp.advance(1);
        let (_, assist) = interp.advance(5);
        assert_eq!(assist, None);
    }

    #[test]
    fn shared_plan_matches_owned_compilation() {
        let p = simple_sweep(6);
        let plan = Plan::compile(&p);
        let shared: Vec<_> = Interp::with_plan(&p, &plan).collect();
        let owned: Vec<_> = Interp::new(&p).collect();
        assert_eq!(shared, owned);
        // One compilation serves both sizing and a fresh streaming pass.
        assert_eq!(plan.trace_len(&p), shared.len() as u64);
        assert_eq!(Interp::with_plan(&p, &plan).count(), shared.len());
    }
}
