//! Streaming interpreter: lowers a [`Program`] to its dynamic instruction
//! trace.
//!
//! [`Interp`] is an [`Iterator`] over [`TraceOp`]s, so arbitrarily long
//! executions stream through the processor model in constant memory. PCs are
//! assigned per static site (statement, loop latch, marker), so branch
//! predictors and instruction caches observe a stable, realistic text layout.
//!
//! Statement expansion order is: loads (with any index/pointer resolution
//! loads first), then the ALU chain (first ALU op depends on the last load),
//! then stores (depending on the last ALU op). This dependence shape is what
//! lets the out-of-order model overlap independent misses while serializing
//! pointer chases.

use crate::expr::Subscript;
use crate::ids::{Addr, ArrayId};
use crate::program::{AddressMap, Item, Loop, Marker, Program, Ref, RefPattern, Stmt};
use crate::region::RegionMap;
use crate::trace::{OpKind, TraceOp, SITE_BYTES, TEXT_BASE};
use std::collections::{HashMap, VecDeque};

/// Maps static sites (statements, loops, markers) to synthetic PCs.
///
/// Keys are the node addresses inside the borrowed [`Program`]; the program
/// is immutable for the lifetime of the interpreter, so node identity is
/// stable.
#[derive(Debug, Default)]
struct PcMap {
    sites: HashMap<usize, u64>,
}

impl PcMap {
    fn build(program: &Program) -> Self {
        let mut map = PcMap::default();
        let mut next = 0u64;
        fn walk(items: &[Item], map: &mut PcMap, next: &mut u64) {
            for item in items {
                match item {
                    Item::Loop(l) => {
                        map.sites.insert(l as *const Loop as usize, TEXT_BASE + *next * SITE_BYTES);
                        *next += 1;
                        walk(&l.body, map, next);
                    }
                    Item::Block(stmts) => {
                        for s in stmts {
                            map.sites
                                .insert(s as *const Stmt as usize, TEXT_BASE + *next * SITE_BYTES);
                            *next += 1;
                        }
                    }
                    Item::Marker(_) => {
                        map.sites
                            .insert(item as *const Item as usize, TEXT_BASE + *next * SITE_BYTES);
                        *next += 1;
                    }
                }
            }
        }
        walk(&program.items, &mut map, &mut next);
        map
    }

    fn of_loop(&self, l: &Loop) -> u64 {
        self.sites[&(l as *const Loop as usize)]
    }

    fn of_stmt(&self, s: &Stmt) -> u64 {
        self.sites[&(s as *const Stmt as usize)]
    }

    fn of_item(&self, i: &Item) -> u64 {
        self.sites[&(i as *const Item as usize)]
    }
}

enum Frame<'p> {
    Items { items: &'p [Item], pos: usize },
    Loop { lp: &'p Loop, iter: i64, trip: i64 },
}

/// Streaming trace generator over a borrowed [`Program`].
///
/// ```
/// use selcache_ir::{Interp, ProgramBuilder, Subscript};
///
/// let mut b = ProgramBuilder::new("t");
/// let a = b.array("A", &[4], 8);
/// b.loop_(4, |b, i| {
///     b.stmt(|s| { s.read(a, vec![Subscript::var(i)]).int(1); });
/// });
/// let p = b.finish().expect("valid");
/// let loads = Interp::new(&p).filter(|op| op.kind.is_mem()).count();
/// assert_eq!(loads, 4);
/// ```
pub struct Interp<'p> {
    program: &'p Program,
    amap: AddressMap,
    env: Vec<i64>,
    frames: Vec<Frame<'p>>,
    pending: VecDeque<TraceOp>,
    pcs: PcMap,
    /// Pointer-chase cursors, keyed by (heap, next-table) pair; a chain's
    /// cursor persists across statements, modelling a walk over a linked
    /// structure.
    chase: HashMap<(ArrayId, ArrayId), i64>,
    emitted: u64,
    regions: Option<&'p RegionMap>,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter with the program's default address map.
    pub fn new(program: &'p Program) -> Self {
        Self::with_address_map(program, program.address_map())
    }

    /// Creates an interpreter with an explicit address map (for experiments
    /// that relocate arrays).
    pub fn with_address_map(program: &'p Program, amap: AddressMap) -> Self {
        Interp {
            program,
            amap,
            env: vec![0; program.num_vars as usize],
            frames: vec![Frame::Items { items: &program.items, pos: 0 }],
            pending: VecDeque::with_capacity(64),
            pcs: PcMap::build(program),
            chase: HashMap::new(),
            emitted: 0,
            regions: None,
        }
    }

    /// Creates an interpreter that stamps every emitted op with the region
    /// owning its static site, per the given [`RegionMap`].
    pub fn with_regions(program: &'p Program, regions: &'p RegionMap) -> Self {
        let mut interp = Self::new(program);
        interp.regions = Some(regions);
        interp
    }

    /// Number of ops produced so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn push(&mut self, op: TraceOp) {
        self.pending.push_back(op);
    }

    /// Advances the tree walk until at least one op is pending or the walk is
    /// complete. Returns false when complete and nothing is pending.
    fn refill(&mut self) -> bool {
        while self.pending.is_empty() {
            // Copy out what the next step needs so no frame borrow lives
            // across the emission calls below.
            let next: Option<&'p Item> = match self.frames.last_mut() {
                None => return false,
                Some(Frame::Items { items, pos }) => {
                    if *pos >= items.len() {
                        None
                    } else {
                        let item = &items[*pos];
                        *pos += 1;
                        Some(item)
                    }
                }
                // A loop frame is always covered by an Items frame for its
                // body; it can never be on top here.
                Some(Frame::Loop { .. }) => unreachable!("loop frame without body frame"),
            };
            match next {
                None => {
                    self.frames.pop();
                    self.finish_loop_iteration();
                }
                Some(item) => match item {
                    Item::Block(stmts) => {
                        for s in stmts {
                            self.expand_stmt(s);
                        }
                    }
                    Item::Marker(m) => {
                        let pc = self.pcs.of_item(item);
                        let kind = match m {
                            Marker::On => OpKind::AssistOn,
                            Marker::Off => OpKind::AssistOff,
                        };
                        self.push(TraceOp::new(pc, kind));
                    }
                    Item::Loop(l) => self.enter_loop(l),
                },
            }
        }
        true
    }

    fn enter_loop(&mut self, l: &'p Loop) {
        let pc = self.pcs.of_loop(l);
        let trip = l.trip.eval(&self.env);
        // Index initialization.
        self.push(TraceOp::new(pc, OpKind::IntAlu));
        if trip <= 0 {
            // Loop test fails immediately: one not-taken branch.
            self.push(TraceOp::with_dep(pc + 8, OpKind::Branch { taken: false }, 1));
            return;
        }
        self.env[l.var.index()] = 0;
        self.frames.push(Frame::Loop { lp: l, iter: 0, trip });
        self.frames.push(Frame::Items { items: &l.body, pos: 0 });
    }

    /// Called when an `Items` frame is exhausted; if the frame below is a
    /// loop, emit the latch and either restart the body or pop the loop.
    fn finish_loop_iteration(&mut self) {
        let (lp, taken, new_iter) = match self.frames.last_mut() {
            Some(Frame::Loop { lp, iter, trip }) => {
                *iter += 1;
                (*lp, *iter < *trip, *iter)
            }
            _ => return,
        };
        let pc = self.pcs.of_loop(lp);
        // Index increment + backward branch.
        self.push(TraceOp::new(pc + 4, OpKind::IntAlu));
        self.push(TraceOp::with_dep(pc + 8, OpKind::Branch { taken }, 1));
        if taken {
            self.env[lp.var.index()] = new_iter;
            self.frames.push(Frame::Items { items: &lp.body, pos: 0 });
        } else {
            self.frames.pop();
        }
    }

    fn expand_stmt(&mut self, stmt: &Stmt) {
        let pc = self.pcs.of_stmt(stmt);
        let mut slot = 0u64;
        let mut next_pc = |slot: &mut u64| {
            let p = pc + (*slot).min(15) * 4;
            *slot += 1;
            p
        };

        let mut last_load: Option<usize> = None;
        // Loads first.
        for r in stmt.refs.iter().filter(|r| !r.write) {
            let idx = self.emit_access(r, &mut slot, &mut next_pc);
            last_load = Some(idx);
        }
        // ALU chain.
        let mut last_alu: Option<usize> = None;
        let total_alu = stmt.int_ops as usize + stmt.fp_ops as usize;
        for k in 0..total_alu {
            let kind = if k < stmt.int_ops as usize { OpKind::IntAlu } else { OpKind::FpAlu };
            let dep =
                if k == 0 { last_load.map_or(0, |i| (self.pending.len() - i) as u16) } else { 1 };
            let p = next_pc(&mut slot);
            self.push(TraceOp::with_dep(p, kind, dep));
            last_alu = Some(self.pending.len() - 1);
        }
        // Stores last.
        let producer = last_alu.or(last_load);
        for r in stmt.refs.iter().filter(|r| r.write) {
            let (addr, resolution) = self.resolve(&r.pattern);
            let mut store_dep_src = producer;
            for res_addr in resolution {
                let p = next_pc(&mut slot);
                self.push(TraceOp::new(p, OpKind::Load(res_addr)));
                store_dep_src = Some(self.pending.len() - 1);
            }
            let dep =
                store_dep_src.map_or(0, |i| (self.pending.len() - i).min(u16::MAX as usize) as u16);
            let p = next_pc(&mut slot);
            self.push(TraceOp::with_dep(p, OpKind::Store(addr), dep));
        }
    }

    /// Emits the load(s) for a read reference, returning the pending-buffer
    /// index of the final (value-producing) load.
    fn emit_access(
        &mut self,
        r: &Ref,
        slot: &mut u64,
        next_pc: &mut impl FnMut(&mut u64) -> u64,
    ) -> usize {
        let (addr, resolution) = self.resolve(&r.pattern);
        let mut dep = 0u16;
        for res_addr in resolution {
            let p = next_pc(slot);
            self.push(TraceOp::with_dep(p, OpKind::Load(res_addr), dep));
            dep = 1; // the next access depends on this resolution load
        }
        let p = next_pc(slot);
        self.push(TraceOp::with_dep(p, OpKind::Load(addr), dep));
        self.pending.len() - 1
    }

    /// Computes the final data address of a reference and any resolution
    /// loads (index-array reads, pointer next-table reads) that precede it.
    fn resolve(&mut self, pattern: &RefPattern) -> (Addr, Vec<Addr>) {
        match pattern {
            RefPattern::Scalar(s) => (self.amap.scalar_addr(*s), Vec::new()),
            RefPattern::Array { array, subscripts } => {
                let decl = &self.program.arrays[array.index()];
                let mut resolution = Vec::new();
                let mut coords = Vec::with_capacity(subscripts.len());
                for s in subscripts {
                    coords.push(self.eval_subscript(s, &mut resolution));
                }
                let off = decl.linearize(&coords);
                (self.amap.array_base(*array).offset(off as u64 * decl.elem_size), resolution)
            }
            RefPattern::Pointer { heap, next, field_offset } => {
                let heap_decl = &self.program.arrays[heap.index()];
                let next_decl = &self.program.arrays[next.index()];
                let next_data = next_decl.data.as_ref().expect("validated next-table data");
                let cursor = self.chase.entry((*heap, *next)).or_insert(0);
                let node = (*cursor).rem_euclid(heap_decl.len().max(1));
                let next_addr = self.amap.array_base(*next).offset(
                    node.rem_euclid(next_data.len().max(1) as i64) as u64 * next_decl.elem_size,
                );
                let field = (*field_offset).clamp(0, heap_decl.elem_size.saturating_sub(1) as i64);
                let node_addr = self
                    .amap
                    .array_base(*heap)
                    .offset(node as u64 * heap_decl.elem_size + field as u64);
                *cursor = next_data[node.rem_euclid(next_data.len().max(1) as i64) as usize];
                (node_addr, vec![next_addr])
            }
            RefPattern::StructField { array, index, field_offset } => {
                let decl = &self.program.arrays[array.index()];
                let idx = index.eval(&self.env).rem_euclid(decl.len().max(1));
                let field = (*field_offset).clamp(0, decl.elem_size.saturating_sub(1) as i64);
                (
                    self.amap.array_base(*array).offset(idx as u64 * decl.elem_size + field as u64),
                    Vec::new(),
                )
            }
        }
    }

    fn eval_subscript(&self, s: &Subscript, resolution: &mut Vec<Addr>) -> i64 {
        let v = |id: crate::ids::VarId| self.env.get(id.index()).copied().unwrap_or(0);
        match s {
            Subscript::Affine(e) => e.eval(&self.env),
            Subscript::Product(a, b) => v(*a) * v(*b),
            Subscript::Square(a) => v(*a) * v(*a),
            Subscript::Quotient(a, b) => {
                let d = v(*b);
                if d == 0 {
                    0
                } else {
                    v(*a) / d
                }
            }
            Subscript::Modulo(a, m) => {
                debug_assert!(*m > 0, "modulus must be positive");
                v(*a).rem_euclid((*m).max(1))
            }
            Subscript::Indexed { index_array, index, offset } => {
                let decl = &self.program.arrays[index_array.index()];
                let data = decl.data.as_ref().expect("validated index data");
                let pos = index.eval(&self.env).rem_euclid(data.len().max(1) as i64);
                resolution
                    .push(self.amap.array_base(*index_array).offset(pos as u64 * decl.elem_size));
                data[pos as usize] + offset
            }
        }
    }
}

impl Iterator for Interp<'_> {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        if self.pending.is_empty() && !self.refill() {
            return None;
        }
        self.emitted += 1;
        let mut op = self.pending.pop_front()?;
        if let Some(map) = self.regions {
            op.region = map.region_of_pc(op.pc);
        }
        Some(op)
    }
}

/// Convenience: the total number of dynamic instructions a program executes.
///
/// Runs the interpreter to completion; intended for tests and sizing, not for
/// hot paths.
pub fn trace_len(program: &Program) -> u64 {
    Interp::new(program).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::AffineExpr;
    use crate::ids::VarId;

    fn simple_sweep(n: i64) -> Program {
        let mut b = ProgramBuilder::new("sweep");
        let a = b.array("A", &[n], 8);
        b.loop_(n, |b, i| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i)]).fp(1).write(a, vec![Subscript::var(i)]);
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn sweep_op_counts() {
        let p = simple_sweep(4);
        let ops: Vec<_> = Interp::new(&p).collect();
        // per iteration: load, fp, store, incr, branch = 5; plus 1 init.
        assert_eq!(ops.len(), 4 * 5 + 1);
        let loads = ops.iter().filter(|o| matches!(o.kind, OpKind::Load(_))).count();
        let stores = ops.iter().filter(|o| matches!(o.kind, OpKind::Store(_))).count();
        assert_eq!((loads, stores), (4, 4));
    }

    #[test]
    fn sweep_addresses_are_sequential() {
        let p = simple_sweep(4);
        let addrs: Vec<u64> = Interp::new(&p)
            .filter_map(|o| match o.kind {
                OpKind::Load(a) => Some(a.0),
                _ => None,
            })
            .collect();
        assert_eq!(addrs.len(), 4);
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
    }

    #[test]
    fn branch_directions() {
        let p = simple_sweep(3);
        let branches: Vec<bool> = Interp::new(&p)
            .filter_map(|o| match o.kind {
                OpKind::Branch { taken } => Some(taken),
                _ => None,
            })
            .collect();
        assert_eq!(branches, vec![true, true, false]);
    }

    #[test]
    fn zero_trip_loop_emits_init_and_fallthrough() {
        let mut b = ProgramBuilder::new("z");
        b.loop_(0, |b, _| {
            b.stmt(|s| {
                s.int(1);
            });
        });
        let p = b.finish().unwrap();
        let ops: Vec<_> = Interp::new(&p).collect();
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[1].kind, OpKind::Branch { taken: false }));
    }

    #[test]
    fn column_major_changes_stride() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[8, 8], 8);
        b.nest2(2, 2, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j)]);
            });
        });
        let mut p = b.finish().unwrap();
        let row: Vec<u64> = Interp::new(&p).filter_map(|o| o.kind.addr().map(|a| a.0)).collect();
        p.arrays[0].layout = crate::program::Layout::ColMajor;
        let col: Vec<u64> = Interp::new(&p).filter_map(|o| o.kind.addr().map(|a| a.0)).collect();
        // row-major: A[0][0], A[0][1] are 8 bytes apart; col-major: 64 bytes.
        assert_eq!(row[1] - row[0], 8);
        assert_eq!(col[1] - col[0], 64);
    }

    #[test]
    fn gather_emits_index_load_first() {
        let mut b = ProgramBuilder::new("g");
        let x = b.array("X", &[16], 8);
        let ip = b.data_array("IP", vec![5, 3, 9, 1], 4);
        b.loop_(4, |b, j| {
            b.stmt(|s| {
                s.gather(x, ip, AffineExpr::var(j), 0);
            });
        });
        let p = b.finish().unwrap();
        let amap = p.address_map();
        let mem: Vec<_> = Interp::new(&p).filter(|o| o.kind.is_mem()).collect();
        assert_eq!(mem.len(), 8); // index load + gather load, 4 iterations
                                  // First op touches IP, second touches X at IP[0]=5.
        assert_eq!(mem[0].kind.addr().unwrap(), amap.array_base(crate::ids::ArrayId(1)));
        assert_eq!(
            mem[1].kind.addr().unwrap(),
            amap.array_base(crate::ids::ArrayId(0)).offset(5 * 8)
        );
        // The gather depends on the index load.
        assert_eq!(mem[1].dep, 1);
    }

    #[test]
    fn pointer_chase_follows_next_table() {
        let mut b = ProgramBuilder::new("p");
        let heap = b.array("H", &[4], 16);
        let next = b.data_array("N", vec![2, 3, 1, 0], 8);
        b.loop_(4, |b, _| {
            b.stmt(|s| {
                s.chase(heap, next, 8).int(1);
            });
        });
        let p = b.finish().unwrap();
        let amap = p.address_map();
        let heap_base = amap.array_base(crate::ids::ArrayId(0)).0;
        let nodes: Vec<u64> = Interp::new(&p)
            .filter_map(|o| match o.kind {
                OpKind::Load(a) if a.0 >= heap_base && a.0 < heap_base + 64 => {
                    Some((a.0 - heap_base) / 16)
                }
                _ => None,
            })
            .collect();
        // cursor path: 0 -> 2 -> 1 -> 3
        assert_eq!(nodes, vec![0, 2, 1, 3]);
    }

    #[test]
    fn marker_ops_appear_in_order() {
        let mut b = ProgramBuilder::new("m");
        b.marker(Marker::On);
        b.stmt(|s| {
            s.int(1);
        });
        b.marker(Marker::Off);
        let p = b.finish().unwrap();
        let kinds: Vec<_> = Interp::new(&p).map(|o| o.kind).collect();
        assert_eq!(kinds, vec![OpKind::AssistOn, OpKind::IntAlu, OpKind::AssistOff]);
    }

    #[test]
    fn pcs_stable_across_iterations() {
        let p = simple_sweep(3);
        let load_pcs: Vec<u64> = Interp::new(&p)
            .filter_map(|o| match o.kind {
                OpKind::Load(_) => Some(o.pc),
                _ => None,
            })
            .collect();
        assert!(load_pcs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn store_depends_on_alu() {
        let p = simple_sweep(1);
        let ops: Vec<_> = Interp::new(&p).collect();
        let store = ops.iter().find(|o| matches!(o.kind, OpKind::Store(_))).unwrap();
        assert_eq!(store.dep, 1); // directly on the fp op
        let fp = ops.iter().position(|o| o.kind == OpKind::FpAlu).unwrap();
        assert_eq!(ops[fp].dep, 1); // on the load
    }

    #[test]
    fn trace_len_matches_iterator() {
        let p = simple_sweep(10);
        assert_eq!(trace_len(&p), Interp::new(&p).count() as u64);
    }

    #[test]
    fn tile_tail_trip_executes_remainder() {
        use crate::program::Trip;
        let mut b = ProgramBuilder::new("tt");
        let a = b.array("A", &[10], 8);
        // for ii in 0..3 { for i in 0..min(4, 10-4*ii) { A[4*ii + i] } }
        b.loop_(3, |b, ii| {
            b.loop_trip(Trip::TileTail { total: 10, tile: 4, outer: ii }, |b, i| {
                b.stmt(|s| {
                    s.read(
                        a,
                        vec![Subscript::Affine(AffineExpr::from_terms([(ii, 4), (i, 1)], 0))],
                    );
                });
            });
        });
        let p = b.finish().unwrap();
        let loads: Vec<u64> = Interp::new(&p)
            .filter_map(|o| match o.kind {
                OpKind::Load(a) => Some(a.0),
                _ => None,
            })
            .collect();
        assert_eq!(loads.len(), 10);
        // All 10 elements touched exactly once, in order.
        for w in loads.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
    }

    #[test]
    fn var_out_of_scope_evaluates_to_zero() {
        // Defensive behaviour: a subscript can mention VarId(1) while only
        // loop 0 is live; it evaluates to the last value (initially 0).
        let mut b = ProgramBuilder::new("oos");
        let a = b.array("A", &[8], 8);
        b.loop_(2, |b, _| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::Affine(AffineExpr::var(VarId(7)))]);
            });
        });
        let p = b.finish().unwrap();
        let loads = Interp::new(&p).filter(|o| o.kind.is_mem()).count();
        assert_eq!(loads, 2);
    }
}
