//! # selcache-ir
//!
//! Loop-nest intermediate representation for the *selcache* framework, a
//! reproduction of Memik et al., *"An Integrated Approach for Improving
//! Cache Behavior"* (DATE 2003).
//!
//! The IR models the program shapes the paper's compiler analysis
//! distinguishes: counted loop nests containing statements whose memory
//! references are *analyzable* (scalars, affine array references) or
//! *non-analyzable* (non-affine subscripts, indexed/subscripted arrays,
//! pointer chases, struct fields). A streaming interpreter ([`Interp`])
//! lowers a program to its dynamic instruction trace — loads/stores with
//! concrete addresses, ALU ops, branches with resolved directions, and the
//! `AssistOn`/`AssistOff` marker instructions the selective scheme inserts.
//!
//! ## Example
//!
//! ```
//! use selcache_ir::{Interp, OpKind, ProgramBuilder, Subscript};
//!
//! // for i in 0..64 { A[i] = A[i] * c }
//! let mut b = ProgramBuilder::new("scale");
//! let a = b.array("A", &[64], 8);
//! b.loop_(64, |b, i| {
//!     b.stmt(|s| {
//!         s.read(a, vec![Subscript::var(i)])
//!          .fp(1)
//!          .write(a, vec![Subscript::var(i)]);
//!     });
//! });
//! let program = b.finish()?;
//! let stores = Interp::new(&program)
//!     .filter(|op| matches!(op.kind, OpKind::Store(_)))
//!     .count();
//! assert_eq!(stores, 64);
//! # Ok::<(), selcache_ir::ProgramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod expr;
mod ids;
mod interp;
mod plan;
mod pretty;
mod program;
mod region;
mod trace;
mod trace_io;

pub use builder::{ProgramBuilder, StmtBuilder};
pub use expr::{AffineExpr, Subscript};
pub use ids::{Addr, ArrayId, LoopId, RegionId, ScalarId, VarId};
pub use interp::{trace_len, Interp, InterpCheckpoint};
pub use plan::Plan;
pub use pretty::pretty;
pub use program::{
    AddressMap, ArrayDecl, Item, Layout, Loop, Marker, Program, ProgramError, Ref, RefPattern,
    Stmt, Trip,
};
pub use region::{site_count, RegionMap, RegionMapBuilder};
pub use trace::{site_index, OpKind, TraceOp, SITE_BYTES, TEXT_BASE};
pub use trace_io::{TraceReader, TraceWriter, TRACE_MAGIC};
