//! Compiled access plans: a one-time lowering of a [`Program`] into the flat
//! form the interpreter executes.
//!
//! The streaming interpreter used to pay three hash lookups per emitted op:
//! the pointer-keyed `PcMap` for the site PC, the `(heap, next)` map for
//! pointer-chase cursors, and the per-reference address computation walking
//! `Subscript` trees. A [`Plan`] hoists all of that to compile time:
//!
//! - every static site's PC is baked into its plan node;
//! - every dependence distance is baked in (they are functions of static
//!   per-statement op counts only);
//! - affine subscripts that are provably in-bounds are folded, together with
//!   the array layout and base address, into *address slots* — byte cursors
//!   bumped by a per-variable stride whenever a loop writes its induction
//!   variable — so the common reference costs one indexed read per access;
//! - pointer-chase cursors live in a dense slot table indexed at compile
//!   time.
//!
//! References the fold cannot prove safe (non-affine or possibly
//! out-of-bounds subscripts, indexed gathers, pointer chases, struct fields)
//! keep the original general resolution path, so emitted traces are
//! bit-identical to the tree-walking interpreter.

use crate::expr::Subscript;
use crate::ids::{ArrayId, VarId};
use crate::program::{AddressMap, Item, Marker, Program, Ref, RefPattern, Stmt, Trip};
use crate::trace::{OpKind, SITE_BYTES, TEXT_BASE};
use std::collections::HashMap;

/// Owner of the top-level item list in a [`Frame`](crate::interp) — loops own
/// their bodies by node index.
pub(crate) const ROOT_OWNER: u32 = u32::MAX;

/// Chase-slot marker for non-pointer references.
pub(crate) const NO_CHASE: u32 = u32::MAX;

/// One compiled op template of a statement.
#[derive(Debug, Clone)]
pub(crate) enum OpT {
    /// ALU op: fully static.
    Plain { pc: u64, kind: OpKind, dep: u16 },
    /// Load whose address is the current value of an affine slot.
    LoadSlot { pc: u64, dep: u16, slot: u32 },
    /// Store whose address is the current value of an affine slot.
    StoreSlot { pc: u64, dep: u16, slot: u32 },
    /// Reference needing runtime resolution; index into [`Plan::generals`].
    General(u32),
}

/// A reference that still resolves at run time.
#[derive(Debug, Clone)]
pub(crate) struct GeneralRef {
    /// The reference pattern, cloned out of the program.
    pub pattern: RefPattern,
    /// True for a store.
    pub write: bool,
    /// PCs of each resolution load followed by the final access.
    pub pcs: Box<[u64]>,
    /// Dependence distance of the final access when no resolution load
    /// precedes it (resolution loads force distance 1).
    pub bare_dep: u16,
    /// Dense pointer-chase cursor slot, or [`NO_CHASE`].
    pub chase_slot: u32,
}

/// A node of the compiled program tree, addressed by index.
#[derive(Debug, Clone)]
pub(crate) enum PlanNode {
    /// A counted loop with its latch PC and compiled body.
    Loop { pc: u64, var: VarId, trip: Trip, body: Vec<u32> },
    /// A statement's op templates.
    Stmt { ops: Vec<OpT> },
    /// An assist marker.
    Marker { pc: u64, on: bool },
}

/// A compiled, reusable lowering of a [`Program`].
///
/// Compile once with [`Plan::compile`] (or [`Plan::compile_with`] for a
/// custom [`AddressMap`]) and share it across [`crate::Interp`] instances via
/// [`crate::Interp::with_plan`] — e.g. to size a trace with
/// [`Plan::trace_len`] and then stream it without paying a second program
/// walk. A plan captures the program's arrays, layouts, and address map at
/// compile time; recompile after mutating the program.
#[derive(Debug, Clone)]
pub struct Plan {
    pub(crate) amap: AddressMap,
    pub(crate) nodes: Vec<PlanNode>,
    pub(crate) roots: Vec<u32>,
    pub(crate) generals: Vec<GeneralRef>,
    /// Initial byte address of each affine slot (all-zero environment).
    pub(crate) slot_init: Vec<i64>,
    /// Per induction variable: `(slot, byte stride)` pairs to bump when the
    /// variable changes by a delta.
    pub(crate) var_slots: Vec<Vec<(u32, i64)>>,
    pub(crate) num_chase: u32,
}

impl Plan {
    /// Compiles `program` under its default address map.
    pub fn compile(program: &Program) -> Plan {
        Self::compile_with(program, program.address_map())
    }

    /// Compiles `program` under an explicit address map (for experiments
    /// that relocate arrays).
    pub fn compile_with(program: &Program, amap: AddressMap) -> Plan {
        // env[v] stays within [0, max(0, trip.max() - 1)]: it is 0 until the
        // binding loop first runs and retains its last iteration value after.
        let mut var_max = vec![0i64; program.num_vars as usize];
        program.for_each_loop(|l| {
            if let Some(m) = var_max.get_mut(l.var.index()) {
                *m = (*m).max((l.trip.max() - 1).max(0));
            }
        });
        let mut c = Compiler {
            program,
            amap,
            var_max,
            next_site: 0,
            nodes: Vec::new(),
            generals: Vec::new(),
            slot_init: Vec::new(),
            slot_index: HashMap::new(),
            var_slots: vec![Vec::new(); program.num_vars as usize],
            chase_index: HashMap::new(),
        };
        let roots = c.compile_items(&program.items);
        Plan {
            amap: c.amap,
            nodes: c.nodes,
            roots,
            generals: c.generals,
            slot_init: c.slot_init,
            var_slots: c.var_slots,
            num_chase: c.chase_index.len() as u32,
        }
    }

    /// Total number of dynamic instructions the program emits under this
    /// plan. Streams an interpreter over the shared plan — no rebuild.
    pub fn trace_len(&self, program: &Program) -> u64 {
        crate::interp::Interp::with_plan(program, self).count() as u64
    }
}

struct Compiler<'p> {
    program: &'p Program,
    amap: AddressMap,
    var_max: Vec<i64>,
    next_site: u64,
    nodes: Vec<PlanNode>,
    generals: Vec<GeneralRef>,
    slot_init: Vec<i64>,
    /// Dedup of affine slots by (initial address, byte coefficients).
    slot_index: HashMap<(i64, Vec<(u32, i64)>), u32>,
    var_slots: Vec<Vec<(u32, i64)>>,
    chase_index: HashMap<(ArrayId, ArrayId), u32>,
}

impl Compiler<'_> {
    /// Next site PC, in the same pre-order the interpreter's original
    /// pointer-keyed map used.
    fn alloc_pc(&mut self) -> u64 {
        let pc = TEXT_BASE + self.next_site * SITE_BYTES;
        self.next_site += 1;
        pc
    }

    fn push_node(&mut self, node: PlanNode) -> u32 {
        self.nodes.push(node);
        (self.nodes.len() - 1) as u32
    }

    fn compile_items(&mut self, items: &[Item]) -> Vec<u32> {
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            match item {
                Item::Loop(l) => {
                    let pc = self.alloc_pc();
                    let body = self.compile_items(&l.body);
                    out.push(self.push_node(PlanNode::Loop { pc, var: l.var, trip: l.trip, body }));
                }
                Item::Block(stmts) => {
                    for s in stmts {
                        let pc = self.alloc_pc();
                        let ops = self.compile_stmt(s, pc);
                        out.push(self.push_node(PlanNode::Stmt { ops }));
                    }
                }
                Item::Marker(m) => {
                    let pc = self.alloc_pc();
                    out.push(self.push_node(PlanNode::Marker { pc, on: matches!(m, Marker::On) }));
                }
            }
        }
        out
    }

    /// Mirrors the interpreter's statement expansion symbolically: loads,
    /// then the ALU chain, then stores, tracking emission positions so every
    /// dependence distance is baked in.
    fn compile_stmt(&mut self, stmt: &Stmt, pc: u64) -> Vec<OpT> {
        let mut slot_ctr = 0u64;
        let next_pc = |ctr: &mut u64| {
            let p = pc + (*ctr).min(15) * 4;
            *ctr += 1;
            p
        };
        let mut ops = Vec::new();
        let mut pos = 0usize;
        let mut last_load: Option<usize> = None;
        for r in stmt.refs.iter().filter(|r| !r.write) {
            match self.affine_slot(&r.pattern) {
                Some(slot) => {
                    ops.push(OpT::LoadSlot { pc: next_pc(&mut slot_ctr), dep: 0, slot });
                    pos += 1;
                }
                None => {
                    let res_n = res_count(&r.pattern);
                    let pcs: Vec<u64> = (0..=res_n).map(|_| next_pc(&mut slot_ctr)).collect();
                    let g = self.general(r, pcs, 0);
                    ops.push(OpT::General(g));
                    pos += res_n + 1;
                }
            }
            last_load = Some(pos - 1);
        }
        let mut last_alu: Option<usize> = None;
        let total_alu = stmt.int_ops as usize + stmt.fp_ops as usize;
        for k in 0..total_alu {
            let kind = if k < stmt.int_ops as usize { OpKind::IntAlu } else { OpKind::FpAlu };
            let dep = if k == 0 { last_load.map_or(0, |i| (pos - i) as u16) } else { 1 };
            ops.push(OpT::Plain { pc: next_pc(&mut slot_ctr), kind, dep });
            pos += 1;
            last_alu = Some(pos - 1);
        }
        let producer = last_alu.or(last_load);
        for r in stmt.refs.iter().filter(|r| r.write) {
            let dep = |pos: usize| producer.map_or(0, |i| (pos - i).min(u16::MAX as usize) as u16);
            match self.affine_slot(&r.pattern) {
                Some(slot) => {
                    ops.push(OpT::StoreSlot { pc: next_pc(&mut slot_ctr), dep: dep(pos), slot });
                    pos += 1;
                }
                None => {
                    let res_n = res_count(&r.pattern);
                    let pcs: Vec<u64> = (0..=res_n).map(|_| next_pc(&mut slot_ctr)).collect();
                    let g = self.general(r, pcs, dep(pos));
                    ops.push(OpT::General(g));
                    pos += res_n + 1;
                }
            }
        }
        ops
    }

    fn general(&mut self, r: &Ref, pcs: Vec<u64>, bare_dep: u16) -> u32 {
        let chase_slot = match &r.pattern {
            RefPattern::Pointer { heap, next, .. } => {
                let n = self.chase_index.len() as u32;
                *self.chase_index.entry((*heap, *next)).or_insert(n)
            }
            _ => NO_CHASE,
        };
        self.generals.push(GeneralRef {
            pattern: r.pattern.clone(),
            write: r.write,
            pcs: pcs.into_boxed_slice(),
            bare_dep,
            chase_slot,
        });
        (self.generals.len() - 1) as u32
    }

    /// Folds an analyzable, provably in-bounds reference into an affine
    /// address slot; returns `None` when the general path must be kept.
    fn affine_slot(&mut self, pattern: &RefPattern) -> Option<u32> {
        match pattern {
            RefPattern::Scalar(s) => {
                let addr = self.amap.scalar_addr(*s).0 as i64;
                Some(self.intern_slot(addr, Vec::new()))
            }
            RefPattern::Array { array, subscripts } => {
                let decl = self.program.arrays.get(array.index())?;
                if subscripts.len() != decl.dims.len() {
                    return None;
                }
                // Every coordinate must be affine and provably inside its
                // extent for every reachable environment: `linearize` clamps
                // with rem_euclid, so the fold is only exact in-bounds.
                for (sub, &extent) in subscripts.iter().zip(&decl.dims) {
                    let Subscript::Affine(e) = sub else { return None };
                    let mut lo = e.constant_term() as i128;
                    let mut hi = lo;
                    for &(v, c) in e.terms() {
                        let max = self.var_max.get(v.index()).copied().unwrap_or(0) as i128;
                        let swing = c as i128 * max;
                        if swing < 0 {
                            lo += swing;
                        } else {
                            hi += swing;
                        }
                    }
                    if lo < 0 || hi >= extent as i128 {
                        return None;
                    }
                }
                // Element stride of each source dimension under the layout.
                let order = decl.layout.order(decl.dims.len());
                let mut strides = vec![0i64; decl.dims.len()];
                let mut mult = 1i64;
                for &src in order.iter().rev() {
                    strides[src] = mult;
                    mult *= decl.dims[src];
                }
                let elem = decl.elem_size as i64;
                let mut init = self.amap.array_base(*array).0 as i64;
                let mut coeffs: Vec<(u32, i64)> = Vec::new();
                for (sub, &stride) in subscripts.iter().zip(&strides) {
                    let Subscript::Affine(e) = sub else { unreachable!() };
                    init += stride * e.constant_term() * elem;
                    for &(v, c) in e.terms() {
                        // Vars beyond the program's env are constantly zero.
                        if v.index() >= self.var_slots.len() {
                            continue;
                        }
                        let byte_coeff = stride * c * elem;
                        if byte_coeff == 0 {
                            continue;
                        }
                        match coeffs.iter_mut().find(|(cv, _)| *cv == v.index() as u32) {
                            Some((_, acc)) => *acc += byte_coeff,
                            None => coeffs.push((v.index() as u32, byte_coeff)),
                        }
                    }
                }
                coeffs.retain(|&(_, c)| c != 0);
                coeffs.sort_unstable();
                Some(self.intern_slot(init, coeffs))
            }
            RefPattern::Pointer { .. } | RefPattern::StructField { .. } => None,
        }
    }

    fn intern_slot(&mut self, init: i64, coeffs: Vec<(u32, i64)>) -> u32 {
        if let Some(&slot) = self.slot_index.get(&(init, coeffs.clone())) {
            return slot;
        }
        let slot = self.slot_init.len() as u32;
        self.slot_init.push(init);
        for &(v, c) in &coeffs {
            self.var_slots[v as usize].push((slot, c));
        }
        self.slot_index.insert((init, coeffs), slot);
        slot
    }
}

/// Number of resolution loads a pattern emits before its final access.
fn res_count(pattern: &RefPattern) -> usize {
    match pattern {
        RefPattern::Scalar(_) | RefPattern::StructField { .. } => 0,
        RefPattern::Array { subscripts, .. } => {
            subscripts.iter().filter(|s| matches!(s, Subscript::Indexed { .. })).count()
        }
        RefPattern::Pointer { .. } => 1,
    }
}
