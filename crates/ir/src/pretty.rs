//! Human-readable dump of a [`Program`] for debugging compiler passes.

use crate::program::{Item, Marker, Program, RefPattern, Stmt};
use std::fmt::Write as _;

/// Renders the program as indented pseudo-code.
///
/// ```
/// use selcache_ir::{pretty, ProgramBuilder, Subscript};
/// let mut b = ProgramBuilder::new("t");
/// let a = b.array("A", &[4], 8);
/// b.loop_(4, |b, i| {
///     b.stmt(|s| { s.read(a, vec![Subscript::var(i)]); });
/// });
/// let text = pretty(&b.finish().expect("valid"));
/// assert!(text.contains("for v0 in 0..4"));
/// ```
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {} ({} arrays)", program.name, program.arrays.len());
    for (i, a) in program.arrays.iter().enumerate() {
        let _ = writeln!(
            out,
            "  array a{i} {:?} dims={:?} elem={} layout={:?}{}",
            a.name,
            a.dims,
            a.elem_size,
            a.layout,
            if a.data.is_some() { " (data)" } else { "" }
        );
    }
    fn items(out: &mut String, list: &[Item], depth: usize) {
        let pad = "  ".repeat(depth + 1);
        for item in list {
            match item {
                Item::Loop(l) => {
                    match l.trip {
                        crate::program::Trip::Const(n) => {
                            let _ = writeln!(out, "{pad}for {} in 0..{n} {{", l.var);
                        }
                        crate::program::Trip::TileTail { total, tile, outer } => {
                            let _ = writeln!(
                                out,
                                "{pad}for {} in 0..min({tile}, {total}-{tile}*{outer}) {{",
                                l.var
                            );
                        }
                    }
                    items(out, &l.body, depth + 1);
                    let _ = writeln!(out, "{pad}}}");
                }
                Item::Block(stmts) => {
                    for s in stmts {
                        stmt(out, s, &pad);
                    }
                }
                Item::Marker(Marker::On) => {
                    let _ = writeln!(out, "{pad}ASSIST_ON");
                }
                Item::Marker(Marker::Off) => {
                    let _ = writeln!(out, "{pad}ASSIST_OFF");
                }
            }
        }
    }
    fn stmt(out: &mut String, s: &Stmt, pad: &str) {
        let mut parts = Vec::new();
        for r in &s.refs {
            let dir = if r.write { "st" } else { "ld" };
            let p = match &r.pattern {
                RefPattern::Scalar(sc) => format!("{dir} {sc}"),
                RefPattern::Array { array, subscripts } => {
                    let subs: Vec<String> = subscripts.iter().map(|x| x.to_string()).collect();
                    format!("{dir} {array}[{}]", subs.join("]["))
                }
                RefPattern::Pointer { heap, next, field_offset } => {
                    format!("{dir} chase({heap} via {next})+{field_offset}")
                }
                RefPattern::StructField { array, index, field_offset } => {
                    format!("{dir} {array}[{index}].+{field_offset}")
                }
            };
            parts.push(p);
        }
        if s.int_ops > 0 {
            parts.push(format!("int*{}", s.int_ops));
        }
        if s.fp_ops > 0 {
            parts.push(format!("fp*{}", s.fp_ops));
        }
        let _ = writeln!(out, "{pad}{};", parts.join(", "));
    }
    items(&mut out, &program.items, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::Subscript;

    #[test]
    fn renders_nest_and_markers() {
        let mut b = ProgramBuilder::new("demo");
        let a = b.array("A", &[4, 4], 8);
        b.marker(Marker::On);
        b.nest2(4, 4, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i), Subscript::var(j)]).fp(2);
            });
        });
        b.marker(Marker::Off);
        let text = pretty(&b.finish().unwrap());
        assert!(text.contains("ASSIST_ON"));
        assert!(text.contains("ASSIST_OFF"));
        assert!(text.contains("for v0 in 0..4"));
        assert!(text.contains("ld a0[v0][v1]"));
        assert!(text.contains("fp*2"));
    }

    #[test]
    fn renders_pointer_and_scalar() {
        let mut b = ProgramBuilder::new("demo");
        let h = b.array("H", &[4], 16);
        let n = b.data_array("N", vec![1, 2, 3, 0], 8);
        let sc = b.scalar();
        b.loop_(2, |b, _| {
            b.stmt(|s| {
                s.chase(h, n, 0).write_scalar(sc);
            });
        });
        let text = pretty(&b.finish().unwrap());
        assert!(text.contains("chase(a0 via a1)"));
        assert!(text.contains("st s0"));
    }
}
