//! The loop-nest program representation.
//!
//! A [`Program`] is a forest of [`Item`]s: counted loops ([`Loop`]),
//! straight-line statement blocks ([`Block`]), and assist-control markers
//! ([`Marker`]) inserted by the region-detection pass. Statements carry
//! memory references ([`Ref`]) plus integer/floating-point operation counts;
//! the interpreter in [`crate::interp`] lowers this to a dynamic trace.

use crate::expr::{AffineExpr, Subscript};
use crate::ids::{Addr, ArrayId, LoopId, ScalarId, VarId};
use std::fmt;

/// Memory layout of a (possibly multi-dimensional) array.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Row-major (C default): the last subscript has unit stride.
    #[default]
    RowMajor,
    /// Column-major (Fortran): the first subscript has unit stride.
    ColMajor,
    /// Arbitrary dimension permutation: `perm[k]` gives the storage position
    /// of source dimension `k` (identity permutation equals row-major).
    Permuted(Vec<usize>),
}

impl Layout {
    /// Storage-order permutation for `ndims` dimensions: `order[j]` is the
    /// source dimension stored at position `j` (position `ndims-1` varies
    /// fastest).
    pub fn order(&self, ndims: usize) -> Vec<usize> {
        match self {
            Layout::RowMajor => (0..ndims).collect(),
            Layout::ColMajor => (0..ndims).rev().collect(),
            Layout::Permuted(perm) => {
                // perm[k] = storage position of source dim k; invert it.
                let mut order = vec![0; ndims];
                for (src, &pos) in perm.iter().enumerate() {
                    order[pos] = src;
                }
                order
            }
        }
    }
}

/// An array (or index table / linked-heap backing store) declared by a
/// program.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Human-readable name for diagnostics and pretty-printing.
    pub name: String,
    /// Extent of each dimension, in elements. Must be non-empty and positive.
    pub dims: Vec<i64>,
    /// Element size in bytes (e.g. 8 for doubles, 4 for ints). For
    /// struct-field references this is the struct size.
    pub elem_size: u64,
    /// Storage layout; changed by the compiler's data-layout pass.
    pub layout: Layout,
    /// Backing values, required for [`Subscript::Indexed`] index arrays and
    /// for [`RefPattern::Pointer`] next-tables. Values are element indices
    /// into the target array.
    pub data: Option<Vec<i64>>,
    /// Trailing padding in bytes, set by the compiler's array-padding pass
    /// to stagger base addresses across cache sets (never addressed by
    /// references).
    pub pad_bytes: u64,
}

impl ArrayDecl {
    /// Total number of elements.
    pub fn len(&self) -> i64 {
        self.dims.iter().product()
    }

    /// True if the array has zero elements (never true for valid programs).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total footprint in bytes, including compiler-inserted padding.
    pub fn size_bytes(&self) -> u64 {
        self.len() as u64 * self.elem_size + self.pad_bytes
    }

    /// Linearizes a subscript vector (element coordinates) into an element
    /// offset under the current layout. Coordinates are clamped into bounds
    /// so that synthetic non-affine subscripts cannot escape the array.
    pub fn linearize(&self, coords: &[i64]) -> i64 {
        let order = self.layout.order(self.dims.len());
        let mut off = 0i64;
        for &src in &order {
            let extent = self.dims[src];
            let c = coords.get(src).copied().unwrap_or(0).rem_euclid(extent);
            off = off * extent + c;
        }
        off
    }
}

/// A single memory-reference pattern, classified per Section 2.3 of the
/// paper: scalars and affine array references are *analyzable*; non-affine,
/// indexed, pointer, and struct references are not.
#[derive(Debug, Clone, PartialEq)]
pub enum RefPattern {
    /// A scalar variable, e.g. `A`.
    Scalar(ScalarId),
    /// An array reference with one subscript per dimension, e.g.
    /// `C[i+j][k-1]` or the non-affine `D[i²][j]`.
    Array {
        /// The referenced array.
        array: ArrayId,
        /// One subscript per array dimension.
        subscripts: Vec<Subscript>,
    },
    /// A pointer-chasing reference, e.g. `*H[i]`, `K->field`: each execution
    /// dereferences the current node in `heap` and advances the cursor via
    /// the `next` table (which must carry backing data).
    Pointer {
        /// The array acting as the node heap.
        heap: ArrayId,
        /// Next-pointer table: `next.data[cursor]` is the following node.
        next: ArrayId,
        /// Byte offset of the accessed field within a node.
        field_offset: i64,
    },
    /// A field of a struct in an array of structs, e.g. `J.field` where `J`
    /// is `array[index]`; the array's `elem_size` is the struct size.
    StructField {
        /// The array of structs.
        array: ArrayId,
        /// Element index (affine, but still non-analyzable per the paper).
        index: AffineExpr,
        /// Byte offset of the field within the struct.
        field_offset: i64,
    },
}

impl RefPattern {
    /// True if the reference is compile-time analyzable (Section 2.3).
    pub fn is_analyzable(&self) -> bool {
        match self {
            RefPattern::Scalar(_) => true,
            RefPattern::Array { subscripts, .. } => subscripts.iter().all(Subscript::is_affine),
            RefPattern::Pointer { .. } | RefPattern::StructField { .. } => false,
        }
    }

    /// The array this pattern touches, if any.
    pub fn array(&self) -> Option<ArrayId> {
        match self {
            RefPattern::Scalar(_) => None,
            RefPattern::Array { array, .. } => Some(*array),
            RefPattern::Pointer { heap, .. } => Some(*heap),
            RefPattern::StructField { array, .. } => Some(*array),
        }
    }
}

/// A memory reference: a pattern plus read/write direction.
#[derive(Debug, Clone, PartialEq)]
pub struct Ref {
    /// Access pattern.
    pub pattern: RefPattern,
    /// True for a store, false for a load.
    pub write: bool,
}

impl Ref {
    /// A load with the given pattern.
    pub fn load(pattern: RefPattern) -> Self {
        Ref { pattern, write: false }
    }

    /// A store with the given pattern.
    pub fn store(pattern: RefPattern) -> Self {
        Ref { pattern, write: true }
    }
}

/// A statement: a bundle of memory references plus arithmetic work.
///
/// The interpreter expands a statement into its loads (in order), the ALU
/// operations (dependent on the loads), and finally its stores.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Stmt {
    /// Memory references, loads and stores interleaved in program order.
    pub refs: Vec<Ref>,
    /// Number of integer ALU operations.
    pub int_ops: u16,
    /// Number of floating-point operations.
    pub fp_ops: u16,
}

impl Stmt {
    /// Creates a statement with the given references and op counts.
    pub fn new(refs: Vec<Ref>, int_ops: u16, fp_ops: u16) -> Self {
        Stmt { refs, int_ops, fp_ops }
    }
}

/// Assist-control marker: turns the hardware locality-optimization mechanism
/// on or off at run time (the paper's `activate`/`deactivate` instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Marker {
    /// Activate the hardware assist.
    On,
    /// Deactivate the hardware assist.
    Off,
}

/// Loop trip count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trip {
    /// A compile-time constant trip count.
    Const(i64),
    /// The trailing-tile trip count produced by tiling: the loop runs
    /// `min(tile, total - outer*tile)` iterations, where `outer` is the tile
    /// controller variable.
    TileTail {
        /// Total extent of the original loop.
        total: i64,
        /// Tile size.
        tile: i64,
        /// Controller loop variable.
        outer: VarId,
    },
}

impl Trip {
    /// Evaluates the trip count under an environment (see
    /// [`AffineExpr::eval`]).
    pub fn eval(&self, env: &[i64]) -> i64 {
        match *self {
            Trip::Const(n) => n,
            Trip::TileTail { total, tile, outer } => {
                let o = env.get(outer.index()).copied().unwrap_or(0);
                (total - o * tile).min(tile).max(0)
            }
        }
    }

    /// An upper bound on the trip count independent of the environment.
    pub fn max(&self) -> i64 {
        match *self {
            Trip::Const(n) => n,
            Trip::TileTail { total, tile, .. } => tile.min(total),
        }
    }
}

/// A counted loop: `for var in 0..trip { body }` (step 1; strides are
/// expressed in subscript coefficients).
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// Unique loop identity within the program.
    pub id: LoopId,
    /// Induction variable bound by this loop.
    pub var: VarId,
    /// Trip count.
    pub trip: Trip,
    /// Loop body.
    pub body: Vec<Item>,
}

/// A node of the program tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A counted loop.
    Loop(Loop),
    /// Straight-line statements.
    Block(Vec<Stmt>),
    /// An assist-control marker.
    Marker(Marker),
}

impl Item {
    /// The loop, if this item is one.
    pub fn as_loop(&self) -> Option<&Loop> {
        match self {
            Item::Loop(l) => Some(l),
            _ => None,
        }
    }

    /// The loop, mutably, if this item is one.
    pub fn as_loop_mut(&mut self) -> Option<&mut Loop> {
        match self {
            Item::Loop(l) => Some(l),
            _ => None,
        }
    }
}

/// Validation failure for a [`Program`]; see [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// An array id is out of range.
    UnknownArray(ArrayId),
    /// A reference has the wrong number of subscripts for its array.
    SubscriptArity {
        /// Offending array.
        array: ArrayId,
        /// Subscripts supplied.
        got: usize,
        /// Dimensions declared.
        want: usize,
    },
    /// An index array or next-table lacks backing data.
    MissingData(ArrayId),
    /// An array has a non-positive dimension.
    BadDims(ArrayId),
    /// A loop variable id collides with another loop on the same path.
    DuplicateVar(VarId),
    /// A loop id is duplicated in the tree.
    DuplicateLoop(LoopId),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnknownArray(a) => write!(f, "unknown array {a}"),
            ProgramError::SubscriptArity { array, got, want } => {
                write!(f, "array {array} expects {want} subscripts, got {got}")
            }
            ProgramError::MissingData(a) => {
                write!(f, "array {a} needs backing data for indexed/pointer access")
            }
            ProgramError::BadDims(a) => write!(f, "array {a} has a non-positive dimension"),
            ProgramError::DuplicateVar(v) => write!(f, "loop variable {v} shadowed on same path"),
            ProgramError::DuplicateLoop(l) => write!(f, "duplicate loop id {l}"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A whole program: array declarations plus the item forest.
///
/// Construct programs with [`crate::ProgramBuilder`]; hand-rolled programs
/// should be checked with [`Program::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (benchmark name).
    pub name: String,
    /// Declared arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Number of induction variables (dense [`VarId`]s).
    pub num_vars: u32,
    /// Number of scalar variables (dense [`ScalarId`]s).
    pub num_scalars: u32,
    /// Number of loops (dense [`LoopId`]s).
    pub num_loops: u32,
    /// Top-level items.
    pub items: Vec<Item>,
}

/// Base-address assignment for a program's arrays and scalars.
///
/// Arrays are laid out sequentially from [`AddressMap::BASE`] with natural
/// 256-byte alignment. Power-of-two array sizes therefore land on identical
/// cache-set offsets — the allocation behaviour that produces the
/// cross-array conflict misses the paper measures (53–72 % of all misses);
/// the compiler's padding pass staggers them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMap {
    array_bases: Vec<u64>,
    scalar_base: u64,
    end: u64,
}

impl AddressMap {
    /// Base virtual address of the data segment.
    pub const BASE: u64 = 0x1000_0000;
    /// Alignment of each array's base address.
    pub const ALIGN: u64 = 256;

    /// Base address of an array.
    ///
    /// # Panics
    ///
    /// Panics if `array` was not declared by the mapped program.
    pub fn array_base(&self, array: ArrayId) -> Addr {
        Addr(self.array_bases[array.index()])
    }

    /// Address of a scalar slot (8 bytes each).
    pub fn scalar_addr(&self, scalar: ScalarId) -> Addr {
        Addr(self.scalar_base + scalar.index() as u64 * 8)
    }

    /// One past the highest assigned address.
    pub fn end(&self) -> Addr {
        Addr(self.end)
    }
}

impl Program {
    /// Computes the base-address assignment for this program.
    pub fn address_map(&self) -> AddressMap {
        let mut cursor = AddressMap::BASE;
        let mut array_bases = Vec::with_capacity(self.arrays.len());
        for a in &self.arrays {
            array_bases.push(cursor);
            let sz = a.size_bytes().max(1);
            cursor += sz.div_ceil(AddressMap::ALIGN) * AddressMap::ALIGN;
        }
        let scalar_base = cursor;
        cursor += (self.num_scalars as u64 * 8).div_ceil(AddressMap::ALIGN) * AddressMap::ALIGN;
        AddressMap { array_bases, scalar_base, end: cursor }
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found: unknown arrays, subscript
    /// arity mismatches, missing backing data for indexed/pointer access,
    /// non-positive dimensions, shadowed loop variables, duplicate loop ids.
    pub fn validate(&self) -> Result<(), ProgramError> {
        for (i, a) in self.arrays.iter().enumerate() {
            if a.dims.is_empty() || a.dims.iter().any(|&d| d <= 0) {
                return Err(ProgramError::BadDims(ArrayId(i as u32)));
            }
        }
        let mut seen_loops = vec![false; self.num_loops as usize];
        let mut path_vars: Vec<VarId> = Vec::new();
        self.validate_items(&self.items, &mut path_vars, &mut seen_loops)
    }

    fn validate_items(
        &self,
        items: &[Item],
        path_vars: &mut Vec<VarId>,
        seen_loops: &mut [bool],
    ) -> Result<(), ProgramError> {
        for item in items {
            match item {
                Item::Loop(l) => {
                    if path_vars.contains(&l.var) {
                        return Err(ProgramError::DuplicateVar(l.var));
                    }
                    match seen_loops.get_mut(l.id.index()) {
                        Some(seen) if !*seen => *seen = true,
                        _ => return Err(ProgramError::DuplicateLoop(l.id)),
                    }
                    path_vars.push(l.var);
                    self.validate_items(&l.body, path_vars, seen_loops)?;
                    path_vars.pop();
                }
                Item::Block(stmts) => {
                    for s in stmts {
                        for r in &s.refs {
                            self.validate_ref(r)?;
                        }
                    }
                }
                Item::Marker(_) => {}
            }
        }
        Ok(())
    }

    fn check_array(&self, a: ArrayId) -> Result<&ArrayDecl, ProgramError> {
        self.arrays.get(a.index()).ok_or(ProgramError::UnknownArray(a))
    }

    fn validate_ref(&self, r: &Ref) -> Result<(), ProgramError> {
        match &r.pattern {
            RefPattern::Scalar(_) => Ok(()),
            RefPattern::Array { array, subscripts } => {
                let decl = self.check_array(*array)?;
                if subscripts.len() != decl.dims.len() {
                    return Err(ProgramError::SubscriptArity {
                        array: *array,
                        got: subscripts.len(),
                        want: decl.dims.len(),
                    });
                }
                for s in subscripts {
                    if let Subscript::Indexed { index_array, .. } = s {
                        let idx = self.check_array(*index_array)?;
                        if idx.data.is_none() {
                            return Err(ProgramError::MissingData(*index_array));
                        }
                    }
                }
                Ok(())
            }
            RefPattern::Pointer { heap, next, .. } => {
                self.check_array(*heap)?;
                let n = self.check_array(*next)?;
                if n.data.is_none() {
                    return Err(ProgramError::MissingData(*next));
                }
                Ok(())
            }
            RefPattern::StructField { array, .. } => {
                self.check_array(*array)?;
                Ok(())
            }
        }
    }

    /// Calls `f` on every statement in the program, in program order.
    pub fn for_each_stmt(&self, mut f: impl FnMut(&Stmt)) {
        fn walk(items: &[Item], f: &mut impl FnMut(&Stmt)) {
            for item in items {
                match item {
                    Item::Loop(l) => walk(&l.body, f),
                    Item::Block(stmts) => stmts.iter().for_each(&mut *f),
                    Item::Marker(_) => {}
                }
            }
        }
        walk(&self.items, &mut f);
    }

    /// Calls `f` on every loop in the program, in pre-order.
    pub fn for_each_loop(&self, mut f: impl FnMut(&Loop)) {
        fn walk(items: &[Item], f: &mut impl FnMut(&Loop)) {
            for item in items {
                if let Item::Loop(l) = item {
                    f(l);
                    walk(&l.body, f);
                }
            }
        }
        walk(&self.items, &mut f);
    }

    /// Counts statements.
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        self.for_each_stmt(|_| n += 1);
        n
    }

    /// Counts loops.
    pub fn loop_count(&self) -> usize {
        let mut n = 0;
        self.for_each_loop(|_| n += 1);
        n
    }

    /// Counts assist markers.
    pub fn marker_count(&self) -> usize {
        fn walk(items: &[Item]) -> usize {
            items
                .iter()
                .map(|i| match i {
                    Item::Loop(l) => walk(&l.body),
                    Item::Marker(_) => 1,
                    Item::Block(_) => 0,
                })
                .sum()
        }
        walk(&self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr2(name: &str, n: i64, m: i64) -> ArrayDecl {
        ArrayDecl {
            name: name.into(),
            dims: vec![n, m],
            elem_size: 8,
            layout: Layout::RowMajor,
            data: None,
            pad_bytes: 0,
        }
    }

    #[test]
    fn layout_order() {
        assert_eq!(Layout::RowMajor.order(3), vec![0, 1, 2]);
        assert_eq!(Layout::ColMajor.order(3), vec![2, 1, 0]);
        assert_eq!(Layout::Permuted(vec![1, 0]).order(2), vec![1, 0]);
    }

    #[test]
    fn linearize_row_vs_col() {
        let mut a = arr2("A", 4, 8);
        assert_eq!(a.linearize(&[1, 2]), 10); // 1*8 + 2
        a.layout = Layout::ColMajor;
        assert_eq!(a.linearize(&[1, 2]), 9); // 2*4 + 1
    }

    #[test]
    fn linearize_clamps_out_of_bounds() {
        let a = arr2("A", 4, 8);
        assert_eq!(a.linearize(&[5, -1]), a.linearize(&[1, 7]));
    }

    #[test]
    fn trip_tile_tail() {
        let t = Trip::TileTail { total: 10, tile: 4, outer: VarId(0) };
        assert_eq!(t.eval(&[0]), 4);
        assert_eq!(t.eval(&[1]), 4);
        assert_eq!(t.eval(&[2]), 2);
        assert_eq!(t.eval(&[3]), 0);
        assert_eq!(t.max(), 4);
    }

    #[test]
    fn analyzability() {
        let affine = RefPattern::Array {
            array: ArrayId(0),
            subscripts: vec![Subscript::var(VarId(0)), Subscript::var(VarId(1))],
        };
        assert!(affine.is_analyzable());
        let indexed = RefPattern::Array {
            array: ArrayId(0),
            subscripts: vec![Subscript::Indexed {
                index_array: ArrayId(1),
                index: AffineExpr::var(VarId(0)),
                offset: 0,
            }],
        };
        assert!(!indexed.is_analyzable());
        assert!(RefPattern::Scalar(ScalarId(0)).is_analyzable());
        assert!(!RefPattern::Pointer { heap: ArrayId(0), next: ArrayId(1), field_offset: 0 }
            .is_analyzable());
    }

    #[test]
    fn address_map_aligns_and_separates() {
        let p = Program {
            name: "t".into(),
            arrays: vec![arr2("A", 4, 8), arr2("B", 100, 100)],
            num_vars: 0,
            num_scalars: 3,
            num_loops: 0,
            items: vec![],
        };
        let m = p.address_map();
        assert_eq!(m.array_base(ArrayId(0)).0 % AddressMap::ALIGN, 0);
        assert!(m.array_base(ArrayId(1)).0 >= m.array_base(ArrayId(0)).0 + 4 * 8 * 8);
        assert!(m.scalar_addr(ScalarId(2)).0 >= m.array_base(ArrayId(1)).0);
        assert!(m.end().0 > m.scalar_addr(ScalarId(2)).0);
    }

    #[test]
    fn validate_catches_arity() {
        let p = Program {
            name: "t".into(),
            arrays: vec![arr2("A", 4, 8)],
            num_vars: 1,
            num_scalars: 0,
            num_loops: 1,
            items: vec![Item::Loop(Loop {
                id: LoopId(0),
                var: VarId(0),
                trip: Trip::Const(4),
                body: vec![Item::Block(vec![Stmt::new(
                    vec![Ref::load(RefPattern::Array {
                        array: ArrayId(0),
                        subscripts: vec![Subscript::var(VarId(0))],
                    })],
                    1,
                    0,
                )])],
            })],
        };
        assert!(matches!(p.validate(), Err(ProgramError::SubscriptArity { .. })));
    }

    #[test]
    fn validate_catches_shadowed_var() {
        let inner = Loop { id: LoopId(1), var: VarId(0), trip: Trip::Const(2), body: vec![] };
        let p = Program {
            name: "t".into(),
            arrays: vec![],
            num_vars: 1,
            num_scalars: 0,
            num_loops: 2,
            items: vec![Item::Loop(Loop {
                id: LoopId(0),
                var: VarId(0),
                trip: Trip::Const(2),
                body: vec![Item::Loop(inner)],
            })],
        };
        assert_eq!(p.validate(), Err(ProgramError::DuplicateVar(VarId(0))));
    }

    #[test]
    fn counters() {
        let p = Program {
            name: "t".into(),
            arrays: vec![],
            num_vars: 1,
            num_scalars: 0,
            num_loops: 1,
            items: vec![
                Item::Marker(Marker::On),
                Item::Loop(Loop {
                    id: LoopId(0),
                    var: VarId(0),
                    trip: Trip::Const(2),
                    body: vec![Item::Block(vec![Stmt::default(), Stmt::default()])],
                }),
                Item::Marker(Marker::Off),
            ],
        };
        assert_eq!(p.stmt_count(), 2);
        assert_eq!(p.loop_count(), 1);
        assert_eq!(p.marker_count(), 2);
    }
}
