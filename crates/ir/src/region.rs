//! Region attribution: maps static sites back to the uniform regions a
//! region partition assigned them.
//!
//! The interpreter assigns one PC range ([`SITE_BYTES`] wide) per static
//! site — loop header/latch, statement, marker — in a deterministic
//! pre-order walk of the program tree. A [`RegionMap`] records, for each
//! site in that same walk order, which region owns it; [`crate::Interp`]
//! consults the map to stamp every [`crate::TraceOp`] it emits with a
//! [`RegionId`], and downstream probes bucket dynamic events by that id.
//!
//! Maps are produced either structurally (one region per top-level item, see
//! [`RegionMap::structural`]) or by the compiler's region partition, which
//! mirrors the marker-insertion granularity of the paper's Section 2.2
//! algorithm (see `selcache-compiler`).

use crate::ids::RegionId;
use crate::program::{Item, Program};
use crate::trace::site_index;

/// Per-site region assignment plus human-readable region labels.
///
/// Site order is the interpreter's PC-assignment walk: a loop contributes
/// one site (header/latch share it) followed by its body, a block one site
/// per statement, a marker one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMap {
    site_regions: Vec<RegionId>,
    labels: Vec<String>,
}

impl RegionMap {
    /// A trivial map: every top-level item of the program is its own region,
    /// labelled by kind. Useful when no compiler partition is available.
    pub fn structural(program: &Program) -> RegionMap {
        let mut b = RegionMapBuilder::new();
        for (k, item) in program.items.iter().enumerate() {
            match item {
                Item::Loop(l) => {
                    b.open(format!("item{k}:L{}", l.id.0));
                    b.sites(site_count(std::slice::from_ref(item)));
                }
                Item::Block(stmts) => {
                    b.open(format!("item{k}:stmts"));
                    b.sites(stmts.len());
                }
                Item::Marker(_) => b.pending_site(),
            }
        }
        b.finish()
    }

    /// Number of regions (labels).
    pub fn num_regions(&self) -> usize {
        self.labels.len()
    }

    /// Number of static sites covered.
    pub fn num_sites(&self) -> usize {
        self.site_regions.len()
    }

    /// Label of a region, or `"(outside)"` for [`RegionId::NONE`] / out of
    /// range ids.
    pub fn label(&self, region: RegionId) -> &str {
        self.labels.get(region.index()).map_or("(outside)", String::as_str)
    }

    /// All labels in region-id order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Region owning the given site index ([`RegionId::NONE`] if uncovered).
    pub fn region_of_site(&self, site: usize) -> RegionId {
        self.site_regions.get(site).copied().unwrap_or(RegionId::NONE)
    }

    /// Region owning the site containing the given PC.
    #[inline]
    pub fn region_of_pc(&self, pc: u64) -> RegionId {
        site_index(pc).map_or(RegionId::NONE, |s| self.region_of_site(s))
    }
}

/// Incremental [`RegionMap`] construction in site-walk order.
///
/// `open` starts a new region; subsequent `site`/`sites` calls assign sites
/// to it. `pending_site` records a site (typically an ON/OFF marker) that
/// belongs to the *next* region opened — the paper places markers
/// immediately before the region they control — falling back to the current
/// region if none follows.
#[derive(Debug, Default)]
pub struct RegionMapBuilder {
    site_regions: Vec<RegionId>,
    labels: Vec<String>,
    pending: Vec<usize>,
}

impl RegionMapBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new region with the given label and returns its id. Pending
    /// marker sites recorded since the last region are attributed to it.
    pub fn open(&mut self, label: impl Into<String>) -> RegionId {
        let id = RegionId(u32::try_from(self.labels.len()).expect("region count fits u32"));
        self.labels.push(label.into());
        for site in self.pending.drain(..) {
            self.site_regions[site] = id;
        }
        id
    }

    /// Assigns the next site in walk order to the current region.
    ///
    /// # Panics
    ///
    /// Panics if no region has been opened yet.
    pub fn site(&mut self) {
        assert!(!self.labels.is_empty(), "site() before any open()");
        let cur = RegionId(u32::try_from(self.labels.len() - 1).expect("region count fits u32"));
        self.site_regions.push(cur);
    }

    /// Assigns the next `n` sites to the current region.
    pub fn sites(&mut self, n: usize) {
        for _ in 0..n {
            self.site();
        }
    }

    /// Records the next site as pending: it is attributed to the next region
    /// opened (or to the current region at `finish` if none follows).
    pub fn pending_site(&mut self) {
        self.pending.push(self.site_regions.len());
        self.site_regions.push(RegionId::NONE);
    }

    /// Finishes the map. Trailing pending sites join the last opened region;
    /// if no region was ever opened they stay [`RegionId::NONE`].
    pub fn finish(mut self) -> RegionMap {
        if let Some(last) = self.labels.len().checked_sub(1) {
            let id = RegionId(u32::try_from(last).expect("region count fits u32"));
            for site in self.pending.drain(..) {
                self.site_regions[site] = id;
            }
        }
        RegionMap { site_regions: self.site_regions, labels: self.labels }
    }
}

/// Number of static sites a subtree occupies, mirroring the interpreter's
/// PC-assignment walk exactly: loop = 1 + body, block = one per statement,
/// marker = 1.
pub fn site_count(items: &[Item]) -> usize {
    let mut n = 0;
    for item in items {
        match item {
            Item::Loop(l) => n += 1 + site_count(&l.body),
            Item::Block(stmts) => n += stmts.len(),
            Item::Marker(_) => n += 1,
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::Subscript;
    use crate::interp::Interp;
    use crate::program::Marker;
    use crate::trace::TEXT_BASE;

    fn two_loop_program() -> Program {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[8], 8);
        b.marker(Marker::Off);
        b.loop_(8, |b, i| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i)]).fp(1);
            });
        });
        b.marker(Marker::On);
        b.loop_(8, |b, i| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(i)]).int(1);
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn site_count_mirrors_pc_walk() {
        let p = two_loop_program();
        // marker, loop, stmt, marker, loop, stmt = 6 sites.
        assert_eq!(site_count(&p.items), 6);
    }

    #[test]
    fn builder_attributes_pending_markers_forward() {
        let mut b = RegionMapBuilder::new();
        b.pending_site(); // marker before first region
        let r0 = b.open("first");
        b.sites(2);
        b.pending_site(); // marker before second region
        let r1 = b.open("second");
        b.sites(2);
        let map = b.finish();
        assert_eq!(map.num_sites(), 6);
        assert_eq!(map.region_of_site(0), r0);
        assert_eq!(map.region_of_site(3), r1);
        assert_eq!(map.region_of_pc(TEXT_BASE + 64), r0);
        assert_eq!(map.label(r1), "second");
        assert_eq!(map.label(RegionId::NONE), "(outside)");
    }

    #[test]
    fn trailing_pending_site_joins_last_region() {
        let mut b = RegionMapBuilder::new();
        let r0 = b.open("only");
        b.site();
        b.pending_site();
        let map = b.finish();
        assert_eq!(map.region_of_site(1), r0);
    }

    #[test]
    fn structural_map_covers_every_emitted_pc() {
        let p = two_loop_program();
        let map = RegionMap::structural(&p);
        assert_eq!(map.num_sites(), site_count(&p.items));
        for op in Interp::with_regions(&p, &map) {
            assert!(!op.region.is_none(), "op at {:#x} has no region", op.pc);
        }
    }

    #[test]
    fn out_of_range_site_is_none() {
        let map = RegionMap::structural(&two_loop_program());
        assert_eq!(map.region_of_site(1000), RegionId::NONE);
        assert_eq!(map.region_of_pc(0), RegionId::NONE);
    }
}
