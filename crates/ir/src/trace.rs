//! Dynamic-trace representation: the instruction stream consumed by the
//! processor model.

use crate::ids::{Addr, RegionId};
use std::fmt;

/// Base virtual address of the synthetic text segment.
pub const TEXT_BASE: u64 = 0x0040_0000;

/// Bytes reserved per static statement / loop-latch site in the synthetic
/// text segment (16 four-byte instruction slots).
pub const SITE_BYTES: u64 = 64;

/// The static-site index of a program counter, or `None` for PCs below the
/// text segment. Sites are numbered in the deterministic pre-order walk the
/// interpreter uses to assign PCs, so `site_index` is the key that joins a
/// dynamic event back to its static statement (and, through
/// [`crate::RegionMap`], to its region).
#[inline]
pub fn site_index(pc: u64) -> Option<usize> {
    pc.checked_sub(TEXT_BASE).map(|off| (off / SITE_BYTES) as usize)
}

/// The operation class of one dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Integer ALU operation (1-cycle latency class).
    IntAlu,
    /// Floating-point operation (multi-cycle latency class).
    FpAlu,
    /// Load from the given data address.
    Load(Addr),
    /// Store to the given data address.
    Store(Addr),
    /// Conditional branch with its resolved direction.
    Branch {
        /// True if the branch is taken.
        taken: bool,
    },
    /// Activate the hardware cache assist (the paper's ON instruction).
    AssistOn,
    /// Deactivate the hardware cache assist (the paper's OFF instruction).
    AssistOff,
}

impl OpKind {
    /// True for loads and stores.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self, OpKind::Load(_) | OpKind::Store(_))
    }

    /// The data address, for memory operations.
    #[inline]
    pub fn addr(&self) -> Option<Addr> {
        match self {
            OpKind::Load(a) | OpKind::Store(a) => Some(*a),
            _ => None,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::IntAlu => write!(f, "alu"),
            OpKind::FpAlu => write!(f, "fpu"),
            OpKind::Load(a) => write!(f, "ld {a}"),
            OpKind::Store(a) => write!(f, "st {a}"),
            OpKind::Branch { taken } => write!(f, "br {}", if *taken { "T" } else { "N" }),
            OpKind::AssistOn => write!(f, "assist-on"),
            OpKind::AssistOff => write!(f, "assist-off"),
        }
    }
}

/// One dynamic instruction on the committed path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceOp {
    /// Synthetic program counter (stable across executions of the same static
    /// site, so branch predictors and instruction caches behave naturally).
    pub pc: u64,
    /// Operation class.
    pub kind: OpKind,
    /// Dependence distance: this op reads the result of the op emitted `dep`
    /// positions earlier (0 = no register dependence).
    pub dep: u16,
    /// Uniform region that issued this op ([`RegionId::NONE`] when the trace
    /// was produced without a region map).
    pub region: RegionId,
}

impl TraceOp {
    /// Creates an op with no dependence.
    pub fn new(pc: u64, kind: OpKind) -> Self {
        TraceOp { pc, kind, dep: 0, region: RegionId::NONE }
    }

    /// Creates an op depending on the op `dep` positions earlier.
    pub fn with_dep(pc: u64, kind: OpKind, dep: u16) -> Self {
        TraceOp { pc, kind, dep, region: RegionId::NONE }
    }

    /// Returns the op tagged with the given region.
    pub fn with_region(mut self, region: RegionId) -> Self {
        self.region = region;
        self
    }
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: {}", self.pc, self.kind)?;
        if self.dep != 0 {
            write!(f, " (dep -{})", self.dep)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_classification() {
        assert!(OpKind::Load(Addr(0)).is_mem());
        assert!(OpKind::Store(Addr(4)).is_mem());
        assert!(!OpKind::IntAlu.is_mem());
        assert_eq!(OpKind::Store(Addr(4)).addr(), Some(Addr(4)));
        assert_eq!(OpKind::Branch { taken: true }.addr(), None);
    }

    #[test]
    fn display() {
        let op = TraceOp::with_dep(0x400000, OpKind::Load(Addr(0x1000)), 2);
        assert_eq!(op.to_string(), "0x400000: ld 0x1000 (dep -2)");
        assert_eq!(TraceOp::new(4, OpKind::Branch { taken: false }).to_string(), "0x4: br N");
    }

    #[test]
    fn site_index_maps_text_segment() {
        assert_eq!(site_index(TEXT_BASE), Some(0));
        assert_eq!(site_index(TEXT_BASE + SITE_BYTES - 1), Some(0));
        assert_eq!(site_index(TEXT_BASE + 3 * SITE_BYTES + 8), Some(3));
        assert_eq!(site_index(0), None);
    }

    #[test]
    fn region_tagging() {
        let op = TraceOp::new(TEXT_BASE, OpKind::IntAlu);
        assert!(op.region.is_none());
        assert_eq!(op.with_region(RegionId(2)).region, RegionId(2));
    }
}
