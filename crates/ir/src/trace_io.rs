//! Compact binary trace serialization.
//!
//! Traces can be captured once and replayed into many simulator
//! configurations (the trace-driven methodology SimpleScalar's EIO files
//! support). The format is a delta/varint encoding: one tag byte per op,
//! PCs and addresses as zig-zag deltas against the previous value of the
//! same kind — long runs of sequential accesses compress to ~2 bytes/op.

use crate::ids::{Addr, RegionId};
use crate::trace::{OpKind, TraceOp};
use std::io::{self, Read, Write};

const TAG_INT: u8 = 0;
const TAG_FP: u8 = 1;
const TAG_LOAD: u8 = 2;
const TAG_STORE: u8 = 3;
const TAG_BR_TAKEN: u8 = 4;
const TAG_BR_NOT: u8 = 5;
const TAG_ON: u8 = 6;
const TAG_OFF: u8 = 7;

/// Magic header identifying the format.
pub const TRACE_MAGIC: &[u8; 8] = b"SELCTRC1";

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint(w: &mut impl Write, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint(r: &mut impl Read) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8];
        r.read_exact(&mut byte)?;
        v |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint too long"));
        }
    }
}

/// Streaming trace writer.
///
/// ```
/// use selcache_ir::{TraceWriter, TraceReader, TraceOp, OpKind, Addr};
///
/// let mut buf = Vec::new();
/// let mut w = TraceWriter::new(&mut buf)?;
/// w.write(&TraceOp::new(0x40_0000, OpKind::Load(Addr(0x1000))))?;
/// w.write(&TraceOp::with_dep(0x40_0004, OpKind::FpAlu, 1))?;
/// w.finish()?;
///
/// let ops: Vec<TraceOp> = TraceReader::new(&buf[..])?.collect::<Result<_, _>>()?;
/// assert_eq!(ops.len(), 2);
/// assert_eq!(ops[0].kind, OpKind::Load(Addr(0x1000)));
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    last_pc: u64,
    last_addr: u64,
    count: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(TRACE_MAGIC)?;
        Ok(TraceWriter { out, last_pc: 0, last_addr: 0, count: 0 })
    }

    /// Appends one op.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, op: &TraceOp) -> io::Result<()> {
        let (tag, addr) = match op.kind {
            OpKind::IntAlu => (TAG_INT, None),
            OpKind::FpAlu => (TAG_FP, None),
            OpKind::Load(a) => (TAG_LOAD, Some(a.0)),
            OpKind::Store(a) => (TAG_STORE, Some(a.0)),
            OpKind::Branch { taken: true } => (TAG_BR_TAKEN, None),
            OpKind::Branch { taken: false } => (TAG_BR_NOT, None),
            OpKind::AssistOn => (TAG_ON, None),
            OpKind::AssistOff => (TAG_OFF, None),
        };
        self.out.write_all(&[tag])?;
        write_varint(&mut self.out, zigzag(op.pc as i64 - self.last_pc as i64))?;
        self.last_pc = op.pc;
        write_varint(&mut self.out, u64::from(op.dep))?;
        if let Some(a) = addr {
            write_varint(&mut self.out, zigzag(a as i64 - self.last_addr as i64))?;
            self.last_addr = a;
        }
        self.count += 1;
        Ok(())
    }

    /// Ops written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the flush.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming trace reader; iterates `io::Result<TraceOp>`.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    last_pc: u64,
    last_addr: u64,
}

impl<R: Read> TraceReader<R> {
    /// Creates a reader, checking the header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a bad magic header.
    pub fn new(mut input: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if &magic != TRACE_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a selcache trace"));
        }
        Ok(TraceReader { input, last_pc: 0, last_addr: 0 })
    }

    fn read_op(&mut self) -> io::Result<Option<TraceOp>> {
        let mut tag = [0u8];
        if self.input.read(&mut tag)? == 0 {
            return Ok(None);
        }
        let pc_delta = unzigzag(read_varint(&mut self.input)?);
        let pc = (self.last_pc as i64 + pc_delta) as u64;
        self.last_pc = pc;
        let dep = read_varint(&mut self.input)? as u16;
        let kind = match tag[0] {
            TAG_INT => OpKind::IntAlu,
            TAG_FP => OpKind::FpAlu,
            TAG_LOAD | TAG_STORE => {
                let delta = unzigzag(read_varint(&mut self.input)?);
                let a = (self.last_addr as i64 + delta) as u64;
                self.last_addr = a;
                if tag[0] == TAG_LOAD {
                    OpKind::Load(Addr(a))
                } else {
                    OpKind::Store(Addr(a))
                }
            }
            TAG_BR_TAKEN => OpKind::Branch { taken: true },
            TAG_BR_NOT => OpKind::Branch { taken: false },
            TAG_ON => OpKind::AssistOn,
            TAG_OFF => OpKind::AssistOff,
            t => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown op tag {t}"),
                ))
            }
        };
        Ok(Some(TraceOp { pc, kind, dep, region: RegionId::NONE }))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<TraceOp>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_op().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::Subscript;
    use crate::interp::Interp;

    fn roundtrip(ops: &[TraceOp]) -> Vec<TraceOp> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        for op in ops {
            w.write(op).unwrap();
        }
        assert_eq!(w.count(), ops.len() as u64);
        w.finish().unwrap();
        TraceReader::new(&buf[..]).unwrap().map(|r| r.unwrap()).collect()
    }

    #[test]
    fn roundtrip_all_op_kinds() {
        let ops = vec![
            TraceOp::new(0x40_0000, OpKind::IntAlu),
            TraceOp::with_dep(0x40_0004, OpKind::FpAlu, 1),
            TraceOp::new(0x40_0008, OpKind::Load(Addr(0x1234_5678))),
            TraceOp::with_dep(0x40_000C, OpKind::Store(Addr(0x1234_5680)), 3),
            TraceOp::new(0x40_0010, OpKind::Branch { taken: true }),
            TraceOp::new(0x40_0010, OpKind::Branch { taken: false }),
            TraceOp::new(0x40_0014, OpKind::AssistOn),
            TraceOp::new(0x40_0018, OpKind::AssistOff),
        ];
        assert_eq!(roundtrip(&ops), ops);
    }

    #[test]
    fn roundtrip_full_program_trace() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", &[128, 16], 8);
        b.nest2(128, 16, |b, i, j| {
            b.stmt(|s| {
                s.read(a, vec![Subscript::var(j), Subscript::var(i)])
                    .fp(1)
                    .write(a, vec![Subscript::var(i), Subscript::var(j)]);
            });
        });
        let p = b.finish().unwrap();
        let ops: Vec<TraceOp> = Interp::new(&p).collect();
        assert_eq!(roundtrip(&ops), ops);
    }

    #[test]
    fn sequential_trace_compresses_well() {
        let ops: Vec<TraceOp> = (0..10_000u64)
            .map(|i| TraceOp::new(0x40_0000, OpKind::Load(Addr(0x1000_0000 + i * 8))))
            .collect();
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        for op in &ops {
            w.write(op).unwrap();
        }
        w.finish().unwrap();
        assert!(
            buf.len() < ops.len() * 5,
            "sequential trace should compress: {} bytes for {} ops",
            buf.len(),
            ops.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTTRACE".to_vec();
        assert!(TraceReader::new(&buf[..]).is_err());
    }

    #[test]
    fn truncated_stream_errors() {
        let ops = [TraceOp::new(0x40_0000, OpKind::Load(Addr(0x1000)))];
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        w.write(&ops[0]).unwrap();
        w.finish().unwrap();
        buf.truncate(buf.len() - 1);
        let results: Vec<_> = TraceReader::new(&buf[..]).unwrap().collect();
        assert!(results.last().unwrap().is_err());
    }
}
