//! Integration tests for trace generation: address math across layouts,
//! dependence encoding, PC stability, and marker placement.

use selcache_ir::{AffineExpr, Interp, Layout, OpKind, ProgramBuilder, Subscript, TEXT_BASE};

#[test]
fn row_major_2d_addresses_are_exact() {
    let mut b = ProgramBuilder::new("t");
    let a = b.array("A", &[10, 20], 8);
    b.nest2(3, 4, |b, i, j| {
        b.stmt(|s| {
            s.read(a, vec![Subscript::var(i), Subscript::var(j)]);
        });
    });
    let p = b.finish().unwrap();
    let base = p.address_map().array_base(selcache_ir::ArrayId(0)).0;
    let addrs: Vec<u64> = Interp::new(&p).filter_map(|o| o.kind.addr().map(|a| a.0)).collect();
    let mut expect = Vec::new();
    for i in 0..3u64 {
        for j in 0..4u64 {
            expect.push(base + (i * 20 + j) * 8);
        }
    }
    assert_eq!(addrs, expect);
}

#[test]
fn permuted_3d_layout_addresses_are_exact() {
    let mut b = ProgramBuilder::new("t");
    let a = b.array("A", &[4, 5, 6], 8);
    b.nest3(2, 2, 2, |b, i, j, k| {
        b.stmt(|s| {
            s.read(a, vec![Subscript::var(i), Subscript::var(j), Subscript::var(k)]);
        });
    });
    let mut p = b.finish().unwrap();
    // Store dimension 0 fastest: perm[k] = storage position of source dim k.
    p.arrays[0].layout = Layout::Permuted(vec![2, 0, 1]);
    let base = p.address_map().array_base(selcache_ir::ArrayId(0)).0;
    let addrs: Vec<u64> = Interp::new(&p).filter_map(|o| o.kind.addr().map(|a| a.0)).collect();
    // Storage order: position 0 = dim 1 (extent 5), position 1 = dim 2
    // (extent 6), position 2 = dim 0 (extent 4, fastest).
    let lin = |i: u64, j: u64, k: u64| ((j * 6 + k) * 4 + i) * 8;
    let mut expect = Vec::new();
    for i in 0..2u64 {
        for j in 0..2u64 {
            for k in 0..2u64 {
                expect.push(base + lin(i, j, k));
            }
        }
    }
    assert_eq!(addrs, expect);
}

#[test]
fn negative_coefficients_walk_backwards() {
    let mut b = ProgramBuilder::new("t");
    let a = b.array("A", &[16], 8);
    b.loop_(4, |b, i| {
        b.stmt(|s| {
            s.read(a, vec![Subscript::linear(i, -1, 10)]);
        });
    });
    let p = b.finish().unwrap();
    let addrs: Vec<u64> = Interp::new(&p).filter_map(|o| o.kind.addr().map(|a| a.0)).collect();
    for w in addrs.windows(2) {
        assert_eq!(w[0] - w[1], 8, "addresses must descend by 8");
    }
}

#[test]
fn gather_dependence_chain_is_encoded() {
    let mut b = ProgramBuilder::new("t");
    let x = b.array("X", &[64], 8);
    let ip = b.data_array("IP", (0..64).collect(), 4);
    b.loop_(8, |b, i| {
        b.stmt(|s| {
            s.gather(x, ip, AffineExpr::var(i), 0).fp(2);
        });
    });
    let p = b.finish().unwrap();
    let ops: Vec<_> = Interp::new(&p).collect();
    // Per iteration: index load (dep 0), gather load (dep 1), fp (dep 1 on
    // gather), fp (dep 1), incr, branch.
    let gathers: Vec<_> =
        ops.iter().enumerate().filter(|(_, o)| matches!(o.kind, OpKind::Load(_))).collect();
    assert_eq!(gathers.len(), 16); // 8 index + 8 data
    for pair in gathers.chunks(2) {
        assert_eq!(pair[0].1.dep, 0, "index load independent");
        assert_eq!(pair[1].1.dep, 1, "gather depends on index load");
        assert_eq!(pair[1].0 - pair[0].0, 1, "adjacent in trace");
    }
}

#[test]
fn pcs_live_in_text_segment_and_do_not_collide_across_sites() {
    let mut b = ProgramBuilder::new("t");
    let a = b.array("A", &[8], 8);
    b.loop_(2, |b, i| {
        b.stmt(|s| {
            s.read(a, vec![Subscript::var(i)]);
        });
        b.stmt(|s| {
            s.int(1);
        });
    });
    b.loop_(2, |b, _| {
        b.stmt(|s| {
            s.int(1);
        });
    });
    let p = b.finish().unwrap();
    // A pc always maps to the same op *class* (stable static sites);
    // operand addresses and branch directions naturally vary per execution.
    fn class(k: &OpKind) -> u8 {
        match k {
            OpKind::IntAlu => 0,
            OpKind::FpAlu => 1,
            OpKind::Load(_) => 2,
            OpKind::Store(_) => 3,
            OpKind::Branch { .. } => 4,
            OpKind::AssistOn => 5,
            OpKind::AssistOff => 6,
        }
    }
    let mut per_pc_class: std::collections::HashMap<u64, u8> = Default::default();
    for op in Interp::new(&p) {
        assert!(op.pc >= TEXT_BASE, "pc {:#x} below text base", op.pc);
        let c = class(&op.kind);
        let prev = per_pc_class.insert(op.pc, c);
        if let Some(k) = prev {
            assert_eq!(k, c, "pc {:#x} reused for a different op class", op.pc);
        }
    }
}

#[test]
fn stores_follow_loads_within_statement() {
    let mut b = ProgramBuilder::new("t");
    let a = b.array("A", &[8], 8);
    let c = b.array("C", &[8], 8);
    b.loop_(4, |b, i| {
        b.stmt(|s| {
            s.write(c, vec![Subscript::var(i)]) // listed first…
                .read(a, vec![Subscript::var(i)]); // …but loads are emitted first
        });
    });
    let p = b.finish().unwrap();
    let kinds: Vec<bool> = Interp::new(&p)
        .filter_map(|o| match o.kind {
            OpKind::Load(_) => Some(false),
            OpKind::Store(_) => Some(true),
            _ => None,
        })
        .collect();
    for pair in kinds.chunks(2) {
        assert_eq!(pair, &[false, true], "load then store per iteration");
    }
}

#[test]
fn modulo_and_product_subscripts_stay_in_bounds() {
    let mut b = ProgramBuilder::new("t");
    let a = b.array("A", &[32], 8);
    let d = b.array("D", &[16], 8);
    b.nest2(8, 8, |b, i, j| {
        b.stmt(|s| {
            s.read(a, vec![Subscript::Modulo(i, 32)]).read(d, vec![Subscript::Product(i, j)]);
        });
    });
    let p = b.finish().unwrap();
    let map = p.address_map();
    for op in Interp::new(&p) {
        if let Some(addr) = op.kind.addr() {
            assert!(addr.0 < map.end().0);
        }
    }
}
