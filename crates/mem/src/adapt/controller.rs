//! The per-region explore/exploit policy state machine.

use selcache_ir::RegionId;

/// The assist mechanisms the controller arbitrates between, in trial (and
/// tie-break) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AssistChoice {
    /// No assist: plain L1 allocation.
    Off,
    /// MAT/SLDT cache bypassing (Johnson & Hwu).
    Bypass,
    /// Victim caching (Jouppi).
    Victim,
}

impl AssistChoice {
    /// Every choice, in trial order (also the tie-break order: on equal
    /// scores the earlier entry wins, so `Off` is preferred when an
    /// assist buys nothing).
    pub const ALL: [AssistChoice; 3] =
        [AssistChoice::Off, AssistChoice::Bypass, AssistChoice::Victim];

    /// Lowercase display name (report and JSON vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            AssistChoice::Off => "off",
            AssistChoice::Bypass => "bypass",
            AssistChoice::Victim => "victim",
        }
    }

    fn index(self) -> usize {
        match self {
            AssistChoice::Off => 0,
            AssistChoice::Bypass => 1,
            AssistChoice::Victim => 2,
        }
    }
}

/// Tuning knobs of the online controller. Part of the execution identity
/// (canonically serialized), so two runs differing in any field never
/// alias in the result store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Accesses to one region that make up one decision interval.
    pub interval_accesses: u32,
    /// Intervals each candidate is trialed for during explore.
    pub trial_intervals: u32,
    /// Exploit tolerance: an interval is "bad" when its misses exceed the
    /// locked-in baseline by more than this percentage.
    pub hysteresis_pct: u32,
    /// Consecutive bad intervals before the controller re-explores.
    pub hysteresis_intervals: u32,
    /// Distinct regions tracked; later regions share the overflow slot
    /// (which also serves `RegionId::NONE`).
    pub max_regions: usize,
    /// Enable the regular/irregular L1 way duel ([`super::WayDuel`]).
    pub way_partition: bool,
    /// Way-duel floor: neither side ever shrinks below this many ways.
    pub min_ways: u32,
    /// L1d accesses per way-duel adjustment interval.
    pub duel_accesses: u32,
}

impl Default for ControllerConfig {
    fn default() -> ControllerConfig {
        ControllerConfig {
            interval_accesses: 512,
            trial_intervals: 2,
            hysteresis_pct: 25,
            hysteresis_intervals: 2,
            max_regions: 64,
            way_partition: true,
            min_ways: 1,
            duel_accesses: 4096,
        }
    }
}

/// One interval-boundary verdict: the policy applied from here on, and
/// whether that changed the previously applied policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The policy in force for the region after this boundary.
    pub choice: AssistChoice,
    /// True when the boundary changed the applied policy.
    pub switched: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Trialing `choice` (the candidate under test); `scores` accumulates
    /// per-candidate interval misses.
    Explore,
    /// Locked onto `choice`; watching interval misses against `baseline`.
    Exploit,
}

#[derive(Debug, Clone, PartialEq)]
struct RegionSlot {
    phase: Phase,
    /// The policy currently applied (the trial candidate during explore).
    choice: AssistChoice,
    /// Accesses seen in the current interval.
    accesses: u32,
    /// Misses seen in the current interval.
    misses: u64,
    /// Accumulated trial misses per candidate (explore only).
    scores: [u64; 3],
    /// Intervals completed for the current explore candidate.
    intervals_done: u32,
    /// Per-interval miss baseline of the locked-in winner (exploit only).
    baseline: u64,
    /// Consecutive exploit intervals over the hysteresis bound.
    bad_intervals: u32,
}

impl RegionSlot {
    fn new() -> RegionSlot {
        RegionSlot {
            phase: Phase::Explore,
            choice: AssistChoice::Off,
            accesses: 0,
            misses: 0,
            scores: [0; 3],
            intervals_done: 0,
            baseline: 0,
            bad_intervals: 0,
        }
    }
}

/// The online per-region policy controller.
///
/// Feed it one [`record_access`](AdaptController::record_access) per L1d
/// data access and read the applied policy back with
/// [`policy`](AdaptController::policy) *before* the access is served (the
/// decision for an interval is made at its boundary, so the policy a
/// lookup sees never depends on that lookup's own outcome).
///
/// ```
/// use selcache_mem::{AdaptController, AssistChoice, ControllerConfig};
/// use selcache_ir::RegionId;
///
/// let cfg = ControllerConfig { interval_accesses: 4, trial_intervals: 1, ..Default::default() };
/// let mut ctl = AdaptController::new(cfg);
/// let r = RegionId(0);
/// assert_eq!(ctl.policy(r), AssistChoice::Off); // explore starts at Off
/// for _ in 0..4 {
///     ctl.record_access(r, true); // every access misses
/// }
/// assert_eq!(ctl.policy(r), AssistChoice::Bypass); // next trial candidate
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptController {
    cfg: ControllerConfig,
    /// `max_regions` region slots plus one trailing overflow/NONE slot.
    slots: Vec<RegionSlot>,
    switches: u64,
}

impl AdaptController {
    /// A fresh controller: every region starts exploring at
    /// [`AssistChoice::Off`].
    pub fn new(cfg: ControllerConfig) -> AdaptController {
        let slots = vec![RegionSlot::new(); cfg.max_regions + 1];
        AdaptController { cfg, slots, switches: 0 }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Total policy switches applied so far (across all regions,
    /// including explore-phase candidate rotations — each is a real
    /// policy change the hardware acts on).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    fn slot_index(&self, region: RegionId) -> usize {
        let overflow = self.slots.len() - 1;
        if region.is_none() {
            overflow
        } else {
            region.index().min(overflow)
        }
    }

    /// The policy currently in force for `region`.
    pub fn policy(&self, region: RegionId) -> AssistChoice {
        self.slots[self.slot_index(region)].choice
    }

    /// Records one L1d access of `region` and its miss outcome. Returns a
    /// [`Decision`] at each interval boundary (and `None` inside an
    /// interval).
    pub fn record_access(&mut self, region: RegionId, missed: bool) -> Option<Decision> {
        let interval = self.cfg.interval_accesses.max(1);
        let idx = self.slot_index(region);
        let slot = &mut self.slots[idx];
        slot.accesses += 1;
        slot.misses += u64::from(missed);
        if slot.accesses < interval {
            return None;
        }
        let interval_misses = slot.misses;
        slot.accesses = 0;
        slot.misses = 0;
        let prev = slot.choice;
        match slot.phase {
            Phase::Explore => {
                slot.scores[slot.choice.index()] += interval_misses;
                slot.intervals_done += 1;
                if slot.intervals_done >= self.cfg.trial_intervals.max(1) {
                    slot.intervals_done = 0;
                    match slot.choice {
                        AssistChoice::Off => slot.choice = AssistChoice::Bypass,
                        AssistChoice::Bypass => slot.choice = AssistChoice::Victim,
                        AssistChoice::Victim => {
                            // All candidates trialed: lock in the argmin
                            // (ties favor the earlier candidate, i.e. Off).
                            let winner = AssistChoice::ALL
                                .into_iter()
                                .min_by_key(|c| (slot.scores[c.index()], c.index()))
                                .expect("ALL is non-empty");
                            slot.baseline = slot.scores[winner.index()]
                                / u64::from(self.cfg.trial_intervals.max(1));
                            slot.scores = [0; 3];
                            slot.bad_intervals = 0;
                            slot.choice = winner;
                            slot.phase = Phase::Exploit;
                        }
                    }
                }
            }
            Phase::Exploit => {
                let bound =
                    slot.baseline + slot.baseline * u64::from(self.cfg.hysteresis_pct) / 100;
                if interval_misses > bound {
                    slot.bad_intervals += 1;
                } else {
                    slot.bad_intervals = 0;
                }
                if slot.bad_intervals >= self.cfg.hysteresis_intervals.max(1) {
                    // The locked-in policy stopped paying: re-explore from
                    // the top of the candidate list.
                    slot.phase = Phase::Explore;
                    slot.choice = AssistChoice::Off;
                    slot.intervals_done = 0;
                    slot.bad_intervals = 0;
                }
            }
        }
        let switched = slot.choice != prev;
        if switched {
            self.switches += 1;
        }
        Some(Decision { choice: slot.choice, switched })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ControllerConfig {
        ControllerConfig {
            interval_accesses: 4,
            trial_intervals: 1,
            hysteresis_pct: 25,
            hysteresis_intervals: 2,
            ..Default::default()
        }
    }

    /// Drives `intervals` whole intervals where `miss_of(i)` gives the
    /// miss outcome of access `i` within each interval.
    fn drive(
        ctl: &mut AdaptController,
        region: RegionId,
        intervals: u32,
        misses_per_interval: u32,
    ) {
        let per = ctl.cfg.interval_accesses;
        for _ in 0..intervals {
            for i in 0..per {
                ctl.record_access(region, i < misses_per_interval);
            }
        }
    }

    #[test]
    fn explore_rotates_candidates_in_order() {
        let mut ctl = AdaptController::new(tiny_cfg());
        let r = RegionId(0);
        assert_eq!(ctl.policy(r), AssistChoice::Off);
        drive(&mut ctl, r, 1, 4);
        assert_eq!(ctl.policy(r), AssistChoice::Bypass);
        drive(&mut ctl, r, 1, 4);
        assert_eq!(ctl.policy(r), AssistChoice::Victim);
        assert_eq!(ctl.switches(), 2);
    }

    #[test]
    fn converges_on_the_strictly_better_candidate() {
        // Synthetic region where victim strictly beats bypass (and off):
        // off misses 4/4, bypass 3/4, victim 1/4 per interval. After one
        // explore sweep the controller must lock in Victim, and with the
        // victim's miss level sustained it must stay locked in.
        let mut ctl = AdaptController::new(tiny_cfg());
        let r = RegionId(2);
        drive(&mut ctl, r, 1, 4); // Off trial
        drive(&mut ctl, r, 1, 3); // Bypass trial
        drive(&mut ctl, r, 1, 1); // Victim trial -> lock-in
        assert_eq!(ctl.policy(r), AssistChoice::Victim);
        let switches_at_lock_in = ctl.switches();
        drive(&mut ctl, r, 20, 1); // sustained at baseline: no churn
        assert_eq!(ctl.policy(r), AssistChoice::Victim);
        assert_eq!(ctl.switches(), switches_at_lock_in);
    }

    #[test]
    fn ties_prefer_off() {
        let mut ctl = AdaptController::new(tiny_cfg());
        let r = RegionId(0);
        drive(&mut ctl, r, 3, 2); // all three trials identical
        assert_eq!(ctl.policy(r), AssistChoice::Off);
    }

    #[test]
    fn hysteresis_tolerates_one_bad_interval_then_reexplores() {
        let mut ctl = AdaptController::new(tiny_cfg());
        let r = RegionId(1);
        drive(&mut ctl, r, 1, 4);
        drive(&mut ctl, r, 1, 3);
        drive(&mut ctl, r, 1, 1); // locks in Victim, baseline 1
        assert_eq!(ctl.policy(r), AssistChoice::Victim);
        drive(&mut ctl, r, 1, 4); // bad interval #1: tolerated
        assert_eq!(ctl.policy(r), AssistChoice::Victim);
        drive(&mut ctl, r, 1, 1); // back under the bound: counter resets
        drive(&mut ctl, r, 1, 4); // bad again, but not consecutive
        assert_eq!(ctl.policy(r), AssistChoice::Victim);
        drive(&mut ctl, r, 1, 4); // second consecutive bad -> re-explore
        assert_eq!(ctl.policy(r), AssistChoice::Off);
    }

    #[test]
    fn regions_are_independent_and_overflow_shares_a_slot() {
        let cfg = ControllerConfig { max_regions: 2, ..tiny_cfg() };
        let mut ctl = AdaptController::new(cfg);
        drive(&mut ctl, RegionId(0), 1, 4);
        assert_eq!(ctl.policy(RegionId(0)), AssistChoice::Bypass);
        assert_eq!(ctl.policy(RegionId(1)), AssistChoice::Off);
        // Region 5 and NONE are past max_regions: both land in the
        // overflow slot and observe the same state.
        drive(&mut ctl, RegionId(5), 1, 4);
        assert_eq!(ctl.policy(RegionId(5)), ctl.policy(RegionId::NONE));
        assert_eq!(ctl.policy(RegionId(5)), AssistChoice::Bypass);
    }

    #[test]
    fn decisions_fire_exactly_at_interval_boundaries() {
        let mut ctl = AdaptController::new(tiny_cfg());
        let r = RegionId(0);
        for i in 1..=12 {
            let d = ctl.record_access(r, true);
            assert_eq!(d.is_some(), i % 4 == 0, "access {i}");
            if let Some(d) = d {
                assert_eq!(d.choice, ctl.policy(r));
            }
        }
    }
}
