//! Online per-region assist controller (`selcache-adapt`).
//!
//! The paper decides assist regions *statically*: the compiler marks each
//! uniform region ON or OFF and the choice never changes at run time. This
//! module is the runtime-adaptive alternative — a hardware controller
//! that, per [`RegionId`](selcache_ir::RegionId), chooses among
//! {off, bypass, victim} from interval-granular miss feedback, plus an
//! `evolveNaive`-style way duel that partitions the L1 between regular
//! and irregular regions.
//!
//! Two cooperating pieces:
//!
//! - [`AdaptController`] — one explore/exploit state machine per region.
//!   *Explore* trials each [`AssistChoice`] for a fixed number of
//!   intervals and locks in the one with the fewest misses; *exploit*
//!   watches the locked-in choice against its own trial baseline and
//!   re-explores after a configurable number of consecutive bad
//!   intervals (hysteresis, so one noisy interval cannot thrash the
//!   policy).
//! - [`WayDuel`] — a set-dueling-style counter pair that shifts one L1
//!   way per duel interval toward whichever side (assist-on "irregular"
//!   regions vs. assist-off "regular" regions) missed more, never
//!   shrinking a side below `min_ways`.
//!
//! Everything here is deterministic: no wall clock, no randomness, and
//! ties break toward the lower-numbered choice — so adaptive runs are
//! bit-reproducible and thread-count-invariant like every other result
//! in the workspace.

mod controller;
mod partition;

pub use controller::{AdaptController, AssistChoice, ControllerConfig, Decision};
pub use partition::WayDuel;
