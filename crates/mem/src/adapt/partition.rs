//! Adaptive L1 way-partitioning between regular and irregular regions.

/// An `evolveNaive`-style way duel: the L1's ways are split into a
/// *regular* share (regions currently running assist-off) and an
/// *irregular* share (regions under an active assist). Each duel interval
/// the side that missed more takes one way from the other — provided the
/// loser keeps at least `min_ways` — so a phase shift in either class of
/// traffic re-balances the cache within a few intervals.
///
/// ```
/// use selcache_mem::WayDuel;
///
/// let mut duel = WayDuel::new(4, 1, 4);
/// assert_eq!(duel.side_quota(true), 2); // starts at an even split
/// for _ in 0..4 {
///     duel.record(true, true); // the irregular side misses hard
/// }
/// assert_eq!(duel.side_quota(true), 3); // and gains a way
/// assert_eq!(duel.side_quota(false), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WayDuel {
    assoc: u32,
    min_ways: u32,
    duel_accesses: u32,
    irregular_ways: u32,
    accesses: u32,
    regular_misses: u64,
    irregular_misses: u64,
    adjustments: u64,
}

impl WayDuel {
    /// A duel over a cache of `assoc` ways, starting at an even split
    /// (clamped so both sides respect `min_ways`). A cache too narrow to
    /// split (`assoc < 2 * min_ways`) gets a frozen all-irregular split —
    /// consumers treat a zero or full quota as "unpartitioned".
    pub fn new(assoc: u32, min_ways: u32, duel_accesses: u32) -> WayDuel {
        let assoc = assoc.max(1);
        let min_ways = min_ways.clamp(1, (assoc / 2).max(1));
        let irregular_ways = if assoc >= 2 * min_ways { assoc / 2 } else { assoc };
        WayDuel {
            assoc,
            min_ways,
            duel_accesses: duel_accesses.max(1),
            irregular_ways,
            accesses: 0,
            regular_misses: 0,
            irregular_misses: 0,
            adjustments: 0,
        }
    }

    /// The current way quota of one side.
    pub fn side_quota(&self, irregular: bool) -> u32 {
        if irregular {
            self.irregular_ways
        } else {
            self.assoc - self.irregular_ways
        }
    }

    /// Way re-assignments applied so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Records one L1d access attributed to a side and its miss outcome.
    /// At each duel-interval boundary the losing side cedes one way;
    /// returns the new irregular quota when it changed.
    pub fn record(&mut self, irregular: bool, missed: bool) -> Option<u32> {
        if irregular {
            self.irregular_misses += u64::from(missed);
        } else {
            self.regular_misses += u64::from(missed);
        }
        self.accesses += 1;
        if self.accesses < self.duel_accesses {
            return None;
        }
        self.accesses = 0;
        let (irr, reg) = (self.irregular_misses, self.regular_misses);
        self.irregular_misses = 0;
        self.regular_misses = 0;
        let before = self.irregular_ways;
        if irr > reg && self.assoc - self.irregular_ways > self.min_ways {
            self.irregular_ways += 1;
        } else if reg > irr && self.irregular_ways > self.min_ways {
            self.irregular_ways -= 1;
        }
        if self.irregular_ways != before {
            self.adjustments += 1;
            Some(self.irregular_ways)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_interval(duel: &mut WayDuel, irr_misses: u32, reg_misses: u32) -> Option<u32> {
        let n = duel.duel_accesses;
        let mut last = None;
        for i in 0..n {
            // Interleave the two sides; misses front-loaded per side.
            let (irregular, missed) =
                if i % 2 == 0 { (true, i / 2 < irr_misses) } else { (false, i / 2 < reg_misses) };
            if let Some(q) = duel.record(irregular, missed) {
                last = Some(q);
            }
        }
        last
    }

    #[test]
    fn loser_cedes_one_way_per_interval_until_the_floor() {
        let mut duel = WayDuel::new(4, 1, 8);
        assert_eq!(duel.side_quota(true), 2);
        assert_eq!(run_interval(&mut duel, 4, 0), Some(3));
        assert_eq!(run_interval(&mut duel, 4, 0), None, "regular side is at min_ways");
        assert_eq!(duel.side_quota(true), 3);
        assert_eq!(duel.side_quota(false), 1);
        assert_eq!(duel.adjustments(), 1);
    }

    #[test]
    fn balanced_misses_leave_the_split_alone() {
        let mut duel = WayDuel::new(8, 1, 8);
        assert_eq!(run_interval(&mut duel, 2, 2), None);
        assert_eq!(duel.side_quota(true), 4);
    }

    #[test]
    fn swings_track_phase_shifts() {
        let mut duel = WayDuel::new(8, 2, 8);
        run_interval(&mut duel, 0, 4);
        run_interval(&mut duel, 0, 4);
        assert_eq!(duel.side_quota(true), 2, "regular pressure shrinks the irregular share");
        run_interval(&mut duel, 0, 4);
        assert_eq!(duel.side_quota(true), 2, "min_ways floor holds");
        run_interval(&mut duel, 4, 0);
        assert_eq!(duel.side_quota(true), 3, "irregular pressure wins ways back");
    }

    #[test]
    fn tiny_caches_degrade_gracefully() {
        // A direct-mapped or 2-way L1 still produces sane quotas.
        let duel = WayDuel::new(2, 1, 4);
        assert_eq!(duel.side_quota(true) + duel.side_quota(false), 2);
        let duel = WayDuel::new(1, 1, 4);
        assert!(duel.side_quota(true) + duel.side_quota(false) <= 2);
    }
}
