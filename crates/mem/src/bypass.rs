//! The cache-bypassing assist: MAT-guided selective caching with a small
//! fully-associative bypass buffer and SLDT-guided variable-size fetches
//! (Johnson & Hwu [8], Johnson, Merten & Hwu [9]).

use crate::lru::LruSet;
use crate::mat::{Mat, MatConfig};
use crate::sldt::{Sldt, SldtConfig};
use selcache_ir::Addr;

/// Configuration of the bypassing assist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BypassConfig {
    /// Bypass-buffer capacity in bytes (64 double words = 512 B in the
    /// paper).
    pub buffer_bytes: u64,
    /// L1 block size (the buffer stores L1-sized blocks).
    pub block_size: u64,
    /// Memory Access Table configuration.
    pub mat: MatConfig,
    /// Spatial Locality Detection Table configuration.
    pub sldt: SldtConfig,
}

impl BypassConfig {
    /// The paper's configuration for a given L1 block size.
    pub fn paper(block_size: u64) -> Self {
        BypassConfig {
            buffer_bytes: 64 * 8,
            block_size,
            mat: MatConfig::default(),
            sldt: SldtConfig { block_size, ..SldtConfig::default() },
        }
    }
}

/// What to do with a block fetched after an L1 miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillDecision {
    /// Route the block around the L1 into the bypass buffer.
    Bypass,
    /// Allocate into the L1 normally; `prefetch_next` requests the adjacent
    /// block as well (SLDT advice).
    Allocate {
        /// Fetch the next sequential block too.
        prefetch_next: bool,
    },
}

/// The bypassing engine attached to the L1 data cache.
#[derive(Debug, Clone)]
pub struct BypassEngine {
    buffer: LruSet,
    mat: Mat,
    sldt: Sldt,
    buffer_hits: u64,
    bypassed: u64,
    l2_bypassed: u64,
}

/// A dirty block pushed out of the bypass buffer (needs a write-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferEviction {
    /// Evicted block number.
    pub block: u64,
    /// True if the block held modified data.
    pub dirty: bool,
}

impl BypassEngine {
    /// Creates the engine.
    ///
    /// # Panics
    ///
    /// Panics if the buffer holds fewer than one block.
    pub fn new(cfg: BypassConfig) -> Self {
        let blocks = (cfg.buffer_bytes / cfg.block_size).max(1) as usize;
        BypassEngine {
            buffer: LruSet::new(blocks),
            mat: Mat::new(cfg.mat),
            sldt: Sldt::new(cfg.sldt),
            buffer_hits: 0,
            bypassed: 0,
            l2_bypassed: 0,
        }
    }

    /// Records an access in the MAT and SLDT (called on every assisted L1
    /// data access).
    pub fn observe(&mut self, addr: Addr) {
        self.mat.record(addr);
        self.sldt.record(addr);
    }

    /// Probes the bypass buffer on an L1 miss; a hit refreshes recency (and
    /// marks the block dirty on a write).
    pub fn probe_buffer(&mut self, block: u64, write: bool) -> bool {
        if self.buffer.contains(block) {
            self.buffer.insert(block, write);
            self.buffer_hits += 1;
            true
        } else {
            false
        }
    }

    /// Decides the fill policy for a block fetched after an L1 miss, given
    /// the address of the line the L1 would evict (None if the set has room).
    /// Regions with detected spatial locality are never bypassed — the SLDT
    /// exists to recognize streams whose neighbors will be used (\[9\]).
    pub fn decide(&mut self, incoming: Addr, l1_victim: Option<Addr>) -> FillDecision {
        let spatial = self.sldt.wants_large_fetch(incoming);
        if !spatial {
            if let Some(victim) = l1_victim {
                if self.mat.should_bypass(incoming, victim) {
                    self.bypassed += 1;
                    return FillDecision::Bypass;
                }
            }
        }
        FillDecision::Allocate { prefetch_next: spatial }
    }

    /// Inserts a bypassed block into the buffer, returning any dirty block
    /// pushed out (clean overflows are dropped silently).
    pub fn insert_buffer(&mut self, block: u64, dirty: bool) -> Option<BufferEviction> {
        self.buffer
            .insert(block, dirty)
            .map(|(b, d)| BufferEviction { block: b, dirty: d })
            .filter(|e| e.dirty)
    }

    /// L2 fill decision (the scheme of \[8\] manages both levels): true when
    /// the incoming region is colder than the region of the L2 line it
    /// would replace — the block then goes straight to the L1/bypass buffer
    /// without polluting the L2.
    pub fn decide_l2_bypass(&mut self, incoming: Addr, l2_victim: Option<Addr>) -> bool {
        if let Some(victim) = l2_victim {
            if self.mat.should_bypass_conservative(incoming, victim) {
                self.l2_bypassed += 1;
                return true;
            }
        }
        false
    }

    /// Blocks routed around the L2.
    pub fn l2_bypassed(&self) -> u64 {
        self.l2_bypassed
    }

    /// Misses served by the bypass buffer.
    pub fn buffer_hits(&self) -> u64 {
        self.buffer_hits
    }

    /// Blocks routed around the L1.
    pub fn bypassed(&self) -> u64 {
        self.bypassed
    }

    /// Read access to the MAT (for ablation studies).
    pub fn mat(&self) -> &Mat {
        &self.mat
    }

    /// Read access to the SLDT (for ablation studies).
    pub fn sldt(&self) -> &Sldt {
        &self.sldt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> BypassEngine {
        BypassEngine::new(BypassConfig::paper(32))
    }

    #[test]
    fn buffer_capacity_from_bytes() {
        let e = engine();
        assert_eq!(e.buffer.capacity(), 16); // 512 B / 32 B
    }

    #[test]
    fn cold_region_bypasses_against_hot_victim() {
        let mut e = engine();
        let hot = Addr(0);
        let cold = Addr(1024 * 1024);
        for _ in 0..50 {
            e.observe(hot);
        }
        e.observe(cold);
        assert_eq!(e.decide(cold, Some(hot)), FillDecision::Bypass);
        assert_eq!(e.bypassed(), 1);
    }

    #[test]
    fn hot_region_allocates() {
        let mut e = engine();
        let hot = Addr(0);
        let cold = Addr(1024 * 1024);
        for _ in 0..50 {
            e.observe(hot);
        }
        e.observe(cold);
        assert!(matches!(e.decide(hot, Some(cold)), FillDecision::Allocate { .. }));
    }

    #[test]
    fn no_victim_means_allocate() {
        let mut e = engine();
        assert!(matches!(e.decide(Addr(0), None), FillDecision::Allocate { .. }));
    }

    #[test]
    fn sequential_region_requests_prefetch() {
        let mut e = engine();
        for b in 0..8u64 {
            e.observe(Addr(b * 32));
        }
        // Observing raised this region's own MAT count, so allocate wins,
        // and the SLDT advises a large fetch.
        match e.decide(Addr(8 * 32), None) {
            FillDecision::Allocate { prefetch_next } => assert!(prefetch_next),
            other => panic!("unexpected decision {other:?}"),
        }
    }

    #[test]
    fn buffer_probe_and_dirty_eviction() {
        let mut e = engine();
        assert!(!e.probe_buffer(5, false));
        e.insert_buffer(5, true);
        assert!(e.probe_buffer(5, false));
        assert_eq!(e.buffer_hits(), 1);
        // Fill the buffer; the dirty block 5 eventually falls out.
        let mut dirty_evictions = 0;
        for b in 100..120 {
            if e.insert_buffer(b, false).is_some() {
                dirty_evictions += 1;
            }
        }
        assert_eq!(dirty_evictions, 1);
    }
}
