//! Set-associative cache model with three-C miss classification.

use crate::lru::LruSet;
use crate::stats::{CacheStats, MissClass};
use crate::table::PagedBits;
use selcache_ir::Addr;

/// Replacement policy for a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Replacement {
    /// Least recently used (the paper's configuration).
    #[default]
    Lru,
    /// First-in first-out.
    Fifo,
    /// Pseudo-random (deterministic xorshift).
    Random,
    /// Tree pseudo-LRU (requires power-of-two associativity).
    Plru,
}

/// Geometry and policy of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Block (line) size in bytes.
    pub block_size: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// A cache of `size_kib` KiB with the given associativity and block size.
    pub fn kib(size_kib: u64, assoc: u32, block_size: u64) -> Self {
        CacheConfig { size: size_kib * 1024, assoc, block_size, replacement: Replacement::Lru }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        (self.size / self.block_size / self.assoc as u64).max(1)
    }

    /// Number of lines.
    pub fn num_lines(&self) -> u64 {
        (self.size / self.block_size).max(1)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    block: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The block was present.
    Hit,
    /// The block was absent, with its three-C classification (only when
    /// classification is enabled; [`MissClass::Capacity`] otherwise).
    Miss(MissClass),
}

impl Lookup {
    /// True for [`Lookup::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, Lookup::Hit)
    }
}

/// Checkpoint of a cache's functional state: tag/valid/dirty arrays,
/// replacement metadata (LRU stamps, MRU hints, PLRU bits, random-policy
/// RNG), and the classification shadow structures. Statistics counters are
/// **not** part of a snapshot — restoring rewinds *state*, not accounting,
/// so a warmup pass followed by [`Cache::restore`] leaves the miss counters
/// measuring exactly what ran after the restore point (callers difference
/// stats with [`crate::CacheStats::since`]).
#[derive(Debug, Clone)]
pub struct CacheSnapshot {
    cfg: CacheConfig,
    lines: Box<[Line]>,
    mru: Box<[u32]>,
    plru: Vec<u64>,
    stamp: u64,
    rng: u64,
    shadow: Option<LruSet>,
    seen: PagedBits,
    owner: Option<Box<[u8]>>,
}

/// A block evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Block number of the evicted line.
    pub block: u64,
    /// True if the evicted line was dirty (needs write-back).
    pub dirty: bool,
}

/// A set-associative cache operating on block numbers.
///
/// Lookups and fills are decoupled so that assist logic (bypassing, victim
/// caching) can decide what happens on a miss:
///
/// ```
/// use selcache_mem::{Cache, CacheConfig};
/// use selcache_ir::Addr;
///
/// let mut c = Cache::new(CacheConfig::kib(1, 2, 32));
/// let b = c.block_of(Addr(0x1000));
/// assert!(!c.access(b, false).is_hit());
/// c.fill(b, false);
/// assert!(c.access(b, false).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// All lines in one contiguous allocation, set-major: set `s` occupies
    /// `lines[s * assoc .. (s + 1) * assoc]`.
    lines: Box<[Line]>,
    /// Per-set hint of the most-recently-touched way, checked before the
    /// associative scan on lookups.
    mru: Box<[u32]>,
    /// Cached geometry (avoids re-deriving divisions per access).
    num_sets: u64,
    /// `num_sets - 1` when the set count is a power of two (the common
    /// case); set indexing then masks instead of dividing.
    set_mask: u64,
    set_pow2: bool,
    /// `log2(block_size)`; block size is always a power of two, so block
    /// numbers are computed with a shift.
    block_shift: u32,
    assoc: usize,
    /// Tree-PLRU direction bits per set (used when the policy is
    /// [`Replacement::Plru`]).
    plru: Vec<u64>,
    stamp: u64,
    stats: CacheStats,
    /// Fully-associative LRU shadow of equal capacity, for conflict-miss
    /// classification.
    shadow: Option<LruSet>,
    /// Blocks ever referenced (compulsory-miss detection).
    seen: PagedBits,
    rng: u64,
    /// Per-line way-duel ownership tags (0 untagged, 1 regular,
    /// 2 irregular), allocated lazily by [`Cache::fill_partitioned`].
    owner: Option<Box<[u8]>>,
}

impl Cache {
    /// Creates a cache without miss classification (fastest).
    pub fn new(cfg: CacheConfig) -> Self {
        Self::build(cfg, false)
    }

    /// Creates a cache that classifies misses into the three Cs.
    pub fn with_classification(cfg: CacheConfig) -> Self {
        Self::build(cfg, true)
    }

    fn build(cfg: CacheConfig, classify: bool) -> Self {
        assert!(cfg.block_size.is_power_of_two(), "block size must be a power of two");
        assert!(cfg.assoc > 0, "associativity must be positive");
        if cfg.replacement == Replacement::Plru {
            assert!(cfg.assoc.is_power_of_two(), "tree PLRU needs power-of-two associativity");
        }
        let sets = cfg.num_sets();
        Cache {
            cfg,
            lines: vec![Line::default(); (sets * cfg.assoc as u64) as usize].into_boxed_slice(),
            mru: vec![0; sets as usize].into_boxed_slice(),
            num_sets: sets,
            set_mask: sets.wrapping_sub(1),
            set_pow2: sets.is_power_of_two(),
            block_shift: cfg.block_size.trailing_zeros(),
            assoc: cfg.assoc as usize,
            plru: vec![0; sets as usize],
            stamp: 0,
            stats: CacheStats::default(),
            shadow: classify.then(|| LruSet::new(cfg.num_lines() as usize)),
            seen: PagedBits::new(),
            rng: 0x9E37_79B9_7F4A_7C15,
            owner: None,
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Block number of an address under this cache's block size.
    #[inline]
    pub fn block_of(&self, addr: Addr) -> u64 {
        addr.0 >> self.block_shift
    }

    /// Set index of a block (mask when the set count is a power of two).
    #[inline]
    fn set_index(&self, block: u64) -> usize {
        if self.set_pow2 {
            (block & self.set_mask) as usize
        } else {
            (block % self.num_sets) as usize
        }
    }

    /// The lines of set `si` within the flat array.
    #[inline]
    fn set(&self, si: usize) -> &[Line] {
        &self.lines[si * self.assoc..(si + 1) * self.assoc]
    }

    /// Looks up `block`, updating recency, statistics, and classification
    /// state. Does **not** fill on a miss — call [`Cache::fill`] if the block
    /// should be allocated.
    pub fn access(&mut self, block: u64, write: bool) -> Lookup {
        self.stamp += 1;
        self.stats.accesses += 1;
        let si = self.set_index(block);
        let base = si * self.assoc;
        let stamp = self.stamp;
        let is_lru = self.cfg.replacement == Replacement::Lru;
        // MRU-way fast path: a block lives in at most one way, so a hint
        // match is the same way the associative scan would find.
        let hint = self.mru[si] as usize;
        let way = {
            let set = &self.lines[base..base + self.assoc];
            if set[hint].valid && set[hint].block == block {
                Some(hint)
            } else {
                set.iter().position(|l| l.valid && l.block == block)
            }
        };
        if let Some(way) = way {
            let line = &mut self.lines[base + way];
            if is_lru {
                line.stamp = stamp;
            }
            line.dirty |= write;
            self.mru[si] = way as u32;
            self.stats.hits += 1;
            if self.cfg.replacement == Replacement::Plru {
                self.plru_touch(si, way);
            }
            if let Some(shadow) = &mut self.shadow {
                shadow.insert(block, false);
            }
            return Lookup::Hit;
        }
        let class = self.classify(block);
        self.stats.record_miss(class);
        Lookup::Miss(class)
    }

    fn classify(&mut self, block: u64) -> MissClass {
        let first_touch = self.seen.set(block);
        // One shadow touch per miss: the probing insert reports prior
        // membership and refreshes recency in a single lookup.
        let shadow_hit = match &mut self.shadow {
            Some(shadow) => shadow.insert_probe(block, false).0,
            None => false,
        };
        if first_touch {
            MissClass::Compulsory
        } else if shadow_hit {
            MissClass::Conflict
        } else {
            MissClass::Capacity
        }
    }

    /// Probes for `block` without changing any state.
    pub fn probe(&self, block: u64) -> bool {
        let si = self.set_index(block);
        self.set(si).iter().any(|l| l.valid && l.block == block)
    }

    /// Allocates `block`, evicting a line if the set is full. Records a
    /// write-back in the statistics when the evicted line is dirty.
    pub fn fill(&mut self, block: u64, dirty: bool) -> Option<Eviction> {
        self.stamp += 1;
        let si = self.set_index(block);
        let base = si * self.assoc;
        let stamp = self.stamp;
        let is_lru = self.cfg.replacement == Replacement::Lru;
        if let Some(line) =
            self.lines[base..base + self.assoc].iter_mut().find(|l| l.valid && l.block == block)
        {
            line.dirty |= dirty;
            if is_lru {
                line.stamp = stamp;
            }
            return None;
        }
        let way = self.choose_victim(si);
        let line = &mut self.lines[base + way];
        let evicted = line.valid.then_some(Eviction { block: line.block, dirty: line.dirty });
        if let Some(e) = evicted {
            if e.dirty {
                self.stats.writebacks += 1;
            }
        }
        *line = Line { block, valid: true, dirty, stamp };
        self.mru[si] = way as u32;
        if self.cfg.replacement == Replacement::Plru {
            self.plru_touch(si, way);
        }
        evicted
    }

    /// Allocates `block` on behalf of one way-duel side (`irregular` names
    /// the side; see [`crate::WayDuel`]), keeping that side within
    /// `max_ways` ways of the set: a side at its quota evicts the oldest of
    /// its *own* lines, a side under quota takes the oldest line of the
    /// *other* side. Quotas of 0 or ≥ associativity cannot bind and fall
    /// back to the plain replacement policy. Victim age is the LRU/FIFO
    /// stamp regardless of the configured policy (the partitioned path is
    /// only engaged by the adaptive controller, whose caches are LRU).
    pub fn fill_partitioned(
        &mut self,
        block: u64,
        dirty: bool,
        irregular: bool,
        max_ways: u32,
    ) -> Option<Eviction> {
        if self.owner.is_none() {
            self.owner = Some(vec![0u8; self.lines.len()].into_boxed_slice());
        }
        let side = u8::from(irregular) + 1;
        if max_ways == 0 || max_ways as usize >= self.assoc {
            let e = self.fill(block, dirty);
            // Keep the tag fresh for when the quota binds again.
            let base = self.set_index(block) * self.assoc;
            if let Some(way) =
                self.lines[base..base + self.assoc].iter().position(|l| l.valid && l.block == block)
            {
                self.owner.as_mut().expect("allocated above")[base + way] = side;
            }
            return e;
        }
        self.stamp += 1;
        let si = self.set_index(block);
        let base = si * self.assoc;
        let stamp = self.stamp;
        let is_lru = self.cfg.replacement == Replacement::Lru;
        if let Some(way) =
            self.lines[base..base + self.assoc].iter().position(|l| l.valid && l.block == block)
        {
            let line = &mut self.lines[base + way];
            line.dirty |= dirty;
            if is_lru {
                line.stamp = stamp;
            }
            self.owner.as_mut().expect("allocated above")[base + way] = side;
            return None;
        }
        let way = {
            let set = &self.lines[base..base + self.assoc];
            let own = &self.owner.as_ref().expect("allocated above")[base..base + self.assoc];
            match set.iter().position(|l| !l.valid) {
                Some(w) => w,
                None => {
                    let owned = set.iter().zip(own).filter(|(l, o)| l.valid && **o == side).count();
                    let oldest = |of_side: Option<bool>| {
                        set.iter()
                            .zip(own)
                            .enumerate()
                            .filter(|(_, (l, o))| {
                                l.valid && of_side.is_none_or(|want| (**o == side) == want)
                            })
                            .min_by_key(|(_, (l, _))| l.stamp)
                            .map(|(w, _)| w)
                    };
                    if owned >= max_ways as usize {
                        oldest(Some(true)).expect("side at quota owns at least one line")
                    } else {
                        // Under quota: grow into the other side's ways
                        // (untagged lines count as the other side).
                        oldest(Some(false)).or_else(|| oldest(None)).expect("set is full")
                    }
                }
            }
        };
        let line = &mut self.lines[base + way];
        let evicted = line.valid.then_some(Eviction { block: line.block, dirty: line.dirty });
        if let Some(e) = evicted {
            if e.dirty {
                self.stats.writebacks += 1;
            }
        }
        *line = Line { block, valid: true, dirty, stamp };
        self.owner.as_mut().expect("allocated above")[base + way] = side;
        self.mru[si] = way as u32;
        if self.cfg.replacement == Replacement::Plru {
            self.plru_touch(si, way);
        }
        evicted
    }

    /// The block that a fill of `block` would evict, without filling.
    pub fn victim_for(&self, block: u64) -> Option<Eviction> {
        let si = self.set_index(block);
        let set = self.set(si);
        if set.iter().any(|l| l.valid && l.block == block) {
            return None;
        }
        if set.iter().any(|l| !l.valid) {
            return None;
        }
        let line = &self.set(si)[self.peek_victim(si)];
        Some(Eviction { block: line.block, dirty: line.dirty })
    }

    fn peek_victim(&self, si: usize) -> usize {
        // Deterministic preview matching choose_victim for LRU/FIFO; for
        // Random the preview is the oldest line (an approximation used only
        // by assist decision logic).
        self.set(si).iter().enumerate().min_by_key(|(_, l)| l.stamp).map(|(i, _)| i).unwrap_or(0)
    }

    fn choose_victim(&mut self, si: usize) -> usize {
        if let Some(way) = self.set(si).iter().position(|l| !l.valid) {
            return way;
        }
        match self.cfg.replacement {
            Replacement::Lru | Replacement::Fifo => self.peek_victim(si),
            Replacement::Plru => self.plru_victim(si),
            Replacement::Random => {
                // xorshift64*
                self.rng ^= self.rng >> 12;
                self.rng ^= self.rng << 25;
                self.rng ^= self.rng >> 27;
                (self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) % self.cfg.assoc as u64) as usize
            }
        }
    }

    /// Marks `way` most-recently-used in the PLRU tree: flip each node on
    /// the root-to-leaf path to point *away* from the way.
    fn plru_touch(&mut self, si: usize, way: usize) {
        let assoc = self.cfg.assoc as usize;
        if assoc == 1 {
            return;
        }
        let bits = &mut self.plru[si];
        let mut node = 1usize; // 1-indexed heap node
        let levels = assoc.trailing_zeros();
        for level in (0..levels).rev() {
            let dir = (way >> level) & 1;
            // Point the node away from the chosen child.
            if dir == 0 {
                *bits |= 1 << (node - 1);
            } else {
                *bits &= !(1 << (node - 1));
            }
            node = node * 2 + dir;
        }
    }

    /// Follows the PLRU direction bits to the pseudo-least-recently-used way.
    fn plru_victim(&self, si: usize) -> usize {
        let assoc = self.cfg.assoc as usize;
        if assoc == 1 {
            return 0;
        }
        let bits = self.plru[si];
        let levels = assoc.trailing_zeros();
        let mut node = 1usize;
        let mut way = 0usize;
        for _ in 0..levels {
            let dir = ((bits >> (node - 1)) & 1) as usize;
            way = way * 2 + dir;
            node = node * 2 + dir;
        }
        way
    }

    /// Removes `block`, returning its dirty bit if it was present.
    pub fn invalidate(&mut self, block: u64) -> Option<bool> {
        let base = self.set_index(block) * self.assoc;
        let line =
            self.lines[base..base + self.assoc].iter_mut().find(|l| l.valid && l.block == block)?;
        line.valid = false;
        Some(line.dirty)
    }

    /// Number of valid lines currently resident.
    pub fn resident(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Captures the functional state (see [`CacheSnapshot`]).
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            cfg: self.cfg,
            lines: self.lines.clone(),
            mru: self.mru.clone(),
            plru: self.plru.clone(),
            stamp: self.stamp,
            rng: self.rng,
            shadow: self.shadow.clone(),
            seen: self.seen.clone(),
            owner: self.owner.clone(),
        }
    }

    /// Restores a snapshot taken from a cache of identical geometry and
    /// policy. Statistics counters are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a differently-configured cache.
    pub fn restore(&mut self, snap: &CacheSnapshot) {
        assert_eq!(self.cfg, snap.cfg, "cache snapshot geometry mismatch");
        self.lines = snap.lines.clone();
        self.mru = snap.mru.clone();
        self.plru = snap.plru.clone();
        self.stamp = snap.stamp;
        self.rng = snap.rng;
        self.shadow = snap.shadow.clone();
        self.seen = snap.seen.clone();
        self.owner = snap.owner.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 32B = 256B
        Cache::with_classification(CacheConfig {
            size: 256,
            assoc: 2,
            block_size: 32,
            replacement: Replacement::Lru,
        })
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(10, false).is_hit());
        c.fill(10, false);
        assert!(c.access(10, false).is_hit());
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn fill_without_access_does_not_count() {
        let mut c = tiny();
        c.fill(3, false);
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Blocks 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, false);
        c.fill(4, false);
        let e = c.fill(8, false).unwrap();
        assert_eq!(e.block, 0);
        assert!(c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn access_refreshes_lru() {
        let mut c = tiny();
        c.fill(0, false);
        c.fill(4, false);
        c.access(0, false); // 0 becomes MRU
        let e = c.fill(8, false).unwrap();
        assert_eq!(e.block, 4);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.fill(0, true);
        c.fill(4, false);
        let e = c.fill(8, false).unwrap();
        assert!(e.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.fill(0, false);
        c.access(0, true);
        c.fill(4, false);
        let e = c.fill(8, false).unwrap();
        assert_eq!((e.block, e.dirty), (0, true));
    }

    #[test]
    fn classification_three_cs() {
        let mut c = tiny();
        // Compulsory: first touch.
        assert_eq!(c.access(0, false), Lookup::Miss(MissClass::Compulsory));
        c.fill(0, false);
        // Conflict: evicted by same-set traffic but fits in FA shadow.
        c.fill(4, false);
        c.access(4, false);
        c.fill(8, false);
        c.access(8, false);
        // 0 was evicted by 8; shadow (8 lines) still holds it.
        assert_eq!(c.access(0, false), Lookup::Miss(MissClass::Conflict));
    }

    #[test]
    fn capacity_miss_when_footprint_exceeds_cache() {
        let mut c = tiny();
        // Touch 32 distinct blocks (4x capacity), then re-touch block 0:
        // the FA shadow (8 lines) has also lost it -> capacity.
        for b in 0..32 {
            c.access(b, false);
            c.fill(b, false);
        }
        assert_eq!(c.access(0, false), Lookup::Miss(MissClass::Capacity));
    }

    #[test]
    fn victim_preview_matches_fill() {
        let mut c = tiny();
        c.fill(0, false);
        c.fill(4, true);
        c.access(0, false);
        let preview = c.victim_for(8).unwrap();
        let actual = c.fill(8, false).unwrap();
        assert_eq!(preview, actual);
    }

    #[test]
    fn victim_preview_none_when_room_or_present() {
        let mut c = tiny();
        c.fill(0, false);
        assert_eq!(c.victim_for(0), None); // present
        assert_eq!(c.victim_for(4), None); // invalid way available
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.fill(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert!(!c.probe(0));
        assert_eq!(c.invalidate(0), None);
    }

    #[test]
    fn block_of_uses_block_size() {
        let c = tiny();
        assert_eq!(c.block_of(Addr(64)), 2);
        assert_eq!(c.block_of(Addr(95)), 2);
        assert_eq!(c.block_of(Addr(96)), 3);
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let mk = || {
            let mut c = Cache::new(CacheConfig {
                size: 256,
                assoc: 2,
                block_size: 32,
                replacement: Replacement::Random,
            });
            let mut evictions = Vec::new();
            for b in (0..40).map(|i| i * 4) {
                if let Some(e) = c.fill(b, false) {
                    evictions.push(e.block);
                }
            }
            evictions
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn plru_two_way_matches_lru() {
        // With 2 ways, tree PLRU is exact LRU.
        let mk =
            |rep| Cache::new(CacheConfig { size: 256, assoc: 2, block_size: 32, replacement: rep });
        let mut plru = mk(Replacement::Plru);
        let mut lru = mk(Replacement::Lru);
        let mut state = 41u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (state >> 32) % 24;
            let (hp, hl) = (plru.access(b, false).is_hit(), lru.access(b, false).is_hit());
            assert_eq!(hp, hl, "divergence at block {b}");
            if !hp {
                let ep = plru.fill(b, false).map(|e| e.block);
                let el = lru.fill(b, false).map(|e| e.block);
                assert_eq!(ep, el);
            }
        }
    }

    #[test]
    fn plru_victim_is_not_most_recent() {
        let mut c = Cache::new(CacheConfig {
            size: 4 * 32,
            assoc: 4,
            block_size: 32,
            replacement: Replacement::Plru,
        });
        for b in 0..4 {
            c.fill(b, false);
        }
        // Touch block 2: it must not be the next victim.
        c.access(2, false);
        let e = c.fill(10, false).unwrap();
        assert_ne!(e.block, 2, "PLRU evicted the most recently used line");
    }

    #[test]
    #[should_panic(expected = "power-of-two associativity")]
    fn plru_requires_power_of_two_ways() {
        let _ = Cache::new(CacheConfig {
            size: 96,
            assoc: 3,
            block_size: 32,
            replacement: Replacement::Plru,
        });
    }

    #[test]
    fn classification_counts_pinned() {
        // Regression guard for the single-touch shadow restructuring: exact
        // hit/miss/class counts captured from the original two-touch
        // (`contains` + `insert`) miss path. Any drift in classification or
        // recency behavior changes these numbers.
        let cfg =
            CacheConfig { size: 1024, assoc: 2, block_size: 32, replacement: Replacement::Lru };
        let mut c = Cache::with_classification(cfg);
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..20_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = state >> 33;
            let block = r % 200;
            let write = r & 1 == 1;
            if !c.access(block, write).is_hit() {
                c.fill(block, write);
            }
        }
        let s = c.stats();
        assert_eq!(
            (s.accesses, s.hits, s.misses, s.compulsory, s.capacity, s.conflict, s.writebacks),
            (20000, 3232, 16768, 200, 15744, 824, 8442),
        );
    }

    #[test]
    fn partitioned_fill_respects_quota_and_grows_under_it() {
        // 1 set x 4 ways.
        let mut c = Cache::new(CacheConfig {
            size: 4 * 32,
            assoc: 4,
            block_size: 32,
            replacement: Replacement::Lru,
        });
        // Regular side fills the whole set.
        for b in 0..4 {
            assert_eq!(c.fill_partitioned(b, false, false, 3), None);
        }
        // Irregular side under quota takes the regular side's oldest line.
        let e = c.fill_partitioned(10, false, true, 2).unwrap();
        assert_eq!(e.block, 0);
        let e = c.fill_partitioned(11, false, true, 2).unwrap();
        assert_eq!(e.block, 1);
        // At quota (2 ways) the irregular side now recycles its own lines;
        // the regular lines 2 and 3 survive.
        let e = c.fill_partitioned(12, false, true, 2).unwrap();
        assert_eq!(e.block, 10);
        assert!(c.probe(2) && c.probe(3));
    }

    #[test]
    fn partitioned_fill_with_unbinding_quota_matches_plain_lru() {
        let mut a = tiny();
        let mut b = tiny();
        let mut state = 11u64;
        for _ in 0..400 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let blk = (state >> 33) % 30;
            let ea = a.fill(blk, state & 1 == 1);
            let eb = b.fill_partitioned(blk, state & 1 == 1, state & 2 == 2, b.cfg.assoc);
            assert_eq!(ea, eb, "unbinding quota must reduce to plain replacement");
        }
    }

    #[test]
    fn partitioned_refresh_retags_a_present_line() {
        let mut c = Cache::new(CacheConfig {
            size: 2 * 32,
            assoc: 2,
            block_size: 32,
            replacement: Replacement::Lru,
        });
        assert_eq!(c.fill_partitioned(0, false, false, 1), None);
        assert_eq!(c.fill_partitioned(1, false, false, 1), None);
        assert_eq!(c.fill_partitioned(0, true, true, 1), None, "present: refresh, no eviction");
        // Block 0 now belongs to the irregular side, so an irregular fill
        // at quota 1 must evict it (not the untouched way).
        let e = c.fill_partitioned(2, false, true, 1).unwrap();
        assert_eq!((e.block, e.dirty), (0, true));
    }

    #[test]
    fn snapshot_carries_partition_ownership() {
        let mut warm = Cache::new(CacheConfig {
            size: 4 * 32,
            assoc: 4,
            block_size: 32,
            replacement: Replacement::Lru,
        });
        for b in 0..4 {
            warm.fill_partitioned(b, false, b % 2 == 0, 2);
        }
        let mut restored = Cache::new(*warm.config());
        restored.restore(&warm.snapshot());
        for blk in [20, 21, 22] {
            let irregular = blk % 2 == 0;
            assert_eq!(
                warm.fill_partitioned(blk, false, irregular, 2),
                restored.fill_partitioned(blk, false, irregular, 2),
                "ownership tags must survive snapshot/restore"
            );
        }
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        // Two caches at the same warm state (one via restore) must agree on
        // every subsequent hit/miss/eviction — the snapshot captures all
        // replacement and classification state.
        let mut warm = tiny();
        let mut state = 7u64;
        let step = |s: &mut u64| {
            *s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (*s >> 33) % 40
        };
        for _ in 0..500 {
            let b = step(&mut state);
            if !warm.access(b, false).is_hit() {
                warm.fill(b, false);
            }
        }
        let snap = warm.snapshot();
        let mut restored = tiny();
        restored.restore(&snap);
        assert_eq!(restored.stats().accesses, 0, "restore must not import stats");
        let mut replay = state;
        for _ in 0..500 {
            let b = step(&mut state);
            let bb = step(&mut replay);
            assert_eq!(b, bb);
            let hit_a = warm.access(b, false).is_hit();
            let hit_b = restored.access(b, false).is_hit();
            assert_eq!(hit_a, hit_b, "divergence at block {b}");
            if !hit_a {
                assert_eq!(warm.fill(b, false), restored.fill(b, false));
            }
        }
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn restore_rejects_other_geometry() {
        let snap = tiny().snapshot();
        let mut other = Cache::new(CacheConfig::kib(32, 4, 32));
        other.restore(&snap);
    }

    #[test]
    fn num_sets_geometry() {
        let cfg = CacheConfig::kib(32, 4, 32);
        assert_eq!(cfg.num_sets(), 256);
        assert_eq!(cfg.num_lines(), 1024);
    }

    #[test]
    fn resident_counts() {
        let mut c = tiny();
        assert_eq!(c.resident(), 0);
        c.fill(0, false);
        c.fill(1, false);
        assert_eq!(c.resident(), 2);
    }
}
