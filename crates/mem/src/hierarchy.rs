//! The composed two-level memory hierarchy with pluggable hardware assists.
//!
//! Latency model (base configuration = Table 1 of the paper): L1 access
//! 2 cycles, L2 access 10 cycles, memory 100 cycles plus block transfer over
//! an 8-byte bus. Assist hits (bypass buffer, victim cache) cost one cycle on
//! top of the L1 latency. The assist is gated by the run-time flag toggled by
//! the `AssistOn`/`AssistOff` instructions: while the flag is off the assist
//! structures are neither probed nor updated ("we simply ignore the
//! mechanism"), so stale training state persists across phases — the effect
//! the selective scheme exploits.

use crate::adapt::{AdaptController, AssistChoice, ControllerConfig, WayDuel};
use crate::bypass::{BypassConfig, BypassEngine, FillDecision};
use crate::cache::{Cache, CacheConfig, CacheSnapshot, Eviction};
use crate::probe::{AssistEvent, CacheLevel, NullProbe, Probe, Site};
use crate::stats::{AssistStats, HierarchyStats};
use crate::tlb::{Tlb, TlbConfig, TlbSnapshot};
use crate::victim::VictimCache;
use selcache_ir::Addr;

/// Checkpoint of the whole hierarchy's functional state: every cache's
/// tag/replacement arrays, both TLBs, the assist structures (MAT/SLDT,
/// bypass buffer, victim caches, stream buffers), the adaptive controller
/// and way-duel state when attached, and the run-time assist flag. Timing state (port/bus occupancy, open DRAM rows) and the
/// cache/TLB statistics counters are **not** captured: a restore starts
/// from an idle memory system, and measurements across a restore take the
/// post-restore [`MemoryHierarchy::stats`] as their baseline and difference
/// with [`HierarchyStats::since`]. This is the checkpoint format the
/// sampled execution mode stores per representative interval.
#[derive(Debug, Clone)]
pub struct HierarchySnapshot {
    l1d: CacheSnapshot,
    l1i: CacheSnapshot,
    l2: CacheSnapshot,
    dtlb: TlbSnapshot,
    itlb: TlbSnapshot,
    bypass: Option<BypassEngine>,
    victim_l1: Option<VictimCache>,
    victim_l2: Option<VictimCache>,
    stream: Option<crate::stream::StreamBuffers>,
    adapt: Option<AdaptController>,
    duel: Option<WayDuel>,
    enabled: bool,
}

/// Which hardware locality-optimization mechanism is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AssistKind {
    /// No assist (the base machine).
    #[default]
    None,
    /// MAT/SLDT cache bypassing with a bypass buffer (Section 3.1, \[8,9\]).
    Bypass,
    /// Victim caches on L1 and L2 (\[10\]).
    Victim,
    /// Sequential stream-buffer prefetching (\[10\]; the related-work
    /// "hardware prefetching" entry — an extension assist).
    Stream,
}

/// Full hierarchy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// L1 access latency in cycles.
    pub l1_latency: u64,
    /// L2 access latency in cycles.
    pub l2_latency: u64,
    /// Main-memory access latency in cycles.
    pub mem_latency: u64,
    /// Memory bus width in bytes (block transfer time = block/bus).
    pub bus_bytes: u64,
    /// Cycles each L2 access occupies the L2 port (an L1 block transfer
    /// over the on-chip bus). Back-to-back L1 misses queue on this.
    pub l2_occupancy: u64,
    /// DRAM row-buffer (page) size in bytes: a memory access to the same
    /// page as the previous one pays [`HierarchyConfig::dram_hit_latency`]
    /// instead of the full `mem_latency`.
    pub dram_page_bytes: u64,
    /// Memory latency for a DRAM row-buffer hit.
    pub dram_hit_latency: u64,
    /// DRAM banks: page-miss accesses occupy the memory system for
    /// `mem_latency / dram_banks` cycles, bounding random-access throughput
    /// (page hits stream at bus speed).
    pub dram_banks: u64,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Attached assist.
    pub assist: AssistKind,
    /// Bypass-assist parameters (used when `assist == Bypass`).
    pub bypass: BypassConfig,
    /// L1 victim-cache entries (used when `assist == Victim`).
    pub l1_victim_entries: usize,
    /// L2 victim-cache entries (used when `assist == Victim`).
    pub l2_victim_entries: usize,
    /// Stream-buffer parameters (used when `assist == Stream`).
    pub stream: crate::stream::StreamConfig,
    /// Enable three-C miss classification (costs some simulation speed).
    pub classify_misses: bool,
    /// Online per-region assist controller. When set, both the bypass and
    /// victim structures are built and the controller picks among
    /// {off, bypass, victim} per region at run time (the [`AssistKind`]
    /// field then only selects an additional static stream assist); when
    /// `None`, assist selection is fully static.
    pub controller: Option<ControllerConfig>,
}

impl HierarchyConfig {
    /// The paper's base machine (Table 1) with the given assist: 32 KiB
    /// 4-way 32 B-block L1s, 512 KiB 4-way 128 B-block L2, 2/10/100-cycle
    /// latencies, 8-byte memory bus, 64/512-entry victim caches.
    pub fn paper_base(assist: AssistKind) -> Self {
        HierarchyConfig {
            l1d: CacheConfig::kib(32, 4, 32),
            l1i: CacheConfig::kib(32, 4, 32),
            l2: CacheConfig::kib(512, 4, 128),
            l1_latency: 2,
            l2_latency: 10,
            mem_latency: 100,
            bus_bytes: 8,
            l2_occupancy: 4,
            dram_page_bytes: 4096,
            dram_hit_latency: 25,
            dram_banks: 8,
            dtlb: TlbConfig::data(),
            itlb: TlbConfig::inst(),
            assist,
            bypass: BypassConfig::paper(32),
            l1_victim_entries: 64,
            l2_victim_entries: 512,
            stream: crate::stream::StreamConfig::default(),
            classify_misses: true,
            controller: None,
        }
    }
}

/// The simulated memory hierarchy.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    dtlb: Tlb,
    itlb: Tlb,
    bypass: Option<BypassEngine>,
    victim_l1: Option<VictimCache>,
    victim_l2: Option<VictimCache>,
    stream: Option<crate::stream::StreamBuffers>,
    adapt: Option<AdaptController>,
    duel: Option<WayDuel>,
    /// Assist policy resolved for the in-flight data access: `Some` only
    /// while a controller is attached and the assist flag is on (`None` on
    /// the static path and during instruction fetches).
    cur_choice: Option<AssistChoice>,
    enabled: bool,
    assisted_accesses: u64,
    spatial_prefetches: u64,
    /// Cycle until which the L2 port is busy (bandwidth contention).
    l2_busy_until: u64,
    /// Cycle until which the memory bus is busy.
    mem_busy_until: u64,
    /// Open DRAM row (page number) per bank, for the row-buffer hit model.
    open_dram_rows: Vec<u64>,
}

impl MemoryHierarchy {
    /// Builds a hierarchy; the assist starts *enabled* (matching the pure
    /// hardware and combined versions; the selective version toggles it).
    pub fn new(cfg: HierarchyConfig) -> Self {
        let mk = |c: CacheConfig, classify: bool| {
            if classify {
                Cache::with_classification(c)
            } else {
                Cache::new(c)
            }
        };
        // A controller arbitrates between bypassing and victim caching at
        // run time, so it needs both structures built regardless of the
        // static assist selection.
        let dynamic = cfg.controller.is_some();
        let bypass =
            (cfg.assist == AssistKind::Bypass || dynamic).then(|| BypassEngine::new(cfg.bypass));
        let victim_l1 = (cfg.assist == AssistKind::Victim || dynamic)
            .then(|| VictimCache::new(cfg.l1_victim_entries));
        let victim_l2 = (cfg.assist == AssistKind::Victim || dynamic)
            .then(|| VictimCache::new(cfg.l2_victim_entries));
        let stream = (cfg.assist == AssistKind::Stream)
            .then(|| crate::stream::StreamBuffers::new(cfg.stream));
        let adapt = cfg.controller.map(AdaptController::new);
        let duel = cfg.controller.and_then(|ctl| {
            ctl.way_partition.then(|| WayDuel::new(cfg.l1d.assoc, ctl.min_ways, ctl.duel_accesses))
        });
        MemoryHierarchy {
            l1d: mk(cfg.l1d, cfg.classify_misses),
            l1i: mk(cfg.l1i, false),
            l2: mk(cfg.l2, cfg.classify_misses),
            dtlb: Tlb::new(cfg.dtlb),
            itlb: Tlb::new(cfg.itlb),
            bypass,
            victim_l1,
            victim_l2,
            stream,
            adapt,
            duel,
            cur_choice: None,
            enabled: true,
            assisted_accesses: 0,
            spatial_prefetches: 0,
            l2_busy_until: 0,
            mem_busy_until: 0,
            open_dram_rows: vec![u64::MAX; cfg.dram_banks.max(1) as usize],
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Sets the run-time assist flag (the ON/OFF instructions).
    pub fn set_assist_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Current state of the assist flag.
    pub fn assist_enabled(&self) -> bool {
        self.enabled
    }

    /// True when an assist is attached *and* currently enabled.
    fn assist_active(&self) -> bool {
        self.enabled && self.cfg.assist != AssistKind::None
    }

    /// Performs a data access issued at cycle `now`, returning its total
    /// latency in cycles. Latency includes queueing on the L2 port and the
    /// memory bus: bursts of misses serialize on bandwidth, so reducing the
    /// miss *count* matters even when individual misses could overlap.
    pub fn data_access(&mut self, addr: Addr, write: bool, now: u64) -> u64 {
        self.data_access_probed(addr, write, now, Site::UNKNOWN, &mut NullProbe)
    }

    /// [`MemoryHierarchy::data_access`] with event instrumentation: every
    /// cache lookup, writeback, TLB miss and assist action is reported to
    /// `probe`, attributed to `site`. The [`NullProbe`] instantiation
    /// monomorphizes back to the uninstrumented path.
    pub fn data_access_probed<P: Probe>(
        &mut self,
        addr: Addr,
        write: bool,
        now: u64,
        site: Site,
        probe: &mut P,
    ) -> u64 {
        // Resolve the access's assist policy up front: the controller's
        // current choice for the region when one is attached and the
        // run-time flag is on, `None` (static gating) otherwise. While the
        // flag is off a controller is frozen exactly like a static assist:
        // no probes, no updates, no interval accounting.
        self.cur_choice = match (&self.adapt, self.enabled) {
            (Some(ctl), true) => Some(ctl.policy(site.region)),
            _ => None,
        };
        let (latency, effective_miss) = self.data_access_inner(addr, write, now, site, probe);
        if let Some(choice) = self.cur_choice {
            let irregular = choice != AssistChoice::Off;
            if let Some(ctl) = &mut self.adapt {
                if let Some(d) = ctl.record_access(site.region, effective_miss) {
                    probe.adapt_decision(site, d.choice, d.switched);
                }
            }
            if let Some(duel) = &mut self.duel {
                if let Some(ways) = duel.record(irregular, effective_miss) {
                    probe.adapt_partition(ways);
                }
            }
        }
        latency
    }

    /// The data-access path proper; returns `(latency, effective_miss)`
    /// where the flag is true when the access left the L1 level — missed
    /// the L1 proper and was not served by an assist short path. That flag
    /// is the controller's per-access feedback signal: assist hits count
    /// as (near-)hits, so a trial's score reflects the latency the choice
    /// actually delivers.
    fn data_access_inner<P: Probe>(
        &mut self,
        addr: Addr,
        write: bool,
        now: u64,
        site: Site,
        probe: &mut P,
    ) -> (u64, bool) {
        let tlb_lat = self.dtlb.access(addr);
        if tlb_lat > 0 {
            probe.tlb_miss(site, false);
        }
        let mut t = now + self.cfg.l1_latency + tlb_lat;
        let b1 = self.l1d.block_of(addr);
        let (use_bypass, use_victim, use_stream, observed) = match self.cur_choice {
            Some(c) => (
                c == AssistChoice::Bypass,
                c == AssistChoice::Victim,
                false,
                c != AssistChoice::Off,
            ),
            None => {
                let act = self.assist_active();
                (act, act, act, act)
            }
        };
        if observed {
            self.assisted_accesses += 1;
            probe.assist(site, addr, AssistEvent::Observed);
        }
        // The MAT/SLDT trains on every access the mechanism can see: all
        // assisted accesses in the static scheme and — under a controller —
        // every access while the flag is on, so a bypass trial starts from
        // a trained table rather than a cold one.
        if observed || self.cur_choice.is_some() {
            if let Some(engine) = &mut self.bypass {
                engine.observe(addr);
            }
        }
        let lookup = self.l1d.access(b1, write);
        probe.cache_access(CacheLevel::L1d, site, addr, write, lookup);
        if lookup.is_hit() {
            return (t - now, false);
        }
        // L1 miss: assist short paths (no L2 port traffic). A bypass-buffer
        // hit costs two extra cycles (miss detection + buffer access) — the
        // overhead that makes bypassing costlier than a victim swap.
        if use_bypass {
            if let Some(engine) = &mut self.bypass {
                if engine.probe_buffer(b1, write) {
                    probe.assist(site, addr, AssistEvent::BufferHit);
                    return (t + 2 - now, false);
                }
            }
        }
        if use_victim {
            if let Some(victim) = &mut self.victim_l1 {
                if let Some(dirty) = victim.probe_remove(b1) {
                    // Swap: block returns to L1, the displaced line moves to
                    // the victim cache.
                    probe.assist(site, addr, AssistEvent::L1VictimHit);
                    self.fill_l1_with_victim(b1, dirty || write, probe);
                    return (t + 1 - now, false);
                }
            }
        }
        if use_stream {
            if let Some(stream) = &mut self.stream {
                if stream.probe(b1).is_some() {
                    // Supplied by a stream buffer; the replacement prefetch
                    // consumes L2 bandwidth in the background.
                    probe.assist(site, addr, AssistEvent::StreamHit);
                    self.l2_busy_until = self.l2_busy_until.max(t) + self.cfg.l2_occupancy;
                    self.fill_l1(b1, write, probe);
                    return (t + 1 - now, false);
                }
            }
        }
        // Access L2, queueing on the L2 port.
        let start = t.max(self.l2_busy_until);
        self.l2_busy_until = start + self.cfg.l2_occupancy;
        t = start + self.cfg.l2_latency;
        let b2 = self.l2.block_of(addr);
        let l2_lookup = self.l2.access(b2, false);
        probe.cache_access(CacheLevel::L2, site, addr, false, l2_lookup);
        if !l2_lookup.is_hit() {
            let mut served = false;
            if use_victim {
                if let Some(victim) = &mut self.victim_l2 {
                    if let Some(dirty) = victim.probe_remove(b2) {
                        probe.assist(site, addr, AssistEvent::L2VictimHit);
                        self.fill_l2_with_victim(b2, dirty, probe);
                        served = true;
                        t += 1;
                    }
                }
            }
            if !served {
                t = self.memory_access(addr, t);
                // L2-level bypass ([8] manages both levels): cold regions
                // skip the L2 fill entirely.
                let skip_l2 = if use_bypass {
                    let victim =
                        self.l2.victim_for(b2).map(|e| Addr(e.block * self.cfg.l2.block_size));
                    self.bypass.as_mut().is_some_and(|engine| engine.decide_l2_bypass(addr, victim))
                } else {
                    false
                };
                if skip_l2 {
                    probe.assist(site, addr, AssistEvent::L2BypassFill);
                } else {
                    self.fill_l2(b2, false, probe);
                }
            }
        }
        // L1 fill policy.
        if use_bypass && self.bypass.is_some() {
            let victim_addr =
                self.l1d.victim_for(b1).map(|e| Addr(e.block * self.cfg.l1d.block_size));
            let engine = self.bypass.as_mut().expect("bypass engine present");
            match engine.decide(addr, victim_addr) {
                FillDecision::Bypass => {
                    probe.assist(site, addr, AssistEvent::BypassFill);
                    let evicted = engine.insert_buffer(b1, write);
                    if let Some(ev) = evicted {
                        self.writeback_to_l2(ev.block, probe);
                    }
                }
                FillDecision::Allocate { prefetch_next } => {
                    probe.assist(site, addr, AssistEvent::Allocate { prefetch: prefetch_next });
                    self.fill_l1(b1, write, probe);
                    if prefetch_next {
                        t += self.prefetch_adjacent(b1 + 1, site, probe);
                    }
                }
            }
        } else if use_victim && self.victim_l1.is_some() {
            self.fill_l1_with_victim(b1, write, probe);
        } else {
            self.fill_l1(b1, write, probe);
        }
        (t - now, true)
    }

    /// Performs an instruction fetch for the block containing `pc` at cycle
    /// `now`, returning the *stall* latency (0 on an L1I hit — fetch is
    /// pipelined).
    pub fn inst_fetch(&mut self, pc: u64, now: u64) -> u64 {
        self.inst_fetch_probed(pc, now, Site::UNKNOWN, &mut NullProbe)
    }

    /// [`MemoryHierarchy::inst_fetch`] with event instrumentation.
    pub fn inst_fetch_probed<P: Probe>(
        &mut self,
        pc: u64,
        now: u64,
        site: Site,
        probe: &mut P,
    ) -> u64 {
        // Instruction fetches are never assist-managed by a controller;
        // clear the per-access choice so fills they trigger use the static
        // gating.
        self.cur_choice = None;
        let addr = Addr(pc);
        let tlb_lat = self.itlb.access(addr);
        if tlb_lat > 0 {
            probe.tlb_miss(site, true);
        }
        let mut t = now + tlb_lat;
        let bi = self.l1i.block_of(addr);
        let lookup = self.l1i.access(bi, false);
        probe.cache_access(CacheLevel::L1i, site, addr, false, lookup);
        if lookup.is_hit() {
            return t - now;
        }
        let start = t.max(self.l2_busy_until);
        self.l2_busy_until = start + self.cfg.l2_occupancy;
        t = start + self.cfg.l2_latency;
        let b2 = self.l2.block_of(addr);
        let l2_lookup = self.l2.access(b2, false);
        probe.cache_access(CacheLevel::L2, site, addr, false, l2_lookup);
        if !l2_lookup.is_hit() {
            t = self.memory_access(addr, t);
            self.fill_l2(b2, false, probe);
        }
        if let Some(ev) = self.l1i.fill(bi, false) {
            debug_assert!(!ev.dirty, "instruction lines are never dirty");
        }
        t - now
    }

    /// Main-memory timing: queue on the memory bus for the block transfer,
    /// with a DRAM row-buffer model — an access to the open row pays the
    /// reduced hit latency, any other access pays the full latency and
    /// opens its row.
    fn memory_access(&mut self, addr: Addr, ready: u64) -> u64 {
        let transfer = self.cfg.l2.block_size / self.cfg.bus_bytes;
        let mstart = ready.max(self.mem_busy_until);
        let row = addr.block(self.cfg.dram_page_bytes.max(1));
        // XOR-hashed bank index (standard practice): decorrelates lockstep
        // streams whose pages advance together.
        let bank = ((row ^ (row >> 3) ^ (row >> 6)) % self.cfg.dram_banks.max(1)) as usize;
        let (latency, occupancy) = if row == self.open_dram_rows[bank] {
            // Row-buffer hit: cheap, and streams at bus speed.
            (self.cfg.dram_hit_latency, transfer)
        } else {
            // Row miss: full latency, and the banks bound how many random
            // accesses the memory system can overlap.
            self.open_dram_rows[bank] = row;
            let bank_occupancy = self.cfg.mem_latency / self.cfg.dram_banks.max(1);
            (self.cfg.mem_latency, transfer.max(bank_occupancy))
        };
        self.mem_busy_until = mstart + occupancy;
        mstart + latency + transfer
    }

    fn l1_block_to_l2(&self, b1: u64) -> u64 {
        b1 * self.cfg.l1d.block_size / self.cfg.l2.block_size
    }

    fn writeback_to_l2<P: Probe>(&mut self, b1: u64, probe: &mut P) {
        let b2 = self.l1_block_to_l2(b1);
        self.fill_l2(b2, true, probe);
    }

    /// Whether L2 evictions are captured by the L2 victim cache for the
    /// current access: the static flag under static gating, the region's
    /// choice under a controller.
    fn victim_capture_on(&self) -> bool {
        match self.cur_choice {
            Some(c) => c == AssistChoice::Victim,
            None => self.assist_active(),
        }
    }

    fn fill_l2<P: Probe>(&mut self, b2: u64, dirty: bool, probe: &mut P) {
        if let Some(ev) = self.l2.fill(b2, dirty) {
            if ev.dirty {
                probe.writeback(CacheLevel::L2);
            }
            if self.victim_capture_on() {
                if let Some(victim) = &mut self.victim_l2 {
                    // Dirty overflow from the L2 victim cache goes to memory;
                    // no further state to update.
                    let _ = victim.insert(ev.block, ev.dirty);
                }
            }
        }
    }

    fn fill_l2_with_victim<P: Probe>(&mut self, b2: u64, dirty: bool, probe: &mut P) {
        if let Some(ev) = self.l2.fill(b2, dirty) {
            if ev.dirty {
                probe.writeback(CacheLevel::L2);
            }
            if let Some(victim) = &mut self.victim_l2 {
                let _ = victim.insert(ev.block, ev.dirty);
            }
        }
    }

    /// L1d allocation: partition-aware under an active way duel (the line
    /// is charged to the access's side and replacement stays inside that
    /// side's quota), plain LRU/PLRU otherwise.
    fn l1d_fill(&mut self, b1: u64, dirty: bool) -> Option<Eviction> {
        match (&self.duel, self.cur_choice) {
            (Some(duel), Some(choice)) => {
                let irregular = choice != AssistChoice::Off;
                let quota = duel.side_quota(irregular);
                self.l1d.fill_partitioned(b1, dirty, irregular, quota)
            }
            _ => self.l1d.fill(b1, dirty),
        }
    }

    fn fill_l1<P: Probe>(&mut self, b1: u64, dirty: bool, probe: &mut P) {
        if let Some(ev) = self.l1d_fill(b1, dirty) {
            if ev.dirty {
                probe.writeback(CacheLevel::L1d);
                self.writeback_to_l2(ev.block, probe);
            }
        }
    }

    fn fill_l1_with_victim<P: Probe>(&mut self, b1: u64, dirty: bool, probe: &mut P) {
        if let Some(ev) = self.l1d_fill(b1, dirty) {
            if ev.dirty {
                probe.writeback(CacheLevel::L1d);
            }
            if let Some(victim) = &mut self.victim_l1 {
                if let Some((spilled, spilled_dirty)) = victim.insert(ev.block, ev.dirty) {
                    if spilled_dirty {
                        self.writeback_to_l2(spilled, probe);
                    }
                }
            }
        }
    }

    /// Prefetches the adjacent block from L2 into L1 (SLDT large fetch).
    /// Charges only the extra bus occupancy; skipped when L2 does not hold
    /// the block. Returns the extra latency.
    fn prefetch_adjacent<P: Probe>(&mut self, b1: u64, site: Site, probe: &mut P) -> u64 {
        if self.l1d.probe(b1) {
            return 0;
        }
        let b2 = self.l1_block_to_l2(b1);
        if !self.l2.probe(b2) {
            return 0;
        }
        self.spatial_prefetches += 1;
        probe.assist(site, Addr(b1 * self.cfg.l1d.block_size), AssistEvent::SpatialPrefetch);
        self.fill_l1(b1, false, probe);
        // Extra transfer slot for the second block.
        self.cfg.l1d.block_size / self.cfg.bus_bytes / 2
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1d: *self.l1d.stats(),
            l1i: *self.l1i.stats(),
            l2: *self.l2.stats(),
            dtlb_misses: self.dtlb.misses(),
            itlb_misses: self.itlb.misses(),
            assist: AssistStats {
                bypass_buffer_hits: self.bypass.as_ref().map_or(0, |b| b.buffer_hits()),
                bypassed_fills: self.bypass.as_ref().map_or(0, |b| b.bypassed()),
                l2_bypassed_fills: self.bypass.as_ref().map_or(0, |b| b.l2_bypassed()),
                spatial_prefetches: self.spatial_prefetches,
                l1_victim_hits: self.victim_l1.as_ref().map_or(0, |v| v.hits()),
                l2_victim_hits: self.victim_l2.as_ref().map_or(0, |v| v.hits()),
                stream_hits: self.stream.as_ref().map_or(0, |s| s.hits()),
                assisted_accesses: self.assisted_accesses,
                adapt_switches: self.adapt.as_ref().map_or(0, |a| a.switches()),
            },
        }
    }

    /// Read access to the bypass engine (for ablation studies).
    pub fn bypass_engine(&self) -> Option<&BypassEngine> {
        self.bypass.as_ref()
    }

    /// Read access to the adaptive controller (`None` for static runs).
    pub fn adapt_controller(&self) -> Option<&AdaptController> {
        self.adapt.as_ref()
    }

    /// Read access to the adaptive way duel (`None` when absent).
    pub fn way_duel(&self) -> Option<&WayDuel> {
        self.duel.as_ref()
    }

    /// Applies a data access *functionally*: cache, TLB, and assist state
    /// advance exactly as under [`MemoryHierarchy::data_access`], but the
    /// computed latency is discarded. Timing never feeds back into which
    /// blocks are allocated or evicted, so functional warmup through this
    /// path reproduces the timed path's state transitions bit-for-bit at a
    /// fraction of a detailed pipeline's cost. Call
    /// [`MemoryHierarchy::reset_timing`] before timed simulation resumes.
    pub fn warm_access(&mut self, addr: Addr, write: bool) {
        let _ = self.data_access(addr, write, 0);
    }

    /// [`MemoryHierarchy::warm_access`] for an instruction fetch.
    pub fn warm_fetch(&mut self, pc: u64) {
        let _ = self.inst_fetch(pc, 0);
    }

    /// Clears the timing-only state (L2 port and memory-bus occupancy, open
    /// DRAM rows) so timed simulation can start from an idle memory system
    /// after a functional-warmup pass or a snapshot restore.
    pub fn reset_timing(&mut self) {
        self.l2_busy_until = 0;
        self.mem_busy_until = 0;
        for row in &mut self.open_dram_rows {
            *row = u64::MAX;
        }
    }

    /// Captures the functional state (see [`HierarchySnapshot`]).
    pub fn snapshot(&self) -> HierarchySnapshot {
        HierarchySnapshot {
            l1d: self.l1d.snapshot(),
            l1i: self.l1i.snapshot(),
            l2: self.l2.snapshot(),
            dtlb: self.dtlb.snapshot(),
            itlb: self.itlb.snapshot(),
            bypass: self.bypass.clone(),
            victim_l1: self.victim_l1.clone(),
            victim_l2: self.victim_l2.clone(),
            stream: self.stream.clone(),
            adapt: self.adapt.clone(),
            duel: self.duel.clone(),
            enabled: self.enabled,
        }
    }

    /// Restores a snapshot taken from an identically-configured hierarchy
    /// and resets the timing state. Statistics counters are left untouched;
    /// difference them across the restore with [`HierarchyStats::since`].
    ///
    /// # Panics
    ///
    /// Panics if any cache geometry disagrees with the snapshot's.
    pub fn restore(&mut self, snap: &HierarchySnapshot) {
        self.l1d.restore(&snap.l1d);
        self.l1i.restore(&snap.l1i);
        self.l2.restore(&snap.l2);
        self.dtlb.restore(&snap.dtlb);
        self.itlb.restore(&snap.itlb);
        self.bypass = snap.bypass.clone();
        self.victim_l1 = snap.victim_l1.clone();
        self.victim_l2 = snap.victim_l2.clone();
        self.stream = snap.stream.clone();
        self.adapt = snap.adapt.clone();
        self.duel = snap.duel.clone();
        self.cur_choice = None;
        self.enabled = snap.enabled;
        self.reset_timing();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test driver that spaces accesses far apart in time so port queueing
    /// never affects individual latency assertions.
    struct Driver {
        h: MemoryHierarchy,
        now: u64,
    }

    impl Driver {
        fn new(assist: AssistKind) -> Driver {
            Driver { h: MemoryHierarchy::new(HierarchyConfig::paper_base(assist)), now: 0 }
        }

        fn data(&mut self, addr: Addr, write: bool) -> u64 {
            self.now += 10_000;
            self.h.data_access(addr, write, self.now)
        }

        fn fetch(&mut self, pc: u64) -> u64 {
            self.now += 10_000;
            self.h.inst_fetch(pc, self.now)
        }
    }

    #[test]
    fn hit_latency_is_l1() {
        let mut p = Driver::new(AssistKind::None);
        let a = Addr(0x1000_0000);
        let first = p.data(a, false);
        // Cold: TLB miss (30) + L1 (2) + L2 (10) + mem (100) + transfer (16).
        assert_eq!(first, 30 + 2 + 10 + 100 + 16);
        let second = p.data(a, false);
        assert_eq!(second, 2);
    }

    #[test]
    fn l2_hit_latency() {
        let mut p = Driver::new(AssistKind::None);
        let a = Addr(0x1000_0000);
        p.data(a, false);
        // Evict from L1 by touching 4 conflicting blocks (4-way, 8 KiB apart).
        for k in 1..=4u64 {
            p.data(Addr(a.0 + k * 8192), false);
        }
        let lat = p.data(a, false);
        // L1 (2) + L2 (10); TLB hit; same L2 block still resident.
        assert_eq!(lat, 12);
    }

    #[test]
    fn back_to_back_misses_queue_on_l2_port() {
        // Two simultaneous L1 misses to warm L2 blocks: the second queues
        // behind the first's port occupancy.
        let mut p = Driver::new(AssistKind::None);
        let a = Addr(0x1000_0000);
        let b = Addr(0x1000_2000);
        p.data(a, false);
        p.data(b, false);
        // Evict both from L1.
        for k in 2..=5u64 {
            p.data(Addr(a.0 + k * 8192), false);
        }
        // Issue both at the same cycle.
        let now = p.now + 10_000;
        let la = p.h.data_access(a, false, now);
        let lb = p.h.data_access(b, false, now);
        assert_eq!(la, 12);
        let occ = p.h.config().l2_occupancy;
        assert_eq!(lb, 12 + occ, "second miss queues behind the first");
    }

    #[test]
    fn memory_bus_serializes_cold_misses() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::None));
        // Warm the TLB pages (and open the first page's DRAM row).
        h.data_access(Addr(0x1000_0000), false, 0);
        h.data_access(Addr(0x1002_1000), false, 1_000_000);
        let now = 2_000_000;
        // Same DRAM page as the first warm access: a row-buffer hit.
        let la = h.data_access(Addr(0x1000_0200), false, now);
        assert_eq!(la, 2 + 10 + 25 + 16);
        // A closed page, issued in the same cycle: full latency plus
        // queueing behind the first transfer.
        let lb = h.data_access(Addr(0x1003_1200), false, now);
        assert!(lb >= 2 + 10 + 100 + 16, "cold page miss too cheap: {lb}");
        assert!(lb > la + 50, "second miss should queue and pay full latency: {lb} vs {la}");
    }

    #[test]
    fn dram_row_hits_are_cheaper_than_row_misses() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::None));
        // Two accesses in the same 4 KiB page, both L2-missing (distinct L2
        // blocks), spaced far apart in time. Warm the TLB first.
        h.data_access(Addr(0x1000_0f00), false, 0);
        let miss = h.data_access(Addr(0x1002_0000), false, 10_000);
        h.data_access(Addr(0x1002_0000), false, 15_000); // reopen page 0x10020's row
        let hit = h.data_access(Addr(0x1002_0080), false, 20_000);
        assert!(hit < miss, "row hit {hit} should beat row miss {miss}");
        // First touch of the page pays the TLB walk (30) and the full DRAM
        // latency; the second access hits both the TLB and the open row.
        assert_eq!(miss - hit, (100 - 25) + 30);
    }

    #[test]
    fn miss_rates_accumulate() {
        let mut p = Driver::new(AssistKind::None);
        for i in 0..1000u64 {
            p.data(Addr(0x1000_0000 + i * 8), false);
        }
        let s = p.h.stats();
        assert_eq!(s.l1d.accesses, 1000);
        // 8-byte stride over 32-byte blocks: 1 miss per 4 accesses.
        assert_eq!(s.l1d.misses, 250);
        // 128-byte L2 blocks: 1 miss per 16 accesses.
        assert_eq!(s.l2.misses, 1000 / 16 + 1);
    }

    #[test]
    fn victim_cache_catches_conflict_evictions() {
        let mut p = Driver::new(AssistKind::Victim);
        let a = Addr(0x1000_0000);
        p.data(a, false);
        // Evict `a` from L1 via 4 conflicting fills.
        for k in 1..=4u64 {
            p.data(Addr(a.0 + k * 8192), false);
        }
        let lat = p.data(a, false);
        assert_eq!(lat, 3); // L1 latency + 1 for the victim swap
        assert_eq!(p.h.stats().assist.l1_victim_hits, 1);
    }

    #[test]
    fn victim_ignored_when_disabled() {
        let mut p = Driver::new(AssistKind::Victim);
        let a = Addr(0x1000_0000);
        p.data(a, false);
        for k in 1..=4u64 {
            p.data(Addr(a.0 + k * 8192), false);
        }
        p.h.set_assist_enabled(false);
        let lat = p.data(a, false);
        assert_eq!(lat, 12); // straight to L2, no swap
        assert_eq!(p.h.stats().assist.l1_victim_hits, 0);
    }

    #[test]
    fn bypass_keeps_hot_block_resident() {
        let mut p = Driver::new(AssistKind::Bypass);
        let hot = Addr(0x1000_0000);
        // Train the MAT: the hot region becomes frequent.
        for _ in 0..64 {
            p.data(hot, false);
        }
        // A cold streaming pass through conflicting addresses.
        for k in 1..=16u64 {
            p.data(Addr(hot.0 + k * 8192 + 4 * 1024 * 1024), false);
        }
        let s = p.h.stats();
        assert!(s.assist.bypassed_fills > 0, "cold stream should be bypassed");
        // Hot block still hits in L1.
        let lat = p.data(hot, false);
        assert_eq!(lat, 2);
    }

    #[test]
    fn bypass_buffer_serves_repeat_access() {
        let mut p = Driver::new(AssistKind::Bypass);
        let hot = Addr(0x1000_0000);
        for _ in 0..64 {
            p.data(hot, false);
        }
        // Fill the hot block's set so every newcomer sees a hot victim.
        let cold = Addr(hot.0 + 4 * 1024 * 1024);
        p.data(cold, false); // bypassed or allocated
        let before = p.h.stats().assist.bypass_buffer_hits;
        p.data(cold, false); // short repeat: bypass-buffer hit if bypassed
        let after = p.h.stats().assist.bypass_buffer_hits;
        let s = p.h.stats();
        if s.assist.bypassed_fills > 0 {
            assert_eq!(after - before, 1);
        }
    }

    #[test]
    fn assist_state_persists_across_disable() {
        let mut p = Driver::new(AssistKind::Bypass);
        let hot = Addr(0x1000_0000);
        for _ in 0..64 {
            p.data(hot, false);
        }
        let count_before = p.h.bypass_engine().unwrap().mat().count(hot);
        p.h.set_assist_enabled(false);
        for _ in 0..64 {
            p.data(Addr(0x2000_0000), false);
        }
        // MAT was not updated while off.
        assert_eq!(p.h.bypass_engine().unwrap().mat().count(hot), count_before);
        assert_eq!(p.h.bypass_engine().unwrap().mat().count(Addr(0x2000_0000)), 0);
    }

    #[test]
    fn stream_buffers_accelerate_sequential_misses() {
        let mut p = Driver::new(AssistKind::Stream);
        // Sequential block stream: first miss allocates, the rest hit the
        // stream buffer at L1+1 cycles.
        let mut cheap = 0;
        for k in 0..32u64 {
            let lat = p.data(Addr(0x1000_0000 + k * 32), false);
            if lat <= 3 {
                cheap += 1;
            }
        }
        assert!(cheap >= 30, "stream should serve the tail: {cheap}");
        assert!(p.h.stats().assist.stream_hits >= 30);
        // Disabled: no stream service.
        p.h.set_assist_enabled(false);
        let lat = p.data(Addr(0x2000_0000), false);
        assert!(lat > 3);
        let lat = p.data(Addr(0x2000_0020), false);
        assert!(lat > 3, "stream must be ignored when off: {lat}");
    }

    #[test]
    fn inst_fetch_hits_after_fill() {
        let mut p = Driver::new(AssistKind::None);
        let pc = 0x40_0000;
        let cold = p.fetch(pc);
        assert!(cold > 0);
        assert_eq!(p.fetch(pc), 0);
        assert_eq!(p.fetch(pc + 4), 0); // same block
        let s = p.h.stats();
        assert_eq!(s.l1i.accesses, 3);
        assert_eq!(s.l1i.misses, 1);
    }

    #[test]
    fn dirty_writeback_reaches_l2() {
        let mut p = Driver::new(AssistKind::None);
        let a = Addr(0x1000_0000);
        p.data(a, true); // dirty in L1
        for k in 1..=4u64 {
            p.data(Addr(a.0 + k * 8192), false);
        }
        let s = p.h.stats();
        assert_eq!(s.l1d.writebacks, 1);
    }

    #[test]
    fn conflict_misses_classified() {
        let mut p = Driver::new(AssistKind::None);
        let a = Addr(0x1000_0000);
        p.data(a, false);
        for k in 1..=4u64 {
            p.data(Addr(a.0 + k * 8192), false);
        }
        p.data(a, false); // conflict miss: fits in FA cache easily
        let s = p.h.stats();
        assert_eq!(s.l1d.conflict, 1);
        assert_eq!(s.l1d.compulsory, 5);
    }

    /// The event stream is complete: replaying every probed access into a
    /// [`HierarchyStatsProbe`] reconstructs the hierarchy's own counters
    /// byte-for-byte, for every assist kind, including disabled phases.
    #[test]
    fn stats_probe_matches_component_counters() {
        for assist in [AssistKind::None, AssistKind::Bypass, AssistKind::Victim, AssistKind::Stream]
        {
            let mut h = MemoryHierarchy::new(HierarchyConfig::paper_base(assist));
            let mut probe = crate::probe::HierarchyStatsProbe::new();
            let mut now = 0;
            for i in 0..4000u64 {
                now += 50;
                // A mix of streaming, conflicting, and dirty traffic, with an
                // assist-off window in the middle.
                if i == 1500 {
                    h.set_assist_enabled(false);
                }
                if i == 2500 {
                    h.set_assist_enabled(true);
                }
                let addr = match i % 5 {
                    0 | 1 => Addr(0x1000_0000 + i * 8),
                    2 => Addr(0x2000_0000 + (i % 7) * 8192),
                    3 => Addr(0x1000_0000 + (i % 11) * 4096),
                    _ => Addr(0x3000_0000 + (i % 3) * 16384),
                };
                h.data_access_probed(addr, i % 4 == 0, now, Site::UNKNOWN, &mut probe);
                if i % 3 == 0 {
                    h.inst_fetch_probed(0x40_0000 + (i % 64) * 64, now, Site::UNKNOWN, &mut probe);
                }
            }
            assert_eq!(probe.stats(), h.stats(), "event stream incomplete for {assist:?}");
        }
    }

    /// Address mix exercising L1/L2/victim/bypass/stream state.
    fn mixed_addr(i: u64) -> Addr {
        match i % 5 {
            0 | 1 => Addr(0x1000_0000 + i * 8),
            2 => Addr(0x2000_0000 + (i % 7) * 8192),
            3 => Addr(0x1000_0000 + (i % 11) * 4096),
            _ => Addr(0x3000_0000 + (i % 3) * 16384),
        }
    }

    #[test]
    fn warm_access_matches_timed_state() {
        // Functional warmup (warm_access/warm_fetch at now=0) must leave the
        // hierarchy in the same functional state as the timed path: after
        // reset_timing, both produce identical miss deltas on a probe run.
        for assist in [AssistKind::None, AssistKind::Bypass, AssistKind::Victim, AssistKind::Stream]
        {
            let mut timed = MemoryHierarchy::new(HierarchyConfig::paper_base(assist));
            let mut warm = MemoryHierarchy::new(HierarchyConfig::paper_base(assist));
            let mut now = 0;
            for i in 0..3000u64 {
                now += 37;
                let addr = mixed_addr(i);
                timed.data_access(addr, i % 4 == 0, now);
                warm.warm_access(addr, i % 4 == 0);
                if i % 3 == 0 {
                    timed.inst_fetch(0x40_0000 + (i % 64) * 64, now);
                    warm.warm_fetch(0x40_0000 + (i % 64) * 64);
                }
            }
            timed.reset_timing();
            warm.reset_timing();
            let (bt, bw) = (timed.stats(), warm.stats());
            let mut t = 0;
            for i in 3000..4000u64 {
                t += 37;
                let a = timed.data_access(mixed_addr(i), i % 4 == 0, t);
                let b = warm.data_access(mixed_addr(i), i % 4 == 0, t);
                assert_eq!(a, b, "latency diverged at op {i} for {assist:?}");
            }
            assert_eq!(timed.stats().since(&bt), warm.stats().since(&bw), "{assist:?}");
        }
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        for assist in [AssistKind::None, AssistKind::Bypass, AssistKind::Victim, AssistKind::Stream]
        {
            let mut h = MemoryHierarchy::new(HierarchyConfig::paper_base(assist));
            for i in 0..2000u64 {
                h.warm_access(mixed_addr(i), i % 4 == 0);
            }
            h.set_assist_enabled(false);
            let snap = h.snapshot();
            let mut clone_at_snap = h.clone();
            clone_at_snap.reset_timing();
            // Diverge, then restore into the dirtied hierarchy.
            for i in 5000..6000u64 {
                h.data_access(mixed_addr(i), false, i * 13);
            }
            h.set_assist_enabled(true);
            h.restore(&snap);
            let (bh, bc) = (h.stats(), clone_at_snap.stats());
            let mut now = 0;
            for i in 2000..3000u64 {
                now += 37;
                let a = h.data_access(mixed_addr(i), i % 4 == 0, now);
                let b = clone_at_snap.data_access(mixed_addr(i), i % 4 == 0, now);
                assert_eq!(a, b, "latency diverged at op {i} for {assist:?}");
            }
            assert_eq!(h.stats().since(&bh), clone_at_snap.stats().since(&bc), "{assist:?}");
        }
    }

    use selcache_ir::RegionId;

    /// Base machine plus the online controller, with short intervals so
    /// tests converge quickly.
    fn dynamic_cfg() -> HierarchyConfig {
        HierarchyConfig {
            controller: Some(ControllerConfig {
                interval_accesses: 64,
                duel_accesses: 256,
                ..ControllerConfig::default()
            }),
            ..HierarchyConfig::paper_base(AssistKind::None)
        }
    }

    /// Five blocks cycling through one 4-way set: pure LRU thrashes (100%
    /// miss), while a victim cache (or bypass buffer) catches every
    /// eviction.
    fn conflict_addr(i: u64) -> Addr {
        Addr(0x1000_0000 + (i % 5) * 8192)
    }

    #[test]
    fn controller_beats_assist_off_on_conflict_traffic() {
        let mut dynamic = MemoryHierarchy::new(dynamic_cfg());
        let mut plain = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::None));
        let site = Site::new(0x400, RegionId(0));
        let (mut td, mut tp) = (0u64, 0u64);
        let mut now = 0;
        for i in 0..40_000u64 {
            now += 100;
            td += dynamic.data_access_probed(conflict_addr(i), false, now, site, &mut NullProbe);
            tp += plain.data_access_probed(conflict_addr(i), false, now, site, &mut NullProbe);
        }
        assert!(td < tp, "dynamic ({td}) should beat assist-off ({tp}) on conflict traffic");
        let ctl = dynamic.adapt_controller().expect("controller attached");
        assert_ne!(ctl.policy(RegionId(0)), AssistChoice::Off, "an assist should be locked in");
        let s = dynamic.stats();
        assert!(s.assist.adapt_switches > 0, "explore rotations are switches");
        assert_eq!(s.assist.adapt_switches, ctl.switches());
    }

    #[test]
    fn controller_frozen_while_assist_flag_is_off() {
        let mut h = MemoryHierarchy::new(dynamic_cfg());
        let site = Site::new(0x400, RegionId(1));
        h.set_assist_enabled(false);
        let mut now = 0;
        for i in 0..10_000u64 {
            now += 100;
            h.data_access_probed(conflict_addr(i), false, now, site, &mut NullProbe);
        }
        let s = h.stats();
        assert_eq!(s.assist.adapt_switches, 0, "controller must not act while off");
        assert_eq!(s.assist.assisted_accesses, 0);
        assert_eq!(s.assist.l1_victim_hits + s.assist.bypass_buffer_hits, 0);
        assert_eq!(h.adapt_controller().unwrap().policy(RegionId(1)), AssistChoice::Off);
        // Re-enabling thaws it: the controller resumes from its initial
        // explore state and starts rotating candidates again.
        h.set_assist_enabled(true);
        for i in 0..10_000u64 {
            now += 100;
            h.data_access_probed(conflict_addr(i), false, now, site, &mut NullProbe);
        }
        assert!(h.stats().assist.adapt_switches > 0);
    }

    #[test]
    fn dynamic_stats_probe_matches_component_counters() {
        // The event-stream completeness invariant extends to the dynamic
        // controller: adapt decisions and assist events replayed into a
        // `HierarchyStatsProbe` reconstruct the counters byte-for-byte,
        // including an assist-off window and multi-region traffic.
        let mut h = MemoryHierarchy::new(dynamic_cfg());
        let mut probe = crate::probe::HierarchyStatsProbe::new();
        let mut now = 0;
        for i in 0..6000u64 {
            now += 50;
            if i == 2500 {
                h.set_assist_enabled(false);
            }
            if i == 3500 {
                h.set_assist_enabled(true);
            }
            let site = Site::new(0x400 + i % 7, RegionId((i % 3) as u32));
            h.data_access_probed(mixed_addr(i), i % 4 == 0, now, site, &mut probe);
            if i % 3 == 0 {
                h.inst_fetch_probed(0x40_0000 + (i % 64) * 64, now, site, &mut probe);
            }
        }
        assert_eq!(probe.stats(), h.stats(), "event stream incomplete for the controller");
    }

    #[test]
    fn dynamic_snapshot_restore_resumes_identically() {
        // Controller and way-duel state are functional state: a restore
        // must replay bit-identically, including policy decisions.
        let mut h = MemoryHierarchy::new(dynamic_cfg());
        let mut now = 0;
        for i in 0..3000u64 {
            now += 37;
            let site = Site::new(0x400, RegionId((i % 3) as u32));
            h.data_access_probed(mixed_addr(i), i % 4 == 0, now, site, &mut NullProbe);
        }
        let snap = h.snapshot();
        let mut clone_at_snap = h.clone();
        clone_at_snap.reset_timing();
        for i in 5000..6000u64 {
            now += 37;
            h.data_access_probed(mixed_addr(i), false, now, Site::UNKNOWN, &mut NullProbe);
        }
        h.restore(&snap);
        let (bh, bc) = (h.stats(), clone_at_snap.stats());
        let mut t = 0;
        for i in 3000..4000u64 {
            t += 37;
            let site = Site::new(0x400, RegionId((i % 3) as u32));
            let a = h.data_access_probed(mixed_addr(i), i % 4 == 0, t, site, &mut NullProbe);
            let b = clone_at_snap.data_access_probed(
                mixed_addr(i),
                i % 4 == 0,
                t,
                site,
                &mut NullProbe,
            );
            assert_eq!(a, b, "latency diverged at op {i}");
        }
        assert_eq!(h.stats().since(&bh), clone_at_snap.stats().since(&bc));
        assert_eq!(
            h.adapt_controller().unwrap().policy(RegionId(0)),
            clone_at_snap.adapt_controller().unwrap().policy(RegionId(0))
        );
        assert_eq!(
            h.way_duel().map(|d| d.side_quota(true)),
            clone_at_snap.way_duel().map(|d| d.side_quota(true))
        );
    }

    #[test]
    fn way_duel_rebalances_under_one_sided_pressure() {
        // Pure streaming traffic misses identically under every assist, so
        // the controller locks in Off (ties prefer it) and all pressure
        // lands on the *regular* side — the duel should shift ways toward
        // it, shrinking the irregular quota, and never break the assoc sum.
        let mut h = MemoryHierarchy::new(dynamic_cfg());
        let site = Site::new(0x400, RegionId(0));
        let assoc = h.config().l1d.assoc;
        let start = h.way_duel().unwrap().side_quota(true);
        let mut now = 0;
        for i in 0..40_000u64 {
            now += 100;
            // A wide streaming pattern that misses regardless of assist.
            h.data_access_probed(Addr(0x2000_0000 + i * 64), false, now, site, &mut NullProbe);
        }
        let duel = h.way_duel().unwrap();
        assert!(duel.adjustments() > 0, "one-sided pressure should move ways");
        assert!(duel.side_quota(true) <= start);
        assert_eq!(duel.side_quota(true) + duel.side_quota(false), assoc);
    }
}
