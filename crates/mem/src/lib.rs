//! # selcache-mem
//!
//! Memory-hierarchy simulator for the *selcache* framework: set-associative
//! caches with three-C miss classification, TLBs, and the two hardware
//! locality assists evaluated by the paper — MAT/SLDT cache bypassing
//! (Johnson & Hwu) and victim caches (Jouppi) — behind a run-time enable
//! flag driven by the compiler-inserted ON/OFF instructions.
//!
//! ## Example
//!
//! ```
//! use selcache_mem::{AssistKind, HierarchyConfig, MemoryHierarchy};
//! use selcache_ir::Addr;
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_base(AssistKind::Victim));
//! let cold = mem.data_access(Addr(0x1000_0000), false, 0);
//! let warm = mem.data_access(Addr(0x1000_0000), false, 1000);
//! assert!(cold > warm);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapt;
mod bypass;
mod cache;
mod hierarchy;
mod lru;
mod mat;
mod probe;
mod sldt;
mod stats;
mod stream;
mod table;
mod tlb;
mod victim;

pub use adapt::{AdaptController, AssistChoice, ControllerConfig, Decision, WayDuel};
pub use bypass::{BufferEviction, BypassConfig, BypassEngine, FillDecision};
pub use cache::{Cache, CacheConfig, CacheSnapshot, Eviction, Lookup, Replacement};
pub use hierarchy::{AssistKind, HierarchyConfig, HierarchySnapshot, MemoryHierarchy};
pub use lru::LruSet;
pub use mat::{Mat, MatConfig};
pub use probe::{AssistEvent, CacheLevel, HierarchyStatsProbe, NullProbe, Probe, Site};
pub use sldt::{Sldt, SldtConfig};
pub use stats::{AssistStats, CacheStats, HierarchyStats, MissClass};
pub use stream::{StreamBuffers, StreamConfig};
pub use tlb::{Tlb, TlbConfig, TlbSnapshot};
pub use victim::VictimCache;
